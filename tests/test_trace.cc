/**
 * @file
 * Unit tests for trace/: address generation, execution, recording,
 * the benchmark suite, multiprogramming, trace I/O, and statistics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "trace/benchmark.hh"
#include "trace/data_address_generator.hh"
#include "trace/executor.hh"
#include "trace/multiprog.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace pipecache::trace {
namespace {

void
nullSink(const std::string &)
{
}

// --------------------------------------------- data address generation

DataGenConfig
smallDataConfig()
{
    DataGenConfig config;
    config.base = 0x02000000;
    config.arrayBytes = {4096, 8192};
    config.heapBytes = 16384;
    config.seed = 3;
    return config;
}

TEST(DataGenTest, StackTracksCallDepth)
{
    DataAddressGenerator gen(smallDataConfig());
    const Addr d0 = gen.next(isa::AddrClass::Stack, 0, 16, 0);
    const Addr d1 = gen.next(isa::AddrClass::Stack, 0, 16, 1);
    EXPECT_NE(d0, d1);
    EXPECT_GT(d0, d1); // deeper frames sit lower
}

TEST(DataGenTest, GlobalIsDisplacementStable)
{
    DataAddressGenerator gen(smallDataConfig());
    const Addr a = gen.next(isa::AddrClass::Global, 0, 256, 0);
    const Addr b = gen.next(isa::AddrClass::Global, 0, 256, 5);
    EXPECT_EQ(a, b); // same site -> same global variable
}

TEST(DataGenTest, ArrayWalksSequentiallyAndWraps)
{
    auto config = smallDataConfig();
    config.arrayBytes = {16};
    config.arrayStride = 4;
    DataAddressGenerator gen(config);
    const Addr a0 = gen.next(isa::AddrClass::Array, 0, 0, 0);
    const Addr a1 = gen.next(isa::AddrClass::Array, 0, 0, 0);
    EXPECT_EQ(a1, a0 + 4);
    gen.next(isa::AddrClass::Array, 0, 0, 0);
    gen.next(isa::AddrClass::Array, 0, 0, 0);
    const Addr wrapped = gen.next(isa::AddrClass::Array, 0, 0, 0);
    EXPECT_EQ(wrapped, a0); // 16-byte array wraps after 4 accesses
}

TEST(DataGenTest, StreamsAreIndependent)
{
    DataAddressGenerator gen(smallDataConfig());
    const Addr s0 = gen.next(isa::AddrClass::Array, 0, 0, 0);
    const Addr s1 = gen.next(isa::AddrClass::Array, 1, 0, 0);
    EXPECT_NE(s0 & 0xfff00000, s1 & 0xfff00000);
}

TEST(DataGenTest, HeapStaysInRegionAndIsSkewed)
{
    auto config = smallDataConfig();
    config.heapTheta = 1.2;
    DataAddressGenerator gen(config);
    std::map<Addr, int> hits;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = gen.next(isa::AddrClass::Heap, 0, 0, 0);
        EXPECT_GE(a, config.base + 0x00A00000);
        EXPECT_LT(a, config.base + 0x00A00000 + config.heapBytes);
        ++hits[a & ~31u]; // object granule
    }
    // Popularity skew: the most popular object gets far more than the
    // uniform share.
    int max_hits = 0;
    for (const auto &kv : hits)
        max_hits = std::max(max_hits, kv.second);
    EXPECT_GT(max_hits, 3 * 5000 / (16384 / 32));
}

TEST(DataGenTest, ResetReproducesSequence)
{
    DataAddressGenerator gen(smallDataConfig());
    std::vector<Addr> first;
    for (int i = 0; i < 20; ++i)
        first.push_back(gen.next(isa::AddrClass::Heap, 0, 0, 0));
    gen.reset();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(gen.next(isa::AddrClass::Heap, 0, 0, 0), first[i]);
}

TEST(DataGenTest, AddressesAreWordAligned)
{
    DataAddressGenerator gen(smallDataConfig());
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(gen.next(isa::AddrClass::Global, 0, 4 * i + 2, 0) & 3u,
                  0u);
        EXPECT_EQ(gen.next(isa::AddrClass::Heap, 0, 0, 0) & 3u, 0u);
    }
}

// ------------------------------------------------------------- executor

isa::Program
loopProgram(double mean_trip)
{
    using namespace isa;
    // B0: entry, falls into loop head.
    // B1: loop body + backward branch to itself.
    // B2: return.
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(Instruction::makeAluImm(Opcode::ADDIU, reg::sp,
                                               reg::sp, -8));
    b0.term = TermKind::FallThrough;
    b0.fallthrough = 1;
    prog.addBlock(std::move(b0));

    BasicBlock b1;
    b1.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    b1.insts.push_back(
        Instruction::makeStore(8, reg::sp, 0, AddrClass::Stack));
    b1.insts.push_back(Instruction::makeBranch(Opcode::BNE, 8, 0));
    b1.term = TermKind::CondBranch;
    b1.target = 1;
    b1.fallthrough = 2;
    b1.profile.backward = true;
    b1.profile.meanTrip = mean_trip;
    prog.addBlock(std::move(b1));

    BasicBlock b2;
    b2.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b2.term = TermKind::Return;
    prog.addBlock(std::move(b2));

    prog.layout();
    prog.validate();
    return prog;
}

TEST(ExecutorTest, StopsAtInstructionBudget)
{
    const auto prog = loopProgram(50.0);
    DataAddressGenerator dgen(smallDataConfig());
    ExecConfig config;
    config.maxInsts = 1000;
    Executor exec(prog, dgen, config);
    BlockEvent ev;
    while (exec.next(ev)) {
    }
    EXPECT_GE(exec.instCount(), 1000u);
    EXPECT_LT(exec.instCount(), 1000u + 64u);
}

TEST(ExecutorTest, LoopTripsMatchMean)
{
    const auto prog = loopProgram(8.0);
    DataAddressGenerator dgen(smallDataConfig());
    ExecConfig config;
    config.maxInsts = 60000;
    config.seed = 5;
    Executor exec(prog, dgen, config);
    BlockEvent ev;
    std::uint64_t taken = 0;
    std::uint64_t latch = 0;
    while (exec.next(ev)) {
        if (ev.block == 1) {
            ++latch;
            taken += ev.taken;
        }
    }
    ASSERT_GT(latch, 1000u);
    // Mean trips = latch executions per loop entry ~ 8.
    const double trips = static_cast<double>(latch) /
                         static_cast<double>(latch - taken);
    EXPECT_NEAR(trips, 8.0, 1.0);
}

TEST(ExecutorTest, EmitsMemRefsAtInstructionPositions)
{
    const auto prog = loopProgram(4.0);
    DataAddressGenerator dgen(smallDataConfig());
    ExecConfig config;
    config.maxInsts = 100;
    Executor exec(prog, dgen, config);
    BlockEvent ev;
    bool saw_block1 = false;
    while (exec.next(ev)) {
        if (ev.block != 1)
            continue;
        saw_block1 = true;
        ASSERT_EQ(ev.memRefs.size(), 2u);
        EXPECT_EQ(ev.memRefs[0].pos, 0u);
        EXPECT_EQ(ev.memRefs[0].store, 0u);
        EXPECT_EQ(ev.memRefs[1].pos, 1u);
        EXPECT_EQ(ev.memRefs[1].store, 1u);
    }
    EXPECT_TRUE(saw_block1);
}

TEST(ExecutorTest, RecordedTraceMatchesStreaming)
{
    const auto prog = loopProgram(6.0);
    ExecConfig config;
    config.maxInsts = 5000;
    config.seed = 9;

    DataAddressGenerator d1(smallDataConfig());
    const RecordedTrace rec = recordTrace(prog, d1, config);

    DataAddressGenerator d2(smallDataConfig());
    Executor exec(prog, d2, config);
    BlockEvent ev;
    std::size_t i = 0;
    while (exec.next(ev)) {
        ASSERT_LT(i, rec.blocks.size());
        EXPECT_EQ(rec.blocks[i].block, ev.block);
        EXPECT_EQ(rec.blocks[i].taken != 0, ev.taken);
        const auto [begin, end] = rec.memRange(i);
        ASSERT_EQ(end - begin, ev.memRefs.size());
        for (std::size_t m = 0; m < ev.memRefs.size(); ++m)
            EXPECT_EQ(rec.memRefs[begin + m].addr, ev.memRefs[m].addr);
        ++i;
    }
    EXPECT_EQ(i, rec.blocks.size());
    EXPECT_EQ(rec.instCount, exec.instCount());
}

TEST(ExecutorTest, CallAndReturnBalance)
{
    const auto &bench = findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    DataAddressGenerator dgen(bench.dataConfig(0));
    ExecConfig config;
    config.maxInsts = 50000;
    Executor exec(prog, dgen, config);
    BlockEvent ev;
    std::int64_t depth = 0;
    std::int64_t max_depth = 0;
    while (exec.next(ev)) {
        const auto &bb = prog.block(ev.block);
        if (bb.term == isa::TermKind::Call)
            ++depth;
        else if (bb.term == isa::TermKind::Return)
            --depth;
        max_depth = std::max(max_depth, depth);
        ASSERT_GE(depth, 0);
        ASSERT_LE(depth, 256);
    }
    EXPECT_GT(max_depth, 1);
}

// ------------------------------------------------------------- benchmark

TEST(BenchmarkTest, SuiteHasSixteenEntriesWithPaperTotals)
{
    const auto &suite = table1Suite();
    ASSERT_EQ(suite.size(), 16u);
    double minst = 0.0;
    for (const auto &b : suite)
        minst += b.instMillions;
    // The per-benchmark column of Table 1 sums to 2556.4; the paper's
    // printed total (2414.9) is inconsistent with its own rows, so we
    // anchor on the column.
    EXPECT_NEAR(minst, 2556.4, 0.5);
}

TEST(BenchmarkTest, FindBenchmarkWorks)
{
    EXPECT_EQ(findBenchmark("gcc").name, "gcc");
    setLogSink(nullSink);
    EXPECT_THROW(findBenchmark("nope"), std::runtime_error);
    setLogSink(nullptr);
}

TEST(BenchmarkTest, AddressSpacesAreDisjoint)
{
    const auto &b = table1Suite()[0];
    EXPECT_NE(b.dataConfig(0).base, b.dataConfig(1).base);
    EXPECT_EQ(b.dataConfig(1).base - b.dataConfig(0).base,
              addressSpaceStride);
    EXPECT_LT(b.codeBase(0), b.dataConfig(0).base + 0x00100000);
}

TEST(BenchmarkTest, ScaledInstsHasFloor)
{
    const auto &linpack = findBenchmark("linpack"); // 4 Minst
    EXPECT_EQ(linpack.scaledInsts(1000.0), 20000u);
    const auto &gcc = findBenchmark("gcc");
    EXPECT_NEAR(static_cast<double>(gcc.scaledInsts(1000.0)),
                235.7e6 / 1000.0, 1.0);
}

TEST(BenchmarkTest, RecordProducesTrace)
{
    const auto &bench = findBenchmark("small");
    const auto trace = bench.record(0, 2000.0);
    EXPECT_GE(trace.instCount, 20000u);
    EXPECT_GT(trace.blocks.size(), 1000u);
    EXPECT_GT(trace.memRefs.size(), 2000u);
}

// ------------------------------------------------------------- multiprog

TEST(MultiprogTest, RoundRobinCoversEverything)
{
    const auto &b0 = findBenchmark("small");
    const auto &b1 = findBenchmark("linpack");
    const auto p0 = b0.makeProgram(0);
    const auto p1 = b1.makeProgram(1);
    DataAddressGenerator d0(b0.dataConfig(0));
    DataAddressGenerator d1(b1.dataConfig(1));
    ExecConfig config;
    config.maxInsts = 30000;
    const auto t0 = recordTrace(p0, d0, config);
    const auto t1 = recordTrace(p1, d1, config);

    MultiprogSchedule sched({&t0, &t1}, {&p0, &p1}, 5000);

    // Every block of both traces appears exactly once, in order.
    std::vector<std::uint32_t> next(2, 0);
    for (const auto &slice : sched.slices()) {
        ASSERT_LT(slice.bench, 2u);
        EXPECT_EQ(slice.blockBegin, next[slice.bench]);
        EXPECT_GT(slice.blockEnd, slice.blockBegin);
        next[slice.bench] = slice.blockEnd;
    }
    EXPECT_EQ(next[0], t0.blocks.size());
    EXPECT_EQ(next[1], t1.blocks.size());
    EXPECT_EQ(sched.totalInsts(), t0.instCount + t1.instCount);
    EXPECT_GT(sched.numSwitches(), 5u);
}

TEST(MultiprogTest, QuantumBoundsSliceSizes)
{
    const auto &b0 = findBenchmark("small");
    const auto p0 = b0.makeProgram(0);
    DataAddressGenerator d0(b0.dataConfig(0));
    ExecConfig config;
    config.maxInsts = 30000;
    const auto t0 = recordTrace(p0, d0, config);

    const Counter quantum = 2000;
    MultiprogSchedule sched({&t0}, {&p0}, quantum);
    for (const auto &slice : sched.slices()) {
        Counter insts = 0;
        for (std::uint32_t i = slice.blockBegin; i < slice.blockEnd;
             ++i) {
            insts += p0.block(t0.blocks[i].block).size();
        }
        // A slice overshoots by at most one block.
        EXPECT_LE(insts, quantum + 64);
    }
}

// -------------------------------------------------------------- trace io

TEST(TraceIoTest, DinRoundTrip)
{
    const auto &bench = findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    DataAddressGenerator dgen(bench.dataConfig(0));
    ExecConfig config;
    config.maxInsts = 2000;
    const auto trace = recordTrace(prog, dgen, config);

    std::ostringstream os;
    writeDin(os, prog, trace);
    std::istringstream is(os.str());
    const auto records = readDin(is);

    const auto flat = flatten(prog, trace);
    ASSERT_EQ(records.size(), flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i)
        EXPECT_EQ(records[i], flat[i]) << "record " << i;
}

TEST(TraceIoTest, FlattenInterleavesFetchesAndData)
{
    const auto prog = loopProgram(3.0);
    DataAddressGenerator dgen(smallDataConfig());
    ExecConfig config;
    config.maxInsts = 50;
    const auto trace = recordTrace(prog, dgen, config);
    const auto flat = flatten(prog, trace);

    // Every data reference must directly follow its instruction fetch.
    for (std::size_t i = 0; i < flat.size(); ++i) {
        if (flat[i].kind != RefKind::Fetch) {
            ASSERT_GT(i, 0u);
            // preceded by a fetch or another data ref of the same inst
            EXPECT_TRUE(flat[i - 1].kind == RefKind::Fetch ||
                        flat[i - 1].kind != RefKind::Fetch);
        }
    }
    // Fetch count equals instruction count.
    std::size_t fetches = 0;
    for (const auto &r : flat)
        fetches += r.kind == RefKind::Fetch;
    EXPECT_EQ(fetches, trace.instCount);
}

TEST(TraceIoTest, ReaderSkipsCommentsAndBlanks)
{
    std::istringstream is("# comment\n\n2 400\n0 1f00\n1 2a\n");
    const auto records = readDin(is);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].kind, RefKind::Fetch);
    EXPECT_EQ(records[0].addr, 0x400u);
    EXPECT_EQ(records[1].kind, RefKind::Read);
    EXPECT_EQ(records[1].addr, 0x1f00u);
    EXPECT_EQ(records[2].kind, RefKind::Write);
}

TEST(TraceIoTest, ReaderRejectsGarbage)
{
    // Malformed din input is a DataError carrying the 1-based line
    // number of the offending record (pre-taxonomy callers catching
    // std::runtime_error still work — Error derives from it).
    std::istringstream bad_label("7 400\n");
    try {
        readDin(bad_label);
        FAIL() << "bad label accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_NE(e.rawMessage().find("bad label"), std::string::npos);
    }

    // Good records before the bad one: line attribution must point at
    // the bad one, and blank/comment lines still count.
    std::istringstream bad_addr("2 400\n# comment\n\n2 zz\n");
    try {
        readDin(bad_addr);
        FAIL() << "bad address accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.line(), 4u);
        EXPECT_NE(e.rawMessage().find("bad address"),
                  std::string::npos);
    }

    std::istringstream truncated("0 100\n1\n");
    try {
        readDin(truncated);
        FAIL() << "truncated record accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(e.rawMessage().find("truncated"), std::string::npos);
    }
}

TEST(TraceIoTest, ReaderAcceptsEmptyInput)
{
    std::istringstream empty("");
    EXPECT_TRUE(readDin(empty).empty());
    std::istringstream blanks("\n# only a comment\n   \n");
    EXPECT_TRUE(readDin(blanks).empty());
}

TEST(TraceIoTest, FileReaderAttributesErrorsToThePath)
{
    const std::string path =
        ::testing::TempDir() + "/pipecache_bad.din";
    {
        std::ofstream out(path);
        out << "2 400\n9 500\n";
    }
    try {
        readDinFile(path);
        FAIL() << "bad file accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.source(), path);
        EXPECT_EQ(e.line(), 2u);
        // what() leads with "path:line:" so a user can jump there.
        EXPECT_EQ(std::string(e.what()).find(path + ":2:"), 0u);
    }
    std::remove(path.c_str());

    EXPECT_THROW(readDinFile(path), IoError);
}

// ----------------------------------------------------------- trace stats

TEST(TraceStatsTest, MixMatchesHandBuiltTrace)
{
    const auto prog = loopProgram(5.0);
    DataAddressGenerator dgen(smallDataConfig());
    ExecConfig config;
    config.maxInsts = 3000;
    config.seed = 21;
    const auto trace = recordTrace(prog, dgen, config);
    const auto mix = computeMix(prog, trace);

    EXPECT_EQ(mix.insts, trace.instCount);
    // Block 1 (load+store+branch) dominates execution.
    EXPECT_GT(mix.loadPct(), 25.0);
    EXPECT_GT(mix.storePct(), 25.0);
    EXPECT_GT(mix.ctiPct(), 25.0);
    EXPECT_EQ(mix.loads, mix.stores);
    EXPECT_GT(mix.takenCtis, 0u);
    EXPECT_GE(mix.condBranches + mix.jumps + mix.indirects,
              mix.takenCtis);
}

TEST(TraceStatsTest, SuiteMixNearTable1Targets)
{
    // Whole-suite calibration gate at small scale: the totals of
    // Table 1 (loads 24.7%, stores 8.7%, CTIs 13%) must be tracked by
    // the synthetic suite within a few points.
    double insts = 0;
    double loads = 0;
    double stores = 0;
    double ctis = 0;
    for (const auto &bench : table1Suite()) {
        const auto prog = bench.makeProgram(0);
        DataAddressGenerator dgen(bench.dataConfig(0));
        ExecConfig config;
        config.seed = bench.seed() ^ 0x2545f491;
        config.maxInsts = 40000;
        const auto trace = recordTrace(prog, dgen, config);
        const auto mix = computeMix(prog, trace);
        const double w = bench.instMillions; // paper weighting
        insts += w;
        loads += w * mix.loadPct();
        stores += w * mix.storePct();
        ctis += w * mix.ctiPct();
    }
    EXPECT_NEAR(loads / insts, 24.7, 4.0);
    EXPECT_NEAR(stores / insts, 8.7, 3.0);
    EXPECT_NEAR(ctis / insts, 13.0, 3.5);
}

} // namespace
} // namespace pipecache::trace
