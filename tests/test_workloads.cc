/**
 * @file
 * Unit tests for the workload registry (workloads/registry.hh) and
 * the external-stream sweep (sweep/stream_sweep.hh): determinism,
 * registry coverage, per-scenario character, and JSON byte-stability.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sweep/grid_spec.hh"
#include "sweep/stream_sweep.hh"
#include "trace/source.hh"
#include "util/error.hh"
#include "workloads/registry.hh"

namespace pipecache::workloads {
namespace {

TEST(RegistryTest, ListsAtLeastTenUniqueNamedScenarios)
{
    const auto infos = listWorkloads();
    EXPECT_GE(infos.size(), 10u);
    std::set<std::string> names;
    for (const auto &info : infos) {
        EXPECT_FALSE(info.name.empty());
        EXPECT_FALSE(info.description.empty());
        names.insert(info.name);
    }
    EXPECT_EQ(names.size(), infos.size()) << "duplicate workload name";
}

TEST(RegistryTest, UnknownNameListsTheKnownOnes)
{
    try {
        openWorkload("no-such-scenario");
        FAIL() << "unknown workload accepted";
    } catch (const UsageError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no-such-scenario"), std::string::npos);
        EXPECT_NE(msg.find("zipf-hot"), std::string::npos)
            << "error should list known workloads";
    }
}

TEST(RegistryTest, EveryWorkloadIsDeterministicInItsSeed)
{
    WorkloadOptions opts;
    opts.records = 2048;
    for (const auto &info : listWorkloads()) {
        auto a = openWorkload(info.name, opts);
        auto b = openWorkload(info.name, opts);
        const auto sa = trace::drain(*a);
        const auto sb = trace::drain(*b);
        EXPECT_FALSE(sa.empty()) << info.name;
        EXPECT_EQ(sa, sb) << info.name
                          << ": same seed, different stream";

        WorkloadOptions other = opts;
        other.seed = 99;
        auto c = openWorkload(info.name, other);
        const auto sc = trace::drain(*c);
        EXPECT_FALSE(sc.empty()) << info.name;
    }
}

TEST(RegistryTest, KernelWorkloadsEmitFetchAndDataStreams)
{
    // The executor-backed scenarios interleave instruction fetches
    // with data references; pattern scenarios need not.
    for (const char *name :
         {"seq-copy", "stride-64", "random-mix", "pointer-chase"}) {
        WorkloadOptions opts;
        opts.records = 4096;
        auto source = openWorkload(name, opts);
        const auto stream = trace::drain(*source);
        ASSERT_FALSE(stream.empty()) << name;
        std::size_t fetches = 0;
        std::size_t data = 0;
        for (const auto &r : stream) {
            if (r.kind == trace::RefKind::Fetch)
                ++fetches;
            else
                ++data;
        }
        EXPECT_GT(fetches, 0u) << name;
        EXPECT_GT(data, 0u) << name;
    }
}

std::vector<core::DesignPoint>
dcachePoints(const std::string &dsizes)
{
    sweep::GridSpec grid;
    grid.set("b", "0");
    grid.set("isize", "8");
    grid.set("dsize", dsizes);
    return grid.build();
}

TEST(StreamSweepTest, ConflictStormThrashesADirectMappedCache)
{
    // 16 lines spaced one 64 KiB stride apart all land in the same
    // set of any direct-mapped cache up to 64 KiB: miss rate 1.
    WorkloadOptions opts;
    opts.records = 8192;
    auto source = openWorkload("conflict-storm", opts);
    const auto stream = trace::drain(*source);

    const auto result =
        sweep::sweepStream(stream, dcachePoints("1,8"));
    ASSERT_EQ(result.records.size(), 2u);
    for (const auto &rec : result.records)
        EXPECT_DOUBLE_EQ(rec.metrics.l1dMissRate, 1.0);
}

TEST(StreamSweepTest, MissRateIsMonotonicInCacheSizeForLru)
{
    // Mattson inclusion: for LRU, a larger cache of the same block
    // size and associativity never misses more.
    WorkloadOptions opts;
    opts.records = 16384;
    auto source = openWorkload("zipf-hot", opts);
    const auto stream = trace::drain(*source);

    const auto result =
        sweep::sweepStream(stream, dcachePoints("1,2,4,8,16,32"));
    ASSERT_EQ(result.records.size(), 6u);
    for (std::size_t i = 1; i < result.records.size(); ++i) {
        EXPECT_LE(result.records[i].metrics.l1dMissRate,
                  result.records[i - 1].metrics.l1dMissRate)
            << "dsize step " << i;
    }
}

TEST(StreamSweepTest, JsonIsByteStableAcrossRuns)
{
    WorkloadOptions opts;
    opts.records = 4096;
    const auto points = dcachePoints("1,4");

    std::string first;
    for (int run = 0; run < 2; ++run) {
        auto source = openWorkload("phase-change", opts);
        const auto stream = trace::drain(*source);
        const std::string json = sweep::streamJsonString(
            "grid", "phase-change", sweep::sweepStream(stream, points));
        if (run == 0) {
            first = json;
            EXPECT_EQ(json.find("\"mode\":\"stream\""),
                      json.find("\"mode\""))
                << "stream mode marker missing";
            EXPECT_EQ(json.back(), '\n');
        } else {
            EXPECT_EQ(json, first) << "stream JSON not byte-stable";
        }
    }
}

TEST(StreamSweepTest, StreamTotalsMatchTheRecordMix)
{
    std::vector<trace::TraceRecord> stream = {
        {trace::RefKind::Fetch, 0x0},
        {trace::RefKind::Read, 0x100},
        {trace::RefKind::Write, 0x104},
        {trace::RefKind::Fetch, 0x4},
        {trace::RefKind::Read, 0x100},
    };
    const auto result = sweep::sweepStream(stream, dcachePoints("1"));
    EXPECT_EQ(result.stream.records, 5u);
    EXPECT_EQ(result.stream.fetches, 2u);
    EXPECT_EQ(result.stream.reads, 2u);
    EXPECT_EQ(result.stream.writes, 1u);
    ASSERT_EQ(result.records.size(), 1u);
    const auto &m = result.records.front().metrics;
    EXPECT_EQ(m.l1d.reads + m.l1d.writes, 3u);
    // penalty × misses, and 1 + stalls/fetch.
    const Counter misses = m.l1i.misses() + m.l1d.misses();
    EXPECT_EQ(m.stallCycles,
              misses *
                  result.records.front().point.missPenaltyCycles);
    EXPECT_GT(m.memCpi, 1.0 - 1e-12);
}

} // namespace
} // namespace pipecache::workloads
