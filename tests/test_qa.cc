/**
 * @file
 * Differential fuzz harness tests: case generation determinism and
 * serialization round-trips, shrinker behavior on synthetic oracles,
 * the oracle set on seeded cases, and pinned reproducers for the
 * disagreements the harness has found.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "qa/fuzzer.hh"
#include "qa/oracle.hh"
#include "util/error.hh"

namespace pipecache::qa {
namespace {

TEST(FuzzCaseTest, GenerationIsDeterministic)
{
    for (std::uint64_t i = 0; i < 64; ++i) {
        const FuzzCase a = randomCase(1, i);
        const FuzzCase b = randomCase(1, i);
        EXPECT_TRUE(a == b) << "case " << i;
    }
    // Different (seed, index) pairs actually vary the case.
    EXPECT_FALSE(randomCase(1, 0) == randomCase(1, 1));
    EXPECT_FALSE(randomCase(1, 0) == randomCase(2, 0));
}

TEST(FuzzCaseTest, SerializationRoundTrips)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (std::uint64_t i = 0; i < 100; ++i) {
            const FuzzCase c = randomCase(seed, i);
            const std::string spec = serializeCase(c);
            SCOPED_TRACE(spec);
            const FuzzCase back = parseCase(spec);
            EXPECT_TRUE(back == c);
            // And the text form itself is a fixpoint.
            EXPECT_EQ(serializeCase(back), spec);
        }
    }
}

TEST(FuzzCaseTest, ParseRejectsMalformedSpecs)
{
    const char *kBad[] = {
        "",
        "garbage",
        "suite=scale:0,quantum:5000,salt:0,bench:small;threads=2;"
        "stream=seed:1,len:64,insts:2000", // no points
        "threads=2",
        "suite=scale:abc,quantum:5000,salt:0,bench:small;threads=2;"
        "stream=seed:1,len:64,insts:2000;point=b:0,l:0,i:1,d:1,blk:4,"
        "assoc:1,pen:10,repl:lru,bs:squash,ls:static,ps:btfnt,"
        "btb:256.1,wb:0",
        "suite=scale:10000,quantum:5000,salt:0,bench:nosuchbench;"
        "threads=2;stream=seed:1,len:64,insts:2000;point=b:0,l:0,i:1,"
        "d:1,blk:4,assoc:1,pen:10,repl:lru,bs:squash,ls:static,"
        "ps:btfnt,btb:256.1,wb:0",
    };
    for (const char *spec : kBad) {
        SCOPED_TRACE(spec);
        EXPECT_THROW(parseCase(spec), UsageError);
    }
}

/** Synthetic oracle: fails every case. */
class AlwaysFailOracle final : public Oracle
{
  public:
    const char *name() const override { return "always-fail"; }
    OracleResult check(const FuzzCase &) override
    {
        return OracleResult::fail("synthetic");
    }
};

TEST(ShrinkTest, ReachesTheMinimalCaseAndTerminates)
{
    AlwaysFailOracle oracle;
    const FuzzCase big = randomCase(3, 7);
    std::string detail;
    std::size_t steps = 0;
    const FuzzCase small = shrinkCase(oracle, big, &detail, &steps);

    EXPECT_EQ(detail, "synthetic");
    EXPECT_GT(steps, 0u);
    // Everything shrinkable has been shrunk away.
    EXPECT_EQ(small.points.size(), 1u);
    EXPECT_EQ(small.suite.benchmarks.size(), 1u);
    EXPECT_EQ(small.threads, 2u);
    EXPECT_EQ(small.streamSeed, 1u);
    EXPECT_LE(small.streamLength, 127u);
    EXPECT_LE(small.pipelineInsts, 3999u);
    const core::DesignPoint &p = small.points.front();
    EXPECT_EQ(p.branchSlots, 0u);
    EXPECT_EQ(p.loadSlots, 0u);
    EXPECT_EQ(p.l1iSizeKW, 1u);
    EXPECT_EQ(p.l1dSizeKW, 1u);
    EXPECT_EQ(p.assoc, 1u);
    EXPECT_FALSE(p.writeThroughBuffer);
    // The minimal case has no candidates left at all.
    EXPECT_TRUE(shrinkCandidates(small).empty());
}

/** Synthetic oracle: fails only while the failure condition holds. */
class ThresholdOracle final : public Oracle
{
  public:
    const char *name() const override { return "threshold"; }
    OracleResult check(const FuzzCase &c) override
    {
        if (c.streamLength >= 1000)
            return OracleResult::fail("long stream");
        return OracleResult::pass();
    }
};

TEST(ShrinkTest, PreservesTheFailureCondition)
{
    ThresholdOracle oracle;
    FuzzCase c = randomCase(1, 0);
    c.streamLength = 8000;
    const FuzzCase small = shrinkCase(oracle, c);
    // Halving stops at the last failing length: [1000, 1999].
    EXPECT_GE(small.streamLength, 1000u);
    EXPECT_LT(small.streamLength, 2000u);
    EXPECT_EQ(small.points.size(), 1u);
}

/** Synthetic oracle: throws instead of reporting. */
class ThrowingOracle final : public Oracle
{
  public:
    const char *name() const override { return "throwing"; }
    OracleResult check(const FuzzCase &) override
    {
        throw DataError("somewhere", 7, "synthetic explosion");
    }
};

TEST(FuzzerTest, RunCheckConvertsExceptionsToFailures)
{
    ThrowingOracle oracle;
    const OracleResult r = runCheck(oracle, randomCase(1, 0));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.detail.find("uncaught data error"), std::string::npos);
    EXPECT_NE(r.detail.find("synthetic explosion"), std::string::npos);
}

TEST(FuzzerTest, ReproducerLineReplays)
{
    const FuzzCase c = randomCase(5, 9);
    const std::string line = reproducerLine("stack", c);
    EXPECT_EQ(line.rfind("pipecache_fuzz --oracle stack --case '", 0),
              0u);
    // The quoted spec parses back to the same case.
    const std::size_t open = line.find('\'');
    const std::size_t close = line.rfind('\'');
    ASSERT_NE(open, close);
    const std::string spec =
        line.substr(open + 1, close - open - 1);
    EXPECT_TRUE(parseCase(spec) == c);
}

TEST(FuzzerTest, UnknownOracleNameIsAUsageError)
{
    EXPECT_THROW(makeOracles({"nosuch"}), UsageError);
    EXPECT_EQ(makeOracles({"checkpoint", "stack"}).size(), 2u);
    EXPECT_EQ(makeOracles({"chaos"}).size(), 1u);
    EXPECT_EQ(makeOracles({"extstream"}).size(), 1u);
    EXPECT_EQ(makeOracles().size(), 8u);
}

TEST(FuzzerTest, SeededRunIsCleanAndDeterministic)
{
    FuzzOptions opts;
    opts.seed = 1;
    opts.cases = 6;
    const FuzzReport a = runFuzz(opts);
    EXPECT_TRUE(a.ok());
    EXPECT_EQ(a.casesRun, 6u);
    EXPECT_GT(a.checksRun, 0u);

    const FuzzReport b = runFuzz(opts);
    EXPECT_EQ(b.checksRun, a.checksRun);
    EXPECT_TRUE(b.ok());
}

TEST(FuzzerTest, FailureReportCarriesShrunkReproducer)
{
    // Drive the loop with a synthetic always-fail oracle by running
    // the real driver machinery on a crafted failing case.
    AlwaysFailOracle oracle;
    const FuzzCase c = randomCase(2, 3);
    std::string detail;
    std::size_t steps = 0;
    const FuzzCase small = shrinkCase(oracle, c, &detail, &steps);
    const std::string line = reproducerLine(oracle.name(), small);
    EXPECT_NE(line.find("--oracle always-fail"), std::string::npos);
    EXPECT_TRUE(parseCase(line.substr(line.find('\'') + 1,
                                      line.rfind('\'') -
                                          line.find('\'') - 1)) ==
                small);
}

// Pinned reproducer: `pipecache_fuzz --seed 1 --cases 25` originally
// failed the checkpoint oracle on case 0 and shrank to this spec; the
// divergence was loadCheckpoint() trimming the whole leading
// whitespace run from fail-entry messages (fixed in
// sweep/checkpoint.cc, regression-tested byte-for-byte in
// test_fault.cc). Keep the shrunk case green through the real oracle.
TEST(FuzzerTest, PinnedCheckpointWhitespaceReproducer)
{
    const FuzzCase c = parseCase(
        "suite=scale:40000,quantum:5000,salt:0,bench:yacc;threads=2;"
        "stream=seed:1,len:64,insts:2000;point=b:0,l:0,i:1,d:1,blk:4,"
        "assoc:1,pen:10,repl:lru,bs:squash,ls:static,ps:btfnt,"
        "btb:256.1,wb:0");
    auto oracles = makeOracles({"checkpoint"});
    ASSERT_EQ(oracles.size(), 1u);
    const OracleResult r = runCheck(*oracles.front(), c);
    EXPECT_TRUE(r.ok) << r.detail;
}

// A fuzz smoke through every oracle on a handful of seeds; the CI
// sanitize jobs run the CLI with a larger budget on top of this.
TEST(FuzzerTest, SmokeAcrossSeeds)
{
    for (const std::uint64_t seed : {11ull, 12ull}) {
        FuzzOptions opts;
        opts.seed = seed;
        opts.cases = 4;
        const FuzzReport report = runFuzz(opts);
        EXPECT_TRUE(report.ok())
            << "seed " << seed << ": "
            << (report.failures.empty()
                    ? ""
                    : report.failures.front().reproducer);
    }
}

} // namespace
} // namespace pipecache::qa
