/**
 * @file
 * Unit tests for util/: logging, RNG, statistics, tables, units.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <stdexcept>
#include <string>

#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace pipecache {
namespace {

// ---------------------------------------------------------------- logging

std::string lastLogLine;

void
captureSink(const std::string &line)
{
    lastLogLine = line;
}

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogSink(captureSink); }
    void TearDown() override { setLogSink(nullptr); }
};

TEST_F(LoggingTest, PanicThrowsUnderTestSink)
{
    EXPECT_THROW(PC_PANIC("broken ", 42), std::logic_error);
    EXPECT_NE(lastLogLine.find("panic: broken 42"), std::string::npos);
}

TEST_F(LoggingTest, FatalThrowsUnderTestSink)
{
    EXPECT_THROW(PC_FATAL("bad config"), std::runtime_error);
    EXPECT_NE(lastLogLine.find("fatal: bad config"), std::string::npos);
}

TEST_F(LoggingTest, AssertPassesAndFails)
{
    EXPECT_NO_THROW(PC_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(PC_ASSERT(1 + 1 == 3, "math"), std::logic_error);
    EXPECT_NE(lastLogLine.find("assertion failed"), std::string::npos);
}

TEST_F(LoggingTest, WarnAndInformGoThroughSink)
{
    warn("w ", 1);
    EXPECT_EQ(lastLogLine, "warn: w 1");
    inform("i ", 2);
    EXPECT_EQ(lastLogLine, "info: i 2");
}

// ----------------------------------------------------------------- random

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, NextRangeStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextRange(17), 17u);
}

TEST(RngTest, NextRangeCoversAllValues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds)
{
    Rng rng(9);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BernoulliMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerate)
{
    Rng rng(13);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
}

TEST(RngTest, GeometricMeanMatches)
{
    Rng rng(17);
    const double p = 0.25;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // Mean of failures-before-success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, ZipfPrefersSmallRanks)
{
    Rng rng(19);
    std::uint64_t rank0 = 0;
    std::uint64_t rank_last = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto r = rng.nextZipf(100, 1.0);
        ASSERT_LT(r, 100u);
        rank0 += r == 0;
        rank_last += r == 99;
    }
    EXPECT_GT(rank0, 10 * std::max<std::uint64_t>(rank_last, 1));
}

TEST(RngTest, DiscreteRespectsWeights)
{
    Rng rng(23);
    const double weights[] = {1.0, 0.0, 3.0};
    std::uint64_t counts[3] = {0, 0, 0};
    for (int i = 0; i < 40000; ++i)
        ++counts[rng.nextDiscrete(weights)];
    EXPECT_EQ(counts[1], 0u);
    EXPECT_NEAR(static_cast<double>(counts[2]) /
                    static_cast<double>(counts[0]),
                3.0, 0.3);
}

TEST(RngTest, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 4);
}

// ------------------------------------------------------------------ stats

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(10); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(10), 0.25);
}

TEST(HistogramTest, FractionAtLeast)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v < 8; ++v)
        h.sample(v);
    h.sample(100);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 1.0);
    EXPECT_NEAR(h.fractionAtLeast(4), 5.0 / 9.0, 1e-12);
}

TEST(HistogramTest, WeightedSamplesAndMean)
{
    Histogram h(8);
    h.sample(2, 3);
    h.sample(4, 1);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 4.0) / 4.0);
}

TEST(HistogramTest, MergeAddsCounts)
{
    Histogram a(4);
    Histogram b(4);
    a.sample(1);
    b.sample(1);
    b.sample(9);
    a.merge(b);
    EXPECT_EQ(a.bucket(1), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h(4);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(StatsTest, WeightedHarmonicMeanKnownValue)
{
    WeightedHarmonicMean m;
    m.add(2.0, 1.0);
    m.add(4.0, 1.0);
    // HM of {2,4} = 2 / (1/2 + 1/4) = 8/3.
    EXPECT_NEAR(m.value(), 8.0 / 3.0, 1e-12);
}

TEST(StatsTest, WeightedHarmonicMeanEqualValuesIsIdentity)
{
    WeightedHarmonicMean m;
    m.add(3.5, 10.0);
    m.add(3.5, 90.0);
    EXPECT_DOUBLE_EQ(m.value(), 3.5);
}

TEST(StatsTest, HarmonicLeqArithmetic)
{
    WeightedHarmonicMean hm;
    WeightedArithmeticMean am;
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        const double v = 0.5 + rng.nextDouble() * 4.0;
        const double w = 0.1 + rng.nextDouble();
        hm.add(v, w);
        am.add(v, w);
    }
    EXPECT_LE(hm.value(), am.value() + 1e-12);
}

TEST(StatsTest, SpanHelperMatchesAccumulator)
{
    const double values[] = {1.0, 2.0, 5.0};
    const double weights[] = {1.0, 2.0, 3.0};
    WeightedHarmonicMean m;
    for (int i = 0; i < 3; ++i)
        m.add(values[i], weights[i]);
    EXPECT_DOUBLE_EQ(weightedHarmonicMean(values, weights), m.value());
}

TEST(StatsTest, RunningStatsMinMaxMean)
{
    RunningStats s;
    s.add(3.0);
    s.add(-1.0);
    s.add(4.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_EQ(s.count(), 3u);
}

// ------------------------------------------------------------------ table

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable t("title");
    t.setHeader({"a", "bbbb"});
    t.addRow({"x", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
}

TEST(TextTableTest, CsvQuotesSpecials)
{
    TextTable t;
    t.setHeader({"h1", "h2"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"with\"quote", "b"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTableTest, MarkdownRendering)
{
    TextTable t("A Title");
    t.setHeader({"col", "v|alue"});
    t.addRow({"x", "1"});
    const std::string md = t.renderMarkdown();
    EXPECT_NE(md.find("**A Title**"), std::string::npos);
    EXPECT_NE(md.find("| col |"), std::string::npos);
    EXPECT_NE(md.find("v\\|alue"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| x | 1 |"), std::string::npos);
}

TEST(TextTableTest, RaggedRowsRender)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_NO_THROW(t.render());
}

// ------------------------------------------------------------------ units

TEST(UnitsTest, Conversions)
{
    EXPECT_EQ(kiloWordsToBytes(1), 4096u);
    EXPECT_EQ(kiloWordsToBytes(32), 131072u);
    EXPECT_EQ(bytesToKiloWords(8192), 2u);
    EXPECT_EQ(wordsToBytes(3), 12u);
}

TEST(UnitsTest, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

// ------------------------------------------------------ error taxonomy

TEST(ErrorTest, KindNamesAndExitCodes)
{
    EXPECT_STREQ(errorKindName(ErrorKind::Usage), "usage");
    EXPECT_STREQ(errorKindName(ErrorKind::Data), "data");
    EXPECT_STREQ(errorKindName(ErrorKind::Io), "io");
    EXPECT_STREQ(errorKindName(ErrorKind::Internal), "internal");
    EXPECT_EQ(errorExitCode(ErrorKind::Usage), 2);
    EXPECT_EQ(errorExitCode(ErrorKind::Data), 3);
    EXPECT_EQ(errorExitCode(ErrorKind::Io), 3);
    EXPECT_EQ(errorExitCode(ErrorKind::Internal), 1);

    const UsageError usage("bad flag");
    EXPECT_EQ(usage.kind(), ErrorKind::Usage);
    EXPECT_EQ(usage.exitCode(), 2);
    EXPECT_STREQ(usage.what(), "bad flag");
    const InternalError internal("bug");
    EXPECT_EQ(internal.kind(), ErrorKind::Internal);
    EXPECT_EQ(internal.exitCode(), 1);
}

TEST(ErrorTest, SubclassesAreRuntimeErrors)
{
    // Pre-taxonomy call sites catch std::runtime_error; the taxonomy
    // must stay inside that net.
    EXPECT_THROW(throw DataError("x"), std::runtime_error);
    EXPECT_THROW(throw IoError("x"), Error);
}

TEST(ErrorTest, DataErrorFormatsSourceAndLine)
{
    const DataError with_both("trace.din", 12, "bad label");
    EXPECT_STREQ(with_both.what(), "trace.din:12: bad label");
    EXPECT_EQ(with_both.source(), "trace.din");
    EXPECT_EQ(with_both.line(), 12u);
    EXPECT_EQ(with_both.rawMessage(), "bad label");

    const DataError line_only("", 5, "bad label");
    EXPECT_STREQ(line_only.what(), "line 5: bad label");

    const DataError plain("just a message");
    EXPECT_STREQ(plain.what(), "just a message");
    EXPECT_EQ(plain.line(), 0u);

    // withSource() rebinds a stream-level error to the file it came
    // from, preserving the raw message and line.
    const DataError rebound = line_only.withSource("real.din");
    EXPECT_STREQ(rebound.what(), "real.din:5: bad label");
    EXPECT_EQ(rebound.rawMessage(), "bad label");
}

TEST(ErrorTest, IoErrorCarriesPath)
{
    const IoError with_path("/tmp/x", "cannot open");
    EXPECT_STREQ(with_path.what(), "/tmp/x: cannot open");
    EXPECT_EQ(with_path.path(), "/tmp/x");
    const IoError bare("disk on fire");
    EXPECT_TRUE(bare.path().empty());
}

// ------------------------------------------------------- atomic writes

TEST(AtomicFileTest, WritesContentAndLeavesNoTemp)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/pipecache_atomic.txt";
    util::writeFileAtomic(path, [](std::ostream &os) {
        os << "hello\n";
    });
    {
        std::ifstream in(path);
        std::string word;
        in >> word;
        EXPECT_EQ(word, "hello");
    }
    // The staging file must be gone after a successful commit.
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        EXPECT_EQ(entry.path().filename().string().find(
                      "pipecache_atomic.txt.tmp"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(AtomicFileTest, OverwriteReplacesWholeFile)
{
    const std::string path =
        ::testing::TempDir() + "/pipecache_atomic_over.txt";
    util::writeFileAtomic(path, [](std::ostream &os) {
        os << "a much longer first version\n";
    });
    util::writeFileAtomic(path, [](std::ostream &os) {
        os << "short\n";
    });
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(all, "short\n");
    std::remove(path.c_str());
}

TEST(AtomicFileTest, UnwritableTargetThrowsIoError)
{
    const std::string path =
        ::testing::TempDir() + "/pipecache_no_such_dir/out.txt";
    EXPECT_THROW(util::writeFileAtomic(
                     path, [](std::ostream &os) { os << "x"; }),
                 IoError);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(AtomicFileTest, ProducerExceptionLeavesTargetUntouched)
{
    const std::string path =
        ::testing::TempDir() + "/pipecache_atomic_keep.txt";
    util::writeFileAtomic(path, [](std::ostream &os) {
        os << "original\n";
    });
    EXPECT_THROW(util::writeFileAtomic(path,
                                       [](std::ostream &) -> void {
                                           throw DataError("boom");
                                       }),
                 DataError);
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(all, "original\n");
    std::remove(path.c_str());
}

} // namespace
} // namespace pipecache
