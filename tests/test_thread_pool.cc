/**
 * @file
 * Unit tests for the work-stealing thread pool: task completion,
 * draining shutdown, and exception propagation through futures.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sweep/thread_pool.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"

namespace pipecache::sweep {
namespace {

TEST(ThreadPoolTest, RunsEveryPostedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.workerCount(), 4u);
        for (int i = 0; i < 1000; ++i)
            pool.post([&count]() {
                count.fetch_add(1, std::memory_order_relaxed);
            });
    } // destructor drains
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks)
{
    // Queue tasks faster than one slow worker can run them, then
    // destroy the pool: every task must still execute.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.post([&count]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                count.fetch_add(1, std::memory_order_relaxed);
            });
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitReturnsResult)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(
        {
            try {
                future.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "boom");
                throw;
            }
        },
        std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotKillWorkers)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The pool must keep serving tasks after a task threw.
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([i]() { return i; }));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPoolTest, SingleWorkerRunsInOrderOfStealing)
{
    // One worker, tasks posted before any can run: correctness only
    // (no ordering guarantee is part of the contract).
    ThreadPool pool(1);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&count]() {
            count.fetch_add(1, std::memory_order_relaxed);
        }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency)
{
    ThreadPool pool;
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPoolTest, ManyThrowingTasksAllDrain)
{
    // A third of the tasks throw; every future must still resolve
    // (value or exception) and the pool must stay serviceable —
    // the failure mode this guards against is a worker dying or a
    // future never becoming ready after a task threw.
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 300; ++i) {
        futures.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("task failed");
            return i;
        }));
    }
    int threw = 0, ran = 0;
    for (int i = 0; i < 300; ++i) {
        try {
            EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
            ++ran;
        } catch (const std::runtime_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, 100);
    EXPECT_EQ(ran, 200);

    auto after = pool.submit([]() { return 1; });
    EXPECT_EQ(after.get(), 1);
}

TEST(ThreadPoolTest, InjectedTaskFaultPropagatesThroughFuture)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "built without PIPECACHE_FAULT_INJECTION";
    fi::clear();
    // Arm the 5th hit: exactly one of the 32 tasks throws the
    // injected InternalError; the other 31 complete normally.
    fi::arm("test.pool.task", 5);
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
        futures.push_back(pool.submit([]() {
            fi::injectionPoint("test.pool.task");
        }));
    }
    int threw = 0;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (const InternalError &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, 1);
    EXPECT_EQ(fi::hitCount("test.pool.task"), 32u);
    fi::clear();
}

} // namespace
} // namespace pipecache::sweep
