/**
 * @file
 * Edge cases and failure injection: invalid configurations must be
 * rejected loudly (panic/fatal), boundary shapes must work, and the
 * file-level I/O paths must round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "cache/btb.hh"
#include "cache/cache.hh"
#include "core/cpi_model.hh"
#include "cpusim/cpi_engine.hh"
#include "sched/branch_sched.hh"
#include "trace/benchmark.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace pipecache {
namespace {

void
nullSink(const std::string &)
{
}

/** Every test in this file may exercise panic paths. */
class EdgeCaseTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogSink(nullSink); }
    void TearDown() override { setLogSink(nullptr); }
};

// ------------------------------------------------------- configuration

TEST_F(EdgeCaseTest, RngRejectsZeroBound)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextRange(0), std::logic_error);
    EXPECT_THROW(rng.nextInt(3, 2), std::logic_error);
    EXPECT_THROW(rng.nextGeometric(0.0), std::logic_error);
}

TEST_F(EdgeCaseTest, HistogramRejectsBadAccess)
{
    Histogram h(4);
    EXPECT_THROW(h.bucket(4), std::logic_error);
    Histogram other(8);
    EXPECT_THROW(h.merge(other), std::logic_error);
}

TEST_F(EdgeCaseTest, HarmonicMeanRejectsDegenerate)
{
    WeightedHarmonicMean m;
    EXPECT_THROW(m.value(), std::logic_error);
    EXPECT_THROW(m.add(0.0, 1.0), std::logic_error);
    EXPECT_THROW(m.add(-1.0, 1.0), std::logic_error);
}

TEST_F(EdgeCaseTest, CacheRejectsSubSetSize)
{
    cache::CacheConfig config;
    config.sizeBytes = 64;
    config.blockBytes = 16;
    config.assoc = 8; // one set would need 128 bytes
    EXPECT_THROW(cache::Cache cache(config), std::logic_error);
}

TEST_F(EdgeCaseTest, BtbRejectsBadGeometry)
{
    cache::BtbConfig config;
    config.entries = 24; // sets = 24 not a power of two
    EXPECT_THROW(cache::BranchTargetBuffer btb(config),
                 std::logic_error);
    config.entries = 16;
    config.assoc = 3;
    EXPECT_THROW(cache::BranchTargetBuffer btb(config),
                 std::logic_error);
}

TEST_F(EdgeCaseTest, EngineRejectsMismatchedTranslation)
{
    const auto &bench = trace::findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 1000;
    const auto trace = recordTrace(prog, dgen, ec);
    const auto xlat = sched::scheduleBranchDelays(prog, 1);

    cache::HierarchyConfig hc;
    cache::CacheHierarchy hierarchy(hc);
    cpusim::EngineConfig config;
    config.branchSlots = 2; // != xlat's 1
    EXPECT_THROW(cpusim::CpiEngine(config, hierarchy,
                                   {{&prog, &xlat, &trace}}),
                 std::logic_error);
}

TEST_F(EdgeCaseTest, EngineRejectsEmptyWorkloads)
{
    cache::HierarchyConfig hc;
    cache::CacheHierarchy hierarchy(hc);
    EXPECT_THROW(cpusim::CpiEngine({}, hierarchy, {}),
                 std::logic_error);
}

TEST_F(EdgeCaseTest, ModelRejectsBadScale)
{
    core::SuiteConfig config;
    config.scaleDivisor = 0.5;
    EXPECT_THROW(core::CpiModel model(config), std::logic_error);
}

TEST_F(EdgeCaseTest, UnknownBenchmarkIsFatal)
{
    core::SuiteConfig config;
    config.benchmarks = {"does-not-exist"};
    EXPECT_THROW(core::CpiModel model(config), std::runtime_error);
}

// ----------------------------------------------------------- boundaries

TEST(BoundaryTest, SingleBlockCacheWorks)
{
    cache::CacheConfig config;
    config.sizeBytes = 16;
    config.blockBytes = 16;
    config.assoc = 1;
    cache::Cache cache(config);
    EXPECT_FALSE(cache.access(0x0, false));
    EXPECT_TRUE(cache.access(0x4, false));
    EXPECT_FALSE(cache.access(0x10, false)); // evicts the only line
    EXPECT_FALSE(cache.access(0x0, false));
}

TEST(BoundaryTest, LoneCtiBlockSchedules)
{
    using namespace isa;
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(Instruction::makeJump(Opcode::J));
    b0.term = TermKind::Jump;
    b0.target = 1;
    prog.addBlock(std::move(b0));
    BasicBlock b1;
    b1.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b1.term = TermKind::Return;
    prog.addBlock(std::move(b1));
    prog.layout();
    prog.validate();

    const auto xlat = sched::scheduleBranchDelays(prog, 3);
    // No body to hoist over: all three slots replicate/noop.
    EXPECT_EQ(xlat[0].r, 0u);
    EXPECT_EQ(xlat[0].s, 3u);
    EXPECT_EQ(xlat[1].s, 3u);
}

TEST(BoundaryTest, EmptyFallThroughBlockExecutes)
{
    using namespace isa;
    Program prog;
    BasicBlock b0; // empty fall-through block
    b0.term = TermKind::FallThrough;
    b0.fallthrough = 1;
    prog.addBlock(std::move(b0));
    BasicBlock b1;
    b1.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b1.term = TermKind::Return;
    prog.addBlock(std::move(b1));
    prog.layout();
    prog.validate();

    trace::DataGenConfig dc;
    trace::DataAddressGenerator dgen(dc);
    trace::ExecConfig ec;
    ec.maxInsts = 10;
    const auto trace = recordTrace(prog, dgen, ec);
    EXPECT_GE(trace.instCount, 10u);
    // Zero-size events are recorded with empty mem ranges.
    for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
        const auto [begin, end] = trace.memRange(i);
        EXPECT_LE(begin, end);
    }
}

TEST(BoundaryTest, ExecutorCallDepthCap)
{
    // A chain of calls deeper than the executor cap: the cap elides
    // further calls instead of overflowing.
    using namespace isa;
    Program prog;
    const std::uint32_t chain = 16;
    for (std::uint32_t p = 0; p < chain; ++p) {
        BasicBlock call;
        call.insts.push_back(Instruction::makeJump(Opcode::JAL));
        call.term = TermKind::Call;
        call.target = (p + 1 < chain)
                          ? static_cast<BlockId>(2 * (p + 1))
                          : static_cast<BlockId>(2 * p + 1);
        call.fallthrough = static_cast<BlockId>(2 * p + 1);
        prog.addBlock(std::move(call));
        BasicBlock ret;
        ret.insts.push_back(
            Instruction::makeJumpRegister(Opcode::JR, reg::ra));
        ret.term = TermKind::Return;
        prog.addBlock(std::move(ret));
    }
    prog.layout();
    prog.validate();

    trace::DataGenConfig dc;
    trace::DataAddressGenerator dgen(dc);
    trace::ExecConfig ec;
    ec.maxInsts = 500;
    ec.maxCallDepth = 4;
    trace::Executor exec(prog, dgen, ec);
    trace::BlockEvent ev;
    while (exec.next(ev))
        ASSERT_LE(exec.callDepth(), 4u);
}

TEST(BoundaryTest, ZeroDelayCyclesLoadStats)
{
    sched::LoadDelayStats stats;
    stats.eStatic.sample(0);
    stats.consumedLoads = 1;
    EXPECT_EQ(stats.totalDelayCycles(0, false), 0u);
    EXPECT_DOUBLE_EQ(stats.delayCyclesPerLoad(0, false), 0.0);
}

TEST(BoundaryTest, EmptyLoadStatsDivision)
{
    sched::LoadDelayStats stats;
    EXPECT_DOUBLE_EQ(stats.delayCyclesPerLoad(3, true), 0.0);
}

// -------------------------------------------------------------- file io

TEST(FileIoTest, DinFileRoundTrip)
{
    const auto &bench = trace::findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 1500;
    const auto trace = recordTrace(prog, dgen, ec);

    const std::string path = ::testing::TempDir() + "/pipecache.din";
    trace::writeDinFile(path, prog, trace);
    const auto records = trace::readDinFile(path);
    EXPECT_EQ(records, trace::flatten(prog, trace));
    std::remove(path.c_str());
}

TEST_F(EdgeCaseTest, MissingTraceFileIsFatal)
{
    EXPECT_THROW(trace::readDinFile("/nonexistent/path/trace.din"),
                 std::runtime_error);
}

// ----------------------------------------------------- determinism gate

TEST(DeterminismTest, FullPipelineIsBitStable)
{
    // Two independent model instances must agree to the last counter.
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0;
    config.benchmarks = {"small", "linpack"};

    core::DesignPoint p;
    p.branchSlots = 2;
    p.loadSlots = 2;
    p.branchScheme = cpusim::BranchScheme::Btb;

    core::CpiModel m1(config);
    core::CpiModel m2(config);
    const auto &r1 = m1.evaluate(p);
    const auto &r2 = m2.evaluate(p);
    EXPECT_EQ(r1.aggregate.totalCycles(), r2.aggregate.totalCycles());
    EXPECT_EQ(r1.l1i.misses(), r2.l1i.misses());
    EXPECT_EQ(r1.l1d.misses(), r2.l1d.misses());
    EXPECT_EQ(r1.btb.mispredicts(), r2.btb.mispredicts());
}

} // namespace
} // namespace pipecache
