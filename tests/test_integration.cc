/**
 * @file
 * Integration tests: the full experiment pipeline at reduced scale,
 * asserting the paper's qualitative findings (the "shape" anchors of
 * EXPERIMENTS.md) end to end.
 */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/tpi_model.hh"
#include "sched/branch_sched.hh"
#include "trace/trace_stats.hh"

namespace pipecache::core {
namespace {

/**
 * Shared reduced-scale model: built once for the whole binary.
 * scaleDivisor 4000 keeps the full 16-benchmark suite while running
 * in seconds.
 */
CpiModel &
sharedModel()
{
    static CpiModel instance = [] {
        SuiteConfig config;
        config.scaleDivisor = 4000.0;
        config.quantum = 20000;
        return CpiModel(config);
    }();
    return instance;
}

TpiModel &
sharedTpi()
{
    static TpiModel instance(sharedModel());
    return instance;
}

TEST(ExperimentsTest, Table1SuiteMixTracksPaper)
{
    const auto t = experiments::table1(sharedModel());
    EXPECT_EQ(t.rowCount(), 16u);
}

TEST(ExperimentsTest, Table2ExpansionShape)
{
    // Code growth increases with b and sits in the paper's regime.
    CpiModel &model = sharedModel();
    double prev = 0.0;
    for (std::uint32_t b = 1; b <= 3; ++b) {
        std::uint64_t useful = 0;
        std::uint64_t sched = 0;
        for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
            useful += model.xlat(i, b).usefulStaticInsts();
            sched += model.xlat(i, b).scheduledStaticInsts();
        }
        const double expansion = static_cast<double>(sched) /
                                     static_cast<double>(useful) -
                                 1.0;
        EXPECT_GT(expansion, prev);
        prev = expansion;
    }
    // b=3 expansion in the paper's regime (23%): between 8% and 35%.
    EXPECT_GT(prev, 0.08);
    EXPECT_LT(prev, 0.35);
}

TEST(ExperimentsTest, Table3StaticPredictionAnchor)
{
    // Paper: at b=3 the CPI increase is ~0.087, far below the 0.39
    // worst case, because prediction+squashing hides most slots.
    DesignPoint p;
    p.branchSlots = 3;
    const auto &res = sharedModel().evaluate(p);
    EXPECT_LT(res.aggregate.branchCpi(), 0.18);
    EXPECT_GT(res.aggregate.branchCpi(), 0.04);
}

TEST(ExperimentsTest, Table4BtbAnchor)
{
    // Paper: cycles/CTI 1.44 / 1.65 / 1.85 for 1..3 delay cycles.
    const double paper[] = {1.44, 1.65, 1.85};
    for (std::uint32_t b = 1; b <= 3; ++b) {
        DesignPoint p;
        p.branchSlots = b;
        p.branchScheme = cpusim::BranchScheme::Btb;
        const auto &res = sharedModel().evaluate(p);
        EXPECT_NEAR(res.aggregate.cyclesPerCti(), paper[b - 1], 0.25)
            << "b=" << b;
    }
}

TEST(ExperimentsTest, StaticBranchSchemeBeatsBtbOnCpi)
{
    // The paper's Section 3.1 conclusion (for the adopted default
    // configuration): delayed branches with squashing give a lower
    // branch CPI than the 256-entry BTB.
    DesignPoint squash;
    squash.branchSlots = 2;
    DesignPoint btb = squash;
    btb.branchScheme = cpusim::BranchScheme::Btb;
    EXPECT_LT(sharedModel().evaluate(squash).aggregate.branchCpi(),
              sharedModel().evaluate(btb).aggregate.branchCpi());
}

TEST(ExperimentsTest, Table5LoadDelayShape)
{
    const auto &stats = sharedModel().loadDelayStats();
    // Paper's Figure 6 anchor: > 80% of loads have e >= 3 dynamically
    // (dead loads hide trivially and count toward the >= side).
    const double denom = static_cast<double>(stats.totalLoads());
    const double frac_ge3 =
        (static_cast<double>(stats.deadLoads) +
         static_cast<double>(stats.eDynamic.count()) *
             stats.eDynamic.fractionAtLeast(3)) /
        denom;
    EXPECT_GT(frac_ge3, 0.75);

    // Static scheduling hides much less (Figure 7 collapse): at l=3
    // the static delay per load is at least twice the dynamic one.
    EXPECT_GT(stats.delayCyclesPerLoad(3, false),
              2.0 * stats.delayCyclesPerLoad(3, true));
    // And in the paper's ballpark (1.21 static, 0.39 dynamic at l=3).
    EXPECT_NEAR(stats.delayCyclesPerLoad(3, false), 1.0, 0.45);
    EXPECT_NEAR(stats.delayCyclesPerLoad(3, true), 0.35, 0.25);
}

TEST(ExperimentsTest, Fig4DoublingBeatsExtraSlot)
{
    // Paper: for 1-16KW, doubling the I-cache and adding one delay
    // slot always lowers CPI (the decrease from doubling outweighs the
    // slot cost).
    // At the reduced test scale, compulsory misses dominate above
    // ~4 KW and the doubling gain shrinks below the third slot's
    // cost; the full-range claim is verified at bench scale
    // (bench_fig04, EXPERIMENTS.md). Here we assert the
    // capacity-dominated region.
    CpiModel &model = sharedModel();
    for (std::uint32_t kw : {1u, 2u, 4u}) {
        for (std::uint32_t b = 0; b < 2; ++b) {
            DesignPoint small;
            small.l1iSizeKW = kw;
            small.branchSlots = b;
            DesignPoint bigger = small;
            bigger.l1iSizeKW = kw * 2;
            bigger.branchSlots = b + 1;
            EXPECT_LT(model.evaluate(bigger).aggregate.iMissCpi() +
                          model.evaluate(bigger).aggregate.branchCpi(),
                      model.evaluate(small).aggregate.iMissCpi() +
                          model.evaluate(small).aggregate.branchCpi() +
                          0.05)
                << "kw=" << kw << " b=" << b;
        }
    }
}

TEST(ExperimentsTest, Fig8LoadSlotCurvesOrdered)
{
    // CPI rises with l at every D size; larger D caches lower CPI.
    CpiModel &model = sharedModel();
    for (std::uint32_t kw : {1u, 4u, 16u}) {
        double prev = 0.0;
        for (std::uint32_t l = 0; l <= 3; ++l) {
            DesignPoint p;
            p.l1dSizeKW = kw;
            p.loadSlots = l;
            const double cpi = model.evaluate(p).cpi();
            EXPECT_GT(cpi, prev);
            prev = cpi;
        }
    }
    DesignPoint small;
    small.l1dSizeKW = 1;
    DesignPoint big = small;
    big.l1dSizeKW = 32;
    EXPECT_LT(model.evaluate(big).cpi(), model.evaluate(small).cpi());
}

TEST(ExperimentsTest, Fig12PipeliningWins)
{
    // The headline: two-to-three cache pipeline stages beat shallower
    // organizations at every combined size, and the global optimum
    // uses b = l = 3 with a large cache.
    TpiModel &tpi = sharedTpi();

    double best_tpi = 1e18;
    std::uint32_t best_depth = 0;
    std::uint32_t best_total = 0;
    for (std::uint32_t total : {4u, 16u, 64u}) {
        double column_best = 1e18;
        std::uint32_t column_depth = 0;
        for (std::uint32_t d = 0; d <= 3; ++d) {
            DesignPoint p;
            p.l1iSizeKW = total / 2;
            p.l1dSizeKW = total / 2;
            p.branchSlots = d;
            p.loadSlots = d;
            const double t = tpi.evaluate(p).tpiNs;
            if (t < column_best) {
                column_best = t;
                column_depth = d;
            }
            if (t < best_tpi) {
                best_tpi = t;
                best_depth = d;
                best_total = total;
            }
        }
        EXPECT_GE(column_depth, 2u) << "total=" << total;
    }
    EXPECT_EQ(best_depth, 3u);
    EXPECT_EQ(best_total, 64u);
    // TPI lands in the paper's regime (~6.8ns at full scale; the
    // reduced-scale traces carry extra compulsory misses).
    EXPECT_NEAR(best_tpi, 7.5, 2.0);
}

TEST(ExperimentsTest, DynamicLoadsImproveOptimum)
{
    TpiModel &tpi = sharedTpi();
    DesignPoint p;
    p.l1iSizeKW = 32;
    p.l1dSizeKW = 32;
    p.branchSlots = 3;
    p.loadSlots = 3;
    const double static_tpi = tpi.evaluate(p).tpiNs;
    p.loadScheme = cpusim::LoadScheme::Dynamic;
    const double dyn_tpi = tpi.evaluate(p).tpiNs;
    EXPECT_LT(dyn_tpi, static_tpi);
    // Paper: ~0.6ns improvement (6.8 -> 6.2); require a visible gain
    // but less than 25%.
    EXPECT_GT(static_tpi - dyn_tpi, 0.15);
    EXPECT_LT(static_tpi - dyn_tpi, 0.25 * static_tpi);
}

TEST(ExperimentsTest, ExperimentTablesRender)
{
    // Smoke: every experiment function produces a non-empty table at
    // reduced scale without tripping any internal assertion.
    CpiModel &model = sharedModel();
    TpiModel &tpi = sharedTpi();
    EXPECT_GT(experiments::table2(model).rowCount(), 0u);
    EXPECT_GT(experiments::table3(model).rowCount(), 0u);
    EXPECT_GT(experiments::table4(model).rowCount(), 0u);
    EXPECT_GT(experiments::table5(model).rowCount(), 0u);
    EXPECT_GT(experiments::table6().rowCount(), 0u);
    EXPECT_GT(experiments::fig6(model).rowCount(), 0u);
    EXPECT_GT(experiments::fig7(model).rowCount(), 0u);
    EXPECT_GT(experiments::fig9(tpi).rowCount(), 0u);
    EXPECT_GT(experiments::fig11(model).rowCount(), 0u);
    EXPECT_GT(experiments::optimizerTrajectory(tpi).rowCount(), 0u);
}

TEST(ExperimentsTest, Table6AnchorsHold)
{
    const auto t = experiments::table6();
    EXPECT_EQ(t.rowCount(), 6u);
    // Direct anchors on the timing model itself.
    timing::CpuTimingParams params;
    EXPECT_GT(timing::sideCycleNs(params, {32, 0}), 10.0);
    EXPECT_NEAR(timing::sideCycleNs(params, {32, 3}), 3.5, 0.05);
}

} // namespace
} // namespace pipecache::core
