/**
 * @file
 * Property-based tests: parameterized sweeps asserting invariants
 * across the design space rather than specific values.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.hh"
#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "sched/branch_sched.hh"
#include "timing/cpu_circuit.hh"
#include "trace/benchmark.hh"
#include "util/random.hh"

namespace pipecache {
namespace {

// ----------------------------------------------------- cache properties

/** (sizeBytes, blockBytes, assoc) */
using CacheShape = std::tuple<std::uint64_t, std::uint32_t,
                              std::uint32_t>;

class CacheProperty : public ::testing::TestWithParam<CacheShape>
{
  protected:
    cache::CacheConfig config() const
    {
        cache::CacheConfig c;
        std::tie(c.sizeBytes, c.blockBytes, c.assoc) = GetParam();
        return c;
    }

    /** A reproducible pseudo-random reference stream. */
    std::vector<Addr> stream(std::size_t n, std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<Addr> addrs;
        addrs.reserve(n);
        Addr cursor = 0x1000;
        for (std::size_t i = 0; i < n; ++i) {
            // Mix of sequential runs and jumps for realistic reuse.
            if (rng.nextBool(0.7))
                cursor += 4;
            else
                cursor = static_cast<Addr>(rng.nextRange(1 << 16)) * 4;
            addrs.push_back(cursor);
        }
        return addrs;
    }
};

TEST_P(CacheProperty, HitAfterAccessUntilEviction)
{
    cache::Cache c(config());
    for (Addr a : stream(2000, 1)) {
        c.access(a, false);
        EXPECT_TRUE(c.contains(a));
    }
}

TEST_P(CacheProperty, StatsAreConserved)
{
    cache::Cache c(config());
    std::size_t accesses = 0;
    Rng rng(2);
    for (Addr a : stream(3000, 3)) {
        c.access(a, rng.nextBool(0.3));
        ++accesses;
    }
    const auto &s = c.stats();
    EXPECT_EQ(s.accesses(), accesses);
    EXPECT_LE(s.misses(), s.accesses());
    EXPECT_LE(s.dirtyEvictions, s.evictions);
    // Evictions can never exceed fills (i.e., misses that allocate).
    EXPECT_LE(s.evictions, s.misses());
}

TEST_P(CacheProperty, BlockGranularity)
{
    cache::Cache c(config());
    const std::uint32_t block = config().blockBytes;
    c.access(0x8000, false);
    // Everything in the same block hits; the next block does not.
    EXPECT_TRUE(c.contains(0x8000 + block - 1));
    EXPECT_FALSE(c.contains(0x8000 + block));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheProperty,
    ::testing::Values(CacheShape{1024, 16, 1}, CacheShape{4096, 16, 1},
                      CacheShape{4096, 32, 2}, CacheShape{8192, 64, 4},
                      CacheShape{16384, 16, 4},
                      CacheShape{4096, 16, 256 / 16 * 16}));

/** Miss count is monotonically non-increasing in cache size for a
 *  fixed stream — checked over several streams (LRU inclusion). */
class CacheSizeMonotonic : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheSizeMonotonic, MissesShrinkWithSize)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    std::vector<std::pair<Addr, bool>> stream;
    Addr cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.nextBool(0.6))
            cursor += 4;
        else
            cursor = static_cast<Addr>(rng.nextRange(1 << 14)) * 4;
        stream.push_back({cursor, rng.nextBool(0.25)});
    }

    Counter prev_misses = ~0ULL;
    for (std::uint64_t kb : {1, 2, 4, 8, 16, 32}) {
        cache::CacheConfig config;
        config.sizeBytes = kb * 1024;
        config.blockBytes = 16;
        config.assoc = config.sizeBytes / config.blockBytes; // fully assoc
        cache::Cache c(config);
        for (auto [a, w] : stream)
            c.access(a, w);
        // LRU inclusion property: a bigger fully-associative LRU cache
        // never misses more.
        EXPECT_LE(c.stats().misses(), prev_misses);
        prev_misses = c.stats().misses();
    }
}

INSTANTIATE_TEST_SUITE_P(Streams, CacheSizeMonotonic,
                         ::testing::Values(11, 22, 33, 44));

// ----------------------------------------- translation-file properties

class XlatProperty
    : public ::testing::TestWithParam<std::tuple<const char *,
                                                 std::uint32_t>>
{
};

TEST_P(XlatProperty, StructuralInvariants)
{
    const auto [name, slots] = GetParam();
    const auto &bench = trace::findBenchmark(name);
    const auto prog = bench.makeProgram(0);
    const auto xlat = sched::scheduleBranchDelays(prog, slots);

    Addr expected_entry = prog.base();
    for (isa::BlockId b = 0; b < prog.numBlocks(); ++b) {
        const auto &bx = xlat[b];
        const auto &bb = prog.block(b);

        // Layout is contiguous and gap-free.
        EXPECT_EQ(bx.entry, expected_entry);
        expected_entry += bx.schedLen * bytesPerWord;

        EXPECT_EQ(bx.usefulLen, bb.size());
        EXPECT_EQ(bx.hasCti != 0, bb.hasCti());
        if (!bb.hasCti()) {
            EXPECT_EQ(bx.schedLen, bx.usefulLen);
            continue;
        }
        // r + s = b; only predicted-taken and indirect CTIs grow code.
        EXPECT_EQ(bx.r + bx.s, slots);
        EXPECT_LE(bx.r, bb.size() - 1);
        if (bx.predictTaken || bx.indirect)
            EXPECT_EQ(bx.schedLen, bx.usefulLen + bx.s);
        else
            EXPECT_EQ(bx.schedLen, bx.usefulLen);
        // Indirect flag only on jr/jalr terminators.
        EXPECT_EQ(bx.indirect != 0,
                  isIndirectJump(bb.cti().op));
    }
}

TEST_P(XlatProperty, ExpansionBoundedBySlotsTimesCtis)
{
    const auto [name, slots] = GetParam();
    const auto &bench = trace::findBenchmark(name);
    const auto prog = bench.makeProgram(0);
    const auto xlat = sched::scheduleBranchDelays(prog, slots);
    const double max_expansion =
        static_cast<double>(slots * prog.staticCtiCount()) /
        static_cast<double>(prog.staticInstCount());
    EXPECT_LE(xlat.codeExpansion(), max_expansion + 1e-12);
    EXPECT_GE(xlat.codeExpansion(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SuiteBySlots, XlatProperty,
    ::testing::Combine(::testing::Values("small", "gcc", "matrix500",
                                         "yacc"),
                       ::testing::Values(0u, 1u, 2u, 3u)));

// ------------------------------------------------- timing properties

class TimingProperty
    : public ::testing::TestWithParam<std::uint32_t> // size KW
{
};

TEST_P(TimingProperty, DepthMonotonicAndBounded)
{
    const std::uint32_t kw = GetParam();
    timing::CpuTimingParams params;
    double prev = 1e12;
    for (std::uint32_t d = 0; d <= 4; ++d) {
        const double t = timing::sideCycleNs(params, {kw, d});
        EXPECT_GE(t, params.aluLoopNs() - 1e-6);
        EXPECT_LE(t, prev + 1e-9);
        prev = t;
    }
}

TEST_P(TimingProperty, SizeMonotonicAtFixedDepth)
{
    timing::CpuTimingParams params;
    const std::uint32_t kw = GetParam();
    for (std::uint32_t d = 0; d <= 3; ++d) {
        EXPECT_LE(timing::sideCycleNs(params, {kw, d}),
                  timing::sideCycleNs(params, {kw * 2, d}) + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TimingProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// ----------------------------------------------- engine-level properties

struct EngineCase
{
    std::uint32_t branchSlots;
    std::uint32_t loadSlots;
    std::uint32_t sizeKW;
    cpusim::BranchScheme scheme;
};

class EngineProperty : public ::testing::TestWithParam<EngineCase>
{
  protected:
    static core::CpiModel &model()
    {
        static core::CpiModel instance = [] {
            core::SuiteConfig config;
            config.scaleDivisor = 10000.0;
            config.quantum = 5000;
            config.benchmarks = {"small", "espresso"};
            return core::CpiModel(config);
        }();
        return instance;
    }
};

TEST_P(EngineProperty, BreakdownInvariants)
{
    const auto param = GetParam();
    core::DesignPoint p;
    p.branchSlots = param.branchSlots;
    p.loadSlots = param.loadSlots;
    p.l1iSizeKW = param.sizeKW;
    p.l1dSizeKW = param.sizeKW;
    p.branchScheme = param.scheme;

    const auto &res = model().evaluate(p);
    const auto &agg = res.aggregate;

    // Useful instructions never depend on the design point.
    Counter insts = 0;
    for (std::size_t i = 0; i < model().numBenchmarks(); ++i)
        insts += model().traceOf(i).instCount;
    EXPECT_EQ(agg.usefulInsts, insts);

    // Fetch accounting.
    EXPECT_GE(agg.fetches, agg.usefulInsts);
    if (param.scheme == cpusim::BranchScheme::Squash) {
        EXPECT_EQ(agg.fetches,
                  agg.usefulInsts + agg.branchWastedFetches);
        EXPECT_EQ(agg.btbPenaltyCycles, 0u);
    } else {
        EXPECT_EQ(agg.fetches, agg.usefulInsts);
        EXPECT_EQ(agg.branchWastedFetches, 0u);
    }

    // Zero slots -> zero branch/load penalties.
    if (param.branchSlots == 0) {
        EXPECT_EQ(agg.branchWastedFetches, 0u);
        if (param.scheme == cpusim::BranchScheme::Btb) {
            // Even the BTB only pays the 1-cycle fill stall.
            EXPECT_LE(agg.btbPenaltyCycles, agg.ctis);
        }
    }
    if (param.loadSlots == 0) {
        EXPECT_EQ(agg.loadStallCycles, 0u);
    }

    // CPI is at least 1 and finite.
    EXPECT_GE(agg.cpi(), 1.0);
    EXPECT_LT(agg.cpi(), 10.0);

    // I-cache access count: one probe per fetch.
    EXPECT_EQ(res.l1i.accesses(), agg.fetches);
    // Stall cycles = misses * flat penalty.
    EXPECT_EQ(agg.iStallCycles, res.l1i.misses() * 10);
    EXPECT_EQ(agg.dStallCycles, res.l1d.misses() * 10);
}

TEST_P(EngineProperty, MoreSlotsNeverReduceCpi)
{
    const auto param = GetParam();
    if (param.branchSlots == 0 || param.scheme != cpusim::BranchScheme::Squash)
        GTEST_SKIP();
    core::DesignPoint lo;
    lo.branchSlots = param.branchSlots - 1;
    lo.loadSlots = param.loadSlots;
    lo.l1iSizeKW = param.sizeKW;
    lo.l1dSizeKW = param.sizeKW;
    core::DesignPoint hi = lo;
    hi.branchSlots = param.branchSlots;
    // Small tolerance: the scheduled code layout changes with b, so
    // conflict misses can shift slightly in either direction.
    EXPECT_GE(model().evaluate(hi).cpi(),
              model().evaluate(lo).cpi() - 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineProperty,
    ::testing::Values(
        EngineCase{0, 0, 4, cpusim::BranchScheme::Squash},
        EngineCase{1, 1, 4, cpusim::BranchScheme::Squash},
        EngineCase{2, 2, 2, cpusim::BranchScheme::Squash},
        EngineCase{3, 3, 8, cpusim::BranchScheme::Squash},
        EngineCase{3, 0, 1, cpusim::BranchScheme::Squash},
        EngineCase{0, 3, 1, cpusim::BranchScheme::Squash},
        EngineCase{1, 1, 4, cpusim::BranchScheme::Btb},
        EngineCase{2, 2, 2, cpusim::BranchScheme::Btb},
        EngineCase{3, 3, 8, cpusim::BranchScheme::Btb}));

// ------------------------------------------------ generator properties

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorProperty, EveryProgramValidatesAndExecutes)
{
    isa::GenProfile prof;
    prof.seed = GetParam();
    prof.staticInsts = 2500;
    const auto prog = isa::generateProgram(prof);
    prog.validate();

    trace::DataGenConfig dconfig;
    dconfig.seed = GetParam();
    trace::DataAddressGenerator dgen(dconfig);
    trace::ExecConfig econfig;
    econfig.maxInsts = 30000;
    econfig.seed = GetParam() * 3 + 1;
    const auto trace = recordTrace(prog, dgen, econfig);
    EXPECT_GE(trace.instCount, econfig.maxInsts);

    // Block events reference valid blocks; mem refs point at memory
    // instructions.
    for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
        const auto &bb = prog.block(trace.blocks[i].block);
        const auto [begin, end] = trace.memRange(i);
        for (std::uint32_t m = begin; m < end; ++m) {
            ASSERT_LT(trace.memRefs[m].pos, bb.size());
            const auto &inst = bb.insts[trace.memRefs[m].pos];
            EXPECT_TRUE(isMem(inst.op));
            EXPECT_EQ(trace.memRefs[m].store != 0, isStore(inst.op));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace pipecache
