/**
 * @file
 * Tests for the observability layer: stats-registry aggregation across
 * threads, histogram bucket edges, the deterministic/volatile dump
 * split, sweep-stats thread-count invariance, trace JSON validity with
 * balanced spans, and concurrent logging against sink swaps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.hh"
#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "sweep/sweep_engine.hh"
#include "util/logging.hh"

namespace pipecache::obs {
namespace {

std::string
dumpString(const StatsRegistry &reg, bool include_volatile = false)
{
    DumpOptions opts;
    opts.includeVolatile = include_volatile;
    std::ostringstream os;
    reg.dumpJson(os, opts);
    return os.str();
}

TEST(StatsRegistryTest, CounterAggregatesAcrossThreads)
{
    StatsRegistry reg;
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 1000;

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg]() {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                reg.addCounter("test.events", "events",
                               StatKind::Deterministic);
            }
            reg.addCounter("test.batch", "batched delta",
                           StatKind::Deterministic, 10);
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(reg.counterValue("test.events"), kThreads * kPerThread);
    EXPECT_EQ(reg.counterValue("test.batch"), kThreads * 10);
    EXPECT_EQ(reg.counterValue("test.never_registered"), 0u);
}

TEST(StatsRegistryTest, HistogramBucketEdgesAndOverflow)
{
    StatsRegistry reg;
    // 4 exact buckets [0..3]; 4 and above land in overflow.
    reg.sampleHistogram("test.hist", "h", StatKind::Deterministic, 4, 0);
    reg.sampleHistogram("test.hist", "h", StatKind::Deterministic, 4, 3,
                        2);
    reg.sampleHistogram("test.hist", "h", StatKind::Deterministic, 4, 4);
    reg.sampleHistogram("test.hist", "h", StatKind::Deterministic, 4,
                        1000);

    const Histogram h = reg.histogramValue("test.hist");
    ASSERT_EQ(h.bucketCount(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 5u);

    // Merging a util Histogram folds bucket-for-bucket.
    Histogram extra(4);
    extra.sample(3, 5);
    reg.mergeHistogram("test.hist", "h", StatKind::Deterministic, extra);
    EXPECT_EQ(reg.histogramValue("test.hist").bucket(3), 7u);
}

TEST(StatsRegistryTest, VolatileSeparatedFromDeterministic)
{
    StatsRegistry reg;
    reg.addCounter("det.counter", "d", StatKind::Deterministic, 7);
    reg.addCounter("vol.counter", "v", StatKind::Volatile, 9);
    reg.addScalar("vol.scalar", "w", StatKind::Volatile, 1.5);

    const std::string det_only = dumpString(reg, false);
    EXPECT_NE(det_only.find("\"det.counter\": 7"), std::string::npos);
    EXPECT_EQ(det_only.find("vol.counter"), std::string::npos);
    EXPECT_EQ(det_only.find("\"volatile\""), std::string::npos);

    const std::string both = dumpString(reg, true);
    EXPECT_NE(both.find("\"vol.counter\": 9"), std::string::npos);
    EXPECT_NE(both.find("\"vol.scalar\": 1.5"), std::string::npos);

    reg.reset();
    EXPECT_EQ(reg.counterValue("det.counter"), 0u);
    // Registered names survive a reset (they re-dump as zeros).
    EXPECT_NE(dumpString(reg).find("\"det.counter\": 0"),
              std::string::npos);
}

core::SuiteConfig
tinySuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0; // floor: 20k insts per benchmark
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

std::vector<core::DesignPoint>
smallGrid()
{
    std::vector<core::DesignPoint> points;
    for (std::uint32_t kw : {1u, 2u, 4u}) {
        for (std::uint32_t b = 0; b <= 3; ++b) {
            core::DesignPoint p;
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            p.loadSlots = 0;
            points.push_back(p);
        }
    }
    return points;
}

TEST(ObsSweepTest, DeterministicStatsIdenticalAcrossThreadCounts)
{
    const auto points = smallGrid();

    std::vector<std::string> dumps;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        StatsRegistry::global().reset();
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        sweep::SweepOptions opts;
        opts.threads = threads;
        opts.grain = 1;
        sweep::SweepEngine engine(tpi, opts);
        engine.sweep(points);
        dumps.push_back(dumpString(StatsRegistry::global()));
    }

    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);

    // The instrumented layers all reported in.
    const std::string &dump = dumps[0];
    for (const char *name :
         {"cache.l1i.reads", "cache.l1d.read_misses", "cpusim.fetches",
          "cpusim.branch.ctis", "cpusim.load.e_static",
          "sweep.memo.misses", "sweep.points.evaluated",
          "pool.tasks_run"}) {
        EXPECT_NE(dump.find(name), std::string::npos) << name;
    }
}

/**
 * Minimal recursive-descent JSON checker — accepts exactly the JSON
 * value grammar, so a malformed trace fails the test without a JSON
 * library dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool string()
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool members(char close, bool with_keys)
    {
        ++pos_; // opening bracket
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == close) {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (with_keys) {
                if (!string())
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return false;
                ++pos_;
            }
            if (!value())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == close) {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return members('}', true);
          case '[':
            return members(']', false);
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** One parsed trace event (just the fields the nesting check needs). */
struct SpanEvent
{
    std::uint64_t tid;
    double ts;
    double dur;
};

/** Pull "key": <number> out of one event line. */
double
numberField(const std::string &line, const std::string &key)
{
    const auto at = line.find("\"" + key + "\": ");
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    return std::stod(line.substr(at + key.size() + 4));
}

TEST(TracerTest, TraceIsValidJsonWithBalancedSpans)
{
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.enable();

    {
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        sweep::SweepOptions opts;
        opts.threads = 4;
        opts.grain = 2;
        sweep::SweepEngine engine(tpi, opts);
        engine.sweep(smallGrid());
    }
    tracer.disable();

    std::ostringstream os;
    tracer.write(os);
    const std::string json = os.str();
    tracer.clear();

    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"sweep.prepare\""), std::string::npos);
    EXPECT_NE(json.find("\"sweep.chunk\""), std::string::npos);
    EXPECT_NE(json.find("\"sweep.point\""), std::string::npos);
    // Per-point args carry the design-point coordinates.
    EXPECT_NE(json.find("\"l1i_kw\""), std::string::npos);

    // Collect the complete events (one per line by construction).
    std::vector<SpanEvent> events;
    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\": \"X\"") == std::string::npos)
            continue;
        SpanEvent e;
        e.tid = static_cast<std::uint64_t>(numberField(line, "tid"));
        e.ts = numberField(line, "ts");
        e.dur = numberField(line, "dur");
        EXPECT_GE(e.dur, 0.0);
        events.push_back(e);
    }
    // 12 unique points in 6 chunks plus one prepare span.
    EXPECT_EQ(events.size(), 12u + 6u + 1u);

    // Spans on one thread come from nested scopes, so any two either
    // nest or are disjoint — partial overlap means a lost/torn span.
    for (std::size_t i = 0; i < events.size(); ++i) {
        for (std::size_t j = i + 1; j < events.size(); ++j) {
            const SpanEvent &a = events[i];
            const SpanEvent &b = events[j];
            if (a.tid != b.tid)
                continue;
            const double a_end = a.ts + a.dur;
            const double b_end = b.ts + b.dur;
            const bool disjoint = a_end <= b.ts || b_end <= a.ts;
            const bool a_in_b = b.ts <= a.ts && a_end <= b_end;
            const bool b_in_a = a.ts <= b.ts && b_end <= a_end;
            EXPECT_TRUE(disjoint || a_in_b || b_in_a)
                << "partial overlap on tid " << a.tid;
        }
    }
}

/** Capture sinks for the logging stress test (LogSink is a plain
 *  function pointer, so the capture target is file-scope state). */
std::mutex g_capture_mutex;
std::vector<std::string> g_captured;

void
captureSinkA(const std::string &line)
{
    std::lock_guard<std::mutex> lock(g_capture_mutex);
    g_captured.push_back(line);
}

void
captureSinkB(const std::string &line)
{
    std::lock_guard<std::mutex> lock(g_capture_mutex);
    g_captured.push_back(line);
}

TEST(LoggingTest, ConcurrentWarnAndSinkSwapNoTearing)
{
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 200;

    {
        std::lock_guard<std::mutex> lock(g_capture_mutex);
        g_captured.clear();
    }
    setLogSink(&captureSinkA);

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([t]() {
            for (std::size_t i = 0; i < kIters; ++i) {
                warn("w thread=", t, " iter=", i);
                inform("i thread=", t, " iter=", i);
            }
        });
    }
    // Swap between the two capture sinks while the writers hammer.
    for (int swap = 0; swap < 100; ++swap)
        setLogSink(swap % 2 == 0 ? &captureSinkB : &captureSinkA);
    for (auto &thread : threads)
        thread.join();
    setLogSink(nullptr);

    std::lock_guard<std::mutex> lock(g_capture_mutex);
    ASSERT_EQ(g_captured.size(), kThreads * kIters * 2);
    for (const std::string &line : g_captured) {
        const bool ok = line.compare(0, 14, "warn: w thread") == 0 ||
                        line.compare(0, 14, "info: i thread") == 0;
        EXPECT_TRUE(ok) << "torn line: " << line;
    }
}

} // namespace
} // namespace pipecache::obs
