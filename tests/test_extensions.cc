/**
 * @file
 * Tests for the extension features: profile-guided static prediction,
 * the write-through write buffer, and associativity-aware timing.
 */

#include <gtest/gtest.h>

#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "cpusim/write_buffer.hh"
#include "sched/profile_predict.hh"
#include "timing/cpu_circuit.hh"
#include "trace/benchmark.hh"

namespace pipecache {
namespace {

// ------------------------------------------------- profile prediction

class ProfilePredictTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto &bench = trace::findBenchmark("espresso");
        prog_ = bench.makeProgram(0);
        trace::DataAddressGenerator dgen(bench.dataConfig(0));
        trace::ExecConfig config;
        config.maxInsts = 80000;
        trace_ = recordTrace(prog_, dgen, config);
    }

    isa::Program prog_;
    trace::RecordedTrace trace_;
};

TEST_F(ProfilePredictTest, CollectsCountsOnlyForBranches)
{
    const auto profile = sched::collectBranchProfile(prog_, trace_);
    std::uint64_t total = 0;
    for (isa::BlockId b = 0; b < prog_.numBlocks(); ++b) {
        if (prog_.block(b).term != isa::TermKind::CondBranch) {
            EXPECT_EQ(profile.executions(b), 0u);
        }
        total += profile.executions(b);
    }
    // Every executed conditional branch was recorded.
    std::uint64_t expected = 0;
    for (const auto &ev : trace_.blocks)
        expected += prog_.block(ev.block).term ==
                    isa::TermKind::CondBranch;
    EXPECT_EQ(total, expected);
    EXPECT_GT(total, 1000u);
}

TEST_F(ProfilePredictTest, MajorityRuleAndFallback)
{
    sched::BranchProfileData profile(prog_.numBlocks());
    // Find a forward conditional branch (BTFNT says not-taken).
    isa::BlockId fwd = isa::invalidBlock;
    for (isa::BlockId b = 0; b < prog_.numBlocks(); ++b) {
        const auto &bb = prog_.block(b);
        if (bb.term == isa::TermKind::CondBranch && bb.target > b) {
            fwd = b;
            break;
        }
    }
    ASSERT_NE(fwd, isa::invalidBlock);

    // Untrained: falls back to BTFNT (not-taken for forward).
    EXPECT_EQ(profile.predict(prog_, fwd),
              sched::Prediction::NotTaken);
    // Mostly taken in training: profile flips the prediction.
    profile.record(fwd, true);
    profile.record(fwd, true);
    profile.record(fwd, false);
    EXPECT_EQ(profile.predict(prog_, fwd), sched::Prediction::Taken);
}

TEST_F(ProfilePredictTest, SelfAccuracyBeatsBtfnt)
{
    const auto profile = sched::collectBranchProfile(prog_, trace_);
    // Majority-direction self-accuracy is optimal for any static rule:
    // compare with BTFNT on the same trace.
    std::uint64_t btfnt_right = 0;
    std::uint64_t total = 0;
    for (const auto &ev : trace_.blocks) {
        const auto &bb = prog_.block(ev.block);
        if (bb.term != isa::TermKind::CondBranch)
            continue;
        const bool pred_taken =
            sched::predictStatic(bb, ev.block) ==
            sched::Prediction::Taken;
        btfnt_right += pred_taken == (ev.taken != 0);
        ++total;
    }
    EXPECT_GE(profile.selfAccuracy() + 1e-12,
              static_cast<double>(btfnt_right) /
                  static_cast<double>(total));
    EXPECT_GT(profile.selfAccuracy(), 0.7);
}

TEST_F(ProfilePredictTest, ScheduledLayoutsStayConsistent)
{
    const auto profile = sched::collectBranchProfile(prog_, trace_);
    const auto xlat =
        sched::scheduleBranchDelaysProfiled(prog_, 2, profile);
    ASSERT_EQ(xlat.numBlocks(), prog_.numBlocks());
    Addr addr = prog_.base();
    for (isa::BlockId b = 0; b < prog_.numBlocks(); ++b) {
        EXPECT_EQ(xlat[b].entry, addr);
        addr += xlat[b].schedLen * bytesPerWord;
        if (xlat[b].hasCti) {
            EXPECT_EQ(xlat[b].r + xlat[b].s, 2u);
        }
    }
}

TEST(ProfilePredictModelTest, ProfileLowersBranchCpi)
{
    core::SuiteConfig suite;
    suite.scaleDivisor = 8000.0;
    suite.benchmarks = {"espresso", "small", "yacc"};
    core::CpiModel model(suite);

    core::DesignPoint btfnt;
    btfnt.branchSlots = 2;
    core::DesignPoint prof = btfnt;
    prof.predictSource = sched::PredictSource::Profile;

    // Self-trained profiles dominate BTFNT on the same trace.
    EXPECT_LT(model.evaluate(prof).aggregate.branchCpi(),
              model.evaluate(btfnt).aggregate.branchCpi());
}

// ---------------------------------------------------- write buffer

TEST(WriteBufferTest, AbsorbsUpToCapacity)
{
    cpusim::WriteBuffer buf({.entries = 2, .drainCycles = 10});
    EXPECT_EQ(buf.store(0), 0u); // drains at 10
    EXPECT_EQ(buf.store(0), 0u); // drains at 20
    // Full: must wait for the first entry (completes at 10).
    EXPECT_EQ(buf.store(0), 10u);
    EXPECT_EQ(buf.stats().fullEvents, 1u);
    EXPECT_EQ(buf.stats().stallCycles, 10u);
}

TEST(WriteBufferTest, DrainsOverTime)
{
    cpusim::WriteBuffer buf({.entries = 2, .drainCycles = 5});
    buf.store(0);   // completes at 5
    buf.store(0);   // completes at 10
    EXPECT_EQ(buf.occupancy(4), 2u);
    EXPECT_EQ(buf.occupancy(7), 1u);
    EXPECT_EQ(buf.store(100), 0u); // long idle: buffer empty again
    EXPECT_EQ(buf.stats().stallCycles, 0u);
}

TEST(WriteBufferTest, SerializedDrainPort)
{
    cpusim::WriteBuffer buf({.entries = 8, .drainCycles = 4});
    // Burst of 4 stores at t=0: completions 4, 8, 12, 16.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(buf.store(0), 0u);
    EXPECT_EQ(buf.occupancy(9), 2u);  // two still draining
    EXPECT_EQ(buf.occupancy(16), 0u);
}

TEST(WriteBufferTest, SaturatedStreamStallsAtDrainRate)
{
    cpusim::WriteBuffer buf({.entries = 2, .drainCycles = 10});
    std::uint64_t now = 0;
    Counter total_stall = 0;
    for (int i = 0; i < 100; ++i) {
        const auto stall = buf.store(now);
        total_stall += stall;
        now += stall + 1; // back-to-back stores
    }
    // Steady state: one store per drain period.
    EXPECT_NEAR(static_cast<double>(total_stall) / 100.0, 9.0, 1.0);
}

TEST(WriteBufferModelTest, BufferRemovesStoreMissStalls)
{
    core::SuiteConfig suite;
    suite.scaleDivisor = 8000.0;
    suite.benchmarks = {"linpack", "tex"};
    core::CpiModel model(suite);

    core::DesignPoint base;
    base.l1dSizeKW = 2;
    core::DesignPoint buffered = base;
    buffered.writeThroughBuffer = true;
    buffered.writeBufferConfig.entries = 8;
    buffered.writeBufferConfig.drainCycles = 2;

    const double d_base = model.evaluate(base).aggregate.dMissCpi();
    const double d_buf =
        model.evaluate(buffered).aggregate.dMissCpi();
    EXPECT_LT(d_buf, d_base);
}

// -------------------------------------------------------- seed salt

TEST(SeedSaltTest, SaltsProduceIndependentInstancesSameShape)
{
    const auto &bench = trace::findBenchmark("small");
    const auto p0 = bench.makeProgram(0, 0);
    const auto p1 = bench.makeProgram(0, 1);
    // Different programs...
    EXPECT_NE(p0.disassemble(), p1.disassemble());
    // ...with the same calibration character (static size within 2x).
    const double ratio =
        static_cast<double>(p0.staticInstCount()) /
        static_cast<double>(p1.staticInstCount());
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
    // Salt 0 is the default instance.
    EXPECT_EQ(p0.disassemble(), bench.makeProgram(0).disassemble());
}

TEST(SeedSaltTest, ModelConclusionsStableAcrossSalts)
{
    // A coarse design ordering that must hold for any instance:
    // pipelined 16KW beats unpipelined 1KW on TPI.
    for (const std::uint64_t salt : {0u, 5u}) {
        core::SuiteConfig suite;
        suite.scaleDivisor = 8000.0;
        suite.benchmarks = {"small", "espresso", "linpack"};
        suite.seedSalt = salt;
        core::CpiModel cpi(suite);
        core::TpiModel tpi(cpi);

        core::DesignPoint weak;
        weak.branchSlots = 0;
        weak.loadSlots = 0;
        weak.l1iSizeKW = 1;
        weak.l1dSizeKW = 1;
        core::DesignPoint strong;
        strong.branchSlots = 3;
        strong.loadSlots = 3;
        strong.l1iSizeKW = 16;
        strong.l1dSizeKW = 16;
        EXPECT_LT(tpi.evaluate(strong).tpiNs,
                  0.6 * tpi.evaluate(weak).tpiNs)
            << "salt=" << salt;
    }
}

// ------------------------------------------------ associativity timing

TEST(AssocTimingTest, AssociativityCostsAccessTime)
{
    timing::CpuTimingParams params;
    const double direct = timing::sideCycleNs(params, {8, 1, 1});
    const double two_way = timing::sideCycleNs(params, {8, 1, 2});
    const double four_way = timing::sideCycleNs(params, {8, 1, 4});
    EXPECT_GT(two_way, direct);
    EXPECT_GT(four_way, two_way);
    // One assocLevelNs per doubling, spread over depth+1 = 2 stages.
    EXPECT_NEAR(two_way - direct, params.assocLevelNs / 2.0, 1e-2);
}

TEST(AssocTimingTest, DeepPipelineHidesAssociativity)
{
    timing::CpuTimingParams params;
    // At depth 3 the ALU loop binds for small caches regardless of
    // associativity.
    EXPECT_NEAR(timing::sideCycleNs(params, {4, 3, 4}),
                params.aluLoopNs(), 0.05);
    // At depth 1 the same change is fully visible: two doublings of
    // associativity over a 2-latch loop = 2 * 0.5 / 2 ns.
    EXPECT_NEAR(timing::sideCycleNs(params, {4, 1, 4}) -
                    timing::sideCycleNs(params, {4, 1, 1}),
                params.assocLevelNs, 0.02);
}

TEST(AssocTimingTest, TpiModelPassesAssocThrough)
{
    core::SuiteConfig suite;
    suite.scaleDivisor = 8000.0;
    suite.benchmarks = {"small"};
    core::CpiModel cpi(suite);
    core::TpiModel tpi(cpi);

    core::DesignPoint p;
    p.branchSlots = 1;
    p.loadSlots = 1;
    core::DesignPoint p4 = p;
    p4.assoc = 4;
    EXPECT_GT(tpi.evaluate(p4).tCpuNs, tpi.evaluate(p).tCpuNs);
    // Associativity lowers the miss rate even as it slows the clock.
    EXPECT_LE(cpi.evaluate(p4).l1d.missRate(),
              cpi.evaluate(p).l1d.missRate() + 0.01);
}

} // namespace
} // namespace pipecache
