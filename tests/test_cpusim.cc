/**
 * @file
 * Unit tests for cpusim/: squash resolution, load-scheme stalls, and
 * the CPI engine on hand-built workloads with exactly computable
 * cycle counts.
 */

#include <gtest/gtest.h>

#include "cpusim/branch_model.hh"
#include "cpusim/cpi_engine.hh"
#include "cpusim/load_model.hh"
#include "sched/branch_sched.hh"
#include "trace/benchmark.hh"

namespace pipecache::cpusim {
namespace {

using isa::AddrClass;
using isa::BasicBlock;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::TermKind;
namespace reg = isa::reg;

// ----------------------------------------------------------- squash model

sched::BlockXlat
xlatFor(bool pred_taken, bool indirect, std::uint8_t r, std::uint8_t s)
{
    sched::BlockXlat bx;
    bx.hasCti = 1;
    bx.predictTaken = pred_taken ? 1 : 0;
    bx.indirect = indirect ? 1 : 0;
    bx.r = r;
    bx.s = s;
    bx.usefulLen = 6;
    bx.schedLen = 6 + ((pred_taken || indirect) ? s : 0);
    return bx;
}

TEST(SquashModelTest, PredictedTakenAndTakenSkipsReplicas)
{
    const auto bx = xlatFor(true, false, 1, 2);
    const auto out = resolveSquash(bx, TermKind::CondBranch, true,
                                   /*target_useful=*/8,
                                   /*target_has_cti=*/true);
    EXPECT_EQ(out.skipNext, 2u);
    EXPECT_EQ(out.wastedSlots, 0u);
    EXPECT_EQ(out.extraSeqFetches, 0u);
}

TEST(SquashModelTest, ShortTargetPadsWithNoops)
{
    const auto bx = xlatFor(true, false, 0, 3);
    // Target has 2 useful instructions, one of which is its CTI: only
    // 1 replica possible, 2 slots are noops.
    const auto out =
        resolveSquash(bx, TermKind::CondBranch, true, 2, true);
    EXPECT_EQ(out.skipNext, 1u);
    EXPECT_EQ(out.wastedSlots, 2u);
}

TEST(SquashModelTest, PredictedTakenNotTakenSquashesAll)
{
    const auto bx = xlatFor(true, false, 1, 2);
    const auto out =
        resolveSquash(bx, TermKind::CondBranch, false, 8, true);
    EXPECT_EQ(out.skipNext, 0u);
    EXPECT_EQ(out.wastedSlots, 2u);
    EXPECT_EQ(out.extraSeqFetches, 0u);
}

TEST(SquashModelTest, PredictedNotTakenCorrectIsFree)
{
    const auto bx = xlatFor(false, false, 0, 3);
    const auto out =
        resolveSquash(bx, TermKind::CondBranch, false, 8, true);
    EXPECT_EQ(out.skipNext, 0u);
    EXPECT_EQ(out.wastedSlots, 0u);
    EXPECT_EQ(out.extraSeqFetches, 0u);
}

TEST(SquashModelTest, PredictedNotTakenButTakenFetchesSequential)
{
    const auto bx = xlatFor(false, false, 1, 2);
    const auto out =
        resolveSquash(bx, TermKind::CondBranch, true, 8, true);
    EXPECT_EQ(out.extraSeqFetches, 2u);
    EXPECT_EQ(out.wastedSlots, 0u);
    EXPECT_EQ(out.skipNext, 0u);
}

TEST(SquashModelTest, IndirectAlwaysWastesNoops)
{
    const auto bx = xlatFor(true, true, 1, 2);
    const auto out = resolveSquash(bx, TermKind::Return, true, 0, false);
    EXPECT_EQ(out.wastedSlots, 2u);
    EXPECT_EQ(out.skipNext, 0u);
}

TEST(SquashModelTest, JumpBehavesLikeCorrectTaken)
{
    const auto bx = xlatFor(true, false, 0, 2);
    const auto out = resolveSquash(bx, TermKind::Jump, true, 10, true);
    EXPECT_EQ(out.skipNext, 2u);
    EXPECT_EQ(out.wastedSlots, 0u);
}

TEST(SquashModelTest, ZeroSlotsNeverCosts)
{
    const auto bx = xlatFor(true, false, 0, 0);
    for (bool taken : {false, true}) {
        const auto out =
            resolveSquash(bx, TermKind::CondBranch, taken, 8, true);
        EXPECT_EQ(out.wastedSlots + out.extraSeqFetches + out.skipNext,
                  0u);
    }
}

// -------------------------------------------------------------- load model

TEST(LoadModelTest, SchemeDispatch)
{
    sched::LoadDelayStats stats;
    stats.eStatic.sample(0);
    stats.eDynamic.sample(3);
    stats.consumedLoads = 1;
    stats.deadLoads = 1;

    EXPECT_EQ(loadStallCycles(stats, 2, LoadScheme::Static), 2u);
    EXPECT_EQ(loadStallCycles(stats, 2, LoadScheme::Dynamic), 0u);
    EXPECT_EQ(loadStallCycles(stats, 2, LoadScheme::None), 4u);
    EXPECT_EQ(loadStallCycles(stats, 0, LoadScheme::None), 0u);
}

// -------------------------------------------------------------- cpi engine

/**
 * Hand-built workload with exact expected counts:
 *   B0: 3 ALUs + backward branch to itself (trips from profile)
 *   B1: return
 */
struct TinyWorkload
{
    Program prog;
    trace::RecordedTrace trace;
    sched::TranslationFile xlat{0, 0};

    explicit TinyWorkload(std::uint32_t slots, double mean_trip = 4.0)
        : xlat(0, 0)
    {
        BasicBlock b0;
        b0.insts.push_back(
            Instruction::makeAlu(Opcode::ADDU, 8, 9, 10));
        b0.insts.push_back(
            Instruction::makeLoad(11, reg::gp, 0, AddrClass::Global));
        b0.insts.push_back(
            Instruction::makeAlu(Opcode::SLT, 12, 11, 10));
        b0.insts.push_back(Instruction::makeBranch(Opcode::BNE, 12, 0));
        b0.term = TermKind::CondBranch;
        b0.target = 0;
        b0.fallthrough = 1;
        b0.profile.backward = true;
        b0.profile.meanTrip = mean_trip;
        prog.addBlock(std::move(b0));

        BasicBlock b1;
        b1.insts.push_back(
            Instruction::makeJumpRegister(Opcode::JR, reg::ra));
        b1.term = TermKind::Return;
        prog.addBlock(std::move(b1));
        prog.layout();
        prog.validate();

        trace::DataGenConfig dconfig;
        dconfig.seed = 3;
        trace::DataAddressGenerator dgen(dconfig);
        trace::ExecConfig econfig;
        econfig.maxInsts = 4000;
        econfig.seed = 7;
        trace = trace::recordTrace(prog, dgen, econfig);

        xlat = sched::scheduleBranchDelays(prog, slots);
    }
};

cache::HierarchyConfig
bigCaches()
{
    cache::HierarchyConfig config;
    config.l1i.sizeBytes = 1 << 20;
    config.l1d.sizeBytes = 1 << 20;
    config.flatPenalty = 10;
    return config;
}

TEST(CpiEngineTest, ZeroSlotPerfectCacheGivesUnitCpi)
{
    TinyWorkload w(0);
    cache::CacheHierarchy hierarchy(bigCaches());
    EngineConfig config; // b = 0, l = 0
    CpiEngine engine(config, hierarchy,
                     {{&w.prog, &w.xlat, &w.trace}});
    engine.runAll();
    const auto agg = engine.aggregate();

    EXPECT_EQ(agg.usefulInsts, w.trace.instCount);
    EXPECT_EQ(agg.fetches, agg.usefulInsts);
    EXPECT_EQ(agg.branchWastedFetches, 0u);
    EXPECT_EQ(agg.loadStallCycles, 0u);
    // Only compulsory misses in the 1MB caches.
    EXPECT_LT(agg.iMissCpi(), 0.02);
    EXPECT_NEAR(agg.cpi(), 1.0, 0.05);
}

TEST(CpiEngineTest, BranchWasteMatchesHandCount)
{
    // B0's branch is fed by the SLT: r=0, s=b. Backward -> predicted
    // taken. Taken executions skip into B0 itself (replicas of B0's
    // own start); the final not-taken execution squashes s fetches;
    // the jr wastes s noops.
    TinyWorkload w(2);
    cache::CacheHierarchy hierarchy(bigCaches());
    EngineConfig config;
    config.branchSlots = 2;
    CpiEngine engine(config, hierarchy,
                     {{&w.prog, &w.xlat, &w.trace}});
    engine.runAll();
    const auto agg = engine.aggregate();

    // Count outcomes from the trace itself.
    Counter taken = 0;
    Counter not_taken = 0;
    Counter returns = 0;
    for (const auto &ev : w.trace.blocks) {
        if (ev.block == 0) {
            ++(ev.taken ? taken : not_taken);
        } else {
            ++returns;
        }
    }
    // Predicted-taken & taken: replicas skip into the target (B0,
    // useful 4, has CTI -> replicable 3 >= s=2): no waste.
    // Predicted-taken & not-taken: waste 2. Return: waste 2 noops.
    EXPECT_EQ(agg.branchWastedFetches, 2 * not_taken + 2 * returns);
    // Total fetches = useful + wasted (replica skips cancel out).
    EXPECT_EQ(agg.fetches, agg.usefulInsts + agg.branchWastedFetches);
}

TEST(CpiEngineTest, MissPenaltyScalesIStalls)
{
    TinyWorkload w(0);
    for (std::uint32_t penalty : {6u, 18u}) {
        auto hc = bigCaches();
        hc.l1i.sizeBytes = 256; // tiny: misses guaranteed
        hc.flatPenalty = penalty;
        cache::CacheHierarchy hierarchy(hc);
        EngineConfig config;
        CpiEngine engine(config, hierarchy,
                         {{&w.prog, &w.xlat, &w.trace}});
        engine.runAll();
        const auto agg = engine.aggregate();
        EXPECT_EQ(agg.iStallCycles,
                  hierarchy.l1i().stats().misses() * penalty);
    }
}

TEST(CpiEngineTest, LoadSlotsAddStalls)
{
    // The load's consumer (SLT) is 0 instructions after it: with the
    // gp address register never written, e_dyn = overflow but
    // e_static = min(c_bb=1, ...) + 0 = 1. So l=3 static stalls
    // 3-1=2 cycles per load; dynamic stalls none.
    TinyWorkload w(0);
    cache::CacheHierarchy h1(bigCaches());
    EngineConfig static_config;
    static_config.loadSlots = 3;
    static_config.loadScheme = LoadScheme::Static;
    CpiEngine static_engine(static_config, h1,
                            {{&w.prog, &w.xlat, &w.trace}});
    static_engine.runAll();

    cache::CacheHierarchy h2(bigCaches());
    EngineConfig dyn_config;
    dyn_config.loadSlots = 3;
    dyn_config.loadScheme = LoadScheme::Dynamic;
    CpiEngine dyn_engine(dyn_config, h2,
                         {{&w.prog, &w.xlat, &w.trace}});
    dyn_engine.runAll();

    const Counter loads = static_engine.loadStats(0).totalLoads();
    EXPECT_GT(loads, 500u);
    EXPECT_EQ(static_engine.aggregate().loadStallCycles, 2 * loads);
    EXPECT_EQ(dyn_engine.aggregate().loadStallCycles, 0u);
}

TEST(CpiEngineTest, BtbSchemeUsesIdentityLayoutAndPenalties)
{
    TinyWorkload w(0); // identity translation for BTB
    cache::CacheHierarchy hierarchy(bigCaches());
    EngineConfig config;
    config.branchSlots = 2;
    config.branchScheme = BranchScheme::Btb;
    config.btb.entries = 64;
    CpiEngine engine(config, hierarchy,
                     {{&w.prog, &w.xlat, &w.trace}});
    engine.runAll();
    const auto agg = engine.aggregate();
    ASSERT_NE(engine.btb(), nullptr);
    const auto &bstats = engine.btb()->stats();

    EXPECT_EQ(agg.fetches, agg.usefulInsts);
    EXPECT_EQ(agg.branchWastedFetches, 0u);
    // Every penalty is (b+1) cycles.
    EXPECT_EQ(agg.btbPenaltyCycles, 3 * bstats.mispredicts());
    EXPECT_EQ(bstats.lookups, agg.ctis);
    // The loop branch is strongly biased: the BTB should predict well.
    EXPECT_GT(static_cast<double>(bstats.correct) /
                  static_cast<double>(bstats.lookups),
              0.5);
}

TEST(CpiEngineTest, MultiprogramSharesCaches)
{
    const auto &bench = trace::findBenchmark("small");
    const auto p0 = bench.makeProgram(0);
    const auto p1 = bench.makeProgram(1);
    trace::DataAddressGenerator d0(bench.dataConfig(0));
    trace::DataAddressGenerator d1(bench.dataConfig(1));
    trace::ExecConfig econfig;
    econfig.maxInsts = 20000;
    const auto t0 = trace::recordTrace(p0, d0, econfig);
    const auto t1 = trace::recordTrace(p1, d1, econfig);
    const auto x0 = sched::scheduleBranchDelays(p0, 0);
    const auto x1 = sched::scheduleBranchDelays(p1, 0);

    cache::HierarchyConfig hc;
    hc.l1i.sizeBytes = 4096;
    hc.l1d.sizeBytes = 4096;
    hc.flatPenalty = 10;

    // Run the two processes interleaved with a small quantum, then
    // back-to-back; interleaving must cause at least as many L1-I
    // misses (context-switch interference).
    trace::MultiprogSchedule sched({&t0, &t1}, {&p0, &p1}, 1000);

    cache::CacheHierarchy h_inter(hc);
    CpiEngine inter({}, h_inter,
                    {{&p0, &x0, &t0}, {&p1, &x1, &t1}});
    inter.run(sched);

    cache::CacheHierarchy h_seq(hc);
    CpiEngine seq({}, h_seq, {{&p0, &x0, &t0}, {&p1, &x1, &t1}});
    seq.runAll();

    EXPECT_EQ(inter.aggregate().usefulInsts,
              seq.aggregate().usefulInsts);
    EXPECT_GE(h_inter.l1i().stats().misses() + 64,
              h_seq.l1i().stats().misses());
}

TEST(CpiEngineTest, BreakdownComponentsSumToCpi)
{
    TinyWorkload w(2);
    auto hc = bigCaches();
    hc.l1i.sizeBytes = 1024;
    hc.l1d.sizeBytes = 1024;
    cache::CacheHierarchy hierarchy(hc);
    EngineConfig config;
    config.branchSlots = 2;
    config.loadSlots = 2;
    CpiEngine engine(config, hierarchy,
                     {{&w.prog, &w.xlat, &w.trace}});
    engine.runAll();
    const auto agg = engine.aggregate();

    const double parts = 1.0 +
                         static_cast<double>(agg.branchWastedFetches) /
                             static_cast<double>(agg.usefulInsts) +
                         agg.iMissCpi() + agg.dMissCpi() +
                         agg.loadCpi();
    EXPECT_NEAR(agg.cpi(), parts, 1e-9);
}

} // namespace
} // namespace pipecache::cpusim
