/**
 * @file
 * Unit tests for sched/: static prediction, the delay-slot
 * post-processor and translation files, and load-delay analysis.
 */

#include <gtest/gtest.h>

#include "isa/program_generator.hh"
#include "sched/branch_sched.hh"
#include "sched/load_sched.hh"
#include "sched/static_predict.hh"
#include "sched/translation.hh"
#include "trace/benchmark.hh"
#include "trace/executor.hh"
#include "util/logging.hh"

namespace pipecache::sched {
namespace {

using isa::AddrClass;
using isa::BasicBlock;
using isa::BlockId;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::TermKind;
namespace reg = isa::reg;

/**
 * Hand-built four-block program:
 *   B0: alu alu alu beq->B2 (forward, predicted not-taken)
 *   B1: alu slt bne->B0     (backward, condition fed, predicted taken)
 *   B2: alu alu j->B3       (jump, always taken)
 *   B3: alu jr ra           (return, indirect)
 */
Program
handProgram()
{
    Program prog;

    BasicBlock b0;
    b0.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 9, 10));
    b0.insts.push_back(Instruction::makeAlu(Opcode::SUBU, 11, 12, 13));
    b0.insts.push_back(Instruction::makeAlu(Opcode::XOR, 14, 15, 16));
    b0.insts.push_back(Instruction::makeBranch(Opcode::BEQ, 24, 25));
    b0.term = TermKind::CondBranch;
    b0.target = 2;
    b0.fallthrough = 1;
    prog.addBlock(std::move(b0));

    BasicBlock b1;
    b1.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 10, 11));
    b1.insts.push_back(Instruction::makeAlu(Opcode::SLT, 8, 9, 10));
    b1.insts.push_back(Instruction::makeBranch(Opcode::BNE, 8, 0));
    b1.term = TermKind::CondBranch;
    b1.target = 0;
    b1.fallthrough = 2;
    b1.profile.backward = true;
    b1.profile.meanTrip = 4.0;
    prog.addBlock(std::move(b1));

    BasicBlock b2;
    b2.insts.push_back(Instruction::makeAlu(Opcode::AND, 8, 9, 10));
    b2.insts.push_back(Instruction::makeAlu(Opcode::OR, 11, 12, 13));
    b2.insts.push_back(Instruction::makeJump(Opcode::J));
    b2.term = TermKind::Jump;
    b2.target = 3;
    prog.addBlock(std::move(b2));

    BasicBlock b3;
    b3.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 9, 10));
    b3.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b3.term = TermKind::Return;
    prog.addBlock(std::move(b3));

    prog.layout();
    prog.validate();
    return prog;
}

// -------------------------------------------------------- static predict

TEST(StaticPredictTest, Btfnt)
{
    const Program prog = handProgram();
    EXPECT_EQ(predictStatic(prog.block(0), 0), Prediction::NotTaken);
    EXPECT_EQ(predictStatic(prog.block(1), 1), Prediction::Taken);
    EXPECT_EQ(predictStatic(prog.block(2), 2), Prediction::Taken);
    EXPECT_EQ(predictStatic(prog.block(3), 3), Prediction::Taken);
    EXPECT_FALSE(isBackwardBranch(prog.block(0), 0));
    EXPECT_TRUE(isBackwardBranch(prog.block(1), 1));
}

// ---------------------------------------------------------- branch sched

TEST(BranchSchedTest, ZeroSlotsIsIdentity)
{
    const Program prog = handProgram();
    const TranslationFile xlat = scheduleBranchDelays(prog, 0);
    EXPECT_EQ(xlat.delaySlots(), 0u);
    EXPECT_DOUBLE_EQ(xlat.codeExpansion(), 0.0);
    for (BlockId b = 0; b < prog.numBlocks(); ++b) {
        EXPECT_EQ(xlat[b].schedLen, xlat[b].usefulLen);
        EXPECT_EQ(xlat[b].r, 0u);
        EXPECT_EQ(xlat[b].s, 0u);
        EXPECT_EQ(xlat[b].entry, prog.blockAddr(b));
    }
}

TEST(BranchSchedTest, HoistingAndFillers)
{
    const Program prog = handProgram();
    const TranslationFile xlat = scheduleBranchDelays(prog, 2);

    // B0's branch reads r24/r25; all three ALUs are independent, so
    // both slots fill from before (r = 2, s = 0); predicted not-taken
    // means no layout growth either way.
    EXPECT_EQ(xlat[0].r, 2u);
    EXPECT_EQ(xlat[0].s, 0u);
    EXPECT_EQ(xlat[0].predictTaken, 0u);
    EXPECT_EQ(xlat[0].schedLen, 4u);

    // B1's branch is fed by the SLT directly before it: r = 0, s = 2;
    // predicted taken -> 2 replicas appended.
    EXPECT_EQ(xlat[1].r, 0u);
    EXPECT_EQ(xlat[1].s, 2u);
    EXPECT_EQ(xlat[1].predictTaken, 1u);
    EXPECT_EQ(xlat[1].schedLen, 3u + 2u);

    // B2's jump has no operands: hoists over both ALUs.
    EXPECT_EQ(xlat[2].r, 2u);
    EXPECT_EQ(xlat[2].schedLen, 3u);

    // B3's jr reads ra; the ALU before it does not touch ra, so one
    // slot fills from before and one noop is appended.
    EXPECT_EQ(xlat[3].indirect, 1u);
    EXPECT_EQ(xlat[3].r, 1u);
    EXPECT_EQ(xlat[3].s, 1u);
    EXPECT_EQ(xlat[3].schedLen, 2u + 1u);
}

TEST(BranchSchedTest, EntriesAreContiguousInScheduledLayout)
{
    const Program prog = handProgram();
    const TranslationFile xlat = scheduleBranchDelays(prog, 3);
    Addr addr = prog.base();
    for (BlockId b = 0; b < prog.numBlocks(); ++b) {
        EXPECT_EQ(xlat[b].entry, addr);
        addr += xlat[b].schedLen * bytesPerWord;
    }
}

TEST(BranchSchedTest, ExpansionMonotonicInSlots)
{
    const auto &bench = trace::findBenchmark("espresso");
    const Program prog = bench.makeProgram(0);
    double prev = 0.0;
    for (std::uint32_t b = 0; b <= 3; ++b) {
        const TranslationFile xlat = scheduleBranchDelays(prog, b);
        const double exp = xlat.codeExpansion();
        EXPECT_GE(exp, prev);
        prev = exp;
    }
    EXPECT_GT(prev, 0.05); // 3 slots cost real code size
    EXPECT_LT(prev, 0.40);
}

TEST(BranchSchedTest, SummaryCountsAreConsistent)
{
    const auto &bench = trace::findBenchmark("small");
    const Program prog = bench.makeProgram(0);
    const TranslationFile xlat = scheduleBranchDelays(prog, 2);
    const ScheduleStats stats = summarize(xlat);
    EXPECT_EQ(stats.ctis, prog.staticCtiCount());
    EXPECT_LE(stats.predictedTaken, stats.ctis);
    EXPECT_LE(stats.indirect, stats.ctis);
    EXPECT_LE(stats.firstSlotFromBefore, stats.ctis);
    // r + s = b for every CTI.
    EXPECT_EQ(stats.slotsFromBefore + stats.slotsFromElsewhere,
              2 * stats.ctis);
}

TEST(BranchSchedTest, RPlusSEqualsSlotsPerCti)
{
    const Program prog = handProgram();
    for (std::uint32_t b = 1; b <= 3; ++b) {
        const TranslationFile xlat = scheduleBranchDelays(prog, b);
        for (BlockId id = 0; id < prog.numBlocks(); ++id) {
            if (!xlat[id].hasCti)
                continue;
            EXPECT_EQ(xlat[id].r + xlat[id].s, b);
        }
    }
}

// ------------------------------------------------------------ load sched

TEST(LoadSchedTest, TracksSimpleChain)
{
    // One block: load (addr reg gp, never written) then an immediate
    // consumer.
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    b0.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 8, 10));
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    prog.addBlock(std::move(b0));
    prog.layout();

    LoadUseTracker tracker(prog);
    tracker.processBlock(0);
    tracker.finish();
    const auto &stats = tracker.stats();
    EXPECT_EQ(stats.consumedLoads, 1u);
    EXPECT_EQ(stats.deadLoads, 0u);
    // d = 0, c unbounded (gp never written): e_dyn = overflow.
    EXPECT_EQ(stats.eDynamic.overflow(), 1u);
    // Statically: load at position 0 cannot hoist, consumer adjacent:
    // e_bb = 0.
    EXPECT_EQ(stats.eStatic.bucket(0), 1u);
}

TEST(LoadSchedTest, AddressDefSetsC)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 20, 9, 10));
    b0.insts.push_back(Instruction::makeAlu(Opcode::XOR, 11, 12, 13));
    b0.insts.push_back(
        Instruction::makeLoad(8, 20, 0, AddrClass::Array));
    b0.insts.push_back(Instruction::makeAlu(Opcode::SUBU, 14, 8, 13));
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    prog.addBlock(std::move(b0));
    prog.layout();

    LoadUseTracker tracker(prog);
    tracker.processBlock(0);
    tracker.finish();
    const auto &stats = tracker.stats();
    // c_dyn = 1 (the XOR sits between def and load), d_dyn = 0.
    EXPECT_EQ(stats.eDynamic.bucket(1), 1u);
    EXPECT_EQ(stats.eStatic.bucket(1), 1u);
}

TEST(LoadSchedTest, DeadLoadWhenOverwritten)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    b0.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 9, 10));
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    prog.addBlock(std::move(b0));
    prog.layout();

    LoadUseTracker tracker(prog);
    tracker.processBlock(0);
    tracker.finish();
    EXPECT_EQ(tracker.stats().deadLoads, 1u);
    EXPECT_EQ(tracker.stats().consumedLoads, 0u);
}

TEST(LoadSchedTest, CrossBlockUseClipsStaticD)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    b0.term = TermKind::FallThrough;
    b0.fallthrough = 1;
    prog.addBlock(std::move(b0));

    BasicBlock b1;
    b1.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 11, 12, 13));
    b1.insts.push_back(Instruction::makeAlu(Opcode::SUBU, 14, 8, 13));
    b1.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b1.term = TermKind::Return;
    prog.addBlock(std::move(b1));
    prog.layout();

    LoadUseTracker tracker(prog);
    tracker.processBlock(0);
    tracker.processBlock(1);
    tracker.finish();
    const auto &stats = tracker.stats();
    // Dynamic d = 1; static d clipped to 0 (block ends after load).
    EXPECT_EQ(stats.eStatic.bucket(0), 1u);
}

TEST(LoadSchedTest, DelayCyclesFormula)
{
    LoadDelayStats stats;
    // Three consumed loads with e_static = 0, 1, 5.
    stats.eStatic.sample(0);
    stats.eStatic.sample(1);
    stats.eStatic.sample(5);
    stats.eDynamic.sample(5);
    stats.eDynamic.sample(5);
    stats.eDynamic.sample(5);
    stats.consumedLoads = 3;
    stats.deadLoads = 1;

    // l=2 static: max(0,2-0)+max(0,2-1)+0 = 3 cycles over 4 loads.
    EXPECT_EQ(stats.totalDelayCycles(2, false), 3u);
    EXPECT_DOUBLE_EQ(stats.delayCyclesPerLoad(2, false), 0.75);
    EXPECT_EQ(stats.totalDelayCycles(2, true), 0u);
    EXPECT_EQ(stats.totalDelayCycles(0, false), 0u);
}

TEST(LoadSchedTest, StaticNeverBeatsDynamic)
{
    const auto &bench = trace::findBenchmark("espresso");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig config;
    config.maxInsts = 60000;
    const auto trace = recordTrace(prog, dgen, config);

    const LoadDelayStats stats = analyzeLoadDelays(prog, trace);
    EXPECT_GT(stats.totalLoads(), 5000u);
    for (std::uint32_t l = 1; l <= 3; ++l) {
        EXPECT_GE(stats.delayCyclesPerLoad(l, false),
                  stats.delayCyclesPerLoad(l, true))
            << "static scheduling cannot hide more than dynamic, l="
            << l;
    }
}

TEST(LoadSchedTest, MergeAccumulates)
{
    LoadDelayStats a;
    a.eStatic.sample(1);
    a.eDynamic.sample(4);
    a.consumedLoads = 1;

    LoadDelayStats b;
    b.eStatic.sample(2);
    b.eDynamic.sample(2);
    b.consumedLoads = 1;
    b.deadLoads = 2;

    a.merge(b);
    EXPECT_EQ(a.totalLoads(), 4u);
    EXPECT_EQ(a.eStatic.count(), 2u);
    EXPECT_EQ(a.eDynamic.bucket(2), 1u);
}

} // namespace
} // namespace pipecache::sched
