/**
 * @file
 * Tests for the cycle-accurate pipeline simulator, including exact
 * hand-computed schedules and cross-validation against the additive
 * CPI engine.
 */

#include <gtest/gtest.h>

#include "cpusim/cpi_engine.hh"
#include "cpusim/pipeline_sim.hh"
#include "sched/branch_sched.hh"
#include "trace/benchmark.hh"

namespace pipecache::cpusim {
namespace {

using isa::AddrClass;
using isa::BasicBlock;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::TermKind;
namespace reg = isa::reg;

cache::HierarchyConfig
perfectCaches()
{
    cache::HierarchyConfig config;
    config.l1i.sizeBytes = 1 << 20;
    config.l1d.sizeBytes = 1 << 20;
    config.flatPenalty = 10;
    return config;
}

/** One straight block then return; instruction list provided. */
struct StraightWorkload
{
    Program prog;
    trace::RecordedTrace trace;
    sched::TranslationFile xlat{0, 0};

    StraightWorkload(std::vector<Instruction> insts,
                     std::uint32_t slots)
        : xlat(0, 0)
    {
        BasicBlock b0;
        b0.insts = std::move(insts);
        b0.term = TermKind::FallThrough;
        b0.fallthrough = 1;
        prog.addBlock(std::move(b0));
        BasicBlock b1;
        b1.insts.push_back(
            Instruction::makeJumpRegister(Opcode::JR, reg::ra));
        b1.term = TermKind::Return;
        prog.addBlock(std::move(b1));
        prog.layout();
        prog.validate();

        trace::DataGenConfig dc;
        trace::DataAddressGenerator dgen(dc);
        trace::ExecConfig ec;
        ec.maxInsts = 1; // exactly one pass: B0 then B1 (ret restarts)
        trace = trace::recordTrace(prog, dgen, ec);

        xlat = sched::scheduleBranchDelays(prog, slots);
    }
};

TEST(PipelineSimTest, BackToBackAluRunsAtOneIpc)
{
    std::vector<Instruction> insts;
    for (int i = 0; i < 8; ++i) {
        insts.push_back(Instruction::makeAlu(
            Opcode::ADDU, static_cast<isa::Reg>(8 + (i % 4)), 9, 10));
    }
    StraightWorkload w(std::move(insts), 0);
    cache::CacheHierarchy hierarchy(perfectCaches());
    PipelineSim sim({0, 0}, hierarchy, w.prog, w.xlat, w.trace);
    const auto &s = sim.run();

    // Cycles = instructions + compulsory I-miss stalls.
    EXPECT_EQ(s.cycles, s.usefulInsts + s.iMissCycles);
    EXPECT_EQ(s.loadInterlockCycles, 0u);
}

TEST(PipelineSimTest, DependentAluChainStillOneIpc)
{
    // ALU results forward to the next cycle: a dependent chain does
    // not stall a single-issue machine.
    std::vector<Instruction> insts;
    for (int i = 0; i < 8; ++i)
        insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 8, 9));
    StraightWorkload w(std::move(insts), 0);
    cache::CacheHierarchy hierarchy(perfectCaches());
    PipelineSim sim({0, 0}, hierarchy, w.prog, w.xlat, w.trace);
    const auto &s = sim.run();
    EXPECT_EQ(s.loadInterlockCycles, 0u);
}

TEST(PipelineSimTest, LoadUseInterlockCostsExactly)
{
    // lw r8; addu r9 <- r8: with l load slots the consumer waits
    // exactly l cycles.
    for (std::uint32_t l = 0; l <= 3; ++l) {
        std::vector<Instruction> insts;
        insts.push_back(
            Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
        insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 8, 10));
        StraightWorkload w(std::move(insts), 0);
        cache::CacheHierarchy hierarchy(perfectCaches());
        PipelineSim sim({0, l}, hierarchy, w.prog, w.xlat, w.trace);
        const auto &s = sim.run();
        EXPECT_EQ(s.loadInterlockCycles, l) << "l=" << l;
    }
}

TEST(PipelineSimTest, IndependentWorkHidesLoadDelay)
{
    // lw r8; three independent ALUs; consumer: fully hidden at l <= 3.
    std::vector<Instruction> insts;
    insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    insts.push_back(Instruction::makeAlu(Opcode::ADDU, 11, 12, 13));
    insts.push_back(Instruction::makeAlu(Opcode::SUBU, 14, 12, 13));
    insts.push_back(Instruction::makeAlu(Opcode::XOR, 15, 12, 13));
    insts.push_back(Instruction::makeAlu(Opcode::AND, 9, 8, 10));
    StraightWorkload w(std::move(insts), 0);
    cache::CacheHierarchy hierarchy(perfectCaches());
    PipelineSim sim({0, 3}, hierarchy, w.prog, w.xlat, w.trace);
    EXPECT_EQ(sim.run().loadInterlockCycles, 0u);
}

TEST(PipelineSimTest, DMissBlocksThePipeline)
{
    std::vector<Instruction> insts;
    insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    insts.push_back(Instruction::makeAlu(Opcode::ADDU, 11, 12, 13));
    StraightWorkload w(std::move(insts), 0);

    auto hc = perfectCaches();
    hc.flatPenalty = 10;
    cache::CacheHierarchy hierarchy(hc);
    PipelineSim sim({0, 0}, hierarchy, w.prog, w.xlat, w.trace);
    const auto &s = sim.run();
    // The single compulsory D-miss adds exactly 10 cycles.
    EXPECT_EQ(s.dMissCycles, 10u);
    EXPECT_EQ(s.cycles, s.usefulInsts + s.iMissCycles + 10u);
}

TEST(PipelineSimTest, IssueSlotsMatchEngineFetches)
{
    // Fetch-slot accounting (useful + wasted) must agree exactly with
    // the additive engine on the same workload.
    const auto &bench = trace::findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 30000;
    const auto trace = recordTrace(prog, dgen, ec);

    for (std::uint32_t b : {0u, 2u, 3u}) {
        const auto xlat = sched::scheduleBranchDelays(prog, b);

        cache::CacheHierarchy h1(perfectCaches());
        EngineConfig ec2;
        ec2.branchSlots = b;
        CpiEngine engine(ec2, h1, {{&prog, &xlat, &trace}});
        engine.runAll();
        const auto agg = engine.aggregate();

        cache::CacheHierarchy h2(perfectCaches());
        PipelineSim sim({b, 0}, h2, prog, xlat, trace);
        const auto &s = sim.run();

        EXPECT_EQ(s.usefulInsts, agg.usefulInsts) << "b=" << b;
        // The engine charges replicas of a never-executed final
        // target as waste; the pipeline neither issues nor wastes
        // them — at most b slots of slack at the end of the trace.
        EXPECT_LE(s.issueSlots, agg.fetches) << "b=" << b;
        EXPECT_LE(agg.fetches - s.issueSlots, b) << "b=" << b;
        EXPECT_LE(s.branchWasteSlots, agg.branchWastedFetches)
            << "b=" << b;
        EXPECT_LE(agg.branchWastedFetches - s.branchWasteSlots, b)
            << "b=" << b;
        // I-probe streams are identical, so miss cycles agree.
        EXPECT_EQ(s.iMissCycles, agg.iStallCycles) << "b=" << b;
    }
}

TEST(PipelineSimTest, CpiBracketedByAdditiveSchemes)
{
    // The interlocked pipeline hides load delay with the *dynamic*
    // distance of unscheduled code: its CPI must lie between the
    // additive engine's dynamic (lower) and no-scheduling (upper)
    // policies, and stall overlap can only lower it further.
    const auto &bench = trace::findBenchmark("espresso");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 60000;
    const auto trace = recordTrace(prog, dgen, ec);
    const auto xlat = sched::scheduleBranchDelays(prog, 2);

    auto run_engine = [&](LoadScheme scheme) {
        cache::CacheHierarchy h(perfectCaches());
        EngineConfig config;
        config.branchSlots = 2;
        config.loadSlots = 2;
        config.loadScheme = scheme;
        CpiEngine engine(config, h, {{&prog, &xlat, &trace}});
        engine.runAll();
        return engine.aggregate().cpi();
    };
    const double dynamic_cpi = run_engine(LoadScheme::Dynamic);
    const double none_cpi = run_engine(LoadScheme::None);

    cache::CacheHierarchy h(perfectCaches());
    PipelineSim sim({2, 2}, h, prog, xlat, trace);
    const double pipe_cpi = sim.run().cpi();

    EXPECT_LE(pipe_cpi, none_cpi + 1e-9);
    // Allow a small margin below "dynamic": overlap of I-miss and
    // interlock stalls can shave cycles the additive model counts.
    EXPECT_GE(pipe_cpi, dynamic_cpi - 0.05);
}

} // namespace
} // namespace pipecache::cpusim
