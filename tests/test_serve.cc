/**
 * @file
 * Tests for the sweep service subsystem: protocol parse/format round
 * trips, SweepService admission control and cancellation, the
 * daemon-vs-cold-CLI byte-identity contract (sequential, warm, and
 * under concurrency), the bounded factored component cache, and a
 * socket-level end-to-end pass through SweepServer + SweepClient —
 * including a client that disconnects mid-stream.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "obs/stats_registry.hh"
#include "serve/client.hh"
#include "serve/fd_io.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sweep/result_sink.hh"
#include "sweep/sweep_engine.hh"
#include "util/error.hh"

namespace pipecache::serve {
namespace {

core::SuiteConfig
tinySuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0;
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

std::vector<core::DesignPoint>
smallGrid()
{
    std::vector<core::DesignPoint> points;
    for (std::uint32_t kw : {1u, 2u, 4u}) {
        for (std::uint32_t b = 0; b <= 3; ++b) {
            core::DesignPoint p;
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            p.loadSlots = 0;
            points.push_back(p);
        }
    }
    return points;
}

/** What a cold single-threaded CLI run would print for @p points. */
std::string
coldJson(const core::SuiteConfig &suite,
         const std::vector<core::DesignPoint> &points,
         const std::string &name)
{
    core::CpiModel cpi(suite);
    core::TpiModel tpi(cpi);
    sweep::SweepOptions opts;
    opts.threads = 1;
    sweep::SweepEngine engine(tpi, opts);
    const auto records = engine.sweep(points);
    return sweep::jsonString(name, records, engine.stats());
}

// --- protocol ---------------------------------------------------------

TEST(ServeProtocolTest, ParsesBareVerbs)
{
    EXPECT_EQ(parseRequest("PING").verb, Verb::Ping);
    EXPECT_EQ(parseRequest("STATUS").verb, Verb::Status);
    EXPECT_EQ(parseRequest("SHUTDOWN").verb, Verb::Shutdown);
    EXPECT_EQ(parseRequest("  PING  ").verb, Verb::Ping);
    EXPECT_THROW(parseRequest("PING now"), UsageError);
    EXPECT_THROW(parseRequest(""), UsageError);
    EXPECT_THROW(parseRequest("ping"), UsageError);
    EXPECT_THROW(parseRequest("EVALUATE"), UsageError);
}

TEST(ServeProtocolTest, ParsesSweepKeys)
{
    const Request req = parseRequest(
        "SWEEP scale=500 threads=2 progress=1 factored=0 "
        "b=0:1 isize=1,2");
    ASSERT_EQ(req.verb, Verb::Sweep);
    EXPECT_DOUBLE_EQ(req.sweep.scaleDivisor, 500.0);
    EXPECT_EQ(req.sweep.threads, 2u);
    EXPECT_TRUE(req.sweep.progress);
    EXPECT_FALSE(req.sweep.factored);
    // b in {0,1} x isize in {1,2} x defaults (one d size, one block,
    // one penalty).
    EXPECT_EQ(req.sweep.grid.build().size(), 4u);

    // Defaults: the bare verb is the CLI's default grid.
    const Request bare = parseRequest("SWEEP");
    EXPECT_DOUBLE_EQ(bare.sweep.scaleDivisor, 2000.0);
    EXPECT_EQ(bare.sweep.threads, 0u);
    EXPECT_FALSE(bare.sweep.progress);
    EXPECT_TRUE(bare.sweep.factored);
    EXPECT_EQ(bare.sweep.grid.build(),
              sweep::GridSpec{}.build());
}

TEST(ServeProtocolTest, RejectsMalformedSweeps)
{
    EXPECT_THROW(parseRequest("SWEEP bogus=1"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP noequals"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP scale=nan"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP scale=0.5"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP progress=2"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP b=zero:3"), UsageError);
    // Cross-key validation runs too (preset owns the b axis).
    EXPECT_THROW(parseRequest("SWEEP preset=fig3 b=0:3"), UsageError);
}

TEST(ServeProtocolTest, ErrLineRoundTrip)
{
    const std::string line =
        errLine(ErrorKind::Unavailable, "queue\nfull");
    // oneLine() collapsed the newline: ERR stays one line on the wire.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_THROW(raiseErrLine(line), UnavailableError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Usage, "m")),
                 UsageError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Data, "m")),
                 DataError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Io, "m")), IoError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Interrupted, "m")),
                 InterruptedError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Internal, "m")),
                 InternalError);
    EXPECT_THROW(raiseErrLine("DONE evaluated=3"), IoError);

    try {
        raiseErrLine(errLine(ErrorKind::Unavailable,
                             "admission queue full"));
        FAIL() << "raiseErrLine returned";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Unavailable);
        EXPECT_STREQ(e.what(), "admission queue full");
    }
}

TEST(ServeProtocolTest, SplitKeyValue)
{
    std::string k;
    std::string v;
    ASSERT_TRUE(splitKeyValue("b=0:3", k, v));
    EXPECT_EQ(k, "b");
    EXPECT_EQ(v, "0:3");
    ASSERT_TRUE(splitKeyValue("scale=", k, v));
    EXPECT_EQ(v, "");
    EXPECT_FALSE(splitKeyValue("noequals", k, v));
    EXPECT_FALSE(splitKeyValue("=value", k, v));
}

// --- service ----------------------------------------------------------

TEST(SweepServiceTest, WarmAndConcurrentRequestsStayColdIdentical)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();
    const std::string ref = coldJson(suite, points, "grid");

    ServiceOptions opts;
    opts.threads = 2;
    opts.maxInflight = 2;
    opts.maxQueued = 8;
    opts.componentCacheLimit = 4;
    SweepService service(opts);

    // Four concurrent requests against the same (cold) suite state.
    std::vector<std::string> jsons(4);
    std::vector<std::string> errors(4);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < jsons.size(); ++i) {
        threads.emplace_back([&, i] {
            try {
                jsons[i] =
                    service.runPoints(points, "grid", suite, 0, true)
                        .json;
            } catch (const std::exception &e) {
                errors[i] = e.what();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (std::size_t i = 0; i < jsons.size(); ++i) {
        EXPECT_EQ(errors[i], "") << "request " << i;
        EXPECT_EQ(jsons[i], ref) << "request " << i;
    }

    // A warm follow-up is byte-identical and fully memo-served.
    const SweepResponse warm =
        service.runPoints(points, "grid", suite, 0, true);
    EXPECT_EQ(warm.json, ref);
    EXPECT_EQ(warm.memoHits,
              warm.stats.cacheMisses - warm.stats.pointsFailed);
    EXPECT_GT(warm.memoHits, 0u);

    // Thread budget must not leak into the payload either.
    EXPECT_EQ(service.runPoints(points, "grid", suite, 1, true).json,
              ref);
    EXPECT_EQ(service.runPoints(points, "grid", suite, 4, false).json,
              ref);

    EXPECT_GE(service.requestsAdmitted(), 7u);
}

TEST(SweepServiceTest, AdmissionRejectsWhenFull)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    opts.maxInflight = 1;
    opts.maxQueued = 0;
    SweepService service(opts);

    std::mutex m;
    std::condition_variable cv;
    bool inEval = false;
    bool release = false;

    // Occupy the only slot: the progress callback parks the sweep
    // mid-evaluation until we let it go.
    std::thread holder([&] {
        service.runPoints(
            points, "grid", suite, 1, true,
            [&](std::size_t, std::size_t) {
                std::unique_lock<std::mutex> lock(m);
                inEval = true;
                cv.notify_all();
                cv.wait(lock, [&] { return release; });
            });
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return inEval; });
    }

    try {
        service.runPoints(points, "grid", suite, 1, true);
        FAIL() << "second request was admitted past the queue bound";
    } catch (const UnavailableError &e) {
        EXPECT_NE(std::string(e.what()).find("admission queue full"),
                  std::string::npos);
    }

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    holder.join();

    // The rejection left the service healthy.
    const SweepResponse after =
        service.runPoints(points, "grid", suite, 1, true);
    EXPECT_EQ(after.json, coldJson(suite, points, "grid"));
    EXPECT_NE(service.statusLine().find("rejected=1"),
              std::string::npos);
}

TEST(SweepServiceTest, QueuedRequestHonorsCancel)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    opts.maxInflight = 1;
    opts.maxQueued = 4;
    SweepService service(opts);

    std::mutex m;
    std::condition_variable cv;
    bool inEval = false;
    bool release = false;
    std::thread holder([&] {
        service.runPoints(
            points, "grid", suite, 1, true,
            [&](std::size_t, std::size_t) {
                std::unique_lock<std::mutex> lock(m);
                inEval = true;
                cv.notify_all();
                cv.wait(lock, [&] { return release; });
            });
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return inEval; });
    }

    // The second request queues behind the parked one; its client
    // vanishing (cancel flag) must pull it back out of the queue.
    std::atomic<bool> cancel{false};
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cancel.store(true);
    });
    EXPECT_THROW(service.runPoints(points, "grid", suite, 1, true,
                                   nullptr, &cancel),
                 InterruptedError);
    canceller.join();

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    holder.join();
    EXPECT_NE(service.statusLine().find("cancelled=1"),
              std::string::npos);
}

TEST(SweepServiceTest, DrainRejectsNewRequests)
{
    SweepService service;
    service.beginDrain();
    EXPECT_TRUE(service.draining());
    EXPECT_THROW(service.runPoints(smallGrid(), "grid", tinySuite(),
                                   1, true),
                 UnavailableError);
    EXPECT_NE(service.statusLine().find("draining=1"),
              std::string::npos);
}

TEST(SweepServiceTest, BoundedComponentCacheEvicts)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    opts.componentCacheLimit = 2;
    SweepService service(opts);

    auto &reg = obs::StatsRegistry::global();
    const std::uint64_t before =
        reg.counterValue("sweep.memo_evictions");
    const SweepResponse resp =
        service.runPoints(points, "grid", suite, 1, true);
    const std::uint64_t after =
        reg.counterValue("sweep.memo_evictions");

    // 12 points worth of branch/pass components through a 2-entry
    // cache must evict — and eviction must not bend the payload.
    EXPECT_GT(after, before);
    EXPECT_EQ(resp.json, coldJson(suite, points, "grid"));
}

TEST(SweepServiceTest, EmptyGridIsAUsageError)
{
    SweepService service;
    EXPECT_THROW(service.runPoints({}, "grid", tinySuite(), 1, true),
                 UsageError);
}

// --- server + client (socket end to end) ------------------------------

/** Raw loopback connect, for the abrupt-disconnect test. */
int
rawConnect(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST(SweepServerTest, EndToEndOverTcp)
{
    ServiceOptions sopts;
    sopts.threads = 2;
    sopts.maxInflight = 2;
    SweepService service(sopts);

    ServerOptions opts;
    opts.tcpPort = 0; // ephemeral
    SweepServer server(service, opts);
    server.start();
    ASSERT_GT(server.tcpPort(), 0);
    std::thread loop([&] { server.serve(); });

    const std::string args =
        "scale=10000 threads=1 progress=1 b=0:1 isize=1,2";
    {
        SweepClient client = SweepClient::connectTcp(server.tcpPort());
        EXPECT_EQ(client.command("PING"), "pong");

        // Cold request: payload byte-identical to the cold CLI run of
        // the same grid at the same scale.
        sweep::GridSpec grid;
        grid.set("b", "0:1");
        grid.set("isize", "1,2");
        core::SuiteConfig suite;
        suite.scaleDivisor = 10000.0;
        const std::string ref =
            coldJson(suite, grid.build(), grid.name());

        std::size_t lastDone = 0;
        std::size_t lastTotal = 0;
        const SweepOutcome cold = client.sweep(
            args, [&](std::size_t done, std::size_t total) {
                lastDone = done;
                lastTotal = total;
            });
        EXPECT_EQ(cold.json, ref);
        EXPECT_EQ(cold.points, 4u);
        EXPECT_EQ(cold.failed, 0u);
        EXPECT_EQ(cold.crossHits, 0u);
        EXPECT_EQ(lastDone, lastTotal);
        EXPECT_GT(lastTotal, 0u);

        // Warm request on the same connection: identical bytes, and
        // the DONE line owns up to the cross-request memo hits.
        const SweepOutcome warm = client.sweep(args);
        EXPECT_EQ(warm.json, ref);
        EXPECT_GT(warm.crossHits, 0u);

        // Protocol errors come back typed, and the connection
        // survives them.
        EXPECT_THROW(client.sweep("bogus=1"), UsageError);
        EXPECT_THROW(client.sweep("scale=nan"), UsageError);
        EXPECT_EQ(client.command("PING"), "pong");

        const std::string status = client.command("STATUS");
        EXPECT_NE(status.find("admitted="), std::string::npos);
        EXPECT_NE(status.find("draining=0"), std::string::npos);
    }

    // A client that sends a sweep and slams the connection shut must
    // not take the daemon down (the write failure becomes request
    // cancellation).
    {
        const int fd = rawConnect(server.tcpPort());
        ASSERT_GE(fd, 0);
        FdStream io(fd);
        io.writeLine("SWEEP scale=10000 threads=1 progress=1");
        std::string ack;
        ASSERT_TRUE(io.readLine(ack));
        EXPECT_EQ(ack.rfind("ACK ", 0), 0u) << ack;
        ::close(fd);
    }

    // The daemon still serves after the disconnect.
    {
        SweepClient client = SweepClient::connectTcp(server.tcpPort());
        EXPECT_EQ(client.command("PING"), "pong");
        const SweepOutcome again = client.sweep(args);
        EXPECT_EQ(again.points, 4u);
        EXPECT_EQ(client.command("SHUTDOWN"), "draining");
    }

    loop.join();
    EXPECT_TRUE(service.draining());

    // Drained: the listener is gone.
    EXPECT_LT(rawConnect(server.tcpPort()), 0);
}

} // namespace
} // namespace pipecache::serve
