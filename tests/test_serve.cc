/**
 * @file
 * Tests for the sweep service subsystem: protocol parse/format round
 * trips, SweepService admission control and cancellation, the
 * daemon-vs-cold-CLI byte-identity contract (sequential, warm, and
 * under concurrency), the bounded factored component cache, and a
 * socket-level end-to-end pass through SweepServer + SweepClient —
 * including a client that disconnects mid-stream.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "obs/stats_registry.hh"
#include "serve/client.hh"
#include "serve/fd_io.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sweep/result_sink.hh"
#include "sweep/sweep_engine.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"

namespace pipecache::serve {
namespace {

core::SuiteConfig
tinySuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0;
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

std::vector<core::DesignPoint>
smallGrid()
{
    std::vector<core::DesignPoint> points;
    for (std::uint32_t kw : {1u, 2u, 4u}) {
        for (std::uint32_t b = 0; b <= 3; ++b) {
            core::DesignPoint p;
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            p.loadSlots = 0;
            points.push_back(p);
        }
    }
    return points;
}

/** What a cold single-threaded CLI run would print for @p points. */
std::string
coldJson(const core::SuiteConfig &suite,
         const std::vector<core::DesignPoint> &points,
         const std::string &name)
{
    core::CpiModel cpi(suite);
    core::TpiModel tpi(cpi);
    sweep::SweepOptions opts;
    opts.threads = 1;
    sweep::SweepEngine engine(tpi, opts);
    const auto records = engine.sweep(points);
    return sweep::jsonString(name, records, engine.stats());
}

/** Shorthand for the common thread/factored request shapes. */
RequestOptions
reqOpts(std::size_t threads, bool factored = true)
{
    RequestOptions ro;
    ro.threads = threads;
    ro.factored = factored;
    return ro;
}

// --- protocol ---------------------------------------------------------

TEST(ServeProtocolTest, ParsesBareVerbs)
{
    EXPECT_EQ(parseRequest("PING").verb, Verb::Ping);
    EXPECT_EQ(parseRequest("STATUS").verb, Verb::Status);
    EXPECT_EQ(parseRequest("SHUTDOWN").verb, Verb::Shutdown);
    EXPECT_EQ(parseRequest("  PING  ").verb, Verb::Ping);
    EXPECT_THROW(parseRequest("PING now"), UsageError);
    EXPECT_THROW(parseRequest(""), UsageError);
    EXPECT_THROW(parseRequest("ping"), UsageError);
    EXPECT_THROW(parseRequest("EVALUATE"), UsageError);
}

TEST(ServeProtocolTest, ParsesSweepKeys)
{
    const Request req = parseRequest(
        "SWEEP scale=500 threads=2 progress=1 factored=0 "
        "b=0:1 isize=1,2");
    ASSERT_EQ(req.verb, Verb::Sweep);
    EXPECT_DOUBLE_EQ(req.sweep.scaleDivisor, 500.0);
    EXPECT_EQ(req.sweep.threads, 2u);
    EXPECT_TRUE(req.sweep.progress);
    EXPECT_FALSE(req.sweep.factored);
    // b in {0,1} x isize in {1,2} x defaults (one d size, one block,
    // one penalty).
    EXPECT_EQ(req.sweep.grid.build().size(), 4u);

    // Defaults: the bare verb is the CLI's default grid.
    const Request bare = parseRequest("SWEEP");
    EXPECT_DOUBLE_EQ(bare.sweep.scaleDivisor, 2000.0);
    EXPECT_EQ(bare.sweep.threads, 0u);
    EXPECT_FALSE(bare.sweep.progress);
    EXPECT_TRUE(bare.sweep.factored);
    EXPECT_EQ(bare.sweep.grid.build(),
              sweep::GridSpec{}.build());
}

TEST(ServeProtocolTest, RejectsMalformedSweeps)
{
    EXPECT_THROW(parseRequest("SWEEP bogus=1"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP noequals"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP scale=nan"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP scale=0.5"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP progress=2"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP b=zero:3"), UsageError);
    // Cross-key validation runs too (preset owns the b axis).
    EXPECT_THROW(parseRequest("SWEEP preset=fig3 b=0:3"), UsageError);
}

TEST(ServeProtocolTest, ErrLineRoundTrip)
{
    const std::string line =
        errLine(ErrorKind::Unavailable, "queue\nfull");
    // oneLine() collapsed the newline: ERR stays one line on the wire.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_THROW(raiseErrLine(line), UnavailableError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Usage, "m")),
                 UsageError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Data, "m")),
                 DataError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Io, "m")), IoError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Interrupted, "m")),
                 InterruptedError);
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Internal, "m")),
                 InternalError);
    EXPECT_THROW(raiseErrLine("DONE evaluated=3"), IoError);

    try {
        raiseErrLine(errLine(ErrorKind::Unavailable,
                             "admission queue full"));
        FAIL() << "raiseErrLine returned";
    } catch (const Error &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Unavailable);
        EXPECT_STREQ(e.what(), "admission queue full");
    }
}

TEST(ServeProtocolTest, ParsesDeadline)
{
    EXPECT_EQ(parseRequest("SWEEP").sweep.deadlineMs, 0u);
    EXPECT_EQ(parseRequest("SWEEP deadline_ms=250").sweep.deadlineMs,
              250u);
    EXPECT_EQ(parseRequest("SWEEP deadline_ms=0").sweep.deadlineMs,
              0u);
    EXPECT_THROW(parseRequest("SWEEP deadline_ms=abc"), UsageError);
    EXPECT_THROW(parseRequest("SWEEP deadline_ms=-1"), UsageError);
    // Bounded so int-milliseconds math downstream cannot overflow.
    EXPECT_THROW(parseRequest("SWEEP deadline_ms=2147483649"),
                 UsageError);
}

TEST(ServeProtocolTest, TimeoutKindRoundTrip)
{
    EXPECT_THROW(raiseErrLine(errLine(ErrorKind::Timeout, "m")),
                 TimeoutError);
    EXPECT_EQ(errorKindFromName("timeout"), ErrorKind::Timeout);
    EXPECT_STREQ(errorKindName(ErrorKind::Timeout), "timeout");
    EXPECT_EQ(TimeoutError("m").exitCode(), 7);
}

TEST(ServeProtocolTest, MalformedErrLinesStayTyped)
{
    // A torn or garbled daemon line must surface as a typed IoError,
    // never as a silently-wrong parse.
    EXPECT_THROW(raiseErrLine("ERR"), IoError);
    EXPECT_THROW(raiseErrLine("ERRX usage m"), IoError);
    EXPECT_THROW(raiseErrLine("garbage"), IoError);
    // Unknown kind names (an older client talking to a newer daemon)
    // degrade to InternalError rather than being dropped.
    EXPECT_THROW(raiseErrLine("ERR bogus something broke"),
                 InternalError);
    EXPECT_THROW(raiseErrLine("ERR timeout deadline expired"),
                 TimeoutError);
    // Kind without a message still carries the kind.
    try {
        raiseErrLine("ERR unavailable");
        FAIL() << "raiseErrLine returned";
    } catch (const UnavailableError &e) {
        EXPECT_STREQ(e.what(), "(no message)");
    }
}

TEST(ServeProtocolTest, SplitKeyValue)
{
    std::string k;
    std::string v;
    ASSERT_TRUE(splitKeyValue("b=0:3", k, v));
    EXPECT_EQ(k, "b");
    EXPECT_EQ(v, "0:3");
    ASSERT_TRUE(splitKeyValue("scale=", k, v));
    EXPECT_EQ(v, "");
    EXPECT_FALSE(splitKeyValue("noequals", k, v));
    EXPECT_FALSE(splitKeyValue("=value", k, v));
}

// --- service ----------------------------------------------------------

TEST(SweepServiceTest, WarmAndConcurrentRequestsStayColdIdentical)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();
    const std::string ref = coldJson(suite, points, "grid");

    ServiceOptions opts;
    opts.threads = 2;
    opts.maxInflight = 2;
    opts.maxQueued = 8;
    opts.componentCacheLimit = 4;
    SweepService service(opts);

    // Four concurrent requests against the same (cold) suite state.
    std::vector<std::string> jsons(4);
    std::vector<std::string> errors(4);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < jsons.size(); ++i) {
        threads.emplace_back([&, i] {
            try {
                jsons[i] =
                    service.runPoints(points, "grid", suite).json;
            } catch (const std::exception &e) {
                errors[i] = e.what();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (std::size_t i = 0; i < jsons.size(); ++i) {
        EXPECT_EQ(errors[i], "") << "request " << i;
        EXPECT_EQ(jsons[i], ref) << "request " << i;
    }

    // A warm follow-up is byte-identical and fully memo-served.
    const SweepResponse warm =
        service.runPoints(points, "grid", suite);
    EXPECT_EQ(warm.json, ref);
    EXPECT_EQ(warm.memoHits,
              warm.stats.cacheMisses - warm.stats.pointsFailed);
    EXPECT_GT(warm.memoHits, 0u);

    // Thread budget must not leak into the payload either.
    EXPECT_EQ(
        service.runPoints(points, "grid", suite, reqOpts(1)).json,
        ref);
    EXPECT_EQ(
        service.runPoints(points, "grid", suite, reqOpts(4, false))
            .json,
        ref);

    EXPECT_GE(service.requestsAdmitted(), 7u);
}

TEST(SweepServiceTest, AdmissionRejectsWhenFull)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    opts.maxInflight = 1;
    opts.maxQueued = 0;
    SweepService service(opts);

    std::mutex m;
    std::condition_variable cv;
    bool inEval = false;
    bool release = false;

    // Occupy the only slot: the progress callback parks the sweep
    // mid-evaluation until we let it go.
    std::thread holder([&] {
        RequestOptions ro = reqOpts(1);
        ro.onProgress = [&](std::size_t, std::size_t) {
            std::unique_lock<std::mutex> lock(m);
            inEval = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        };
        service.runPoints(points, "grid", suite, ro);
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return inEval; });
    }

    try {
        service.runPoints(points, "grid", suite, reqOpts(1));
        FAIL() << "second request was admitted past the queue bound";
    } catch (const UnavailableError &e) {
        EXPECT_NE(std::string(e.what()).find("admission queue full"),
                  std::string::npos);
    }

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    holder.join();

    // The rejection left the service healthy.
    const SweepResponse after =
        service.runPoints(points, "grid", suite, reqOpts(1));
    EXPECT_EQ(after.json, coldJson(suite, points, "grid"));
    EXPECT_NE(service.statusLine().find("rejected=1"),
              std::string::npos);
}

TEST(SweepServiceTest, QueuedRequestHonorsCancel)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    opts.maxInflight = 1;
    opts.maxQueued = 4;
    SweepService service(opts);

    std::mutex m;
    std::condition_variable cv;
    bool inEval = false;
    bool release = false;
    std::thread holder([&] {
        RequestOptions ro = reqOpts(1);
        ro.onProgress = [&](std::size_t, std::size_t) {
            std::unique_lock<std::mutex> lock(m);
            inEval = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        };
        service.runPoints(points, "grid", suite, ro);
    });
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return inEval; });
    }

    // The second request queues behind the parked one; its client
    // vanishing (cancel flag) must pull it back out of the queue.
    std::atomic<bool> cancel{false};
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cancel.store(true);
    });
    RequestOptions cancellable = reqOpts(1);
    cancellable.cancel = &cancel;
    EXPECT_THROW(
        service.runPoints(points, "grid", suite, cancellable),
        InterruptedError);
    canceller.join();

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    holder.join();
    EXPECT_NE(service.statusLine().find("cancelled=1"),
              std::string::npos);
}

TEST(SweepServiceTest, DrainRejectsNewRequests)
{
    SweepService service;
    service.beginDrain();
    EXPECT_TRUE(service.draining());
    EXPECT_THROW(service.runPoints(smallGrid(), "grid", tinySuite(),
                                   reqOpts(1)),
                 UnavailableError);
    EXPECT_NE(service.statusLine().find("draining=1"),
              std::string::npos);
}

TEST(SweepServiceTest, BoundedComponentCacheEvicts)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    opts.componentCacheLimit = 2;
    SweepService service(opts);

    auto &reg = obs::StatsRegistry::global();
    const std::uint64_t before =
        reg.counterValue("sweep.memo_evictions");
    const SweepResponse resp =
        service.runPoints(points, "grid", suite, reqOpts(1));
    const std::uint64_t after =
        reg.counterValue("sweep.memo_evictions");

    // 12 points worth of branch/pass components through a 2-entry
    // cache must evict — and eviction must not bend the payload.
    EXPECT_GT(after, before);
    EXPECT_EQ(resp.json, coldJson(suite, points, "grid"));
}

TEST(SweepServiceTest, EmptyGridIsAUsageError)
{
    SweepService service;
    EXPECT_THROW(
        service.runPoints({}, "grid", tinySuite(), reqOpts(1)),
        UsageError);
}

// --- server + client (socket end to end) ------------------------------

/** Raw loopback connect, for the abrupt-disconnect test. */
int
rawConnect(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST(SweepServerTest, EndToEndOverTcp)
{
    ServiceOptions sopts;
    sopts.threads = 2;
    sopts.maxInflight = 2;
    SweepService service(sopts);

    ServerOptions opts;
    opts.tcpPort = 0; // ephemeral
    SweepServer server(service, opts);
    server.start();
    ASSERT_GT(server.tcpPort(), 0);
    std::thread loop([&] { server.serve(); });

    const std::string args =
        "scale=10000 threads=1 progress=1 b=0:1 isize=1,2";
    {
        SweepClient client = SweepClient::connectTcp(server.tcpPort());
        EXPECT_EQ(client.command("PING"), "pong");

        // Cold request: payload byte-identical to the cold CLI run of
        // the same grid at the same scale.
        sweep::GridSpec grid;
        grid.set("b", "0:1");
        grid.set("isize", "1,2");
        core::SuiteConfig suite;
        suite.scaleDivisor = 10000.0;
        const std::string ref =
            coldJson(suite, grid.build(), grid.name());

        std::size_t lastDone = 0;
        std::size_t lastTotal = 0;
        const SweepOutcome cold = client.sweep(
            args, [&](std::size_t done, std::size_t total) {
                lastDone = done;
                lastTotal = total;
            });
        EXPECT_EQ(cold.json, ref);
        EXPECT_EQ(cold.points, 4u);
        EXPECT_EQ(cold.failed, 0u);
        EXPECT_EQ(cold.crossHits, 0u);
        EXPECT_EQ(lastDone, lastTotal);
        EXPECT_GT(lastTotal, 0u);

        // Warm request on the same connection: identical bytes, and
        // the DONE line owns up to the cross-request memo hits.
        const SweepOutcome warm = client.sweep(args);
        EXPECT_EQ(warm.json, ref);
        EXPECT_GT(warm.crossHits, 0u);

        // Protocol errors come back typed, and the connection
        // survives them.
        EXPECT_THROW(client.sweep("bogus=1"), UsageError);
        EXPECT_THROW(client.sweep("scale=nan"), UsageError);
        EXPECT_EQ(client.command("PING"), "pong");

        const std::string status = client.command("STATUS");
        EXPECT_NE(status.find("admitted="), std::string::npos);
        EXPECT_NE(status.find("draining=0"), std::string::npos);
    }

    // A client that sends a sweep and slams the connection shut must
    // not take the daemon down (the write failure becomes request
    // cancellation).
    {
        const int fd = rawConnect(server.tcpPort());
        ASSERT_GE(fd, 0);
        FdStream io(fd);
        io.writeLine("SWEEP scale=10000 threads=1 progress=1");
        std::string ack;
        ASSERT_TRUE(io.readLine(ack));
        EXPECT_EQ(ack.rfind("ACK ", 0), 0u) << ack;
        ::close(fd);
    }

    // The daemon still serves after the disconnect.
    {
        SweepClient client = SweepClient::connectTcp(server.tcpPort());
        EXPECT_EQ(client.command("PING"), "pong");
        const SweepOutcome again = client.sweep(args);
        EXPECT_EQ(again.points, 4u);
        EXPECT_EQ(client.command("SHUTDOWN"), "draining");
    }

    loop.join();
    EXPECT_TRUE(service.draining());

    // Drained: the listener is gone.
    EXPECT_LT(rawConnect(server.tcpPort()), 0);
}

// --- fd_io robustness -------------------------------------------------

/** A connected AF_UNIX pair; closes what is left open on teardown. */
struct SocketPair
{
    int a = -1;
    int b = -1;

    SocketPair()
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
            ADD_FAILURE() << "socketpair: " << std::strerror(errno);
            return;
        }
        a = fds[0];
        b = fds[1];
    }
    ~SocketPair()
    {
        closeA();
        closeB();
    }
    void closeA()
    {
        if (a >= 0)
            ::close(a);
        a = -1;
    }
    void closeB()
    {
        if (b >= 0)
            ::close(b);
        b = -1;
    }
};

TEST(FdIoTest, ReadTimeoutThrowsTimeoutError)
{
    SocketPair sp;
    ASSERT_GE(sp.a, 0);
    FdStream io(sp.a);
    io.setTimeout(50);
    std::string line;
    EXPECT_THROW(io.readLine(line), TimeoutError);
    EXPECT_THROW(io.readExact(16), TimeoutError);
}

TEST(FdIoTest, OverlongLineIsDataErrorNotTruncation)
{
    SocketPair sp;
    ASSERT_GE(sp.a, 0);

    // The writer never sends a newline: the reader must reject the
    // stream once the line exceeds the cap instead of returning a
    // silently truncated prefix.
    std::thread writer([&] {
        const std::string blob(kMaxLineBytes + 100, 'a');
        FdStream out(sp.a);
        try {
            out.writeAll(blob.data(), blob.size());
        } catch (const Error &) {
            // Reader may close first; EPIPE here is fine.
        }
    });

    FdStream in(sp.b);
    std::string line;
    EXPECT_THROW(in.readLine(line), DataError);
    sp.closeB(); // unblock the writer if it is still sending
    writer.join();
}

TEST(FdIoTest, LinesSurviveShortWritesAndEintrStorms)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "needs -DPIPECACHE_FAULT_INJECTION=ON";

    SocketPair sp;
    ASSERT_GE(sp.a, 0);
    fi::clear();

    // S1 pin: partial writes must resume where they left off and
    // EINTR (real or injected) must retry, so the peer still sees one
    // intact line. The short-write site clamps send() to 1 byte.
    fi::arm("serve.io.write.short", 1, 3);
    fi::arm("serve.io.write.eintr", 2, 5);
    fi::arm("serve.io.read.short", 1, 2);
    fi::arm("serve.io.read.eintr", 1, 3);

    const std::string line(2000, 'x');
    std::thread writer([&] {
        FdStream out(sp.a);
        out.writeLine(line);
    });

    FdStream in(sp.b);
    std::string got;
    ASSERT_TRUE(in.readLine(got));
    EXPECT_EQ(got, line);
    writer.join();

    EXPECT_GE(fi::hitCount("serve.io.write.short"), 3u);
    EXPECT_GE(fi::hitCount("serve.io.read.eintr"), 3u);
    fi::clear();
}

TEST(FdIoTest, InjectedResetAndTornWritesSurfaceAsIoErrors)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "needs -DPIPECACHE_FAULT_INJECTION=ON";

    const std::string line(64, 'y');
    {
        SocketPair sp;
        ASSERT_GE(sp.a, 0);
        fi::clear();
        fi::arm("serve.io.write.reset", 1);
        FdStream out(sp.a);
        EXPECT_THROW(out.writeLine(line), IoError);
    }
    {
        SocketPair sp;
        ASSERT_GE(sp.a, 0);
        fi::clear();
        fi::arm("serve.io.write.torn", 1);
        FdStream out(sp.a);
        EXPECT_THROW(out.writeLine(line), IoError);
        // The tear left a prefix on the wire — the reader sees the
        // torn bytes, then EOF once the writer side closes.
        sp.closeA();
        FdStream in(sp.b);
        std::string got;
        ASSERT_TRUE(in.readLine(got));
        EXPECT_LT(got.size(), line.size() + 1);
    }
    fi::clear();
}

// --- retry schedule ---------------------------------------------------

TEST(RetryScheduleTest, DeterministicAndBounded)
{
    RetryPolicy policy;
    policy.baseDelayMs = 50;
    policy.maxDelayMs = 2000;
    policy.seed = 7;

    for (std::size_t attempt = 0; attempt < 8; ++attempt) {
        const std::uint64_t cap = std::min<std::uint64_t>(
            2000, 50ull << attempt);
        const std::uint64_t d =
            retryDelayMs(policy, "SWEEP b=0:1", attempt);
        // Same inputs, same delay: reproducible runs stay
        // reproducible.
        EXPECT_EQ(d, retryDelayMs(policy, "SWEEP b=0:1", attempt));
        // Bounded to [cap/2, cap]: jitter decorrelates clients
        // without ever waiting longer than the exponential envelope.
        EXPECT_GE(d, cap / 2) << "attempt " << attempt;
        EXPECT_LE(d, cap) << "attempt " << attempt;
    }

    // Zero base means no waiting at all.
    RetryPolicy zero;
    zero.baseDelayMs = 0;
    zero.maxDelayMs = 0;
    EXPECT_EQ(retryDelayMs(zero, "SWEEP", 0), 0u);
}

// --- journal ----------------------------------------------------------

TEST(JournalTest, LoadPendingAndCompactRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "pipecache_journal_test.log";
    std::remove(path.c_str());

    {
        RequestJournal j(path);
        const auto first = j.begin("SWEEP b=0:1");
        j.begin("SWEEP isize=1,2");
        j.begin("SWEEP preset=fig3");
        j.end(first);
    }
    // Torn tail and stray garbage from a mid-append crash must be
    // skipped, not fatal.
    {
        std::ofstream app(path, std::ios::app);
        app << "garbage line\n"
            << "E 2 unexpected-extra\n"
            << "B 9\n"
            << "B "; // torn mid-record, no newline
    }

    const auto pending = RequestJournal::loadPending(path);
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].request, "SWEEP isize=1,2");
    EXPECT_EQ(pending[1].request, "SWEEP preset=fig3");

    // Compaction rewrites the file down to exactly the pending set
    // with fresh sequential ids.
    const auto compacted = RequestJournal::compact(path, pending);
    ASSERT_EQ(compacted.size(), 2u);
    EXPECT_EQ(compacted[0].id, 1u);
    EXPECT_EQ(compacted[1].id, 2u);
    const auto reloaded = RequestJournal::loadPending(path);
    ASSERT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded[0].request, "SWEEP isize=1,2");

    // A fresh journal seeded past the recovered range: ending the
    // recovered entries and the new ones must not collide.
    {
        RequestJournal j(path, compacted.size() + 1);
        const auto fresh = j.begin("SWEEP dsize=1");
        EXPECT_EQ(fresh, 3u);
        j.end(fresh);
        for (const auto &e : compacted)
            j.end(e.id);
    }
    EXPECT_TRUE(RequestJournal::loadPending(path).empty());

    // Absent file = empty journal, never an error.
    std::remove(path.c_str());
    EXPECT_TRUE(RequestJournal::loadPending(path).empty());
}

// --- deadlines --------------------------------------------------------

TEST(SweepServiceTest, DeadlineExpiryBecomesTimeoutError)
{
    const auto suite = tinySuite();
    const auto points = smallGrid();

    ServiceOptions opts;
    opts.threads = 1;
    SweepService service(opts);

    // Each point's progress callback stalls long enough that the
    // 12-point sweep cannot finish inside the deadline; the watchdog
    // must cancel it and the service must report the interruption as
    // a timeout, not a generic cancel.
    RequestOptions ro = reqOpts(1);
    ro.deadlineMs = 40;
    ro.onProgress = [](std::size_t, std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    };
    EXPECT_THROW(service.runPoints(points, "grid", suite, ro),
                 TimeoutError);
    EXPECT_NE(service.statusLine().find(" timeouts=1 "),
              std::string::npos)
        << service.statusLine();

    // The timeout left the service healthy, and a deadline generous
    // enough for the sweep changes nothing about the payload.
    RequestOptions relaxed = reqOpts(1);
    relaxed.deadlineMs = 60'000;
    EXPECT_EQ(
        service.runPoints(points, "grid", suite, relaxed).json,
        coldJson(suite, points, "grid"));
}

// --- client retry over real sockets -----------------------------------

/** Listen on an ephemeral loopback port; returns the fd, fills
 *  @p port. */
int
listenLoopback(int &port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 1) != 0) {
        ::close(fd);
        return -1;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        ::close(fd);
        return -1;
    }
    port = ntohs(addr.sin_port);
    return fd;
}

/** Accept one connection on @p lfd, run @p script over it, close. */
std::thread
serveOnce(int lfd, std::function<void(FdStream &)> script)
{
    return std::thread([lfd, script = std::move(script)] {
        const int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0)
            return;
        FdStream io(cfd);
        try {
            script(io);
        } catch (...) {
        }
        ::close(cfd);
    });
}

TEST(SweepClientRetryTest, RetriesTransportFailuresIdentically)
{
    // Real daemon for the good path.
    ServiceOptions sopts;
    sopts.threads = 1;
    SweepService service(sopts);
    ServerOptions opts;
    opts.tcpPort = 0;
    SweepServer server(service, opts);
    server.start();
    std::thread loop([&] { server.serve(); });

    const std::string args = "scale=10000 threads=1 b=0:1 isize=1,2";
    sweep::GridSpec grid;
    grid.set("b", "0:1");
    grid.set("isize", "1,2");
    core::SuiteConfig suite;
    suite.scaleDivisor = 10000.0;
    const std::string ref =
        coldJson(suite, grid.build(), grid.name());

    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.baseDelayMs = 1;
    policy.maxDelayMs = 2;
    policy.seed = 1;

    // Connect refusals retry and the eventual response is
    // byte-identical to a first-try run.
    {
        std::atomic<int> attempts{0};
        std::size_t retried = 0;
        const SweepOutcome out = sweepWithRetry(
            [&] {
                if (attempts.fetch_add(1) < 2)
                    throw IoError("connect: injected refusal");
                return SweepClient::connectTcp(server.tcpPort());
            },
            args, policy, nullptr, &retried);
        EXPECT_EQ(retried, 2u);
        EXPECT_EQ(out.json, ref);
    }

    // A daemon that dies after ACK but before RESULT is a retry-safe
    // transport failure: the re-issued request lands on the healthy
    // daemon and the bytes do not change.
    {
        int fakePort = 0;
        const int lfd = listenLoopback(fakePort);
        ASSERT_GE(lfd, 0);
        std::thread fake = serveOnce(lfd, [](FdStream &io) {
            std::string line;
            io.readLine(line);
            io.writeLine("ACK id=1 points=4");
        });

        std::atomic<int> attempts{0};
        std::size_t retried = 0;
        const SweepOutcome out = sweepWithRetry(
            [&] {
                const int port = attempts.fetch_add(1) == 0
                                     ? fakePort
                                     : server.tcpPort();
                return SweepClient::connectTcp(port);
            },
            args, policy, nullptr, &retried);
        EXPECT_EQ(retried, 1u);
        EXPECT_EQ(out.json, ref);
        fake.join();
        ::close(lfd);
    }

    // A daemon-reported ERR is a final answer: no retry, even with
    // budget left.
    {
        int fakePort = 0;
        const int lfd = listenLoopback(fakePort);
        ASSERT_GE(lfd, 0);
        std::thread fake = serveOnce(lfd, [](FdStream &io) {
            std::string line;
            io.readLine(line);
            io.writeLine("ERR io daemon-side failure");
        });

        std::atomic<int> attempts{0};
        std::size_t retried = 0;
        EXPECT_THROW(
            sweepWithRetry(
                [&] {
                    attempts.fetch_add(1);
                    return SweepClient::connectTcp(fakePort);
                },
                args, policy, nullptr, &retried),
            IoError);
        EXPECT_EQ(attempts.load(), 1);
        EXPECT_EQ(retried, 0u);
        fake.join();
        ::close(lfd);
    }

    // Exhausted retries propagate the transport failure.
    {
        RetryPolicy two = policy;
        two.maxAttempts = 2;
        std::size_t retried = 0;
        EXPECT_THROW(
            sweepWithRetry(
                [&]() -> SweepClient {
                    throw IoError("connect: injected refusal");
                },
                args, two, nullptr, &retried),
            IoError);
        EXPECT_EQ(retried, 1u);
    }

    SweepClient::connectTcp(server.tcpPort()).command("SHUTDOWN");
    loop.join();
}

TEST(SweepClientTest, OversizedResultAnnouncementIsDataError)
{
    // A corrupt RESULT length must be rejected before any allocation,
    // not trusted into a multi-gigabyte buffer.
    int fakePort = 0;
    const int lfd = listenLoopback(fakePort);
    ASSERT_GE(lfd, 0);
    std::thread fake = serveOnce(lfd, [](FdStream &io) {
        std::string line;
        io.readLine(line);
        io.writeLine("ACK id=1 points=1");
        io.writeLine("RESULT 1073741825"); // kMaxPayloadBytes + 1
    });

    SweepClient client = SweepClient::connectTcp(fakePort);
    EXPECT_THROW(client.sweep(""), DataError);
    fake.join();
    ::close(lfd);
}

} // namespace
} // namespace pipecache::serve
