/**
 * @file
 * Robustness tests: deterministic fault-injection semantics, per-point
 * sweep isolation, checkpoint save/load/resume byte-identity, and
 * atomic-write behavior under an injected commit fault.
 *
 * Tests that need an armed fault site skip themselves unless the
 * harness is compiled in (-DPIPECACHE_FAULT_INJECTION=ON); the
 * isolation and checkpoint tests run in every configuration.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/checkpoint.hh"
#include "sweep/result_sink.hh"
#include "sweep/sweep_engine.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace pipecache::sweep {
namespace {

core::SuiteConfig
tinySuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0;
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

std::vector<core::DesignPoint>
smallGrid()
{
    std::vector<core::DesignPoint> points;
    for (std::uint32_t kw : {1u, 2u}) {
        for (std::uint32_t b = 0; b <= 2; ++b) {
            core::DesignPoint p;
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            points.push_back(p);
        }
    }
    return points;
}

/** A point whose cache constructor panics (non-power-of-two size). */
core::DesignPoint
badPoint()
{
    core::DesignPoint p;
    p.l1iSizeKW = 3;
    return p;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ------------------------------------------------- fault injection

TEST(FaultInjectionTest, FiresOnExactlyTheNthHit)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "built without PIPECACHE_FAULT_INJECTION";
    fi::clear();
    fi::arm("test.site", 3);
    EXPECT_FALSE(fi::shouldFail("test.site"));
    EXPECT_FALSE(fi::shouldFail("test.site"));
    EXPECT_TRUE(fi::shouldFail("test.site"));
    // Fires once, then stays quiet.
    EXPECT_FALSE(fi::shouldFail("test.site"));
    EXPECT_EQ(fi::hitCount("test.site"), 4u);
    fi::clear();
    EXPECT_EQ(fi::hitCount("test.site"), 0u);
}

TEST(FaultInjectionTest, ArmCountsFromNow)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "built without PIPECACHE_FAULT_INJECTION";
    fi::clear();
    // Two unarmed hits first; arming is relative to the current
    // count, so nth=1 means the very next hit.
    EXPECT_FALSE(fi::shouldFail("test.relative"));
    EXPECT_FALSE(fi::shouldFail("test.relative"));
    fi::arm("test.relative", 1);
    EXPECT_TRUE(fi::shouldFail("test.relative"));
    fi::clear();
}

TEST(FaultInjectionTest, InjectionPointThrowsInternalError)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "built without PIPECACHE_FAULT_INJECTION";
    fi::clear();
    fi::arm("test.throwing", 1);
    try {
        fi::injectionPoint("test.throwing");
        FAIL() << "armed injection point did not throw";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("test.throwing"),
                  std::string::npos);
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
    }
    // Disarmed after firing.
    fi::injectionPoint("test.throwing");
    fi::clear();
}

// ----------------------------------------------- per-point isolation

TEST(SweepIsolationTest, FailedPointIsRecordedAndSweepContinues)
{
    setLogSink([](const std::string &) {});
    auto points = smallGrid();
    points.insert(points.begin(), badPoint());

    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 2;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);

    // Default mode: the bad point is isolated, everything else
    // evaluates normally.
    const auto records = engine.sweep(points);
    ASSERT_EQ(records.size(), points.size());
    EXPECT_TRUE(records[0].failed);
    EXPECT_EQ(records[0].errorKind, "internal");
    EXPECT_FALSE(records[0].errorMessage.empty());
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_FALSE(records[i].failed);
        EXPECT_GT(records[i].metrics.cpi, 0.0);
    }
    EXPECT_EQ(engine.stats().pointsFailed, 1u);

    // The failure shows up in both sinks.
    const std::string json =
        jsonString("iso", records, engine.stats());
    EXPECT_NE(json.find("\"points_failed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":null"), std::string::npos);
    EXPECT_NE(json.find("\"error\":{\"kind\":\"internal\""),
              std::string::npos);
    const std::string csv = csvString(records);
    EXPECT_NE(csv.find(",1,internal"), std::string::npos);

    // Failures are never memoized: the same point retried in a later
    // sweep is a miss and fails again instead of serving stale junk.
    const auto retry = engine.sweep({badPoint()});
    EXPECT_FALSE(retry[0].cacheHit);
    EXPECT_TRUE(retry[0].failed);
    EXPECT_EQ(engine.stats().pointsFailed, 2u);
    setLogSink(nullptr);
}

TEST(SweepIsolationTest, EvaluateBatchSurfacesFirstFailure)
{
    // Batch callers (optimizer, experiments) have no error channel;
    // silently returning zeroed metrics would corrupt their results.
    setLogSink([](const std::string &) {});
    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 2;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);
    std::vector<core::DesignPoint> points = {badPoint()};
    EXPECT_THROW(engine.evaluateBatch(points), Error);
    setLogSink(nullptr);
}

TEST(SweepIsolationTest, InjectedFaultIsIsolatedAndCounted)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "built without PIPECACHE_FAULT_INJECTION";
    setLogSink([](const std::string &) {});
    fi::clear();
    fi::arm("sweep.point.eval", 2);

    const auto points = smallGrid();
    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 1;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);
    const auto records = engine.sweep(points);

    // Exactly one point took the injected InternalError; which one
    // depends on pool scheduling, so assert the count, not identity.
    std::size_t failed = 0;
    for (const SweepRecord &r : records) {
        if (r.failed) {
            ++failed;
            EXPECT_EQ(r.errorKind, "internal");
            EXPECT_NE(r.errorMessage.find("sweep.point.eval"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(engine.stats().pointsFailed, 1u);
    fi::clear();
    setLogSink(nullptr);
}

// ------------------------------------------------------- checkpoints

TEST(CheckpointTest, SaveLoadRoundTripsBitExactly)
{
    Checkpoint ck;
    ck.gridKey = 0xdeadbeefcafef00dULL;
    ck.uniquePoints = 4;

    CheckpointEntry ok;
    ok.index = 1;
    // Awkward doubles: non-terminating binary fractions round-trip
    // only because the format uses to_chars/from_chars.
    ok.metrics.cpi = 1.0 / 3.0;
    ok.metrics.branchCpi = 2.0 / 7.0;
    ok.metrics.loadCpi = 0.1;
    ok.metrics.iMissCpi = 1e-300;
    ok.metrics.dMissCpi = 12345.6789;
    ok.metrics.l1iMissRate = 0.02;
    ok.metrics.l1dMissRate = 0.07;
    ok.metrics.tCpuNs = 11.3;
    ok.metrics.tIsideNs = 9.9;
    ok.metrics.tDsideNs = 8.25;
    ok.metrics.tpiNs = 13.125;
    ck.entries.push_back(ok);

    CheckpointEntry fail;
    fail.index = 3;
    fail.failed = true;
    fail.errorKind = "data";
    fail.errorMessage = "line one\nline two";
    ck.entries.push_back(fail);

    const std::string path = tmpPath("pipecache_ck_roundtrip");
    saveCheckpoint(path, ck);
    const Checkpoint loaded = loadCheckpoint(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.gridKey, ck.gridKey);
    EXPECT_EQ(loaded.uniquePoints, ck.uniquePoints);
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].index, 1u);
    EXPECT_FALSE(loaded.entries[0].failed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.entries[0].metrics.cpi),
              std::bit_cast<std::uint64_t>(ok.metrics.cpi));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(loaded.entries[0].metrics.iMissCpi),
        std::bit_cast<std::uint64_t>(ok.metrics.iMissCpi));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(loaded.entries[0].metrics.tpiNs),
        std::bit_cast<std::uint64_t>(ok.metrics.tpiNs));
    EXPECT_EQ(loaded.entries[1].index, 3u);
    EXPECT_TRUE(loaded.entries[1].failed);
    EXPECT_EQ(loaded.entries[1].errorKind, "data");
    // Newlines are flattened to keep the format line-oriented.
    EXPECT_EQ(loaded.entries[1].errorMessage, "line one line two");
}

TEST(CheckpointTest, LoadRejectsMalformedFiles)
{
    const std::string path = tmpPath("pipecache_ck_malformed");

    {
        std::ofstream out(path);
        out << "not-a-checkpoint\n";
    }
    try {
        loadCheckpoint(path);
        FAIL() << "bad header accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.source(), path);
        EXPECT_EQ(e.line(), 1u);
    }

    {
        std::ofstream out(path);
        out << "pipecache-checkpoint 1\n"
            << "grid 0000000000000001 unique 2\n"
            << "ok 0 1 2 3 4 5 6 7 8 9 10 notanumber\n";
    }
    try {
        loadCheckpoint(path);
        FAIL() << "bad metric accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.line(), 3u);
    }

    {
        std::ofstream out(path);
        out << "pipecache-checkpoint 1\n"
            << "grid 0000000000000001 unique 2\n"
            << "fail 7 internal boom\n";
    }
    // Index 7 is out of range for a 2-point sweep.
    EXPECT_THROW(loadCheckpoint(path), DataError);

    std::remove(path.c_str());
    EXPECT_THROW(loadCheckpoint(path), IoError);
}

// Table-driven malformed-checkpoint corpus: every corruption is a
// DataError that names the offending line.
TEST(CheckpointTest, MalformedCheckpointTable)
{
    struct Corruption
    {
        const char *label;
        const char *body;
        std::size_t line;
        const char *needle; //!< substring of the error message
    };
    static const Corruption kTable[] = {
        {"truncated ok metric list",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "ok 0 1 2 3 4 5\n",
         3, "bad metric value"},
        {"surplus ok metric",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "ok 0 1 2 3 4 5 6 7 8 9 10 11 12\n",
         3, "trailing tokens"},
        {"duplicate point index",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "ok 2 1 2 3 4 5 6 7 8 9 10 11\n"
         "fail 1 data boom\n"
         "ok 2 1 2 3 4 5 6 7 8 9 10 11\n",
         5, "duplicate entry for point index 2"},
        {"duplicate failed index",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "fail 3 io disk on fire\n"
         "fail 3 io disk still on fire\n",
         4, "duplicate entry for point index 3"},
        {"point index out of range",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "ok 4 1 2 3 4 5 6 7 8 9 10 11\n",
         3, "out of range"},
        {"bad hex grid key",
         "pipecache-checkpoint 1\n"
         "grid 0xnotahexkey unique 4\n",
         2, "bad grid key"},
        {"CRLF header",
         "pipecache-checkpoint 1\r\n"
         "grid 00000000000000ab unique 4\n",
         1, "bad header"},
        {"missing error kind",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "fail 1\n",
         3, "missing error kind"},
        {"unknown record tag",
         "pipecache-checkpoint 1\n"
         "grid 00000000000000ab unique 4\n"
         "wat 1 2 3\n",
         3, "unknown record"},
    };

    const std::string path = tmpPath("pipecache_ck_table");
    for (const Corruption &c : kTable) {
        SCOPED_TRACE(c.label);
        {
            std::ofstream out(path, std::ios::binary);
            out << c.body;
        }
        try {
            loadCheckpoint(path);
            FAIL() << c.label << " accepted";
        } catch (const DataError &e) {
            EXPECT_EQ(e.source(), path);
            EXPECT_EQ(e.line(), c.line);
            EXPECT_NE(e.rawMessage().find(c.needle), std::string::npos)
                << "got: " << e.rawMessage();
        }
    }
    std::remove(path.c_str());
}

// Pinned regression (found by `pipecache_fuzz --oracle checkpoint`,
// shrunk reproducer: suite=scale:40000,quantum:5000,salt:0,bench:yacc;
// threads=2;stream=seed:1,len:64,insts:2000;point=b:0,l:0,i:1,d:1,
// blk:4,assoc:1,pen:10,repl:lru,bs:squash,ls:static,ps:btfnt,
// btb:256.1,wb:0): loadCheckpoint used to trim the whole leading
// whitespace run from a fail-entry message, so a message starting
// with ' ' or '\t' broke the save->load->save byte fixpoint.
TEST(CheckpointTest, FailMessageLeadingWhitespaceRoundTrips)
{
    Checkpoint ck;
    ck.gridKey = 0x12ab;
    ck.uniquePoints = 16;
    const char *kMessages[] = {
        " leading space",
        "\tleading tab",
        "  two leading spaces",
        " ",
        "",
    };
    std::size_t index = 0;
    for (const char *msg : kMessages) {
        CheckpointEntry e;
        e.index = index++;
        e.failed = true;
        e.errorKind = "internal";
        e.errorMessage = msg;
        ck.entries.push_back(e);
    }

    const std::string p1 = tmpPath("pipecache_ck_ws1");
    const std::string p2 = tmpPath("pipecache_ck_ws2");
    saveCheckpoint(p1, ck);
    const Checkpoint loaded = loadCheckpoint(p1);
    saveCheckpoint(p2, loaded);
    const std::string bytes1 = slurp(p1);
    const std::string bytes2 = slurp(p2);
    std::remove(p1.c_str());
    std::remove(p2.c_str());

    EXPECT_EQ(bytes1, bytes2);
    ASSERT_EQ(loaded.entries.size(), std::size(kMessages));
    for (std::size_t i = 0; i < std::size(kMessages); ++i) {
        EXPECT_EQ(loaded.entries[i].errorMessage, kMessages[i])
            << "entry " << i;
    }
}

TEST(CheckpointTest, GridKeyBindsPointsAndSuite)
{
    const auto points = smallGrid();
    auto shifted = points;
    shifted.back().branchSlots += 1;
    EXPECT_NE(gridKey(points, 42), gridKey(shifted, 42));
    EXPECT_NE(gridKey(points, 42), gridKey(points, 43));
    EXPECT_EQ(gridKey(points, 42), gridKey(points, 42));
}

TEST(CheckpointTest, ResumeIsByteIdenticalToUninterruptedRun)
{
    const auto points = smallGrid();
    const std::string path = tmpPath("pipecache_ck_resume");
    std::remove(path.c_str());

    // Reference: no checkpointing at all.
    core::CpiModel ref_cpi(tinySuite());
    core::TpiModel ref_tpi(ref_cpi);
    SweepOptions ref_opts;
    ref_opts.threads = 2;
    ref_opts.grain = 1;
    SweepEngine ref_engine(ref_tpi, ref_opts);
    const auto ref_records = ref_engine.sweep(points);
    const std::string ref_json =
        jsonString("resume", ref_records, ref_engine.stats());

    // Checkpointed run leaves a complete checkpoint behind.
    {
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        SweepOptions opts = ref_opts;
        opts.checkpointPath = path;
        opts.checkpointEvery = 1;
        SweepEngine engine(tpi, opts);
        const auto records = engine.sweep(points);
        EXPECT_EQ(jsonString("resume", records, engine.stats()),
                  ref_json);
    }

    // Full-checkpoint resume: nothing left to evaluate, output still
    // byte-identical.
    {
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        SweepOptions opts = ref_opts;
        opts.checkpointPath = path;
        opts.resume = true;
        SweepEngine engine(tpi, opts);
        const auto records = engine.sweep(points);
        // Every point was restored, none evaluated.
        EXPECT_EQ(engine.stats().evalWallMs, 0.0);
        EXPECT_EQ(jsonString("resume", records, engine.stats()),
                  ref_json);
    }

    // Partial resume: keep only half the entries, the rest must
    // re-evaluate to the same bits.
    {
        Checkpoint ck = loadCheckpoint(path);
        ck.entries.resize(ck.entries.size() / 2);
        saveCheckpoint(path, ck);

        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        SweepOptions opts = ref_opts;
        opts.checkpointPath = path;
        opts.resume = true;
        SweepEngine engine(tpi, opts);
        const auto records = engine.sweep(points);
        EXPECT_GT(engine.stats().evalWallMs, 0.0);
        EXPECT_EQ(jsonString("resume", records, engine.stats()),
                  ref_json);
    }
    std::remove(path.c_str());
}

TEST(CheckpointTest, ResumeRejectsMismatchedGrid)
{
    const auto points = smallGrid();
    const std::string path = tmpPath("pipecache_ck_mismatch");

    Checkpoint ck;
    ck.gridKey = gridKey(points, 1234567); // wrong suite key
    ck.uniquePoints = points.size();
    saveCheckpoint(path, ck);

    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 1;
    opts.grain = 1;
    opts.checkpointPath = path;
    opts.resume = true;
    SweepEngine engine(tpi, opts);
    EXPECT_THROW(engine.sweep(points), DataError);
    std::remove(path.c_str());
}

TEST(CheckpointTest, CommitFaultLeavesPreviousFileIntact)
{
    if (!fi::compiledIn())
        GTEST_SKIP() << "built without PIPECACHE_FAULT_INJECTION";
    const std::string path = tmpPath("pipecache_ck_commit_fault");

    Checkpoint first;
    first.gridKey = 7;
    first.uniquePoints = 1;
    saveCheckpoint(path, first);
    const std::string before = slurp(path);

    Checkpoint second;
    second.gridKey = 8;
    second.uniquePoints = 2;
    fi::clear();
    fi::arm("atomic_file.commit", 1);
    EXPECT_THROW(saveCheckpoint(path, second), InternalError);
    fi::clear();

    // The failed write never replaced (or corrupted) the old file.
    EXPECT_EQ(slurp(path), before);
    EXPECT_EQ(loadCheckpoint(path).gridKey, 7u);
    std::remove(path.c_str());
}

} // namespace
} // namespace pipecache::sweep
