/**
 * @file
 * Unit tests for the pluggable trace-source layer (trace/source.hh):
 * the din line parser's malformed-input corpus, serialize/parse round
 * trips, the oracleGeneral binary reader, file-extension dispatch,
 * and the batched delivery path (BufferedStreamSink and
 * StackSimulator::accessBatch) on stream lengths that do not divide
 * the batch capacity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cache/stack_sim.hh"
#include "cpusim/cpi_engine.hh"
#include "trace/source.hh"
#include "trace/trace_io.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace pipecache::trace {
namespace {

// ------------------------------------------- malformed din corpus

struct BadDin
{
    const char *tag;
    const char *text;
    std::size_t line;     //!< expected 1-based line attribution
    const char *fragment; //!< expected rawMessage() substring
};

TEST(DinCorpusTest, MalformedInputsCarryLineAttribution)
{
    // Every malformed shape the reader must reject, with the exact
    // line it must blame. Blank lines, comments, and CRLF endings
    // before the bad record still count toward the line number.
    const BadDin corpus[] = {
        {"label outside {0,1,2}", "7 400\n", 1, "bad label"},
        {"label 3", "2 400\n3 10\n", 2, "bad label"},
        {"negative label", "-1 5\n", 1, "bad label"},
        {"label glued to address", "0ff\n", 1, "bad label"},
        {"label alone", "0 100\n1\n", 2, "truncated record"},
        {"label then spaces", "2\t \n", 1, "truncated record"},
        {"non-hex address", "2 400\n# c\n\n2 zz\n", 4, "bad address"},
        {"address wider than 32 bits", "0 1ffffffff\n", 1,
         "address out of range"},
        {"trailing garbage", "0 100 again\n", 1, "trailing garbage"},
        {"garbage glued to address", "0 100x\n", 1, "trailing garbage"},
        {"crlf before the bad line", "2 400\r\n8 10\r\n", 2,
         "bad label"},
    };

    for (const BadDin &bad : corpus) {
        std::istringstream is(bad.text);
        try {
            readDin(is);
            FAIL() << bad.tag << ": accepted";
        } catch (const DataError &e) {
            EXPECT_EQ(e.line(), bad.line) << bad.tag;
            EXPECT_NE(e.rawMessage().find(bad.fragment),
                      std::string::npos)
                << bad.tag << ": got '" << e.rawMessage() << "'";
        }
    }
}

TEST(DinCorpusTest, EdgeShapesAreAccepted)
{
    // CRLF line endings, a trailing blank line, tabs as separators,
    // and the widest representable address all parse.
    std::istringstream is(
        "2 400\r\n"
        "0\tffffffff\r\n"
        "1 0\n"
        "\n");
    const auto records = readDin(is);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].kind, RefKind::Fetch);
    EXPECT_EQ(records[0].addr, 0x400u);
    EXPECT_EQ(records[1].kind, RefKind::Read);
    EXPECT_EQ(records[1].addr, 0xffffffffu);
    EXPECT_EQ(records[2].kind, RefKind::Write);
    EXPECT_EQ(records[2].addr, 0u);
}

// --------------------------------------------- round-trip fuzzing

TEST(DinRoundTripTest, RandomRecordStreamsSurviveSerialization)
{
    // writeDinRecords -> readDin is the identity on arbitrary record
    // vectors: every kind, addresses across the whole 32-bit range,
    // lengths that are not batch multiples.
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
        Rng rng(seed);
        std::vector<TraceRecord> records(1 + rng.nextRange(3000));
        for (TraceRecord &r : records) {
            r.kind = static_cast<RefKind>(rng.nextRange(3));
            r.addr = static_cast<Addr>(rng.next());
        }

        std::ostringstream os;
        writeDinRecords(os, records);
        std::istringstream is(os.str());
        const auto back = readDin(is);
        ASSERT_EQ(back.size(), records.size()) << "seed " << seed;
        for (std::size_t i = 0; i < records.size(); ++i)
            ASSERT_EQ(back[i], records[i])
                << "seed " << seed << " record " << i;
    }
}

TEST(DinRoundTripTest, DinSourceMatchesReadDin)
{
    // The streaming reader and the one-shot reader share the parser;
    // they must also agree record for record, whatever batch size the
    // consumer picks.
    Rng rng(11);
    std::vector<TraceRecord> records(777);
    for (TraceRecord &r : records) {
        r.kind = static_cast<RefKind>(rng.nextRange(3));
        r.addr = static_cast<Addr>(rng.next());
    }
    std::ostringstream os;
    writeDinRecords(os, records);

    std::istringstream is(os.str());
    DinSource source(is, "round-trip");
    const auto streamed = drain(source);
    EXPECT_EQ(streamed, records);
}

TEST(DinSourceTest, ErrorsNameTheSource)
{
    std::istringstream is("2 400\n9 10\n");
    DinSource source(is, "bad.din");
    std::array<TraceRecord, 16> batch;
    try {
        while (source.fill(batch) != 0) {
        }
        FAIL() << "bad label accepted";
    } catch (const DataError &e) {
        EXPECT_EQ(e.source(), "bad.din");
        EXPECT_EQ(e.line(), 2u);
    }
}

// -------------------------------------------- oracleGeneral binary

std::string
packOracleRecord(std::uint32_t clock, std::uint64_t objId,
                 std::uint32_t objSize, std::int64_t nextVtime)
{
    std::string out(OracleGeneralSource::kRecordBytes, '\0');
    std::memcpy(out.data() + 0, &clock, 4);
    std::memcpy(out.data() + 4, &objId, 8);
    std::memcpy(out.data() + 12, &objSize, 4);
    std::memcpy(out.data() + 16, &nextVtime, 8);
    return out;
}

TEST(OracleGeneralTest, RecordsBecomeAlignedReads)
{
    std::string bytes;
    bytes += packOracleRecord(1, 0x1234, 64, -1);
    bytes += packOracleRecord(2, 0xdeadbeefcafef00dull, 100, 7);
    bytes += packOracleRecord(3, 0x1234, 64, -1);

    std::istringstream is(bytes);
    OracleGeneralSource source(is, "t.oracleGeneral");
    const auto records = drain(source);
    ASSERT_EQ(records.size(), 3u);
    for (const TraceRecord &r : records) {
        EXPECT_EQ(r.kind, RefKind::Read);
        EXPECT_EQ(r.addr % 64, 0u) << "pseudo-addresses are 64B-aligned";
    }
    // Same object id, same pseudo-address; distinct ids map apart.
    EXPECT_EQ(records[0].addr, OracleGeneralSource::objIdToAddr(0x1234));
    EXPECT_EQ(records[0].addr, records[2].addr);
    EXPECT_NE(records[0].addr, records[1].addr);
}

TEST(OracleGeneralTest, TruncatedTailIsADataError)
{
    std::string bytes = packOracleRecord(1, 42, 64, -1);
    bytes += "abc"; // 3 stray bytes
    std::istringstream is(bytes);
    OracleGeneralSource source(is, "short.oracleGeneral");
    EXPECT_THROW(drain(source), DataError);
}

TEST(OpenTraceFileTest, DispatchesOnExtension)
{
    const std::string dinPath = "/tmp/pipecache_test_open.din";
    {
        std::ofstream out(dinPath);
        out << "2 400\n0 100\n";
    }
    auto source = openTraceFile(dinPath);
    EXPECT_EQ(drain(*source).size(), 2u);
    std::remove(dinPath.c_str());

    // Case-insensitive oracleGeneral extension.
    const std::string oPath = "/tmp/pipecache_test_open.ORACLEGENERAL";
    {
        std::ofstream out(oPath, std::ios::binary);
        const std::string rec = packOracleRecord(1, 9, 64, -1);
        out.write(rec.data(),
                  static_cast<std::streamsize>(rec.size()));
    }
    auto oracle = openTraceFile(oPath);
    EXPECT_EQ(drain(*oracle).size(), 1u);
    std::remove(oPath.c_str());

    EXPECT_THROW(openTraceFile("/tmp/absent.din"), IoError);
    EXPECT_THROW(openTraceFile("/tmp/trace.txt"), UsageError);
}

// ------------------------------ batched delivery on awkward lengths

/** Records every batch it is handed, preserving order and sizes. */
class RecordingBatchSink final : public cpusim::BatchStreamSink
{
  public:
    void instBatch(std::span<const cache::AccessRecord> r) override
    {
        take(instRecords, instBatches, r);
    }
    void dataBatch(std::span<const cache::AccessRecord> r) override
    {
        take(dataRecords, dataBatches, r);
    }

    std::vector<cache::AccessRecord> instRecords;
    std::vector<cache::AccessRecord> dataRecords;
    std::vector<std::size_t> instBatches;
    std::vector<std::size_t> dataBatches;

  private:
    static void take(std::vector<cache::AccessRecord> &out,
                     std::vector<std::size_t> &sizes,
                     std::span<const cache::AccessRecord> r)
    {
        out.insert(out.end(), r.begin(), r.end());
        sizes.push_back(r.size());
    }
};

/** Push a TraceSource through a BufferedStreamSink (fetches to the
 *  instruction side, reads/writes to the data side). */
void
pump(TraceSource &source, cpusim::BufferedStreamSink &sink)
{
    std::array<TraceRecord, 100> batch; // deliberately not 256
    std::size_t got = 0;
    while ((got = source.fill(batch)) != 0) {
        for (std::size_t i = 0; i < got; ++i) {
            const TraceRecord &r = batch[i];
            if (r.kind == RefKind::Fetch)
                sink.instFetch(0, r.addr);
            else
                sink.dataRef(0, r.addr, r.kind == RefKind::Write);
        }
    }
    sink.flush();
}

std::vector<TraceRecord>
syntheticStream(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceRecord> records(n);
    for (TraceRecord &r : records) {
        r.kind = static_cast<RefKind>(rng.nextRange(3));
        r.addr = static_cast<Addr>(rng.nextRange(1 << 20)) & ~3u;
    }
    return records;
}

TEST(BatchedDeliveryTest, PartialFinalBatchesArriveIntact)
{
    // Stream lengths around the 256-record capacity: empty, single
    // record, one short of a full buffer, exact, one over, and a
    // large non-multiple. Order and content must survive, and every
    // batch but the last must be full.
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{255}, std::size_t{256},
                                std::size_t{257}, std::size_t{1000}}) {
        const auto stream = syntheticStream(n, 5 + n);
        VectorSource source(stream);
        RecordingBatchSink recorder;
        cpusim::BufferedStreamSink sink(recorder);
        pump(source, sink);

        std::vector<cache::AccessRecord> wantInst;
        std::vector<cache::AccessRecord> wantData;
        for (const TraceRecord &r : stream) {
            if (r.kind == RefKind::Fetch)
                wantInst.push_back({r.addr, 0, 0});
            else
                wantData.push_back(
                    {r.addr, 0,
                     static_cast<std::uint8_t>(
                         r.kind == RefKind::Write ? 1 : 0)});
        }

        ASSERT_EQ(recorder.instRecords.size(), wantInst.size())
            << "n=" << n;
        ASSERT_EQ(recorder.dataRecords.size(), wantData.size())
            << "n=" << n;
        for (std::size_t i = 0; i < wantInst.size(); ++i)
            ASSERT_EQ(recorder.instRecords[i].addr, wantInst[i].addr);
        for (std::size_t i = 0; i < wantData.size(); ++i) {
            ASSERT_EQ(recorder.dataRecords[i].addr, wantData[i].addr);
            ASSERT_EQ(recorder.dataRecords[i].store,
                      wantData[i].store);
        }
        for (const auto &sizes :
             {recorder.instBatches, recorder.dataBatches}) {
            for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
                EXPECT_EQ(sizes[i],
                          cpusim::BufferedStreamSink::kCapacity)
                    << "n=" << n;
            if (!sizes.empty()) {
                EXPECT_GT(sizes.back(), 0u);
                EXPECT_LE(sizes.back(),
                          cpusim::BufferedStreamSink::kCapacity);
            }
        }
    }
}

TEST(BatchedDeliveryTest, AccessBatchMatchesPerAccessOnOddLengths)
{
    // accessBatch() in non-multiple-of-256 chunks is count-for-count
    // identical to per-access delivery of the same stream.
    const auto stream = syntheticStream(1003, 21);

    std::vector<cache::StackGeometry> ladder{{2, 1}, {3, 2}};
    cache::StackSimulator perAccess(64, ladder, 1);
    cache::StackSimulator batched(64, ladder, 1);

    std::vector<cache::AccessRecord> records;
    for (const TraceRecord &r : stream) {
        const bool write = r.kind == RefKind::Write;
        perAccess.access(0, r.addr, write);
        records.push_back(
            {r.addr, 0, static_cast<std::uint8_t>(write ? 1 : 0)});
    }
    std::size_t at = 0;
    for (const std::size_t len : {std::size_t{1}, std::size_t{100},
                                  std::size_t{256}, std::size_t{257}}) {
        batched.accessBatch(std::span<const cache::AccessRecord>(
            records.data() + at, len));
        at += len;
    }
    batched.accessBatch(std::span<const cache::AccessRecord>(
        records.data() + at, records.size() - at));
    perAccess.finish();
    batched.finish();

    for (const cache::StackGeometry &g : ladder) {
        const auto &a = perAccess.counts(g.log2Sets, g.assoc);
        const auto &b = batched.counts(g.log2Sets, g.assoc);
        EXPECT_EQ(a.readMisses[0], b.readMisses[0]);
        EXPECT_EQ(a.writeMisses[0], b.writeMisses[0]);
        EXPECT_EQ(a.evictions, b.evictions);
        EXPECT_EQ(a.dirtyEvictions, b.dirtyEvictions);
    }
}

} // namespace
} // namespace pipecache::trace
