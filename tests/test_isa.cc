/**
 * @file
 * Unit tests for isa/: opcodes, instructions, blocks, programs,
 * dependence analysis, and the synthetic program generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "isa/basic_block.hh"
#include "isa/dependence.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/program.hh"
#include "isa/program_generator.hh"
#include "isa/verifier.hh"
#include "util/logging.hh"

namespace pipecache::isa {
namespace {

void
nullSink(const std::string &)
{
}

class IsaDeathGuard : public ::testing::Test
{
  protected:
    void SetUp() override { setLogSink(nullSink); }
    void TearDown() override { setLogSink(nullptr); }
};

// ----------------------------------------------------------------- opcode

TEST(OpcodeTest, Classification)
{
    EXPECT_TRUE(isLoad(Opcode::LW));
    EXPECT_TRUE(isLoad(Opcode::LWC1));
    EXPECT_FALSE(isLoad(Opcode::SW));
    EXPECT_TRUE(isStore(Opcode::SB));
    EXPECT_TRUE(isMem(Opcode::LH));
    EXPECT_TRUE(isMem(Opcode::SWC1));
    EXPECT_FALSE(isMem(Opcode::ADDU));

    EXPECT_TRUE(isCti(Opcode::BEQ));
    EXPECT_TRUE(isCti(Opcode::J));
    EXPECT_TRUE(isCti(Opcode::JR));
    EXPECT_FALSE(isCti(Opcode::SLT));

    EXPECT_TRUE(isCondBranch(Opcode::BGTZ));
    EXPECT_FALSE(isCondBranch(Opcode::JAL));
    EXPECT_TRUE(isDirectJump(Opcode::JAL));
    EXPECT_TRUE(isIndirectJump(Opcode::JALR));
    EXPECT_TRUE(isCall(Opcode::JAL));
    EXPECT_TRUE(isCall(Opcode::JALR));
    EXPECT_FALSE(isCall(Opcode::JR));
}

TEST(OpcodeTest, EveryOpcodeHasNameAndClass)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_FALSE(opcodeName(op).empty());
        // opClass must return something sane for every opcode.
        const OpClass c = opClass(op);
        EXPECT_LE(static_cast<int>(c),
                  static_cast<int>(OpClass::Other));
    }
}

// ------------------------------------------------------------ instruction

TEST(InstructionTest, AluDefUse)
{
    const auto inst =
        Instruction::makeAlu(Opcode::ADDU, 8, 9, 10);
    EXPECT_EQ(inst.destReg(), 8);
    EXPECT_TRUE(inst.reads(9));
    EXPECT_TRUE(inst.reads(10));
    EXPECT_FALSE(inst.reads(8));
    EXPECT_TRUE(inst.writes(8));
}

TEST(InstructionTest, LoadDefUse)
{
    const auto inst =
        Instruction::makeLoad(12, reg::gp, 100, AddrClass::Global);
    EXPECT_EQ(inst.destReg(), 12);
    EXPECT_EQ(inst.addrReg(), reg::gp);
    EXPECT_TRUE(inst.reads(reg::gp));
    EXPECT_FALSE(inst.reads(12));
}

TEST(InstructionTest, StoreReadsValueAndAddress)
{
    const auto inst =
        Instruction::makeStore(9, reg::sp, 8, AddrClass::Stack);
    EXPECT_EQ(inst.destReg(), reg::zero);
    EXPECT_TRUE(inst.reads(9));
    EXPECT_TRUE(inst.reads(reg::sp));
}

TEST(InstructionTest, CallWritesRa)
{
    const auto jal = Instruction::makeJump(Opcode::JAL);
    EXPECT_EQ(jal.destReg(), reg::ra);
    const auto j = Instruction::makeJump(Opcode::J);
    EXPECT_EQ(j.destReg(), reg::zero);
}

TEST(InstructionTest, JumpRegisterReadsTarget)
{
    const auto jr = Instruction::makeJumpRegister(Opcode::JR, reg::ra);
    EXPECT_TRUE(jr.reads(reg::ra));
    EXPECT_EQ(jr.destReg(), reg::zero);
}

TEST(InstructionTest, ZeroRegisterNeverReadOrWritten)
{
    const auto inst =
        Instruction::makeAlu(Opcode::ADDU, reg::zero, reg::zero,
                             reg::zero);
    EXPECT_FALSE(inst.reads(reg::zero));
    EXPECT_FALSE(inst.writes(reg::zero));
}

TEST(InstructionTest, ToStringContainsMnemonic)
{
    const auto inst =
        Instruction::makeLoad(8, reg::sp, 4, AddrClass::Stack);
    EXPECT_NE(inst.toString().find("lw"), std::string::npos);
    EXPECT_NE(inst.toString().find("(r29)"), std::string::npos);
}

// ------------------------------------------------------------ basic block

BasicBlock
makeBranchBlock(BlockId target, BlockId fallthrough)
{
    BasicBlock bb;
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 9, 10));
    bb.insts.push_back(Instruction::makeBranch(Opcode::BNE, 8, 0));
    bb.term = TermKind::CondBranch;
    bb.target = target;
    bb.fallthrough = fallthrough;
    return bb;
}

TEST(BasicBlockTest, SizeAndCti)
{
    const auto bb = makeBranchBlock(0, 1);
    EXPECT_EQ(bb.size(), 2u);
    EXPECT_EQ(bb.bodySize(), 1u);
    EXPECT_TRUE(bb.hasCti());
    EXPECT_EQ(bb.cti().op, Opcode::BNE);
}

TEST_F(IsaDeathGuard, BlockInvariantsCatchMidBlockCti)
{
    BasicBlock bb;
    bb.insts.push_back(Instruction::makeBranch(Opcode::BEQ, 8, 9));
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 9, 10));
    bb.term = TermKind::FallThrough;
    bb.fallthrough = 1;
    EXPECT_THROW(bb.checkInvariants(0, 4), std::logic_error);
}

TEST_F(IsaDeathGuard, BlockInvariantsCatchBadTarget)
{
    auto bb = makeBranchBlock(99, 1);
    EXPECT_THROW(bb.checkInvariants(0, 4), std::logic_error);
}

TEST_F(IsaDeathGuard, BlockInvariantsCatchTerminatorMismatch)
{
    BasicBlock bb;
    bb.insts.push_back(Instruction::makeJump(Opcode::J));
    bb.term = TermKind::CondBranch; // wrong: J is not a cond branch
    bb.target = 1;
    bb.fallthrough = 1;
    EXPECT_THROW(bb.checkInvariants(0, 4), std::logic_error);
}

// ---------------------------------------------------------------- program

Program
makeTinyProgram()
{
    Program prog;
    prog.addBlock(makeBranchBlock(1, 1)); // B0
    BasicBlock ret;
    ret.insts.push_back(Instruction::makeAluImm(Opcode::ADDIU, reg::sp,
                                                reg::sp, 8));
    ret.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    ret.term = TermKind::Return;
    prog.addBlock(std::move(ret)); // B1
    prog.layout();
    return prog;
}

TEST(ProgramTest, LayoutAssignsContiguousAddresses)
{
    const auto prog = makeTinyProgram();
    EXPECT_EQ(prog.blockAddr(0), prog.base());
    EXPECT_EQ(prog.blockAddr(1), prog.base() + 8);
    EXPECT_EQ(prog.instAddr(1, 1), prog.base() + 12);
}

TEST(ProgramTest, CountsAndValidation)
{
    const auto prog = makeTinyProgram();
    EXPECT_EQ(prog.staticInstCount(), 4u);
    EXPECT_EQ(prog.staticCtiCount(), 2u);
    EXPECT_NO_THROW(prog.validate());
}

TEST(ProgramTest, SetBaseRelocates)
{
    auto prog = makeTinyProgram();
    prog.setBase(0x10000);
    prog.layout();
    EXPECT_EQ(prog.blockAddr(0), 0x10000u);
}

TEST(ProgramTest, DisassembleListsBlocks)
{
    const auto prog = makeTinyProgram();
    const std::string d = prog.disassemble();
    EXPECT_NE(d.find("B0"), std::string::npos);
    EXPECT_NE(d.find("jr"), std::string::npos);
}

// ------------------------------------------------------------- dependence

TEST(DependenceTest, IndependentInstructions)
{
    const auto a = Instruction::makeAlu(Opcode::ADDU, 8, 9, 10);
    const auto b = Instruction::makeAlu(Opcode::SUBU, 11, 12, 13);
    EXPECT_TRUE(registerIndependent(a, b));
}

TEST(DependenceTest, RawDependence)
{
    const auto def = Instruction::makeAlu(Opcode::ADDU, 8, 9, 10);
    const auto use = Instruction::makeAlu(Opcode::SUBU, 11, 8, 13);
    EXPECT_FALSE(registerIndependent(def, use));
    EXPECT_FALSE(registerIndependent(use, def)); // WAR the other way
}

TEST(DependenceTest, WawDependence)
{
    const auto a = Instruction::makeAlu(Opcode::ADDU, 8, 9, 10);
    const auto b = Instruction::makeAlu(Opcode::SUBU, 8, 12, 13);
    EXPECT_FALSE(registerIndependent(a, b));
}

TEST(DependenceTest, CtiHoistBlockedByConditionFeed)
{
    BasicBlock bb;
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 10, 11));
    bb.insts.push_back(Instruction::makeAlu(Opcode::SLT, 8, 9, 10));
    bb.insts.push_back(Instruction::makeBranch(Opcode::BNE, 8, 0));
    bb.term = TermKind::CondBranch;
    bb.target = 0;
    bb.fallthrough = 1;
    EXPECT_EQ(ctiHoistDistance(bb), 0u);
}

TEST(DependenceTest, CtiHoistOverIndependentInstructions)
{
    BasicBlock bb;
    bb.insts.push_back(Instruction::makeAlu(Opcode::SLT, 8, 9, 10));
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 11, 12, 13));
    bb.insts.push_back(Instruction::makeAlu(Opcode::XOR, 14, 15, 16));
    bb.insts.push_back(Instruction::makeBranch(Opcode::BNE, 8, 0));
    bb.term = TermKind::CondBranch;
    bb.target = 0;
    bb.fallthrough = 1;
    // Can cross the two independent ALUs, stops at the SLT that
    // computes the condition.
    EXPECT_EQ(ctiHoistDistance(bb), 2u);
}

TEST(DependenceTest, CallHoistBlockedByRaReader)
{
    BasicBlock bb;
    bb.insts.push_back(
        Instruction::makeAlu(Opcode::ADDU, 8, reg::ra, 9));
    bb.insts.push_back(Instruction::makeJump(Opcode::JAL));
    bb.term = TermKind::Call;
    bb.target = 0;
    bb.fallthrough = 1;
    // jal writes ra; the preceding instruction reads ra (WAR).
    EXPECT_EQ(ctiHoistDistance(bb), 0u);
}

TEST(DependenceTest, LoadHoistStopsAtAddressDef)
{
    BasicBlock bb;
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 20, 9, 10));
    bb.insts.push_back(Instruction::makeAlu(Opcode::XOR, 11, 12, 13));
    bb.insts.push_back(
        Instruction::makeLoad(8, 20, 0, AddrClass::Array));
    bb.term = TermKind::FallThrough;
    bb.fallthrough = 1;
    // Can cross the XOR but not the pointer computation.
    EXPECT_EQ(loadHoistDistance(bb, 2), 1u);
}

TEST(DependenceTest, LoadHoistCrossesStores)
{
    BasicBlock bb;
    bb.insts.push_back(
        Instruction::makeStore(9, reg::sp, 0, AddrClass::Stack));
    bb.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    bb.term = TermKind::FallThrough;
    bb.fallthrough = 1;
    // Perfect disambiguation: loads move past stores.
    EXPECT_EQ(loadHoistDistance(bb, 1), 1u);
}

TEST(DependenceTest, LoadUseDistance)
{
    BasicBlock bb;
    bb.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 11, 12, 13));
    bb.insts.push_back(Instruction::makeAlu(Opcode::SUBU, 14, 8, 13));
    bb.term = TermKind::FallThrough;
    bb.fallthrough = 1;
    EXPECT_EQ(loadUseDistanceInBlock(bb, 0), 1u);
}

TEST(DependenceTest, LoadUseKilledByRedefinition)
{
    BasicBlock bb;
    bb.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 8, 12, 13));
    bb.insts.push_back(Instruction::makeAlu(Opcode::SUBU, 14, 8, 13));
    bb.term = TermKind::FallThrough;
    bb.fallthrough = 1;
    // The redefinition kills the loaded value: distance = to block end.
    EXPECT_EQ(loadUseDistanceInBlock(bb, 0), 2u);
}

// -------------------------------------------------------------- generator

TEST(GeneratorTest, ProducesValidLaidOutProgram)
{
    GenProfile prof;
    prof.seed = 42;
    prof.staticInsts = 3000;
    const Program prog = generateProgram(prof);
    EXPECT_NO_THROW(prog.validate());
    EXPECT_TRUE(prog.laidOut());
    EXPECT_GT(prog.numBlocks(), 50u);
    // Static size lands in the right ballpark.
    EXPECT_GT(prog.staticInstCount(), 1500u);
    EXPECT_LT(prog.staticInstCount(), 9000u);
}

TEST(GeneratorTest, DeterministicForSeed)
{
    GenProfile prof;
    prof.seed = 7;
    prof.staticInsts = 1500;
    const Program a = generateProgram(prof);
    const Program b = generateProgram(prof);
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    EXPECT_EQ(a.staticInstCount(), b.staticInstCount());
    EXPECT_EQ(a.disassemble(), b.disassemble());
}

TEST(GeneratorTest, DifferentSeedsDiffer)
{
    GenProfile prof;
    prof.staticInsts = 1500;
    prof.seed = 1;
    const Program a = generateProgram(prof);
    prof.seed = 2;
    const Program b = generateProgram(prof);
    EXPECT_NE(a.disassemble(), b.disassemble());
}

TEST(GeneratorTest, HasAllTerminatorKinds)
{
    GenProfile prof;
    prof.seed = 11;
    prof.staticInsts = 8000;
    const Program prog = generateProgram(prof);
    std::set<TermKind> kinds;
    for (BlockId b = 0; b < prog.numBlocks(); ++b)
        kinds.insert(prog.block(b).term);
    EXPECT_TRUE(kinds.count(TermKind::CondBranch));
    EXPECT_TRUE(kinds.count(TermKind::Call));
    EXPECT_TRUE(kinds.count(TermKind::Return));
    EXPECT_TRUE(kinds.count(TermKind::Jump));
    EXPECT_TRUE(kinds.count(TermKind::FallThrough));
}

TEST(GeneratorTest, CallGraphIsAcyclic)
{
    GenProfile prof;
    prof.seed = 13;
    prof.staticInsts = 5000;
    const Program prog = generateProgram(prof);
    // Proc entry of a call target must belong to a later procedure:
    // verify call targets are procedure entries and targets of calls
    // from earlier blocks have higher ids (acyclic by construction).
    std::set<BlockId> entries(prog.procEntries().begin(),
                              prog.procEntries().end());
    for (BlockId b = 0; b < prog.numBlocks(); ++b) {
        const auto &bb = prog.block(b);
        if (bb.term != TermKind::Call)
            continue;
        EXPECT_TRUE(entries.count(bb.target))
            << "call target is not a procedure entry";
        EXPECT_GT(bb.target, b) << "call goes backward";
    }
}

TEST(GeneratorTest, BackwardBranchesHaveTripProfiles)
{
    GenProfile prof;
    prof.seed = 17;
    prof.staticInsts = 4000;
    prof.meanTrip = 9.0;
    const Program prog = generateProgram(prof);
    std::size_t backward = 0;
    for (BlockId b = 0; b < prog.numBlocks(); ++b) {
        const auto &bb = prog.block(b);
        if (bb.term == TermKind::CondBranch && bb.profile.backward) {
            ++backward;
            EXPECT_LE(bb.target, b);
            EXPECT_GE(bb.profile.meanTrip, 1.0);
        }
    }
    EXPECT_GT(backward, 5u);
}

TEST(GeneratorTest, MemoryInstructionsCarryAddrClass)
{
    GenProfile prof;
    prof.seed = 19;
    prof.staticInsts = 4000;
    const Program prog = generateProgram(prof);
    std::size_t mem = 0;
    for (BlockId b = 0; b < prog.numBlocks(); ++b) {
        for (const auto &inst : prog.block(b).insts) {
            if (isMem(inst.op)) {
                ++mem;
                EXPECT_NE(inst.addrClass, AddrClass::None);
            } else {
                EXPECT_EQ(inst.addrClass, AddrClass::None);
            }
        }
    }
    EXPECT_GT(mem, 500u);
}

// --------------------------------------------------------------- verifier

TEST(VerifierTest, CleanProgramPasses)
{
    const auto prog = makeTinyProgram();
    // makeTinyProgram reads r8..r10 and r24/25 without defs — build a
    // genuinely clean one instead.
    Program clean;
    BasicBlock b0;
    b0.insts.push_back(
        Instruction::makeAluImm(Opcode::ADDIU, 8, reg::zero, 1));
    b0.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 8, 8));
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    clean.addBlock(std::move(b0));
    clean.layout();
    const auto report = verifyProgram(clean);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.reachableBlocks, 1u);
    (void)prog;
}

TEST(VerifierTest, DetectsUnreachableBlock)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    prog.addBlock(std::move(b0));
    BasicBlock orphan;
    orphan.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    orphan.term = TermKind::Return;
    prog.addBlock(std::move(orphan));
    prog.layout();

    const auto report = verifyProgram(prog);
    EXPECT_EQ(report.count(VerifierIssue::Kind::UnreachableBlock), 1u);
    EXPECT_EQ(report.reachableBlocks, 1u);
}

TEST(VerifierTest, DetectsReadBeforeAnyDef)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 8, 8));
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    prog.addBlock(std::move(b0));
    prog.layout();

    const auto report = verifyProgram(prog);
    EXPECT_EQ(report.count(VerifierIssue::Kind::ReadBeforeAnyDef), 1u);
    EXPECT_EQ(report.issues[0].reg, 8);
}

TEST(VerifierTest, PreciousRegistersAreAssumedInitialized)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    b0.insts.push_back(
        Instruction::makeStore(8, reg::sp, 0, AddrClass::Stack));
    b0.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b0.term = TermKind::Return;
    prog.addBlock(std::move(b0));
    prog.layout();
    EXPECT_TRUE(verifyProgram(prog).clean());
}

TEST(VerifierTest, DetectsCallToNonEntry)
{
    Program prog;
    BasicBlock b0;
    b0.insts.push_back(Instruction::makeJump(Opcode::JAL));
    b0.term = TermKind::Call;
    b0.target = 1;
    b0.fallthrough = 1;
    prog.addBlock(std::move(b0));
    BasicBlock b1;
    b1.insts.push_back(
        Instruction::makeJumpRegister(Opcode::JR, reg::ra));
    b1.term = TermKind::Return;
    prog.addBlock(std::move(b1));
    prog.addProcEntry(0); // B1 is NOT registered as an entry
    prog.layout();

    const auto report = verifyProgram(prog);
    EXPECT_EQ(report.count(VerifierIssue::Kind::CallToNonEntry), 1u);
}

TEST(VerifierTest, GeneratedSuiteIsClean)
{
    // Quality gate: every generated benchmark program must verify
    // clean — full reachability, no ghost register reads, call
    // discipline, and a return in every procedure.
    for (std::uint64_t seed : {3u, 14u}) {
        GenProfile prof;
        prof.seed = seed;
        prof.staticInsts = 6000;
        const Program prog = generateProgram(prof);
        const auto report = verifyProgram(prog);
        EXPECT_TRUE(report.clean())
            << "seed " << seed << ": " <<
            (report.issues.empty() ? "" : report.issues[0].message);
        EXPECT_EQ(report.reachableBlocks, prog.numBlocks());
    }
}

} // namespace
} // namespace pipecache::isa
