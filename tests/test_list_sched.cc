/**
 * @file
 * Tests for the basic-block list scheduler and the trace serializer.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sched/list_sched.hh"
#include "sched/load_sched.hh"
#include "trace/benchmark.hh"
#include "trace/trace_serialize.hh"
#include "util/logging.hh"

namespace pipecache::sched {
namespace {

using isa::AddrClass;
using isa::BasicBlock;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using isa::TermKind;
namespace reg = isa::reg;

// ------------------------------------------------------- list scheduler

BasicBlock
blockOf(std::vector<Instruction> insts)
{
    BasicBlock bb;
    bb.insts = std::move(insts);
    bb.term = TermKind::FallThrough;
    bb.fallthrough = 0;
    return bb;
}

TEST(ListSchedTest, PermutationIsValid)
{
    const auto bb = blockOf({
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global),
        Instruction::makeAlu(Opcode::ADDU, 9, 8, 10),
        Instruction::makeAlu(Opcode::SUBU, 11, 12, 13),
        Instruction::makeStore(9, reg::sp, 0, AddrClass::Stack),
    });
    const auto sched = listScheduleBlock(bb, 2);
    ASSERT_EQ(sched.order.size(), bb.size());
    std::vector<bool> seen(bb.size(), false);
    for (auto idx : sched.order) {
        ASSERT_LT(idx, bb.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(ListSchedTest, FillsLoadDelayWithIndependentWork)
{
    // lw; use; indep; indep  ->  scheduler moves the independent work
    // between the load and its consumer, eliminating the stall.
    const auto bb = blockOf({
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global),
        Instruction::makeAlu(Opcode::ADDU, 9, 8, 10),
        Instruction::makeAlu(Opcode::SUBU, 11, 12, 13),
        Instruction::makeAlu(Opcode::XOR, 14, 12, 13),
    });
    const auto sched = listScheduleBlock(bb, 2);
    EXPECT_EQ(sched.localStalls, 0u);
    // The consumer (index 1) must come after both fillers.
    std::size_t pos_consumer = 0;
    for (std::size_t p = 0; p < sched.order.size(); ++p)
        if (sched.order[p] == 1)
            pos_consumer = p;
    EXPECT_EQ(pos_consumer, 3u);
}

TEST(ListSchedTest, StallsWhenNothingToFill)
{
    const auto bb = blockOf({
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global),
        Instruction::makeAlu(Opcode::ADDU, 9, 8, 10),
    });
    const auto sched = listScheduleBlock(bb, 3);
    EXPECT_EQ(sched.localStalls, 3u);
}

TEST(ListSchedTest, RespectsDependences)
{
    // A chain: each instruction depends on the previous; order must
    // be preserved exactly.
    const auto bb = blockOf({
        Instruction::makeAlu(Opcode::ADDU, 8, 9, 10),
        Instruction::makeAlu(Opcode::SUBU, 11, 8, 10),
        Instruction::makeAlu(Opcode::XOR, 12, 11, 10),
    });
    const auto sched = listScheduleBlock(bb, 2);
    EXPECT_EQ(sched.order, (std::vector<std::uint16_t>{0, 1, 2}));
}

TEST(ListSchedTest, CtiStaysLast)
{
    BasicBlock bb;
    bb.insts.push_back(
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global));
    bb.insts.push_back(Instruction::makeAlu(Opcode::ADDU, 9, 8, 10));
    bb.insts.push_back(Instruction::makeBranch(Opcode::BNE, 24, 25));
    bb.term = TermKind::CondBranch;
    bb.target = 0;
    bb.fallthrough = 1;
    const auto sched = listScheduleBlock(bb, 3);
    EXPECT_EQ(sched.order.back(), 2u);
}

TEST(ListSchedTest, StoresKeepTheirOrderLoadsCross)
{
    const auto bb = blockOf({
        Instruction::makeStore(9, reg::sp, 0, AddrClass::Stack),
        Instruction::makeStore(10, reg::sp, 4, AddrClass::Stack),
        Instruction::makeLoad(8, reg::gp, 0, AddrClass::Global),
        Instruction::makeAlu(Opcode::ADDU, 11, 8, 12),
    });
    const auto sched = listScheduleBlock(bb, 3);
    // Store order preserved.
    std::size_t s0 = 0;
    std::size_t s1 = 0;
    std::size_t load_pos = 0;
    for (std::size_t p = 0; p < sched.order.size(); ++p) {
        if (sched.order[p] == 0)
            s0 = p;
        if (sched.order[p] == 1)
            s1 = p;
        if (sched.order[p] == 2)
            load_pos = p;
    }
    EXPECT_LT(s0, s1);
    // The load hoists above the stores (perfect disambiguation) to
    // hide its latency behind them.
    EXPECT_LT(load_pos, s1);
}

TEST(ListSchedTest, TraceLevelEvaluationBracketsAnalyticModel)
{
    const auto &bench = trace::findBenchmark("espresso");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 60000;
    const auto trace = recordTrace(prog, dgen, ec);

    const LoadDelayStats analytic = analyzeLoadDelays(prog, trace);

    for (std::uint32_t l = 1; l <= 3; ++l) {
        const auto real = evaluateListScheduling(prog, trace, l);
        ASSERT_EQ(real.insts, trace.instCount);

        const double analytic_static = static_cast<double>(
            analytic.totalDelayCycles(l, false));
        const double scheduled =
            static_cast<double>(real.stallCycles);

        // The analytic static model is the paper's abstraction of
        // exactly this code motion: the two must agree within a
        // small factor. (The list scheduler can also hoist address
        // computations, which the analytic c cannot see, so it may
        // land below; chained in-block consumers push it above.)
        EXPECT_LT(scheduled, 2.5 * std::max(analytic_static, 1.0))
            << "l=" << l;
        EXPECT_GT(scheduled, 0.2 * analytic_static) << "l=" << l;
    }
}

TEST(ListSchedTest, ZeroSlotsNeverStall)
{
    const auto &bench = trace::findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 20000;
    const auto trace = recordTrace(prog, dgen, ec);
    EXPECT_EQ(evaluateListScheduling(prog, trace, 0).stallCycles, 0u);
}

} // namespace
} // namespace pipecache::sched

// ---------------------------------------------------------- serializer

namespace pipecache::trace {
namespace {

void
nullSink(const std::string &)
{
}

RecordedTrace
sampleTrace()
{
    const auto &bench = findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    DataAddressGenerator dgen(bench.dataConfig(0));
    ExecConfig ec;
    ec.maxInsts = 5000;
    return recordTrace(prog, dgen, ec);
}

TEST(TraceSerializeTest, RoundTrip)
{
    const auto original = sampleTrace();
    std::stringstream buffer;
    saveTrace(buffer, original);
    const auto loaded = loadTrace(buffer);

    EXPECT_EQ(loaded.instCount, original.instCount);
    ASSERT_EQ(loaded.blocks.size(), original.blocks.size());
    ASSERT_EQ(loaded.memRefs.size(), original.memRefs.size());
    for (std::size_t i = 0; i < original.blocks.size(); ++i) {
        EXPECT_EQ(loaded.blocks[i].block, original.blocks[i].block);
        EXPECT_EQ(loaded.blocks[i].taken, original.blocks[i].taken);
        EXPECT_EQ(loaded.blocks[i].memBegin,
                  original.blocks[i].memBegin);
    }
    for (std::size_t i = 0; i < original.memRefs.size(); ++i) {
        EXPECT_EQ(loaded.memRefs[i].addr, original.memRefs[i].addr);
        EXPECT_EQ(loaded.memRefs[i].pos, original.memRefs[i].pos);
        EXPECT_EQ(loaded.memRefs[i].store, original.memRefs[i].store);
    }
}

TEST(TraceSerializeTest, FileRoundTrip)
{
    const auto original = sampleTrace();
    const std::string path =
        ::testing::TempDir() + "/pipecache.trace";
    saveTraceFile(path, original);
    const auto loaded = loadTraceFile(path);
    EXPECT_EQ(loaded.instCount, original.instCount);
    EXPECT_EQ(loaded.blocks.size(), original.blocks.size());
    std::remove(path.c_str());
}

TEST(TraceSerializeTest, DetectsBadMagic)
{
    setLogSink(nullSink);
    std::stringstream buffer;
    buffer << "this is not a trace file at all, not even close";
    EXPECT_THROW(loadTrace(buffer), std::runtime_error);
    setLogSink(nullptr);
}

TEST(TraceSerializeTest, DetectsTruncation)
{
    setLogSink(nullSink);
    const auto original = sampleTrace();
    std::stringstream buffer;
    saveTrace(buffer, original);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream half(bytes);
    EXPECT_THROW(loadTrace(half), std::runtime_error);
    setLogSink(nullptr);
}

TEST(TraceSerializeTest, DetectsCorruption)
{
    setLogSink(nullSink);
    const auto original = sampleTrace();
    std::stringstream buffer;
    saveTrace(buffer, original);
    std::string bytes = buffer.str();
    bytes[bytes.size() / 2] ^= 0x5a; // flip bits mid-payload
    std::stringstream corrupt(bytes);
    EXPECT_THROW(loadTrace(corrupt), std::runtime_error);
    setLogSink(nullptr);
}

} // namespace
} // namespace pipecache::trace
