/**
 * @file
 * Tests for the parallel sweep engine: bit-identical determinism
 * across thread counts, exactly-once memoized evaluation, input-order
 * results, serial/parallel experiment parity, and the JSON/CSV sinks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/experiments.hh"
#include "sweep/result_sink.hh"
#include "sweep/sweep_engine.hh"
#include "util/logging.hh"

namespace pipecache::sweep {
namespace {

core::SuiteConfig
tinySuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0; // floor: 20k insts per benchmark
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

/** A fig3-style grid at reduced size: (L1-I size × b). */
std::vector<core::DesignPoint>
smallGrid()
{
    std::vector<core::DesignPoint> points;
    for (std::uint32_t kw : {1u, 2u, 4u}) {
        for (std::uint32_t b = 0; b <= 3; ++b) {
            core::DesignPoint p;
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            p.loadSlots = 0;
            points.push_back(p);
        }
    }
    return points;
}

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Compare two metric sets bit-for-bit. */
void
expectIdentical(const core::PointMetrics &a, const core::PointMetrics &b)
{
    EXPECT_EQ(bits(a.cpi), bits(b.cpi));
    EXPECT_EQ(bits(a.branchCpi), bits(b.branchCpi));
    EXPECT_EQ(bits(a.loadCpi), bits(b.loadCpi));
    EXPECT_EQ(bits(a.iMissCpi), bits(b.iMissCpi));
    EXPECT_EQ(bits(a.dMissCpi), bits(b.dMissCpi));
    EXPECT_EQ(bits(a.l1iMissRate), bits(b.l1iMissRate));
    EXPECT_EQ(bits(a.l1dMissRate), bits(b.l1dMissRate));
    EXPECT_EQ(bits(a.tCpuNs), bits(b.tCpuNs));
    EXPECT_EQ(bits(a.tIsideNs), bits(b.tIsideNs));
    EXPECT_EQ(bits(a.tDsideNs), bits(b.tDsideNs));
    EXPECT_EQ(bits(a.tpiNs), bits(b.tpiNs));
}

TEST(SweepEngineTest, BitIdenticalAcrossThreadCounts)
{
    const auto points = smallGrid();

    // Fresh model per engine: nothing shared except determinism.
    std::vector<std::vector<SweepRecord>> runs;
    std::vector<std::string> jsons;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        SweepOptions opts;
        opts.threads = threads;
        opts.grain = 1;
        SweepEngine engine(tpi, opts);
        runs.push_back(engine.sweep(points));
        jsons.push_back(jsonString("grid", runs.back(),
                                   engine.stats()));
    }

    for (std::size_t run = 1; run < runs.size(); ++run) {
        ASSERT_EQ(runs[run].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i) {
            expectIdentical(runs[run][i].metrics, runs[0][i].metrics);
            EXPECT_EQ(runs[run][i].cacheHit, runs[0][i].cacheHit);
            EXPECT_EQ(runs[run][i].point, runs[0][i].point);
        }
        // Serialized output must be byte-identical, cache-hit
        // metadata included (wall times are excluded by default).
        EXPECT_EQ(jsons[run], jsons[0]);
    }
}

TEST(SweepEngineTest, ResultsComeBackInInputOrder)
{
    auto points = smallGrid();
    std::reverse(points.begin(), points.end());

    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);
    const auto records = engine.sweep(points);
    ASSERT_EQ(records.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(records[i].point, points[i]);
}

TEST(SweepEngineTest, RepeatedSweepIsAllHitsAndIdentical)
{
    const auto points = smallGrid();
    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);

    const auto first = engine.sweep(points);
    EXPECT_EQ(engine.stats().cacheMisses, points.size());
    EXPECT_EQ(engine.stats().cacheHits, 0u);

    const auto second = engine.sweep(points);
    // 100% hits: every point served from the memo cache.
    EXPECT_EQ(engine.stats().cacheMisses, points.size());
    EXPECT_EQ(engine.stats().cacheHits, points.size());
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(second[i].cacheHit);
        expectIdentical(second[i].metrics, first[i].metrics);
    }
}

TEST(SweepEngineTest, DuplicatesWithinOneSweepEvaluateOnce)
{
    auto points = smallGrid();
    const std::size_t unique = points.size();
    // Append the whole grid again: every duplicate is a hit.
    auto dup = points;
    points.insert(points.end(), dup.begin(), dup.end());

    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 2;
    SweepEngine engine(tpi, opts);
    const auto records = engine.sweep(points);
    EXPECT_EQ(engine.stats().cacheMisses, unique);
    EXPECT_EQ(engine.stats().cacheHits, unique);
    for (std::size_t i = 0; i < unique; ++i) {
        EXPECT_FALSE(records[i].cacheHit);
        EXPECT_TRUE(records[i + unique].cacheHit);
        expectIdentical(records[i].metrics,
                        records[i + unique].metrics);
    }
}

TEST(SweepEngineTest, MatchesSerialMemoizedEvaluation)
{
    const auto points = smallGrid();

    core::CpiModel serial_cpi(tinySuite());
    core::TpiModel serial_tpi(serial_cpi);
    core::SerialEvaluator serial(serial_tpi);
    const auto serial_metrics = serial.evaluateBatch(points);

    core::CpiModel par_cpi(tinySuite());
    core::TpiModel par_tpi(par_cpi);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 1;
    SweepEngine engine(par_tpi, opts);
    const auto par_metrics = engine.evaluateBatch(points);

    ASSERT_EQ(par_metrics.size(), serial_metrics.size());
    for (std::size_t i = 0; i < serial_metrics.size(); ++i)
        expectIdentical(par_metrics[i], serial_metrics[i]);
}

TEST(SweepEngineTest, ExperimentsThroughEngineMatchSerial)
{
    core::CpiModel serial_model(tinySuite());
    const std::string serial_fig3 =
        core::experiments::fig3(serial_model).render();
    const std::string serial_fig4 =
        core::experiments::fig4(serial_model).render();
    const std::string serial_table6 =
        core::experiments::table6().render();

    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);
    EXPECT_EQ(core::experiments::fig3(engine).render(), serial_fig3);
    // fig4 shares fig3's grid: served entirely from the memo cache.
    const std::uint64_t misses = engine.stats().cacheMisses;
    EXPECT_EQ(core::experiments::fig4(engine).render(), serial_fig4);
    EXPECT_EQ(engine.stats().cacheMisses, misses);
    EXPECT_EQ(core::experiments::table6(engine).render(),
              serial_table6);
    EXPECT_EQ(engine.stats().cacheMisses, misses);
}

TEST(SweepEngineTest, OptimizerThroughEngineMatchesSerial)
{
    core::DesignPoint start;
    start.l1iSizeKW = 2;
    start.l1dSizeKW = 2;
    core::OptimizerConfig config;
    config.maxSizeKW = 8;
    config.maxSteps = 6;

    core::CpiModel serial_cpi(tinySuite());
    core::TpiModel serial_tpi(serial_cpi);
    core::MultilevelOptimizer serial_opt(serial_tpi, config);
    const auto serial_steps = serial_opt.optimize(start);

    core::CpiModel par_cpi(tinySuite());
    core::TpiModel par_tpi(par_cpi);
    core::MultilevelOptimizer par_opt(par_tpi, config);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 1;
    SweepEngine engine(par_tpi, opts);
    par_opt.setEvaluator(&engine);
    const auto par_steps = par_opt.optimize(start);

    ASSERT_EQ(par_steps.size(), serial_steps.size());
    for (std::size_t i = 0; i < serial_steps.size(); ++i) {
        EXPECT_EQ(par_steps[i].point, serial_steps[i].point);
        EXPECT_EQ(bits(par_steps[i].tpi.tpiNs),
                  bits(serial_steps[i].tpi.tpiNs));
        EXPECT_EQ(par_steps[i].change, serial_steps[i].change);
    }
}

TEST(ResultSinkTest, JsonAndCsvShape)
{
    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 2;
    opts.grain = 1;
    SweepEngine engine(tpi, opts);

    std::vector<core::DesignPoint> points(2);
    points[1].branchSlots = 3;
    const auto records = engine.sweep(points);

    const std::string json =
        jsonString("unit", records, engine.stats());
    EXPECT_NE(json.find("\"sweep\": \"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"points\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"cache_misses\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"points_failed\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"tpi_ns\":"), std::string::npos);
    EXPECT_NE(json.find("\"cache_hit\":false"), std::string::npos);
    // Volatile wall times stay out unless asked for.
    EXPECT_EQ(json.find("wall_ms"), std::string::npos);

    SinkOptions with_timing;
    with_timing.includeWallTimes = true;
    EXPECT_NE(jsonString("unit", records, engine.stats(), with_timing)
                  .find("\"wall_ms\":"),
              std::string::npos);

    const std::string csv = csvString(records);
    // Header + one line per record.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_EQ(csv.compare(0, 2, "b,"), 0);
    EXPECT_NE(csv.find(",tpi_ns,cache_hit,failed,error_kind"),
              std::string::npos);
}

TEST(SweepEngineTest, FailedChunkDrainsBeforeRethrow)
{
    // One bad point (non-power-of-two L1-I size) panics inside its
    // worker; with a test sink installed that panic throws instead of
    // aborting. Under --fail-fast, sweep() must drain every other
    // chunk before propagating — rethrowing early would unwind the
    // local work vector while surviving workers still write through
    // it (caught by the sanitize build), and must leave the engine
    // usable. (Default mode isolates the point instead; see
    // test_fault.cc.)
    setLogSink([](const std::string &) {});
    auto points = smallGrid();
    core::DesignPoint bad;
    bad.l1iSizeKW = 3;
    // Bad point first: its chunk fails (fast — the cache constructor
    // panics immediately) while the good chunks are still in flight,
    // which is exactly when an early rethrow would free `work` under
    // the surviving workers.
    points.insert(points.begin(), bad);

    core::CpiModel cpi(tinySuite());
    core::TpiModel tpi(cpi);
    SweepOptions opts;
    opts.threads = 4;
    opts.grain = 1;
    opts.failFast = true;
    SweepEngine engine(tpi, opts);
    EXPECT_THROW(engine.sweep(points), std::logic_error);

    // Workers survive a throwing chunk; a clean sweep still runs.
    const auto records = engine.sweep(smallGrid());
    EXPECT_EQ(records.size(), smallGrid().size());
    setLogSink(nullptr);
}

TEST(SweepEngineTest, EvaluationErrorsPropagate)
{
    // An unpreparable point must surface as a panic/death, not a
    // hang: PC_ASSERT aborts, so exercise the prepared-path guard
    // directly (death test keeps the pool out of the forked child).
    core::CpiModel cpi(tinySuite());
    core::DesignPoint p;
    EXPECT_DEATH(
        { (void)cpi.evaluatePrepared(p); },
        "not covered by CpiModel::prepare");
}

} // namespace
} // namespace pipecache::sweep
