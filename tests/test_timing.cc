/**
 * @file
 * Unit tests for timing/: SRAM/MCM macro-model, circuit IR, the
 * minimum-cycle-ratio analyzer, and the CPU circuit builder.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "timing/cpu_circuit.hh"
#include "timing/mcm_model.hh"
#include "timing/sram.hh"
#include "timing/timing_analyzer.hh"
#include "util/logging.hh"

namespace pipecache::timing {
namespace {

// ------------------------------------------------------------------- sram

TEST(SramTest, ChipCountRoundsUp)
{
    SramChip chip;
    chip.capacityKW = 2;
    EXPECT_EQ(chipsForCache(chip, 1), 1u);
    EXPECT_EQ(chipsForCache(chip, 2), 1u);
    EXPECT_EQ(chipsForCache(chip, 3), 2u);
    EXPECT_EQ(chipsForCache(chip, 32), 16u);
}

// -------------------------------------------------------------------- mcm

TEST(McmTest, K1CombinesLcAndRcTerms)
{
    McmParams params;
    params.z0Ohms = 50.0;
    params.cMcmPf = 2.0;
    params.rOhmPerMm = 0.0; // kill the RC term
    params.chipPitchMm = 10.0;
    EXPECT_NEAR(mcmK1Ns(params), 0.1, 1e-12); // 50 ohm * 2 pF = 100 ps

    params.rOhmPerMm = 0.05;
    params.cPfPerMm = 0.2;
    // + 2 * 100 mm^2 * 0.05 * 0.2 pF -> 2 ps.
    EXPECT_NEAR(mcmK1Ns(params), 0.102, 1e-12);
}

TEST(McmTest, DelayLinearInChips)
{
    McmParams params;
    const double k1 = mcmK1Ns(params);
    EXPECT_NEAR(mcmDelayNs(params, 5) - mcmDelayNs(params, 4), k1,
                1e-12);
    EXPECT_NEAR(mcmDelayNs(params, 1), params.k0Ns + k1, 1e-12);
}

TEST(McmTest, AccessTimeEquationSix)
{
    SramChip chip;
    McmParams params;
    const std::uint32_t n = chipsForCache(chip, 16);
    EXPECT_NEAR(l1AccessNs(chip, params, 16),
                chip.accessNs + 2.0 * (params.k0Ns + mcmK1Ns(params) * n),
                1e-12);
}

TEST(McmTest, AccessTimeMonotonicInSize)
{
    SramChip chip;
    McmParams params;
    double prev = 0.0;
    for (std::uint32_t kw : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        const double t = l1AccessNs(chip, params, kw);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

// ---------------------------------------------------------------- circuit

TEST(CircuitTest, BuildAndQuery)
{
    Circuit c;
    const auto a = c.addLatch("a");
    const auto b = c.addLatch("b");
    c.addPath(a, b, 2.0);
    c.addPath(b, a, 4.0);
    EXPECT_EQ(c.numNodes(), 2u);
    EXPECT_EQ(c.numEdges(), 2u);
    EXPECT_EQ(c.nodeName(a), "a");
    EXPECT_DOUBLE_EQ(c.maxEdgeDelay(), 4.0);
}

// ----------------------------------------------------------------- analyzer

TEST(AnalyzerTest, SelfLoopCycleTime)
{
    Circuit c;
    const auto a = c.addLatch("a");
    c.addPath(a, a, 3.5);
    const auto result = analyzeTiming(c);
    EXPECT_NEAR(result.minCycleNs, 3.5, 1e-2);
    EXPECT_DOUBLE_EQ(result.singlePhaseNs, 3.5);
    EXPECT_EQ(result.criticalCycle.size(), 1u);
}

TEST(AnalyzerTest, PipelinedLoopAveragesDelay)
{
    // Loop of 4 latches with total delay 10: optimal multiphase
    // clocking runs at 10/4 = 2.5ns even though the worst single
    // stage is 4ns... (stage delays 4,2,2,2).
    Circuit c;
    const auto a = c.addLatch("a");
    const auto b = c.addLatch("b");
    const auto d = c.addLatch("c");
    const auto e = c.addLatch("d");
    c.addPath(a, b, 4.0);
    c.addPath(b, d, 2.0);
    c.addPath(d, e, 2.0);
    c.addPath(e, a, 2.0);
    const auto result = analyzeTiming(c);
    EXPECT_NEAR(result.minCycleNs, 2.5, 1e-2);
    EXPECT_DOUBLE_EQ(result.singlePhaseNs, 4.0);
    EXPECT_EQ(result.criticalCycle.size(), 4u);
}

TEST(AnalyzerTest, MaxOverMultipleCycles)
{
    Circuit c;
    const auto a = c.addLatch("a");
    const auto b = c.addLatch("b");
    c.addPath(a, a, 2.0);            // ratio 2
    c.addPath(a, b, 5.0);            // part of ratio (5+1)/2 = 3
    c.addPath(b, a, 1.0);
    const auto result = analyzeTiming(c);
    EXPECT_NEAR(result.minCycleNs, 3.0, 1e-2);
    EXPECT_EQ(result.criticalCycle.size(), 2u);
}

TEST(AnalyzerTest, AcyclicGraphNeedsNoCycleTime)
{
    Circuit c;
    const auto a = c.addLatch("a");
    const auto b = c.addLatch("b");
    c.addPath(a, b, 7.0);
    const auto result = analyzeTiming(c);
    EXPECT_DOUBLE_EQ(result.minCycleNs, 0.0);
    EXPECT_DOUBLE_EQ(result.singlePhaseNs, 7.0);
    EXPECT_TRUE(result.criticalCycle.empty());
}

TEST(AnalyzerTest, PrecisionControlsTolerance)
{
    Circuit c;
    const auto a = c.addLatch("a");
    c.addPath(a, a, 3.14159);
    const auto coarse = analyzeTiming(c, 0.1);
    EXPECT_NEAR(coarse.minCycleNs, 3.14159, 0.11);
    const auto fine = analyzeTiming(c, 1e-5);
    EXPECT_NEAR(fine.minCycleNs, 3.14159, 1e-4);
}

// -------------------------------------------------------------- cpu circuit

TEST(CpuCircuitTest, AluLoopSetsFloor)
{
    CpuTimingParams params;
    // Tiny caches, deep pipeline: the ALU loop binds at 3.5ns.
    EXPECT_NEAR(cpuCycleNs(params, {1, 3}, {1, 3}), params.aluLoopNs(),
                0.02);
}

TEST(CpuCircuitTest, Depth0MatchesClosedForm)
{
    CpuTimingParams params;
    const double t_l1 = l1AccessNs(params.sram, params.mcm, 8);
    const double expected = params.agenNs + t_l1 + params.latchNs;
    EXPECT_NEAR(sideCycleNs(params, {8, 0}), expected, 0.02);
}

TEST(CpuCircuitTest, DepthDMatchesClosedForm)
{
    CpuTimingParams params;
    for (std::uint32_t d = 1; d <= 3; ++d) {
        const double t_l1 = l1AccessNs(params.sram, params.mcm, 32);
        const double loop =
            (params.agenNs + t_l1 + (d + 1) * params.latchNs) /
            (d + 1);
        const double expected = std::max(params.aluLoopNs(), loop);
        EXPECT_NEAR(sideCycleNs(params, {32, d}), expected, 0.02)
            << "depth " << d;
    }
}

TEST(CpuCircuitTest, SystemCycleIsMaxOfSides)
{
    CpuTimingParams params;
    const double both = cpuCycleNs(params, {32, 1}, {1, 3});
    const double iside = sideCycleNs(params, {32, 1});
    EXPECT_NEAR(both, iside, 0.02); // shallow big I-side binds
}

TEST(CpuCircuitTest, PaperTable6Anchors)
{
    CpuTimingParams params;
    // Depth 0: every size above 10ns.
    for (std::uint32_t kw : {1u, 8u, 32u})
        EXPECT_GT(sideCycleNs(params, {kw, 0}), 10.0);
    // Depth 3: ALU-limited at 3.5ns up to 32 KW.
    for (std::uint32_t kw : {1u, 8u, 32u})
        EXPECT_NEAR(sideCycleNs(params, {kw, 3}), 3.5, 0.05);
    // Depth sensitivity: each extra stage helps, monotonically.
    for (std::uint32_t kw : {1u, 8u, 32u}) {
        double prev = 1e9;
        for (std::uint32_t d = 0; d <= 3; ++d) {
            const double t = sideCycleNs(params, {kw, d});
            EXPECT_LE(t, prev + 1e-9);
            prev = t;
        }
    }
}

TEST(CpuCircuitTest, BuiltCircuitShape)
{
    CpuTimingParams params;
    const Circuit c = buildCpuCircuit(params, {8, 2}, {8, 3});
    // 1 ALU + (1 + 2) I-side + (1 + 3) D-side latches.
    EXPECT_EQ(c.numNodes(), 1u + 3u + 4u);
    // 1 ALU self-loop + 3 I edges + 4 D edges.
    EXPECT_EQ(c.numEdges(), 1u + 3u + 4u);
}

} // namespace
} // namespace pipecache::timing
