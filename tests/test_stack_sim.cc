/**
 * @file
 * The factored-evaluation correctness contract, in two layers:
 *
 *  1. cache::StackSimulator's single-pass miss counts are
 *     bit-identical to replaying the same stream through a real LRU
 *     cache::Cache, geometry by geometry, on randomized streams —
 *     including per-benchmark attribution, evictions, and dirty
 *     evictions.
 *  2. core::CpiModel::evaluateFactored() equals evaluatePrepared()
 *     field-for-field over randomized (b, l, size, assoc, scheme)
 *     grids, and the sweep engine's factored mode yields
 *     byte-identical JSON to the monolithic mode (and across thread
 *     counts) while performing strictly fewer trace replays than
 *     points.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/stack_sim.hh"
#include "core/cpi_model.hh"
#include "cpusim/cpi_engine.hh"
#include "core/tpi_model.hh"
#include "sweep/result_sink.hh"
#include "sweep/sweep_engine.hh"
#include "util/random.hh"

namespace pipecache {
namespace {

// ------------------------------------------------------- stack simulator

struct Access
{
    std::size_t bench;
    Addr addr;
    bool write;
};

/** Random stream with temporal locality (hot + cold regions). */
std::vector<Access>
randomStream(std::uint64_t seed, std::size_t benches, std::size_t n)
{
    Rng rng(seed);
    std::vector<Access> stream;
    stream.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Access a;
        a.bench = rng.next() % benches;
        // 3/4 of accesses hit a small hot region so LRU depth varies;
        // the rest roam, exercising evictions.
        const bool hot = (rng.next() & 3u) != 0;
        const std::uint32_t span = hot ? 0x4000u : 0x100000u;
        a.addr = static_cast<Addr>((rng.next() % span) & ~3u);
        a.write = (rng.next() % 10) < 3;
        stream.push_back(a);
    }
    return stream;
}

struct BenchCounts
{
    std::vector<Counter> readMisses;
    std::vector<Counter> writeMisses;
};

/** Exact reference: one LRU Cache per geometry, per-bench attribution
 *  counted from the hit/miss return of each access. */
BenchCounts
referenceReplay(cache::Cache &c, const std::vector<Access> &stream,
                std::size_t benches)
{
    BenchCounts counts;
    counts.readMisses.assign(benches, 0);
    counts.writeMisses.assign(benches, 0);
    for (const Access &a : stream) {
        if (!c.access(a.addr, a.write)) {
            if (a.write)
                ++counts.writeMisses[a.bench];
            else
                ++counts.readMisses[a.bench];
        }
    }
    return counts;
}

TEST(StackSimTest, MatchesRealLruCachePerGeometry)
{
    constexpr std::uint32_t kBlockBytes = 16;
    constexpr std::size_t kBenches = 3;
    std::vector<cache::StackGeometry> ladder;
    for (std::uint32_t log2Sets = 0; log2Sets <= 6; ++log2Sets)
        for (std::uint32_t assoc : {1u, 2u, 4u})
            ladder.push_back({log2Sets, assoc});

    for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        const std::vector<Access> stream =
            randomStream(seed, kBenches, 20000);

        cache::StackSimulator sim(kBlockBytes, ladder, kBenches);
        for (const Access &a : stream)
            sim.access(a.bench, a.addr, a.write);
        sim.finish();

        for (const cache::StackGeometry &g : ladder) {
            cache::CacheConfig config;
            config.sizeBytes = static_cast<std::uint64_t>(g.sets()) *
                               g.assoc * kBlockBytes;
            config.blockBytes = kBlockBytes;
            config.assoc = g.assoc;
            cache::Cache reference(config);
            const BenchCounts expect =
                referenceReplay(reference, stream, kBenches);

            const auto &got = sim.counts(g.log2Sets, g.assoc);
            for (std::size_t b = 0; b < kBenches; ++b) {
                EXPECT_EQ(got.readMisses[b], expect.readMisses[b])
                    << "seed " << seed << " sets 2^" << g.log2Sets
                    << " assoc " << g.assoc << " bench " << b;
                EXPECT_EQ(got.writeMisses[b], expect.writeMisses[b])
                    << "seed " << seed << " sets 2^" << g.log2Sets
                    << " assoc " << g.assoc << " bench " << b;
            }
            const cache::CacheStats &ref = reference.stats();
            EXPECT_EQ(got.readMissTotal(), ref.readMisses);
            EXPECT_EQ(got.writeMissTotal(), ref.writeMisses);
            EXPECT_EQ(got.evictions, ref.evictions)
                << "seed " << seed << " sets 2^" << g.log2Sets
                << " assoc " << g.assoc;
            EXPECT_EQ(got.dirtyEvictions, ref.dirtyEvictions)
                << "seed " << seed << " sets 2^" << g.log2Sets
                << " assoc " << g.assoc;
        }
    }
}

TEST(StackSimTest, TracksStreamTotals)
{
    cache::StackSimulator sim(16, {{2, 1}}, 2);
    sim.access(0, 0x100, false);
    sim.access(0, 0x200, true);
    sim.access(1, 0x300, false);
    sim.finish();
    EXPECT_EQ(sim.accesses(), 3u);
    EXPECT_EQ(sim.benchReads()[0], 1u);
    EXPECT_EQ(sim.benchWrites()[0], 1u);
    EXPECT_EQ(sim.benchReads()[1], 1u);
    EXPECT_EQ(sim.benchWrites()[1], 0u);
}

// --------------------------------------------- batching / dual engine

std::vector<cache::AccessRecord>
toRecords(const std::vector<Access> &stream)
{
    std::vector<cache::AccessRecord> records;
    records.reserve(stream.size());
    for (const Access &a : stream) {
        records.push_back({a.addr,
                           static_cast<std::uint16_t>(a.bench),
                           static_cast<std::uint8_t>(a.write ? 1 : 0)});
    }
    return records;
}

/** Every observable field of two finished simulators must agree. */
void
expectIdenticalResults(const cache::StackSimulator &got,
                       const cache::StackSimulator &want,
                       const std::vector<cache::StackGeometry> &ladder,
                       std::size_t benches, const char *label)
{
    EXPECT_EQ(got.accesses(), want.accesses()) << label;
    for (std::size_t b = 0; b < benches; ++b) {
        EXPECT_EQ(got.benchReads()[b], want.benchReads()[b])
            << label << " bench " << b;
        EXPECT_EQ(got.benchWrites()[b], want.benchWrites()[b])
            << label << " bench " << b;
    }
    for (const cache::StackGeometry &g : ladder) {
        const auto &gc = got.counts(g.log2Sets, g.assoc);
        const auto &wc = want.counts(g.log2Sets, g.assoc);
        for (std::size_t b = 0; b < benches; ++b) {
            EXPECT_EQ(gc.readMisses[b], wc.readMisses[b])
                << label << " sets 2^" << g.log2Sets << " assoc "
                << g.assoc << " bench " << b;
            EXPECT_EQ(gc.writeMisses[b], wc.writeMisses[b])
                << label << " sets 2^" << g.log2Sets << " assoc "
                << g.assoc << " bench " << b;
        }
        EXPECT_EQ(gc.evictions, wc.evictions)
            << label << " sets 2^" << g.log2Sets << " assoc "
            << g.assoc;
        EXPECT_EQ(gc.dirtyEvictions, wc.dirtyEvictions)
            << label << " sets 2^" << g.log2Sets << " assoc "
            << g.assoc;
    }
}

std::vector<cache::StackGeometry>
batchLadder()
{
    std::vector<cache::StackGeometry> ladder;
    for (std::uint32_t log2Sets = 0; log2Sets <= 5; ++log2Sets)
        for (std::uint32_t assoc : {1u, 2u, 4u})
            ladder.push_back({log2Sets, assoc});
    return ladder;
}

/** Unbatched vectorized replay of @p stream, finished. */
cache::StackSimulator
replayUnbatched(const std::vector<Access> &stream,
                const std::vector<cache::StackGeometry> &ladder,
                std::size_t benches)
{
    cache::StackSimulator sim(16, ladder, benches);
    for (const Access &a : stream)
        sim.access(a.bench, a.addr, a.write);
    sim.finish();
    return sim;
}

TEST(StackSimBatchTest, PartialFinalBatchMatchesUnbatched)
{
    const auto ladder = batchLadder();
    constexpr std::size_t kBenches = 2;
    const std::vector<Access> stream =
        randomStream(11, kBenches, 1000);
    const auto records = toRecords(stream);

    cache::StackSimulator batched(16, ladder, kBenches);
    std::size_t at = 0;
    while (at < records.size()) {
        // 256, 256, 256, then a partial 232-record tail.
        const std::size_t len =
            std::min<std::size_t>(256, records.size() - at);
        batched.accessBatch({records.data() + at, len});
        at += len;
    }
    batched.finish();

    const auto want = replayUnbatched(stream, ladder, kBenches);
    expectIdenticalResults(batched, want, ladder, kBenches,
                           "partial final batch");
}

TEST(StackSimBatchTest, SingleAccessStream)
{
    const auto ladder = batchLadder();
    const std::vector<Access> stream = {{0, 0x1230, true}};
    const auto records = toRecords(stream);

    cache::StackSimulator batched(16, ladder, 1);
    batched.accessBatch(records);
    batched.finish();

    const auto want = replayUnbatched(stream, ladder, 1);
    expectIdenticalResults(batched, want, ladder, 1,
                           "single-access stream");
}

TEST(StackSimBatchTest, InterleavedBenchesAcrossBatchEdges)
{
    // Benchmarks strictly alternate, so every odd batch length cuts
    // between two benchmarks' neighboring accesses; attribution must
    // still land exactly as in the unbatched replay.
    const auto ladder = batchLadder();
    constexpr std::size_t kBenches = 3;
    Rng rng(23);
    std::vector<Access> stream;
    for (std::size_t i = 0; i < 2000; ++i) {
        Access a;
        a.bench = i % kBenches;
        a.addr = static_cast<Addr>(rng.nextRange(0x8000) & ~3u);
        a.write = rng.nextBool(0.4);
        stream.push_back(a);
    }
    const auto records = toRecords(stream);

    cache::StackSimulator batched(16, ladder, kBenches);
    std::size_t at = 0;
    std::size_t len = 1;
    while (at < records.size()) {
        const std::size_t take =
            std::min<std::size_t>(len, records.size() - at);
        batched.accessBatch({records.data() + at, take});
        at += take;
        len = len % 7 + 3; // 1, 4, 7, 3, 6, 2, 5, ...
    }
    batched.finish();

    const auto want = replayUnbatched(stream, ladder, kBenches);
    expectIdenticalResults(batched, want, ladder, kBenches,
                           "interleaved benches");
}

/** Minimal downstream: every batch goes straight into one sim pair. */
struct SimPairSink final : cpusim::BatchStreamSink
{
    cache::StackSimulator *iSim = nullptr;
    cache::StackSimulator *dSim = nullptr;

    void instBatch(std::span<const cache::AccessRecord> r) override
    {
        iSim->accessBatch(r);
    }
    void dataBatch(std::span<const cache::AccessRecord> r) override
    {
        dSim->accessBatch(r);
    }
};

TEST(StackSimBatchTest, BufferedSinkFlushDeliversPartialBuffers)
{
    // 600 fetches and 300 data refs: two full instruction batches plus
    // an 88-record tail, one full data batch plus a 44-record tail.
    // Without the flush the tails would be lost; with it the counts
    // equal the unbatched replays exactly.
    const auto ladder = batchLadder();
    cache::StackSimulator iSim(16, ladder, 1);
    cache::StackSimulator dSim(16, ladder, 1);
    SimPairSink mux;
    mux.iSim = &iSim;
    mux.dSim = &dSim;
    cpusim::BufferedStreamSink buffer(mux);

    Rng rng(29);
    std::vector<Access> iStream;
    std::vector<Access> dStream;
    for (std::size_t i = 0; i < 600; ++i) {
        const Addr a = static_cast<Addr>(rng.nextRange(0x4000) & ~3u);
        iStream.push_back({0, a, false});
        buffer.instFetch(0, a);
        if (i < 300) {
            const Addr da =
                static_cast<Addr>(rng.nextRange(0x4000) & ~3u);
            const bool store = rng.nextBool(0.3);
            dStream.push_back({0, da, store});
            buffer.dataRef(0, da, store);
        }
    }
    EXPECT_EQ(buffer.flushes(), 3u); // full batches so far: 2 I + 1 D
    buffer.flush();
    EXPECT_EQ(buffer.flushes(), 5u); // + one partial tail per stream
    buffer.flush();
    EXPECT_EQ(buffer.flushes(), 5u); // empty buffers: no-op
    iSim.finish();
    dSim.finish();

    const auto iWant = replayUnbatched(iStream, ladder, 1);
    const auto dWant = replayUnbatched(dStream, ladder, 1);
    expectIdenticalResults(iSim, iWant, ladder, 1, "buffered I stream");
    expectIdenticalResults(dSim, dWant, ladder, 1, "buffered D stream");
}

TEST(StackSimBatchTest, ScalarReferenceEngineAgrees)
{
    const auto ladder = batchLadder();
    constexpr std::size_t kBenches = 2;
    for (const std::uint64_t seed : {3ull, 17ull}) {
        const std::vector<Access> stream =
            randomStream(seed, kBenches, 8000);
        cache::StackSimulator ref(
            16, ladder, kBenches,
            cache::StackSimImpl::ScalarReference);
        EXPECT_EQ(ref.impl(),
                  cache::StackSimImpl::ScalarReference);
        for (const Access &a : stream)
            ref.access(a.bench, a.addr, a.write);
        ref.finish();

        const auto want = replayUnbatched(stream, ladder, kBenches);
        expectIdenticalResults(ref, want, ladder, kBenches,
                               "scalar reference engine");
    }
}

// ------------------------------------------------------ factored vs exact

core::SuiteConfig
tinySuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0; // floor: 20k insts per benchmark
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

/** A grid crossing streams (b, scheme), sizes, assoc, and penalties. */
std::vector<core::DesignPoint>
mixedGrid()
{
    std::vector<core::DesignPoint> points;
    for (const std::uint32_t b : {0u, 2u}) {
        for (const std::uint32_t l : {0u, 2u}) {
            for (const std::uint32_t kw : {1u, 4u}) {
                for (const std::uint32_t assoc : {1u, 2u}) {
                    core::DesignPoint p;
                    p.branchSlots = b;
                    p.loadSlots = l;
                    p.l1iSizeKW = kw;
                    p.l1dSizeKW = 2;
                    p.assoc = assoc;
                    p.missPenaltyCycles = 6;
                    points.push_back(p);
                    p.branchScheme = cpusim::BranchScheme::Btb;
                    points.push_back(p);
                }
            }
        }
    }
    return points;
}

void
expectBreakdownEq(const cpusim::CpiBreakdown &a,
                  const cpusim::CpiBreakdown &b, const std::string &what)
{
    EXPECT_EQ(a.usefulInsts, b.usefulInsts) << what;
    EXPECT_EQ(a.fetches, b.fetches) << what;
    EXPECT_EQ(a.iStallCycles, b.iStallCycles) << what;
    EXPECT_EQ(a.dStallCycles, b.dStallCycles) << what;
    EXPECT_EQ(a.branchWastedFetches, b.branchWastedFetches) << what;
    EXPECT_EQ(a.btbPenaltyCycles, b.btbPenaltyCycles) << what;
    EXPECT_EQ(a.loadStallCycles, b.loadStallCycles) << what;
    EXPECT_EQ(a.ctis, b.ctis) << what;
    EXPECT_EQ(a.predTakenCtis, b.predTakenCtis) << what;
    EXPECT_EQ(a.predTakenCorrect, b.predTakenCorrect) << what;
    EXPECT_EQ(a.predNotTakenCtis, b.predNotTakenCtis) << what;
    EXPECT_EQ(a.predNotTakenCorrect, b.predNotTakenCorrect) << what;
}

void
expectCacheStatsEq(const cache::CacheStats &a, const cache::CacheStats &b,
                   const std::string &what)
{
    EXPECT_EQ(a.reads, b.reads) << what;
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.readMisses, b.readMisses) << what;
    EXPECT_EQ(a.writeMisses, b.writeMisses) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
    EXPECT_EQ(a.dirtyEvictions, b.dirtyEvictions) << what;
}

TEST(FactoredEvalTest, EqualsMonolithicEvaluationFieldForField)
{
    core::CpiModel model(tinySuite());
    const std::vector<core::DesignPoint> grid = mixedGrid();
    model.prepareFactored(grid);

    for (const core::DesignPoint &p : grid) {
        ASSERT_TRUE(model.factorable(p));
        const core::CpiResult exact = model.evaluatePrepared(p);
        const core::CpiResult fact = model.evaluateFactored(p);
        const std::string what = p.describe();

        expectBreakdownEq(fact.aggregate, exact.aggregate, what);
        ASSERT_EQ(fact.perBench.size(), exact.perBench.size());
        for (std::size_t i = 0; i < exact.perBench.size(); ++i) {
            expectBreakdownEq(fact.perBench[i], exact.perBench[i],
                              what + " bench " + std::to_string(i));
        }
        expectCacheStatsEq(fact.l1i, exact.l1i, what + " l1i");
        expectCacheStatsEq(fact.l1d, exact.l1d, what + " l1d");
        EXPECT_EQ(fact.btb.lookups, exact.btb.lookups) << what;
        EXPECT_EQ(fact.btb.hits, exact.btb.hits) << what;
        EXPECT_EQ(fact.btb.correct, exact.btb.correct) << what;
        EXPECT_EQ(fact.btb.allocations, exact.btb.allocations) << what;
        // Exact double equality: assembly runs the same arithmetic on
        // the same integers.
        EXPECT_EQ(fact.cpi(), exact.cpi()) << what;
        EXPECT_EQ(fact.weightedHarmonicMeanCpi(),
                  exact.weightedHarmonicMeanCpi())
            << what;
    }
}

TEST(FactoredEvalTest, NonFactorablePointsAreRouted)
{
    core::CpiModel model(tinySuite());
    core::DesignPoint base;

    core::DesignPoint wbuf = base;
    wbuf.writeThroughBuffer = true;
    EXPECT_FALSE(model.factorable(wbuf));

    core::DesignPoint random = base;
    random.repl = cache::Replacement::Random;
    EXPECT_FALSE(model.factorable(random));

    EXPECT_TRUE(model.factorable(base));
}

TEST(FactoredEvalTest, SweepFallsBackForNonFactorablePoints)
{
    // A grid mixing factorable points with write-buffer and Random-
    // replacement ones: the factored sweep must route the latter to
    // the exact replay and still match the monolithic sweep.
    std::vector<core::DesignPoint> grid;
    for (const std::uint32_t kw : {1u, 4u}) {
        core::DesignPoint p;
        p.l1iSizeKW = kw;
        p.loadSlots = 0;
        grid.push_back(p);
        p.writeThroughBuffer = true;
        grid.push_back(p);
        p.writeThroughBuffer = false;
        p.repl = cache::Replacement::Random;
        grid.push_back(p);
    }

    auto runSweep = [&](bool factored) {
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        sweep::SweepOptions opts;
        opts.threads = 2;
        opts.factored = factored;
        sweep::SweepEngine engine(tpi, opts);
        const auto records = engine.sweep(grid);
        return sweep::jsonString("grid", records, engine.stats(), {});
    };

    EXPECT_EQ(runSweep(true), runSweep(false));
}

TEST(FactoredEvalTest, SweepSavesReplaysAndIsThreadCountInvariant)
{
    // fig3-style grid: 3 sizes x 4 branch depths = 12 points but only
    // 4 distinct access streams, so the factored sweep must do
    // strictly fewer replays than points.
    std::vector<core::DesignPoint> grid;
    for (const std::uint32_t kw : {1u, 2u, 4u}) {
        for (std::uint32_t b = 0; b <= 3; ++b) {
            core::DesignPoint p;
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            p.loadSlots = 0;
            grid.push_back(p);
        }
    }

    std::string firstJson;
    std::uint64_t firstSaved = 0;
    for (const std::size_t threads : {1u, 4u}) {
        core::CpiModel cpi(tinySuite());
        core::TpiModel tpi(cpi);
        sweep::SweepOptions opts;
        opts.threads = threads;
        sweep::SweepEngine engine(tpi, opts);
        const auto records = engine.sweep(grid);

        EXPECT_GT(engine.stats().replaysSaved, 0u);
        EXPECT_LT(cpi.engineReplays(), grid.size());
        EXPECT_EQ(engine.stats().replaysSaved,
                  grid.size() - cpi.engineReplays());

        const std::string json =
            sweep::jsonString("grid", records, engine.stats(), {});
        if (threads == 1) {
            firstJson = json;
            firstSaved = engine.stats().replaysSaved;
        } else {
            EXPECT_EQ(json, firstJson);
            EXPECT_EQ(engine.stats().replaysSaved, firstSaved);
        }
    }
}

} // namespace
} // namespace pipecache
