/**
 * @file
 * Unit tests for cache/: the set-associative cache, refill model,
 * two-level hierarchy, and branch-target buffer.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/btb.hh"
#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/memory.hh"
#include "cache/three_c.hh"
#include "util/random.hh"
#include "util/logging.hh"

namespace pipecache::cache {
namespace {

void
nullSink(const std::string &)
{
}

CacheConfig
smallCache(std::uint32_t assoc = 1)
{
    CacheConfig config;
    config.sizeBytes = 256;
    config.blockBytes = 16;
    config.assoc = assoc;
    return config;
}

// ------------------------------------------------------------------ cache

TEST(CacheTest, ColdMissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x100c, false)); // same 16B block
    EXPECT_FALSE(cache.access(0x1010, false)); // next block
    EXPECT_EQ(cache.stats().readMisses, 2u);
    EXPECT_EQ(cache.stats().reads, 4u);
}

TEST(CacheTest, DirectMappedConflict)
{
    Cache cache(smallCache()); // 16 sets of 16B
    EXPECT_FALSE(cache.access(0x0000, false));
    EXPECT_FALSE(cache.access(0x0100, false)); // same set, evicts
    EXPECT_FALSE(cache.access(0x0000, false)); // conflict miss
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(CacheTest, TwoWayAvoidsPingPong)
{
    Cache cache(smallCache(2));
    EXPECT_FALSE(cache.access(0x0000, false));
    EXPECT_FALSE(cache.access(0x0100, false));
    EXPECT_TRUE(cache.access(0x0000, false));
    EXPECT_TRUE(cache.access(0x0100, false));
}

TEST(CacheTest, LruEvictsLeastRecent)
{
    Cache cache(smallCache(2)); // 8 sets x 2 ways
    cache.access(0x0000, false);
    cache.access(0x0200, false); // same set (set 0), way 2
    cache.access(0x0000, false); // touch way 1
    cache.access(0x0400, false); // evicts 0x0200 (LRU)
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0200));
    EXPECT_TRUE(cache.contains(0x0400));
}

TEST(CacheTest, DirtyEvictionTracking)
{
    Cache cache(smallCache());
    cache.access(0x0000, true);  // write-allocate, dirty
    cache.access(0x0100, false); // evicts dirty block
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
    cache.access(0x0200, false); // evicts clean block
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(CacheTest, WriteNoAllocateSkipsFill)
{
    auto config = smallCache();
    config.writeAllocate = false;
    Cache cache(config);
    EXPECT_FALSE(cache.access(0x0000, true));
    EXPECT_FALSE(cache.contains(0x0000));
    EXPECT_FALSE(cache.access(0x0000, false)); // still a read miss
    EXPECT_TRUE(cache.contains(0x0000));
}

TEST(CacheTest, FlushInvalidatesKeepsStats)
{
    Cache cache(smallCache());
    cache.access(0x0000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x0000));
    EXPECT_EQ(cache.stats().reads, 1u);
}

TEST(CacheTest, MissRateComputation)
{
    Cache cache(smallCache());
    cache.access(0x0000, false);
    cache.access(0x0000, false);
    cache.access(0x0000, true);
    cache.access(0x0000, true);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.25);
}

TEST(CacheTest, FullyAssociativeHoldsWholeCapacity)
{
    CacheConfig config;
    config.sizeBytes = 256;
    config.blockBytes = 16;
    config.assoc = 16; // fully associative
    Cache cache(config);
    for (Addr a = 0; a < 256; a += 16)
        cache.access(a + 0x5000, false);
    for (Addr a = 0; a < 256; a += 16)
        EXPECT_TRUE(cache.contains(a + 0x5000));
}

TEST(CacheTest, ConfigValidationRejectsBadShapes)
{
    setLogSink(nullSink);
    CacheConfig bad;
    bad.sizeBytes = 100; // not a power of two
    EXPECT_THROW(Cache cache(bad), std::logic_error);

    CacheConfig bad2;
    bad2.sizeBytes = 4096;
    bad2.blockBytes = 12;
    EXPECT_THROW(Cache cache(bad2), std::logic_error);
    setLogSink(nullptr);
}

TEST(CacheTest, RandomReplacementStaysInSet)
{
    auto config = smallCache(2);
    config.repl = Replacement::Random;
    Cache cache(config, 99);
    for (int i = 0; i < 100; ++i)
        cache.access(static_cast<Addr>(i) * 0x100, false);
    // All evictions happened; the cache still answers consistently.
    EXPECT_EQ(cache.stats().reads, 100u);
    EXPECT_GT(cache.stats().evictions, 50u);
}

// ---------------------------------------------------------------- three-c

/**
 * Naive array-of-lines LRU model — the shape the SoA lanes replaced.
 * Guards the lane layout refactor: Cache must stay access-for-access
 * identical to the obvious implementation.
 */
class NaiveLruCache
{
  public:
    explicit NaiveLruCache(const CacheConfig &config) : config_(config)
    {
        lines_.resize(config_.sets() * config_.assoc);
    }

    bool access(Addr addr, bool write)
    {
        ++tick_;
        stats_.reads += write ? 0 : 1;
        stats_.writes += write ? 1 : 0;
        const Addr tag = addr >> floorLog2(config_.blockBytes);
        const std::uint64_t set = tag % config_.sets();
        Line *const row = &lines_[set * config_.assoc];
        for (std::uint32_t w = 0; w < config_.assoc; ++w) {
            if (row[w].valid && row[w].tag == tag) {
                row[w].stamp = tick_;
                row[w].dirty = row[w].dirty || write;
                return true;
            }
        }
        stats_.readMisses += write ? 0 : 1;
        stats_.writeMisses += write ? 1 : 0;
        if (write && !config_.writeAllocate)
            return false;
        std::uint32_t victim = config_.assoc;
        for (std::uint32_t w = 0; w < config_.assoc; ++w) {
            if (!row[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == config_.assoc) {
            victim = 0;
            for (std::uint32_t w = 1; w < config_.assoc; ++w) {
                if (row[w].stamp < row[victim].stamp)
                    victim = w;
            }
            ++stats_.evictions;
            if (row[victim].dirty)
                ++stats_.dirtyEvictions;
        }
        row[victim] = {tag, tick_, true, write};
        return false;
    }

    const CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    CacheStats stats_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;
};

TEST(CacheTest, SoaLanesMatchNaiveModelAccessForAccess)
{
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        for (const bool writeAllocate : {true, false}) {
            CacheConfig config;
            config.sizeBytes = 4096;
            config.blockBytes = 16;
            config.assoc = assoc;
            config.writeAllocate = writeAllocate;
            Cache cache(config);
            NaiveLruCache naive(config);

            Rng rng(assoc * 31 + (writeAllocate ? 7 : 0));
            Addr cursor = 0;
            for (int i = 0; i < 50000; ++i) {
                cursor = rng.nextBool(0.7)
                             ? cursor + 4
                             : static_cast<Addr>(
                                   rng.nextRange(1 << 16) & ~3u);
                const bool write = rng.nextBool(0.3);
                ASSERT_EQ(cache.access(cursor, write),
                          naive.access(cursor, write))
                    << "assoc " << assoc << " access " << i;
            }
            const CacheStats &got = cache.stats();
            const CacheStats &want = naive.stats();
            EXPECT_EQ(got.reads, want.reads) << "assoc " << assoc;
            EXPECT_EQ(got.writes, want.writes) << "assoc " << assoc;
            EXPECT_EQ(got.readMisses, want.readMisses)
                << "assoc " << assoc;
            EXPECT_EQ(got.writeMisses, want.writeMisses)
                << "assoc " << assoc;
            EXPECT_EQ(got.evictions, want.evictions)
                << "assoc " << assoc;
            EXPECT_EQ(got.dirtyEvictions, want.dirtyEvictions)
                << "assoc " << assoc;
        }
    }
}

TEST(ThreeCTest, FirstTouchIsCompulsory)
{
    ThreeCCache cache(smallCache());
    EXPECT_EQ(cache.access(0x1000, false), MissClass::Compulsory);
    EXPECT_EQ(cache.access(0x1000, false), MissClass::Hit);
    EXPECT_EQ(cache.stats().compulsory, 1u);
}

TEST(ThreeCTest, ConflictVsCapacity)
{
    // 256B direct-mapped, 16B blocks: two addresses in the same set
    // ping-pong -> conflict (the fully-assoc shadow holds both).
    ThreeCCache cache(smallCache());
    cache.access(0x0000, false);
    cache.access(0x0100, false); // same set
    EXPECT_EQ(cache.access(0x0000, false), MissClass::Conflict);
    EXPECT_EQ(cache.access(0x0100, false), MissClass::Conflict);
    EXPECT_EQ(cache.stats().conflict, 2u);
    EXPECT_EQ(cache.stats().capacity, 0u);
}

TEST(ThreeCTest, CapacityWhenWorkingSetExceedsCache)
{
    // Touch 32 distinct blocks (512B) in a 256B cache, twice: second
    // pass misses even fully-associative -> capacity.
    ThreeCCache cache(smallCache());
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 512; a += 16)
            cache.access(a, false);
    EXPECT_EQ(cache.stats().compulsory, 32u);
    EXPECT_GT(cache.stats().capacity, 20u);
}

TEST(ThreeCTest, CountsAreConserved)
{
    ThreeCCache cache(smallCache());
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        cache.access(static_cast<Addr>(rng.nextRange(1 << 12)) * 4,
                     rng.nextBool(0.3));
    }
    const auto &s = cache.stats();
    EXPECT_EQ(s.accesses, 5000u);
    EXPECT_EQ(s.misses(), cache.cache().stats().misses());
    EXPECT_NEAR(s.fraction(s.compulsory) + s.fraction(s.capacity) +
                    s.fraction(s.conflict),
                1.0, 1e-12);
}

// ----------------------------------------------------------------- memory

TEST(MemoryTest, RefillPenaltyFormula)
{
    // The paper's penalties: 2-cycle startup + block/rate.
    const RefillConfig rate1{2, 1};
    const RefillConfig rate2{2, 2};
    const RefillConfig rate4{2, 4};
    EXPECT_EQ(rate1.penalty(64), 18u); // 16W at 1 W/cyc
    EXPECT_EQ(rate2.penalty(64), 10u); // 16W at 2 W/cyc
    EXPECT_EQ(rate4.penalty(64), 6u);  // 16W at 4 W/cyc
    EXPECT_EQ(rate4.penalty(16), 3u);  // 4W at 4 W/cyc
}

TEST(MemoryTest, PartialBeatRoundsUp)
{
    const RefillConfig no_startup{0, 4};
    EXPECT_EQ(no_startup.penalty(20), 2u); // 5 words, 2 beats
}

TEST(MemoryTest, MissPenaltyFactories)
{
    EXPECT_EQ(MissPenalty::flat(10).cycles(), 10u);
    const RefillConfig rate2{2, 2};
    EXPECT_EQ(MissPenalty::fromRefill(rate2, 16).cycles(), 4u);
}

// -------------------------------------------------------------- hierarchy

TEST(HierarchyTest, FlatPenaltyMode)
{
    HierarchyConfig config;
    config.l1i.sizeBytes = 1024;
    config.l1d.sizeBytes = 1024;
    config.flatPenalty = 7;
    CacheHierarchy h(config);

    EXPECT_EQ(h.accessInst(0x100), 7u);
    EXPECT_EQ(h.accessInst(0x100), 0u);
    EXPECT_EQ(h.accessData(0x100, false), 7u); // split: D is cold
    EXPECT_EQ(h.accessData(0x100, true), 0u);
    EXPECT_EQ(h.stats().l1iStallCycles, 7u);
    EXPECT_EQ(h.stats().l1dStallCycles, 7u);
    EXPECT_EQ(h.l2(), nullptr);
}

TEST(HierarchyTest, FullHierarchyL2HitAndMiss)
{
    HierarchyConfig config;
    config.l1i.sizeBytes = 1024;
    config.l1d.sizeBytes = 1024;
    config.flatPenalty.reset();
    // Big enough that the conflict loop below cannot alias into the
    // victim's L2 set.
    config.l2.sizeBytes = 65536;
    config.l2HitCycles = 10;
    config.memoryCycles = 40;
    CacheHierarchy h(config);

    // Cold: L1 miss + L2 miss.
    EXPECT_EQ(h.accessData(0x100, false), 50u);
    EXPECT_EQ(h.stats().l2Misses, 1u);
    // L1 hit.
    EXPECT_EQ(h.accessData(0x100, false), 0u);
    // Evict from L1 by conflict, L2 still holds it.
    for (Addr a = 0x1100; a < 0x9000; a += 0x400)
        h.accessData(a, false);
    const std::uint32_t stall = h.accessData(0x100, false);
    EXPECT_EQ(stall, 10u); // L1 conflict evicted it, L2 still has it
}

TEST(HierarchyTest, SplitL1NoInterference)
{
    HierarchyConfig config;
    config.l1i.sizeBytes = 1024;
    config.l1d.sizeBytes = 1024;
    config.flatPenalty = 5;
    CacheHierarchy h(config);
    h.accessInst(0x40);
    EXPECT_EQ(h.l1i().stats().misses(), 1u);
    EXPECT_EQ(h.l1d().stats().accesses(), 0u);
}

// -------------------------------------------------------------------- btb

BtbConfig
tinyBtb()
{
    BtbConfig config;
    config.entries = 16;
    return config;
}

TEST(BtbTest, MissOnTakenCostsAndAllocates)
{
    BranchTargetBuffer btb(tinyBtb());
    auto res = btb.lookup(0x1000);
    EXPECT_FALSE(res.hit);
    // Miss + taken: b+1 penalty, entry allocated.
    EXPECT_EQ(btb.resolve(res, 0x1000, true, 0x2000, 2), 3u);
    EXPECT_EQ(btb.stats().allocations, 1u);

    res = btb.lookup(0x1000);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.predictTaken);
    EXPECT_EQ(res.target, 0x2000u);
    // Correct direction and target: free.
    EXPECT_EQ(btb.resolve(res, 0x1000, true, 0x2000, 2), 0u);
}

TEST(BtbTest, MissOnNotTakenIsFree)
{
    BranchTargetBuffer btb(tinyBtb());
    auto res = btb.lookup(0x1000);
    EXPECT_EQ(btb.resolve(res, 0x1000, false, 0, 3), 0u);
    EXPECT_EQ(btb.stats().allocations, 0u);
    EXPECT_FALSE(btb.lookup(0x1000).hit);
}

TEST(BtbTest, TwoBitCounterHysteresis)
{
    BranchTargetBuffer btb(tinyBtb());
    auto res = btb.lookup(0x1000);
    btb.resolve(res, 0x1000, true, 0x2000, 1); // allocate, counter=2

    // One not-taken drops counter to 1: predicts not-taken.
    res = btb.lookup(0x1000);
    btb.resolve(res, 0x1000, false, 0, 1);
    res = btb.lookup(0x1000);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.predictTaken);

    // One taken brings it back to weakly taken.
    btb.resolve(res, 0x1000, true, 0x2000, 1);
    res = btb.lookup(0x1000);
    EXPECT_TRUE(res.predictTaken);
    btb.resolve(res, 0x1000, true, 0x2000, 1);
}

TEST(BtbTest, StaleTargetIsMispredict)
{
    BranchTargetBuffer btb(tinyBtb());
    auto res = btb.lookup(0x1000);
    btb.resolve(res, 0x1000, true, 0x2000, 2);

    res = btb.lookup(0x1000);
    ASSERT_TRUE(res.hit && res.predictTaken);
    // Same direction, different target (indirect jump).
    EXPECT_EQ(btb.resolve(res, 0x1000, true, 0x3000, 2), 3u);
    EXPECT_EQ(btb.stats().targetWrong, 1u);

    // The target was retrained.
    res = btb.lookup(0x1000);
    EXPECT_EQ(res.target, 0x3000u);
}

TEST(BtbTest, DirectionMispredictPenalty)
{
    BranchTargetBuffer btb(tinyBtb());
    auto res = btb.lookup(0x1000);
    btb.resolve(res, 0x1000, true, 0x2000, 2); // allocate

    res = btb.lookup(0x1000);
    EXPECT_EQ(btb.resolve(res, 0x1000, false, 0, 2), 3u);
    EXPECT_EQ(btb.stats().directionWrong, 1u);
}

TEST(BtbTest, CapacityEviction)
{
    BranchTargetBuffer btb(tinyBtb()); // 16 entries direct-mapped
    // Two CTIs mapping to the same entry (pc >> 2 mod 16).
    const Addr pc_a = 0x1000;
    const Addr pc_b = 0x1000 + 16 * 4;
    auto res = btb.lookup(pc_a);
    btb.resolve(res, pc_a, true, 0x2000, 1);
    res = btb.lookup(pc_b);
    btb.resolve(res, pc_b, true, 0x4000, 1); // evicts pc_a
    EXPECT_FALSE(btb.lookup(pc_a).hit);
}

TEST(BtbTest, StorageBudgetMatchesPaper)
{
    BtbConfig config; // 256 entries
    // Two 32b addresses + 2b per entry ~ 2 KB of SRAM.
    EXPECT_NEAR(static_cast<double>(config.storageBytes()), 2048.0,
                128.0);
}

TEST(BtbTest, ResolveToleratesEvictionBetweenLookupAndResolve)
{
    // Regression: deferred indirect-jump resolution can observe its
    // entry evicted by other CTIs (multiprogramming interleave). The
    // penalty must still be computed; only training is skipped.
    BranchTargetBuffer btb(tinyBtb()); // 16 entries direct-mapped
    auto res = btb.lookup(0x1000);
    btb.resolve(res, 0x1000, true, 0x2000, 2); // allocate

    auto pending = btb.lookup(0x1000); // hit, held pending
    ASSERT_TRUE(pending.hit);

    // Conflicting CTI evicts the pending entry.
    auto other = btb.lookup(0x1040);
    btb.resolve(other, 0x1040, true, 0x4000, 2);
    ASSERT_FALSE(btb.lookup(0x1000).hit); // really gone (extra lookup)

    // Resolving the stale result must not crash; direction was
    // predicted taken and it was taken with the stored target: free.
    EXPECT_EQ(btb.resolve(pending, 0x1000, true, pending.target, 2),
              0u);
}

TEST(BtbTest, FlushClearsEntries)
{
    BranchTargetBuffer btb(tinyBtb());
    auto res = btb.lookup(0x1000);
    btb.resolve(res, 0x1000, true, 0x2000, 1);
    btb.flush();
    EXPECT_FALSE(btb.lookup(0x1000).hit);
}

} // namespace
} // namespace pipecache::cache
