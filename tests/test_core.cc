/**
 * @file
 * Unit tests for core/: design points, the CPI model's artifact
 * management and memoization, TPI combination, and the optimizer.
 */

#include <gtest/gtest.h>

#include "core/cpi_model.hh"
#include "core/design_point.hh"
#include "core/optimizer.hh"
#include "core/sensitivity.hh"
#include "core/tpi_model.hh"

namespace pipecache::core {
namespace {

SuiteConfig
tinySuite()
{
    SuiteConfig config;
    config.scaleDivisor = 10000.0; // floor: 20k insts per benchmark
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

// ------------------------------------------------------------ design point

TEST(DesignPointTest, HierarchyConfigReflectsFields)
{
    DesignPoint p;
    p.l1iSizeKW = 4;
    p.l1dSizeKW = 16;
    p.blockWords = 8;
    p.assoc = 2;
    p.missPenaltyCycles = 18;
    const auto hc = p.hierarchyConfig();
    EXPECT_EQ(hc.l1i.sizeBytes, 16384u);
    EXPECT_EQ(hc.l1d.sizeBytes, 65536u);
    EXPECT_EQ(hc.l1i.blockBytes, 32u);
    EXPECT_EQ(hc.l1d.assoc, 2u);
    ASSERT_TRUE(hc.flatPenalty.has_value());
    EXPECT_EQ(*hc.flatPenalty, 18u);
}

TEST(DesignPointTest, EngineConfigReflectsFields)
{
    DesignPoint p;
    p.branchSlots = 3;
    p.loadSlots = 1;
    p.branchScheme = cpusim::BranchScheme::Btb;
    p.loadScheme = cpusim::LoadScheme::Dynamic;
    const auto ec = p.engineConfig();
    EXPECT_EQ(ec.branchSlots, 3u);
    EXPECT_EQ(ec.loadSlots, 1u);
    EXPECT_EQ(ec.branchScheme, cpusim::BranchScheme::Btb);
    EXPECT_EQ(ec.loadScheme, cpusim::LoadScheme::Dynamic);
}

TEST(DesignPointTest, EqualityAndHash)
{
    DesignPoint a;
    DesignPoint b;
    EXPECT_TRUE(a == b);
    EXPECT_EQ(DesignPointHash{}(a), DesignPointHash{}(b));
    b.l1dSizeKW *= 2;
    EXPECT_FALSE(a == b);
    b = a;
    b.loadScheme = cpusim::LoadScheme::Dynamic;
    EXPECT_FALSE(a == b);
}

TEST(DesignPointTest, DescribeMentionsEverything)
{
    DesignPoint p;
    p.branchSlots = 3;
    const std::string d = p.describe();
    EXPECT_NE(d.find("b=3"), std::string::npos);
    EXPECT_NE(d.find("squash"), std::string::npos);
    EXPECT_NE(d.find("KW"), std::string::npos);
}

// --------------------------------------------------------------- cpi model

TEST(CpiModelTest, SubsetSuiteSelection)
{
    CpiModel model(tinySuite());
    EXPECT_EQ(model.numBenchmarks(), 3u);
    EXPECT_EQ(model.suite()[0].name, "small");
    EXPECT_EQ(model.suite()[1].name, "linpack");
}

TEST(CpiModelTest, ArtifactsAreConsistent)
{
    CpiModel model(tinySuite());
    for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
        const auto &prog = model.program(i);
        const auto &trace = model.traceOf(i);
        EXPECT_NO_THROW(prog.validate());
        EXPECT_GE(trace.instCount, 20000u);
        // Every trace block id is valid for its program.
        for (const auto &ev : trace.blocks)
            ASSERT_LT(ev.block, prog.numBlocks());
        // Translation files cover every block.
        const auto &xlat = model.xlat(i, 2);
        EXPECT_EQ(xlat.numBlocks(), prog.numBlocks());
        EXPECT_EQ(xlat.delaySlots(), 2u);
    }
}

TEST(CpiModelTest, ScheduleCoversAllTraces)
{
    CpiModel model(tinySuite());
    const auto &sched = model.schedule();
    Counter total = 0;
    for (std::size_t i = 0; i < model.numBenchmarks(); ++i)
        total += model.traceOf(i).instCount;
    EXPECT_EQ(sched.totalInsts(), total);
}

TEST(CpiModelTest, EvaluateMemoizes)
{
    CpiModel model(tinySuite());
    DesignPoint p;
    const CpiResult &a = model.evaluate(p);
    const CpiResult &b = model.evaluate(p);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(CpiModelTest, DeterministicAcrossInstances)
{
    CpiModel m1(tinySuite());
    CpiModel m2(tinySuite());
    DesignPoint p;
    EXPECT_DOUBLE_EQ(m1.evaluate(p).cpi(), m2.evaluate(p).cpi());
}

TEST(CpiModelTest, HarmonicMeanIdentity)
{
    // Time-weighted harmonic mean of per-benchmark CPI equals the
    // aggregate cycles / instructions — the paper's metric identity.
    CpiModel model(tinySuite());
    DesignPoint p;
    p.branchSlots = 2;
    p.loadSlots = 2;
    const auto &res = model.evaluate(p);
    EXPECT_NEAR(res.weightedHarmonicMeanCpi(), res.cpi(), 1e-9);
}

TEST(CpiModelTest, CpiComponentsReactToDesign)
{
    CpiModel model(tinySuite());

    DesignPoint base;
    base.branchSlots = 0;
    base.loadSlots = 0;
    const double cpi0 = model.evaluate(base).cpi();

    DesignPoint more_slots = base;
    more_slots.branchSlots = 3;
    more_slots.loadSlots = 3;
    EXPECT_GT(model.evaluate(more_slots).cpi(), cpi0);

    DesignPoint bigger = base;
    bigger.l1iSizeKW *= 4;
    bigger.l1dSizeKW *= 4;
    EXPECT_LT(model.evaluate(bigger).cpi(), cpi0);

    DesignPoint pricier = base;
    pricier.missPenaltyCycles = 18;
    EXPECT_GT(model.evaluate(pricier).cpi(), cpi0);
}

TEST(CpiModelTest, LoadDelayStatsAggregate)
{
    CpiModel model(tinySuite());
    const auto &stats = model.loadDelayStats();
    EXPECT_GT(stats.totalLoads(), 10000u);
    // Dynamic scheduling hides at least as much as static.
    for (std::uint32_t l = 1; l <= 3; ++l)
        EXPECT_LE(stats.delayCyclesPerLoad(l, true),
                  stats.delayCyclesPerLoad(l, false));
}

// --------------------------------------------------------------- tpi model

TEST(TpiModelTest, TpiIsProductOfCpiAndCycle)
{
    CpiModel cpi_model(tinySuite());
    TpiModel tpi_model(cpi_model);
    DesignPoint p;
    p.branchSlots = 2;
    p.loadSlots = 2;
    const TpiResult r = tpi_model.evaluate(p);
    EXPECT_NEAR(r.tpiNs, r.cpi * r.tCpuNs, 1e-9);
    EXPECT_DOUBLE_EQ(r.tCpuNs, std::max(r.tIsideNs, r.tDsideNs));
    EXPECT_GE(r.tCpuNs, 3.5 - 1e-6);
}

TEST(TpiModelTest, AsymmetricDepthWastesCpiWithoutCycleGain)
{
    // The paper's Section 5 argument: pipelining one side deeper than
    // the other adds CPI but the slower side still sets the clock.
    CpiModel cpi_model(tinySuite());
    TpiModel tpi_model(cpi_model);

    DesignPoint balanced;
    balanced.branchSlots = 1;
    balanced.loadSlots = 1;
    DesignPoint lopsided = balanced;
    lopsided.loadSlots = 3; // D-side deeper, I-side still binds

    const TpiResult rb = tpi_model.evaluate(balanced);
    const TpiResult rl = tpi_model.evaluate(lopsided);
    EXPECT_DOUBLE_EQ(rb.tCpuNs, rl.tCpuNs);
    EXPECT_GT(rl.cpi, rb.cpi);
    EXPECT_GT(rl.tpiNs, rb.tpiNs);
}

TEST(TpiModelTest, CycleNsMatchesEvaluate)
{
    CpiModel cpi_model(tinySuite());
    TpiModel tpi_model(cpi_model);
    DesignPoint p;
    p.l1iSizeKW = 16;
    p.branchSlots = 1;
    EXPECT_NEAR(tpi_model.cycleNs(p), tpi_model.evaluate(p).tCpuNs,
                1e-9);
}

// --------------------------------------------------------------- optimizer

TEST(OptimizerTest, ImprovesFromBadStart)
{
    CpiModel cpi_model(tinySuite());
    TpiModel tpi_model(cpi_model);
    OptimizerConfig config;
    config.maxSizeKW = 16;
    MultilevelOptimizer opt(tpi_model, config);

    DesignPoint start;
    start.branchSlots = 0;
    start.loadSlots = 0;
    start.l1iSizeKW = 1;
    start.l1dSizeKW = 1;
    const auto steps = opt.optimize(start);

    ASSERT_GE(steps.size(), 2u);
    EXPECT_EQ(steps.front().change, "base");
    // Strictly improving trajectory.
    for (std::size_t i = 1; i < steps.size(); ++i) {
        EXPECT_LT(steps[i].tpi.tpiNs, steps[i - 1].tpi.tpiNs);
        EXPECT_FALSE(steps[i].change.empty());
    }
    // The unpipelined 1KW start is far from optimal.
    EXPECT_LT(steps.back().tpi.tpiNs, 0.7 * steps.front().tpi.tpiNs);
    // The optimum uses a pipelined cache (the paper's conclusion).
    EXPECT_GE(steps.back().point.branchSlots, 1u);
}

TEST(OptimizerTest, LocalOptimumIsStable)
{
    CpiModel cpi_model(tinySuite());
    TpiModel tpi_model(cpi_model);
    OptimizerConfig config;
    config.maxSizeKW = 16;
    MultilevelOptimizer opt(tpi_model, config);

    DesignPoint start;
    start.l1iSizeKW = 1;
    start.l1dSizeKW = 1;
    const auto first = opt.optimize(start);
    // Restarting from the optimum must terminate immediately.
    const auto second = opt.optimize(first.back().point);
    EXPECT_EQ(second.size(), 1u);
    EXPECT_NEAR(second.front().tpi.tpiNs, first.back().tpi.tpiNs,
                1e-9);
}

TEST(OptimizerTest, RespectsBounds)
{
    CpiModel cpi_model(tinySuite());
    TpiModel tpi_model(cpi_model);
    OptimizerConfig config;
    config.maxSlots = 2;
    config.maxSizeKW = 8;
    MultilevelOptimizer opt(tpi_model, config);

    DesignPoint start;
    start.l1iSizeKW = 2;
    start.l1dSizeKW = 2;
    start.branchSlots = 1;
    start.loadSlots = 1;
    for (const auto &step : opt.optimize(start)) {
        EXPECT_LE(step.point.branchSlots, 2u);
        EXPECT_LE(step.point.loadSlots, 2u);
        EXPECT_LE(step.point.l1iSizeKW, 8u);
        EXPECT_LE(step.point.l1dSizeKW, 8u);
    }
}

// -------------------------------------------------------- sensitivity

TEST(SensitivityTest, DefaultParametersBracketNominals)
{
    for (const auto &param : defaultTimingParameters()) {
        EXPECT_FALSE(param.values.empty());
        bool has_nominal = false;
        for (double v : param.values)
            has_nominal |= v == param.nominal;
        EXPECT_TRUE(has_nominal) << param.name;
        EXPECT_LT(param.values.front(), param.nominal) << param.name;
        EXPECT_GT(param.values.back(), param.nominal) << param.name;
    }
}

TEST(SensitivityTest, FindOptimumPrefersPipelining)
{
    CpiModel model(tinySuite());
    const auto opt =
        findOptimum(model, timing::CpuTimingParams{}, 10);
    EXPECT_GE(opt.depth, 2u);
    EXPECT_GE(opt.totalKW, 16u);
    EXPECT_GT(opt.tpiNs, 0.0);
    EXPECT_GE(opt.tCpuNs, 3.5 - 1e-9);
}

TEST(SensitivityTest, SweepReusesCpiAndStaysConclusive)
{
    CpiModel model(tinySuite());
    std::vector<TimingParameter> params = {
        {"latch", 0.4, {0.3, 0.4, 0.5},
         [](timing::CpuTimingParams &p, double v) { p.latchNs = v; }}};
    const auto rows = sensitivitySweep(model, params, 10);
    ASSERT_EQ(rows.size(), 3u);
    for (const auto &row : rows) {
        // The "pipelining wins" conclusion must survive the sweep.
        EXPECT_GE(row.optimum.depth, 2u) << row.value;
    }
    EXPECT_TRUE(rows[1].isNominal);
}

} // namespace
} // namespace pipecache::core
