file(REMOVE_RECURSE
  "CMakeFiles/din_cache_sim.dir/din_cache_sim.cpp.o"
  "CMakeFiles/din_cache_sim.dir/din_cache_sim.cpp.o.d"
  "din_cache_sim"
  "din_cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/din_cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
