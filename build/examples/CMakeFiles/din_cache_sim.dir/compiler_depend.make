# Empty compiler generated dependencies file for din_cache_sim.
# This may be replaced when dependencies are built.
