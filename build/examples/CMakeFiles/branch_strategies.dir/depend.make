# Empty dependencies file for branch_strategies.
# This may be replaced when dependencies are built.
