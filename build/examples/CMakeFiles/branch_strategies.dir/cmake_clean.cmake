file(REMOVE_RECURSE
  "CMakeFiles/branch_strategies.dir/branch_strategies.cpp.o"
  "CMakeFiles/branch_strategies.dir/branch_strategies.cpp.o.d"
  "branch_strategies"
  "branch_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
