file(REMOVE_RECURSE
  "CMakeFiles/unit_tests.dir/test_cache.cc.o"
  "CMakeFiles/unit_tests.dir/test_cache.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_core.cc.o"
  "CMakeFiles/unit_tests.dir/test_core.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_cpusim.cc.o"
  "CMakeFiles/unit_tests.dir/test_cpusim.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_edge_cases.cc.o"
  "CMakeFiles/unit_tests.dir/test_edge_cases.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_extensions.cc.o"
  "CMakeFiles/unit_tests.dir/test_extensions.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_isa.cc.o"
  "CMakeFiles/unit_tests.dir/test_isa.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_list_sched.cc.o"
  "CMakeFiles/unit_tests.dir/test_list_sched.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_pipeline_sim.cc.o"
  "CMakeFiles/unit_tests.dir/test_pipeline_sim.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_sched.cc.o"
  "CMakeFiles/unit_tests.dir/test_sched.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_timing.cc.o"
  "CMakeFiles/unit_tests.dir/test_timing.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_trace.cc.o"
  "CMakeFiles/unit_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_util.cc.o"
  "CMakeFiles/unit_tests.dir/test_util.cc.o.d"
  "unit_tests"
  "unit_tests.pdb"
  "unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
