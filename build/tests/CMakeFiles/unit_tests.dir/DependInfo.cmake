
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/unit_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/unit_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_cpusim.cc" "tests/CMakeFiles/unit_tests.dir/test_cpusim.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_cpusim.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/unit_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/unit_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/unit_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_list_sched.cc" "tests/CMakeFiles/unit_tests.dir/test_list_sched.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_list_sched.cc.o.d"
  "/root/repo/tests/test_pipeline_sim.cc" "tests/CMakeFiles/unit_tests.dir/test_pipeline_sim.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_pipeline_sim.cc.o.d"
  "/root/repo/tests/test_sched.cc" "tests/CMakeFiles/unit_tests.dir/test_sched.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_sched.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/unit_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/unit_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/unit_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pipecache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
