# Empty dependencies file for pipecache.
# This may be replaced when dependencies are built.
