
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/btb.cc" "src/CMakeFiles/pipecache.dir/cache/btb.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cache/btb.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/pipecache.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/pipecache.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/memory.cc" "src/CMakeFiles/pipecache.dir/cache/memory.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cache/memory.cc.o.d"
  "/root/repo/src/cache/three_c.cc" "src/CMakeFiles/pipecache.dir/cache/three_c.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cache/three_c.cc.o.d"
  "/root/repo/src/core/cpi_model.cc" "src/CMakeFiles/pipecache.dir/core/cpi_model.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/core/cpi_model.cc.o.d"
  "/root/repo/src/core/design_point.cc" "src/CMakeFiles/pipecache.dir/core/design_point.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/core/design_point.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/CMakeFiles/pipecache.dir/core/experiments.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/core/experiments.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/pipecache.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/CMakeFiles/pipecache.dir/core/sensitivity.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/core/sensitivity.cc.o.d"
  "/root/repo/src/core/tpi_model.cc" "src/CMakeFiles/pipecache.dir/core/tpi_model.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/core/tpi_model.cc.o.d"
  "/root/repo/src/cpusim/branch_model.cc" "src/CMakeFiles/pipecache.dir/cpusim/branch_model.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cpusim/branch_model.cc.o.d"
  "/root/repo/src/cpusim/cpi_engine.cc" "src/CMakeFiles/pipecache.dir/cpusim/cpi_engine.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cpusim/cpi_engine.cc.o.d"
  "/root/repo/src/cpusim/load_model.cc" "src/CMakeFiles/pipecache.dir/cpusim/load_model.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cpusim/load_model.cc.o.d"
  "/root/repo/src/cpusim/pipeline_sim.cc" "src/CMakeFiles/pipecache.dir/cpusim/pipeline_sim.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cpusim/pipeline_sim.cc.o.d"
  "/root/repo/src/cpusim/write_buffer.cc" "src/CMakeFiles/pipecache.dir/cpusim/write_buffer.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/cpusim/write_buffer.cc.o.d"
  "/root/repo/src/isa/basic_block.cc" "src/CMakeFiles/pipecache.dir/isa/basic_block.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/basic_block.cc.o.d"
  "/root/repo/src/isa/dependence.cc" "src/CMakeFiles/pipecache.dir/isa/dependence.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/dependence.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/pipecache.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/pipecache.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/pipecache.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/program.cc.o.d"
  "/root/repo/src/isa/program_generator.cc" "src/CMakeFiles/pipecache.dir/isa/program_generator.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/program_generator.cc.o.d"
  "/root/repo/src/isa/verifier.cc" "src/CMakeFiles/pipecache.dir/isa/verifier.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/isa/verifier.cc.o.d"
  "/root/repo/src/sched/branch_sched.cc" "src/CMakeFiles/pipecache.dir/sched/branch_sched.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/sched/branch_sched.cc.o.d"
  "/root/repo/src/sched/list_sched.cc" "src/CMakeFiles/pipecache.dir/sched/list_sched.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/sched/list_sched.cc.o.d"
  "/root/repo/src/sched/load_sched.cc" "src/CMakeFiles/pipecache.dir/sched/load_sched.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/sched/load_sched.cc.o.d"
  "/root/repo/src/sched/profile_predict.cc" "src/CMakeFiles/pipecache.dir/sched/profile_predict.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/sched/profile_predict.cc.o.d"
  "/root/repo/src/sched/static_predict.cc" "src/CMakeFiles/pipecache.dir/sched/static_predict.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/sched/static_predict.cc.o.d"
  "/root/repo/src/sched/translation.cc" "src/CMakeFiles/pipecache.dir/sched/translation.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/sched/translation.cc.o.d"
  "/root/repo/src/timing/circuit.cc" "src/CMakeFiles/pipecache.dir/timing/circuit.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/timing/circuit.cc.o.d"
  "/root/repo/src/timing/cpu_circuit.cc" "src/CMakeFiles/pipecache.dir/timing/cpu_circuit.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/timing/cpu_circuit.cc.o.d"
  "/root/repo/src/timing/mcm_model.cc" "src/CMakeFiles/pipecache.dir/timing/mcm_model.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/timing/mcm_model.cc.o.d"
  "/root/repo/src/timing/sram.cc" "src/CMakeFiles/pipecache.dir/timing/sram.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/timing/sram.cc.o.d"
  "/root/repo/src/timing/timing_analyzer.cc" "src/CMakeFiles/pipecache.dir/timing/timing_analyzer.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/timing/timing_analyzer.cc.o.d"
  "/root/repo/src/trace/benchmark.cc" "src/CMakeFiles/pipecache.dir/trace/benchmark.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/benchmark.cc.o.d"
  "/root/repo/src/trace/data_address_generator.cc" "src/CMakeFiles/pipecache.dir/trace/data_address_generator.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/data_address_generator.cc.o.d"
  "/root/repo/src/trace/executor.cc" "src/CMakeFiles/pipecache.dir/trace/executor.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/executor.cc.o.d"
  "/root/repo/src/trace/multiprog.cc" "src/CMakeFiles/pipecache.dir/trace/multiprog.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/multiprog.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/pipecache.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/trace_serialize.cc" "src/CMakeFiles/pipecache.dir/trace/trace_serialize.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/trace_serialize.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/CMakeFiles/pipecache.dir/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/trace/trace_stats.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/pipecache.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/pipecache.dir/util/random.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/pipecache.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/pipecache.dir/util/table.cc.o" "gcc" "src/CMakeFiles/pipecache.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
