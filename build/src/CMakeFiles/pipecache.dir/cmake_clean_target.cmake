file(REMOVE_RECURSE
  "libpipecache.a"
)
