# Empty compiler generated dependencies file for bench_abl_btb.
# This may be replaced when dependencies are built.
