file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_btb.dir/bench_abl_btb.cc.o"
  "CMakeFiles/bench_abl_btb.dir/bench_abl_btb.cc.o.d"
  "bench_abl_btb"
  "bench_abl_btb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
