file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_additive.dir/bench_abl_additive.cc.o"
  "CMakeFiles/bench_abl_additive.dir/bench_abl_additive.cc.o.d"
  "bench_abl_additive"
  "bench_abl_additive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_additive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
