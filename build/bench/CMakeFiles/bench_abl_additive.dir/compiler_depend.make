# Empty compiler generated dependencies file for bench_abl_additive.
# This may be replaced when dependencies are built.
