# Empty compiler generated dependencies file for bench_abl_multiprog.
# This may be replaced when dependencies are built.
