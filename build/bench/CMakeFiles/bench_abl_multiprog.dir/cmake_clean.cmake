file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_multiprog.dir/bench_abl_multiprog.cc.o"
  "CMakeFiles/bench_abl_multiprog.dir/bench_abl_multiprog.cc.o.d"
  "bench_abl_multiprog"
  "bench_abl_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
