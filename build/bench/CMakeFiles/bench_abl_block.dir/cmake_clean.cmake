file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_block.dir/bench_abl_block.cc.o"
  "CMakeFiles/bench_abl_block.dir/bench_abl_block.cc.o.d"
  "bench_abl_block"
  "bench_abl_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
