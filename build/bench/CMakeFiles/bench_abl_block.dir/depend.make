# Empty dependencies file for bench_abl_block.
# This may be replaced when dependencies are built.
