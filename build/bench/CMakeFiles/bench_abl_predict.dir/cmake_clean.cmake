file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_predict.dir/bench_abl_predict.cc.o"
  "CMakeFiles/bench_abl_predict.dir/bench_abl_predict.cc.o.d"
  "bench_abl_predict"
  "bench_abl_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
