# Empty dependencies file for bench_abl_predict.
# This may be replaced when dependencies are built.
