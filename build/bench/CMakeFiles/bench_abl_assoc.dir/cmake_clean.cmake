file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_assoc.dir/bench_abl_assoc.cc.o"
  "CMakeFiles/bench_abl_assoc.dir/bench_abl_assoc.cc.o.d"
  "bench_abl_assoc"
  "bench_abl_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
