# Empty dependencies file for bench_abl_assoc.
# This may be replaced when dependencies are built.
