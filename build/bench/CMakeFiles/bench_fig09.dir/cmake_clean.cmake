file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09.dir/bench_fig09.cc.o"
  "CMakeFiles/bench_fig09.dir/bench_fig09.cc.o.d"
  "bench_fig09"
  "bench_fig09.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
