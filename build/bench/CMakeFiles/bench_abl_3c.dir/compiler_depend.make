# Empty compiler generated dependencies file for bench_abl_3c.
# This may be replaced when dependencies are built.
