file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_3c.dir/bench_abl_3c.cc.o"
  "CMakeFiles/bench_abl_3c.dir/bench_abl_3c.cc.o.d"
  "bench_abl_3c"
  "bench_abl_3c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_3c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
