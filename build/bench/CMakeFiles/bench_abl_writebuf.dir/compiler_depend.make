# Empty compiler generated dependencies file for bench_abl_writebuf.
# This may be replaced when dependencies are built.
