file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_writebuf.dir/bench_abl_writebuf.cc.o"
  "CMakeFiles/bench_abl_writebuf.dir/bench_abl_writebuf.cc.o.d"
  "bench_abl_writebuf"
  "bench_abl_writebuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_writebuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
