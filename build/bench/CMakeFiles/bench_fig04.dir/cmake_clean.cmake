file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04.dir/bench_fig04.cc.o"
  "CMakeFiles/bench_fig04.dir/bench_fig04.cc.o.d"
  "bench_fig04"
  "bench_fig04.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
