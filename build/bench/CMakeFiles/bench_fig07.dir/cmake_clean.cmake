file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07.dir/bench_fig07.cc.o"
  "CMakeFiles/bench_fig07.dir/bench_fig07.cc.o.d"
  "bench_fig07"
  "bench_fig07.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
