file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_listsched.dir/bench_abl_listsched.cc.o"
  "CMakeFiles/bench_abl_listsched.dir/bench_abl_listsched.cc.o.d"
  "bench_abl_listsched"
  "bench_abl_listsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_listsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
