# Empty compiler generated dependencies file for bench_abl_listsched.
# This may be replaced when dependencies are built.
