file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_seeds.dir/bench_abl_seeds.cc.o"
  "CMakeFiles/bench_abl_seeds.dir/bench_abl_seeds.cc.o.d"
  "bench_abl_seeds"
  "bench_abl_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
