# Empty compiler generated dependencies file for bench_abl_l2.
# This may be replaced when dependencies are built.
