/**
 * @file
 * Latch-graph circuit IR for timing analysis.
 *
 * Nodes are latches (pipeline registers); directed edges are
 * combinational paths with a delay in nanoseconds. Under optimally
 * tuned multiphase clocking, the minimum cycle time of a synchronous
 * circuit is the maximum over directed cycles of (total combinational
 * delay on the cycle) / (number of latches on the cycle) — the
 * quantity the paper's minTcpu analyzer computes.
 */

#ifndef PIPECACHE_TIMING_CIRCUIT_HH
#define PIPECACHE_TIMING_CIRCUIT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pipecache::timing {

/** A latch-level synchronous circuit. */
class Circuit
{
  public:
    using NodeId = std::uint32_t;

    struct Edge
    {
        NodeId from;
        NodeId to;
        double delayNs;
    };

    /** Add a latch node; the name is for reporting. */
    NodeId addLatch(std::string name);

    /** Add a combinational path (delay must be >= 0). */
    void addPath(NodeId from, NodeId to, double delay_ns);

    std::size_t numNodes() const { return names_.size(); }
    std::size_t numEdges() const { return edges_.size(); }
    const std::vector<Edge> &edges() const { return edges_; }
    const std::string &nodeName(NodeId id) const;

    /** Largest single combinational delay (single-phase bound). */
    double maxEdgeDelay() const;

  private:
    std::vector<std::string> names_;
    std::vector<Edge> edges_;
};

} // namespace pipecache::timing

#endif // PIPECACHE_TIMING_CIRCUIT_HH
