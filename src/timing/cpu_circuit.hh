/**
 * @file
 * Parameterized latch-graph model of the paper's CPU (Figure 1).
 *
 * Three coupled loops set the cycle time:
 *
 *  - the ALU feedback loop: integer add (2.1 ns) plus operand
 *    feedback (1.4 ns) through one latch — the 3.5 ns floor of
 *    Table 6;
 *  - the instruction-fetch loop: next-PC generation plus the L1-I
 *    access, pipelined into d_I cache stages (d_I + 1 latches);
 *  - the data-access loop: address generation in the ALU plus the
 *    L1-D access over d_D cache stages.
 *
 * Cache access times come from the SRAM/MCM macro-model; per-stage
 * latch overhead is charged on every pipeline register, matching the
 * paper's inclusion of SRAM address/data register overhead. The
 * resulting minimum cycle ratio reproduces the paper's observation
 * that t_CPU rises by 1/(d_L1 + 1) per unit of t_L1.
 */

#ifndef PIPECACHE_TIMING_CPU_CIRCUIT_HH
#define PIPECACHE_TIMING_CPU_CIRCUIT_HH

#include <cstdint>

#include "timing/circuit.hh"
#include "timing/mcm_model.hh"
#include "timing/sram.hh"
#include "timing/timing_analyzer.hh"

namespace pipecache::timing {

/** Technology/organization constants of the CPU timing model. */
struct CpuTimingParams
{
    /** Integer ALU add (ns). */
    double aluNs = 2.1;
    /** ALU result feedback to the ALU input (ns). */
    double aluFeedbackNs = 1.4;
    /** Next-PC/address generation delay (ns). */
    double agenNs = 2.1;
    /** Per-pipeline-register overhead (ns). */
    double latchNs = 0.4;
    /** Extra access time per doubling of set-associativity (way
     *  comparators + select mux) — the knob behind the paper's
     *  closing size-versus-associativity question. */
    double assocLevelNs = 0.5;

    SramChip sram{};
    McmParams mcm{};

    /** ALU-loop bound (the paper's 3.5 ns). */
    double aluLoopNs() const { return aluNs + aluFeedbackNs; }
};

/** One side (I or D) of the L1 cache. */
struct CacheSide
{
    /** Cache size in kilowords. */
    std::uint32_t sizeKW = 8;
    /** Cache pipeline depth d_L1 (0 = same cycle as the ALU). */
    std::uint32_t depth = 1;
    /** Set associativity (1 = direct-mapped). */
    std::uint32_t assoc = 1;
};

/** Build the full CPU latch graph for the given cache organization. */
Circuit buildCpuCircuit(const CpuTimingParams &params,
                        const CacheSide &iside, const CacheSide &dside);

/**
 * Minimum CPU cycle time for the given organization — Table 6 entry
 * (runs the analyzer over the built circuit).
 */
double cpuCycleNs(const CpuTimingParams &params, const CacheSide &iside,
                  const CacheSide &dside);

/** Cycle time when only one side's constraint is considered. */
double sideCycleNs(const CpuTimingParams &params, const CacheSide &side);

} // namespace pipecache::timing

#endif // PIPECACHE_TIMING_CPU_CIRCUIT_HH
