#include "timing/mcm_model.hh"

#include "util/logging.hh"

namespace pipecache::timing {

double
mcmK1Ns(const McmParams &params)
{
    // Z0 * C_MCM: ohms * pF = ps; /1000 -> ns.
    const double lc_term = params.z0Ohms * params.cMcmPf * 1e-3;
    // 2 d^2 R C: mm^2 * (ohm/mm) * (pF/mm) = ohm*pF = ps; /1000 -> ns.
    const double rc_term = 2.0 * params.chipPitchMm * params.chipPitchMm *
                           params.rOhmPerMm * params.cPfPerMm * 1e-3;
    return lc_term + rc_term;
}

double
mcmDelayNs(const McmParams &params, std::uint32_t chips)
{
    PC_ASSERT(chips >= 1, "MCM delay for zero chips");
    return params.k0Ns + mcmK1Ns(params) * chips;
}

double
l1AccessNs(const SramChip &chip, const McmParams &params,
           std::uint32_t size_kw)
{
    const std::uint32_t n = chipsForCache(chip, size_kw);
    return chip.accessNs + 2.0 * mcmDelayNs(params, n);
}

} // namespace pipecache::timing
