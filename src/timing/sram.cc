#include "timing/sram.hh"

#include "util/logging.hh"

namespace pipecache::timing {

std::uint32_t
chipsForCache(const SramChip &chip, std::uint32_t size_kw)
{
    PC_ASSERT(chip.capacityKW > 0, "SRAM chip with zero capacity");
    PC_ASSERT(size_kw > 0, "cache of zero size");
    return (size_kw + chip.capacityKW - 1) / chip.capacityKW;
}

} // namespace pipecache::timing
