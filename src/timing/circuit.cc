#include "timing/circuit.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pipecache::timing {

Circuit::NodeId
Circuit::addLatch(std::string name)
{
    names_.push_back(std::move(name));
    return static_cast<NodeId>(names_.size() - 1);
}

void
Circuit::addPath(NodeId from, NodeId to, double delay_ns)
{
    PC_ASSERT(from < names_.size() && to < names_.size(),
              "path endpoints out of range");
    PC_ASSERT(delay_ns >= 0.0, "negative path delay");
    edges_.push_back({from, to, delay_ns});
}

const std::string &
Circuit::nodeName(NodeId id) const
{
    PC_ASSERT(id < names_.size(), "node id out of range");
    return names_[id];
}

double
Circuit::maxEdgeDelay() const
{
    double max_delay = 0.0;
    for (const auto &e : edges_)
        max_delay = std::max(max_delay, e.delayNs);
    return max_delay;
}

} // namespace pipecache::timing
