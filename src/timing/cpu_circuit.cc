#include "timing/cpu_circuit.hh"

#include <string>

#include "util/logging.hh"

namespace pipecache::timing {

namespace {

/**
 * Add one cache-access loop: an address latch, depth cache stage
 * latches, and the path back to the address latch. With depth 0 the
 * entire access sits in the address stage (the unpipelined case).
 */
void
addCacheLoop(Circuit &circuit, const CpuTimingParams &params,
             const CacheSide &side, double agen_ns, const char *prefix)
{
    double t_l1 = l1AccessNs(params.sram, params.mcm, side.sizeKW);
    // Way comparison and select add delay per associativity doubling.
    for (std::uint32_t ways = side.assoc; ways > 1; ways /= 2)
        t_l1 += params.assocLevelNs;

    const Circuit::NodeId addr =
        circuit.addLatch(std::string(prefix) + ".addr");

    if (side.depth == 0) {
        // Address generation and the whole cache access in one stage.
        circuit.addPath(addr, addr, agen_ns + t_l1 + params.latchNs);
        return;
    }

    // Address stage feeds depth cache stages; the last stage closes
    // the loop back to address generation. The cache access is split
    // evenly over the depth stages.
    const double stage_ns = t_l1 / side.depth;
    Circuit::NodeId prev = addr;
    for (std::uint32_t s = 0; s < side.depth; ++s) {
        const Circuit::NodeId stage = circuit.addLatch(
            std::string(prefix) + ".s" + std::to_string(s + 1));
        const double comb_ns = s == 0 ? agen_ns : stage_ns;
        circuit.addPath(prev, stage, comb_ns + params.latchNs);
        prev = stage;
    }
    circuit.addPath(prev, addr, stage_ns + params.latchNs);
}

} // namespace

Circuit
buildCpuCircuit(const CpuTimingParams &params, const CacheSide &iside,
                const CacheSide &dside)
{
    Circuit circuit;

    // ALU feedback loop (the execution-rate floor).
    const Circuit::NodeId alu = circuit.addLatch("alu");
    circuit.addPath(alu, alu, params.aluLoopNs());

    addCacheLoop(circuit, params, iside, params.agenNs, "l1i");
    addCacheLoop(circuit, params, dside, params.aluNs, "l1d");
    return circuit;
}

double
cpuCycleNs(const CpuTimingParams &params, const CacheSide &iside,
           const CacheSide &dside)
{
    const Circuit circuit = buildCpuCircuit(params, iside, dside);
    return analyzeTiming(circuit).minCycleNs;
}

double
sideCycleNs(const CpuTimingParams &params, const CacheSide &side)
{
    Circuit circuit;
    const Circuit::NodeId alu = circuit.addLatch("alu");
    circuit.addPath(alu, alu, params.aluLoopNs());
    addCacheLoop(circuit, params, side, params.agenNs, "l1");
    return analyzeTiming(circuit).minCycleNs;
}

} // namespace pipecache::timing
