#include "timing/timing_analyzer.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace pipecache::timing {

namespace {

/**
 * Longest-path Bellman-Ford over weights (delay - T), starting from
 * dist = 0 everywhere (equivalent to a virtual source). Returns the id
 * of a node updated on the |V|-th pass if a positive cycle exists
 * (T infeasible), or -1 if T is feasible. pred[] is filled for cycle
 * extraction.
 */
std::int64_t
positiveCycleNode(const Circuit &circuit, double period,
                  std::vector<std::int64_t> &pred)
{
    const std::size_t n = circuit.numNodes();
    std::vector<double> dist(n, 0.0);
    pred.assign(n, -1);

    std::int64_t touched = -1;
    for (std::size_t pass = 0; pass <= n; ++pass) {
        touched = -1;
        for (const auto &e : circuit.edges()) {
            const double w = e.delayNs - period;
            if (dist[e.from] + w > dist[e.to] + 1e-12) {
                dist[e.to] = dist[e.from] + w;
                pred[e.to] = e.from;
                touched = e.to;
            }
        }
        if (touched < 0)
            return -1;
    }
    return touched;
}

std::vector<Circuit::NodeId>
extractCycle(const Circuit &circuit, std::int64_t start,
             const std::vector<std::int64_t> &pred)
{
    const std::size_t n = circuit.numNodes();
    // Walk predecessors n steps to guarantee landing on the cycle.
    std::int64_t v = start;
    for (std::size_t i = 0; i < n; ++i) {
        PC_ASSERT(v >= 0, "broken predecessor chain");
        v = pred[v];
    }

    std::vector<Circuit::NodeId> cycle;
    std::int64_t u = v;
    do {
        cycle.push_back(static_cast<Circuit::NodeId>(u));
        u = pred[u];
        PC_ASSERT(u >= 0, "broken predecessor chain in cycle");
    } while (u != v && cycle.size() <= n);
    std::reverse(cycle.begin(), cycle.end());
    return cycle;
}

} // namespace

TimingResult
analyzeTiming(const Circuit &circuit, double precision_ns)
{
    PC_ASSERT(circuit.numNodes() > 0, "timing analysis of empty circuit");
    PC_ASSERT(precision_ns > 0.0, "non-positive precision");

    TimingResult result;
    result.singlePhaseNs = circuit.maxEdgeDelay();

    if (circuit.numEdges() == 0)
        return result;

    std::vector<std::int64_t> pred;

    // An acyclic graph is feasible at any period.
    if (positiveCycleNode(circuit, 0.0, pred) < 0) {
        result.minCycleNs = 0.0;
        return result;
    }

    // The cycle mean can never exceed the largest edge delay.
    double lo = 0.0;
    double hi = result.singlePhaseNs;
    while (hi - lo > precision_ns) {
        const double mid = 0.5 * (lo + hi);
        if (positiveCycleNode(circuit, mid, pred) < 0)
            hi = mid;
        else
            lo = mid;
    }
    result.minCycleNs = hi;

    // Extract the binding cycle just below the feasible period.
    const std::int64_t node =
        positiveCycleNode(circuit, std::max(0.0, lo - precision_ns),
                          pred);
    if (node >= 0)
        result.criticalCycle = extractCycle(circuit, node, pred);
    return result;
}

} // namespace pipecache::timing
