/**
 * @file
 * GaAs SRAM chip model for the MCM-based L1 cache (Section 4).
 *
 * Caches are assembled from bare-die SRAM chips on a multichip module;
 * the chip count n drives the interconnect term of the access-time
 * macro-model. Chips have address and data registers whose overhead
 * the timing analysis includes (the paper's assumption).
 */

#ifndef PIPECACHE_TIMING_SRAM_HH
#define PIPECACHE_TIMING_SRAM_HH

#include <cstdint>

namespace pipecache::timing {

/** One GaAs SRAM chip. */
struct SramChip
{
    /** Capacity in kilowords (1 KW = 4 KB). */
    std::uint32_t capacityKW = 2;
    /** On-chip array access time t_SRAM in nanoseconds. */
    double accessNs = 5.5;
};

/** Number of chips needed for a cache of @p size_kw kilowords. */
std::uint32_t chipsForCache(const SramChip &chip, std::uint32_t size_kw);

} // namespace pipecache::timing

#endif // PIPECACHE_TIMING_SRAM_HH
