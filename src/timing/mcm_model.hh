/**
 * @file
 * MCM interconnect delay macro-model — equations (3)-(6) of the paper.
 *
 *   t_L1  = t_SRAM + 2 t_MCM                                   (3)
 *   t_MCM = k0 + k1 n                                          (4)
 *   k1    = Z0 C_MCM + 2 d^2 R_MCM C_MCM                       (5)
 *   t_L1  = t_SRAM + 2 k0 + 2 n (Z0 C_MCM + 2 d^2 R C)         (6)
 *
 * where n is the SRAM chip count, d the chip pitch (chips arranged as
 * a sqrt(n/2) x sqrt(2n) rectangle with the CPU at the middle of the
 * long side, so the longest wire is ~ d sqrt(2n) and the distributed
 * RC term grows linearly in n), Z0 the line impedance, C_MCM the
 * bond/pad parasitic, and R/C the per-length line constants. The
 * default constants are calibrated to the paper's anchors: depth-0
 * cycle times above 10 ns at every size, ALU-limited 3.5 ns at
 * depth 3 up to 32 KW.
 */

#ifndef PIPECACHE_TIMING_MCM_MODEL_HH
#define PIPECACHE_TIMING_MCM_MODEL_HH

#include <cstdint>

#include "timing/sram.hh"

namespace pipecache::timing {

/** Electrical/geometry parameters of the MCM. */
struct McmParams
{
    /** Off-chip driver/receiver constant k0 (ns). */
    double k0Ns = 1.0;
    /** Characteristic impedance Z0 (ohms). */
    double z0Ohms = 50.0;
    /** Bond + pad parasitic capacitance C_MCM (pF). */
    double cMcmPf = 1.6;
    /** Line resistance per mm (ohms/mm). */
    double rOhmPerMm = 0.05;
    /** Line capacitance per mm (pF/mm). */
    double cPfPerMm = 0.2;
    /** Chip pitch d including wiring channels (mm). */
    double chipPitchMm = 12.0;
};

/** Linear per-chip coefficient k1 in ns — equation (5). */
double mcmK1Ns(const McmParams &params);

/** One-way MCM delay t_MCM for @p chips chips — equation (4). */
double mcmDelayNs(const McmParams &params, std::uint32_t chips);

/**
 * Full L1 access time t_L1 for a direct-mapped cache of
 * @p size_kw kilowords — equation (6).
 */
double l1AccessNs(const SramChip &chip, const McmParams &params,
                  std::uint32_t size_kw);

} // namespace pipecache::timing

#endif // PIPECACHE_TIMING_MCM_MODEL_HH
