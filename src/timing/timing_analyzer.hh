/**
 * @file
 * Minimum-cycle-time analysis of a latch graph — the reimplementation
 * of the paper's minTcpu timing analyzer.
 *
 * Feasibility of a clock period T under optimal multiphase clocking
 * reduces to: no directed cycle has mean edge delay exceeding T,
 * i.e. the graph with edge weights (delay - T) has no positive cycle.
 * The analyzer binary-searches T with a Bellman-Ford feasibility
 * test (Lawler's minimum-cycle-ratio scheme) and also reports the
 * single-phase (max single edge delay) bound and the binding cycle.
 */

#ifndef PIPECACHE_TIMING_TIMING_ANALYZER_HH
#define PIPECACHE_TIMING_TIMING_ANALYZER_HH

#include <vector>

#include "timing/circuit.hh"

namespace pipecache::timing {

/** Result of a timing analysis. */
struct TimingResult
{
    /** Minimum cycle time under optimal multiphase clocking (ns);
     *  0 for an acyclic graph. */
    double minCycleNs = 0.0;
    /** Max single combinational delay (single-phase clocking bound). */
    double singlePhaseNs = 0.0;
    /** Latches on the binding (critical) cycle, in cycle order;
     *  empty for acyclic graphs. */
    std::vector<Circuit::NodeId> criticalCycle;
};

/**
 * Analyze @p circuit to @p precision_ns. Panics on an empty graph.
 */
TimingResult analyzeTiming(const Circuit &circuit,
                           double precision_ns = 1e-3);

} // namespace pipecache::timing

#endif // PIPECACHE_TIMING_TIMING_ANALYZER_HH
