/**
 * @file
 * Named workload registry: the scenario zoo behind --workload.
 *
 * Every workload is a deterministic TraceSource factory: given a seed
 * it reproduces the exact same record stream, so sweep output stays
 * byte-stable and the fuzz oracles can replay a scenario from a case
 * id. Four workloads execute benchmark kernels through the isa/
 * executor (trace/kernels.hh); the rest synthesize classic access
 * patterns directly — streaming, bursts, matrix tiling, phase
 * changes, adversarial same-set conflicts, Zipf and hot/cold
 * mixes — each a handful of lines in registry.cc.
 *
 * To add a scenario: append an entry to the table in registry.cc with
 * a name, a one-line description, and a factory returning a
 * TraceSource; it then shows up in --list-workloads, the sweepd
 * `workload=` key, and the extstream fuzz oracle automatically.
 */

#ifndef PIPECACHE_WORKLOADS_REGISTRY_HH
#define PIPECACHE_WORKLOADS_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/source.hh"
#include "util/units.hh"

namespace pipecache::workloads {

/** Registry row, as shown by --list-workloads. */
struct WorkloadInfo
{
    std::string name;
    std::string description;
};

/** Per-instantiation knobs common to all workloads. */
struct WorkloadOptions
{
    std::uint64_t seed = 1;
    /** Record budget for pattern workloads (0 = per-workload default);
     *  kernel workloads derive their instruction budget from it. */
    std::size_t records = 0;
};

/** All registered workloads, in registration order. */
std::vector<WorkloadInfo> listWorkloads();

/**
 * Instantiate a workload by name. Throws UsageError for an unknown
 * name (listing the known ones).
 */
std::unique_ptr<trace::TraceSource>
openWorkload(std::string_view name, const WorkloadOptions &options = {});

} // namespace pipecache::workloads

#endif // PIPECACHE_WORKLOADS_REGISTRY_HH
