#include "workloads/registry.hh"

#include <functional>
#include <utility>

#include "trace/kernels.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace pipecache::workloads {

namespace {

using trace::KernelConfig;
using trace::KernelKind;
using trace::ProgramSource;
using trace::RefKind;
using trace::TraceRecord;
using trace::TraceSource;

/** Default record budget for pattern workloads. */
constexpr std::size_t kDefaultRecords = 1u << 18;

/**
 * TraceSource driven by a generator callback. The callback fills one
 * record per call; the source stops after the record budget.
 */
class PatternSource final : public TraceSource
{
  public:
    using Step = std::function<void(TraceRecord &)>;

    PatternSource(std::string name, std::size_t budget, Step step)
        : TraceSource(std::move(name)), left_(budget),
          step_(std::move(step))
    {
    }

    std::size_t fill(std::span<TraceRecord> out) override
    {
        std::size_t n = 0;
        while (n < out.size() && left_ > 0) {
            step_(out[n]);
            ++n;
            --left_;
        }
        return n;
    }

  private:
    std::size_t left_;
    Step step_;
};

std::size_t
budgetOr(const WorkloadOptions &o, std::size_t fallback)
{
    return o.records != 0 ? o.records : fallback;
}

std::unique_ptr<TraceSource>
kernelSource(std::string name, KernelKind kind, std::uint32_t footprint,
             std::uint32_t stride, const WorkloadOptions &o)
{
    KernelConfig cfg;
    cfg.kind = kind;
    cfg.footprintBytes = footprint;
    cfg.strideBytes = stride;
    cfg.seed = o.seed;
    // Records ≈ insts × (1 + mem refs per inst); the instruction
    // budget is the coarse knob, exactness does not matter here.
    if (o.records != 0)
        cfg.maxInsts = static_cast<Counter>(o.records);
    return std::make_unique<ProgramSource>(std::move(name), cfg);
}

template <typename State>
std::unique_ptr<TraceSource>
patternSource(std::string name, std::size_t budget, State state,
              void (*step)(State &, TraceRecord &))
{
    auto shared = std::make_shared<State>(std::move(state));
    return std::make_unique<PatternSource>(
        std::move(name), budget,
        [shared, step](TraceRecord &rec) { step(*shared, rec); });
}

// ---- Pattern workloads ------------------------------------------------

struct StreamCopyState
{
    Addr i = 0;
    bool write = false;
    static constexpr Addr kFootprint = 1u << 20;
    // One cache line past a giant power of two: source and
    // destination land in *adjacent* sets instead of ping-ponging in
    // the same one (power-of-two-aligned bases would give a flat 100%
    // miss curve on every direct-mapped size).
    static constexpr Addr kDstBase = 0x4000'0040;
};

void
streamCopyStep(StreamCopyState &s, TraceRecord &rec)
{
    if (!s.write) {
        rec = {RefKind::Read, s.i};
    } else {
        rec = {RefKind::Write, StreamCopyState::kDstBase + s.i};
        s.i = (s.i + 4) % StreamCopyState::kFootprint;
    }
    s.write = !s.write;
}

struct WriteBurstState
{
    Rng rng;
    Addr region = 0;
    std::uint32_t pos = 0;
    bool writing = true;
    static constexpr std::uint32_t kBurst = 1024;
    static constexpr Addr kRegionBytes = 4096;
    static constexpr Addr kFootprint = 1u << 20;
};

void
writeBurstStep(WriteBurstState &s, TraceRecord &rec)
{
    Addr addr = s.region + (s.pos * 4) % WriteBurstState::kRegionBytes;
    rec = {s.writing ? RefKind::Write : RefKind::Read, addr};
    if (++s.pos == WriteBurstState::kBurst) {
        s.pos = 0;
        if (!s.writing)
            s.region = (s.region + WriteBurstState::kRegionBytes) %
                       WriteBurstState::kFootprint;
        s.writing = !s.writing;
    }
}

struct MatrixTileState
{
    // 512×512 matrix of 4-byte words walked in 16×16 tiles.
    std::uint32_t n = 0;
    static constexpr std::uint32_t kDim = 512;
    static constexpr std::uint32_t kTile = 16;
};

void
matrixTileStep(MatrixTileState &s, TraceRecord &rec)
{
    constexpr std::uint32_t dim = MatrixTileState::kDim;
    constexpr std::uint32_t t = MatrixTileState::kTile;
    constexpr std::uint32_t tilesPerSide = dim / t;
    std::uint32_t idx = s.n++;
    std::uint32_t c = idx % t;
    idx /= t;
    std::uint32_t r = idx % t;
    idx /= t;
    std::uint32_t tc = idx % tilesPerSide;
    idx /= tilesPerSide;
    std::uint32_t tr = idx % tilesPerSide;
    Addr addr = ((tr * t + r) * dim + tc * t + c) * 4;
    rec = {RefKind::Read, addr};
}

struct PhaseChangeState
{
    Rng rng;
    std::uint32_t n = 0;
    Addr seq = 0;
    static constexpr std::uint32_t kPhase = 4096;
    static constexpr Addr kHotBytes = 2048;
    static constexpr Addr kStreamBytes = 256 * 1024;
};

void
phaseChangeStep(PhaseChangeState &s, TraceRecord &rec)
{
    bool hot = (s.n / PhaseChangeState::kPhase) % 2 == 0;
    ++s.n;
    if (hot) {
        Addr addr = static_cast<Addr>(
            s.rng.nextRange(PhaseChangeState::kHotBytes / 4) * 4);
        rec = {RefKind::Read, addr};
    } else {
        rec = {RefKind::Read, 0x1000'0000 + s.seq};
        s.seq = (s.seq + 4) % PhaseChangeState::kStreamBytes;
    }
}

struct ConflictStormState
{
    std::uint32_t n = 0;
    // Lines spaced 64 KiB apart map to the same set in any cache of
    // ≤ 64 KiB per way — the classic conflict-miss adversary.
    static constexpr std::uint32_t kWays = 16;
    static constexpr Addr kSpacing = 64 * 1024;
};

void
conflictStormStep(ConflictStormState &s, TraceRecord &rec)
{
    Addr addr = (s.n % ConflictStormState::kWays) *
                ConflictStormState::kSpacing;
    rec = {s.n % 4 == 3 ? RefKind::Write : RefKind::Read, addr};
    ++s.n;
}

struct ZipfHotState
{
    Rng rng;
    static constexpr std::uint64_t kObjects = 65536;
    static constexpr Addr kObjBytes = 32;
};

void
zipfHotStep(ZipfHotState &s, TraceRecord &rec)
{
    std::uint64_t obj = s.rng.nextZipf(ZipfHotState::kObjects, 0.9);
    bool write = s.rng.nextBool(0.1);
    rec = {write ? RefKind::Write : RefKind::Read,
           static_cast<Addr>(obj * ZipfHotState::kObjBytes)};
}

struct HotColdState
{
    Rng rng;
    static constexpr Addr kHotBytes = 4096;
    static constexpr Addr kColdBytes = 4u << 20;
};

void
hotColdStep(HotColdState &s, TraceRecord &rec)
{
    if (s.rng.nextBool(0.9)) {
        Addr addr = static_cast<Addr>(
            s.rng.nextRange(HotColdState::kHotBytes / 4) * 4);
        rec = {RefKind::Read, addr};
    } else {
        Addr addr = 0x2000'0000 + static_cast<Addr>(
            s.rng.nextRange(HotColdState::kColdBytes / 4) * 4);
        rec = {RefKind::Write, addr};
    }
}

struct FetchLoopState
{
    std::uint32_t n = 0;
    Addr data = 0;
    // A 1024-instruction loop body: 4 KiB of straight-line code.
    static constexpr std::uint32_t kLoopInsts = 1024;
    static constexpr Addr kDataBytes = 64 * 1024;
};

void
fetchLoopStep(FetchLoopState &s, TraceRecord &rec)
{
    std::uint32_t idx = s.n++;
    if (idx % 8 == 7) {
        rec = {RefKind::Read, 0x3000'0000 + s.data};
        s.data = (s.data + 4) % FetchLoopState::kDataBytes;
    } else {
        Addr pc = (idx % FetchLoopState::kLoopInsts) * 4;
        rec = {RefKind::Fetch, 0x0040'0000 + pc};
    }
}

// ---- Registry table ---------------------------------------------------

struct Entry
{
    const char *name;
    const char *description;
    std::unique_ptr<TraceSource> (*make)(const WorkloadOptions &);
};

const Entry kEntries[] = {
    {"seq-copy",
     "sequential read/write array walk kernel through the isa/ "
     "executor",
     [](const WorkloadOptions &o) {
         return kernelSource("seq-copy", KernelKind::Sequential,
                             256 * 1024, 4, o);
     }},
    {"stride-64",
     "64-byte strided array walk kernel (one touch per cache line)",
     [](const WorkloadOptions &o) {
         return kernelSource("stride-64", KernelKind::Strided, 256 * 1024,
                             64, o);
     }},
    {"random-mix",
     "near-uniform random read/write kernel over a 256 KiB heap",
     [](const WorkloadOptions &o) {
         return kernelSource("random-mix", KernelKind::Random, 256 * 1024,
                             4, o);
     }},
    {"pointer-chase",
     "dependent-load kernel chasing Zipf-hot objects in a 32 KiB set",
     [](const WorkloadOptions &o) {
         return kernelSource("pointer-chase", KernelKind::PointerChase,
                             32 * 1024, 4, o);
     }},
    {"stream-copy",
     "pure data stream: read a[i] / write b[i] over 1 MiB arrays",
     [](const WorkloadOptions &o) {
         return patternSource("stream-copy",
                              budgetOr(o, kDefaultRecords),
                              StreamCopyState{}, streamCopyStep);
     }},
    {"write-burst",
     "alternating 1024-record write bursts and read-back scans over "
     "4 KiB regions",
     [](const WorkloadOptions &o) {
         return patternSource("write-burst",
                              budgetOr(o, kDefaultRecords),
                              WriteBurstState{Rng(o.seed)},
                              writeBurstStep);
     }},
    {"matrix-tile",
     "16x16 tiled walk of a 512x512 word matrix (1 MiB, read-only)",
     [](const WorkloadOptions &o) {
         return patternSource("matrix-tile",
                              budgetOr(o, kDefaultRecords),
                              MatrixTileState{}, matrixTileStep);
     }},
    {"phase-change",
     "alternating phases: 2 KiB hot random reads, then 256 KiB "
     "streaming",
     [](const WorkloadOptions &o) {
         return patternSource("phase-change",
                              budgetOr(o, kDefaultRecords),
                              PhaseChangeState{Rng(o.seed)},
                              phaseChangeStep);
     }},
    {"conflict-storm",
     "adversarial round-robin over 16 lines spaced 64 KiB apart "
     "(same-set conflicts)",
     [](const WorkloadOptions &o) {
         return patternSource("conflict-storm",
                              budgetOr(o, kDefaultRecords),
                              ConflictStormState{}, conflictStormStep);
     }},
    {"zipf-hot",
     "Zipf(0.9) object references over 64 Ki 32-byte objects, 10% "
     "writes",
     [](const WorkloadOptions &o) {
         return patternSource("zipf-hot", budgetOr(o, kDefaultRecords),
                              ZipfHotState{Rng(o.seed)}, zipfHotStep);
     }},
    {"hot-cold",
     "90% reads in a 4 KiB hot set, 10% writes uniform over 4 MiB",
     [](const WorkloadOptions &o) {
         return patternSource("hot-cold", budgetOr(o, kDefaultRecords),
                              HotColdState{Rng(o.seed)}, hotColdStep);
     }},
    {"fetch-loop",
     "instruction-fetch loop over 4 KiB of code with a data read "
     "every 8th record",
     [](const WorkloadOptions &o) {
         return patternSource("fetch-loop", budgetOr(o, kDefaultRecords),
                              FetchLoopState{}, fetchLoopStep);
     }},
};

} // namespace

std::vector<WorkloadInfo>
listWorkloads()
{
    std::vector<WorkloadInfo> infos;
    for (const Entry &e : kEntries)
        infos.push_back({e.name, e.description});
    return infos;
}

std::unique_ptr<trace::TraceSource>
openWorkload(std::string_view name, const WorkloadOptions &options)
{
    for (const Entry &e : kEntries)
        if (name == e.name)
            return e.make(options);

    std::string known;
    for (const Entry &e : kEntries) {
        if (!known.empty())
            known += ", ";
        known += e.name;
    }
    throw UsageError("unknown workload '" + std::string(name) +
                     "' (known: " + known + ")");
}

} // namespace pipecache::workloads
