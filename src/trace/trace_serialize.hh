/**
 * @file
 * Binary serialization of recorded traces.
 *
 * Recording a benchmark's trace is the expensive step of every sweep;
 * this module saves/loads RecordedTrace objects in a compact,
 * versioned, checksummed binary format so sweeps can be split across
 * processes (and so users can snapshot workloads). Layout (all fields
 * little-endian):
 *
 *   magic   u64  "PCTRACE1"
 *   inst    u64  instruction count
 *   nblocks u64
 *   nmem    u64
 *   blocks  nblocks x { u32 block, u8 taken, u32 memBegin }
 *   mem     nmem    x { u16 pos, u8 store, u32 addr }
 *   crc     u64  FNV-1a over everything above
 */

#ifndef PIPECACHE_TRACE_TRACE_SERIALIZE_HH
#define PIPECACHE_TRACE_TRACE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "trace/executor.hh"

namespace pipecache::trace {

/** Write @p trace to @p os in the binary format above. */
void saveTrace(std::ostream &os, const RecordedTrace &trace);

/**
 * Read a trace written by saveTrace. Throws DataError on a bad magic,
 * truncated stream, or checksum mismatch.
 */
RecordedTrace loadTrace(std::istream &is);

/**
 * File wrappers. Throw IoError when the file cannot be opened or
 * written; the reader attributes DataError to the path.
 */
void saveTraceFile(const std::string &path, const RecordedTrace &trace);
RecordedTrace loadTraceFile(const std::string &path);

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_TRACE_SERIALIZE_HH
