/**
 * @file
 * Plain trace record types shared by trace producers and consumers.
 */

#ifndef PIPECACHE_TRACE_TRACE_RECORD_HH
#define PIPECACHE_TRACE_TRACE_RECORD_HH

#include <cstdint>

#include "util/units.hh"

namespace pipecache::trace {

/** Reference kind in a flat (din-style) trace. */
enum class RefKind : std::uint8_t
{
    Read = 0,   //!< data load
    Write = 1,  //!< data store
    Fetch = 2,  //!< instruction fetch
};

/** One flat trace record (matches dineroIII "din" input labels). */
struct TraceRecord
{
    RefKind kind = RefKind::Fetch;
    Addr addr = 0;

    friend bool operator==(const TraceRecord &,
                           const TraceRecord &) = default;
};

/** One data reference within an executed basic block. */
struct MemRef
{
    /** Instruction position within the block. */
    std::uint16_t pos = 0;
    /** True for stores. */
    std::uint8_t store = 0;
    Addr addr = 0;
};

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_TRACE_RECORD_HH
