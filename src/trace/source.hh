/**
 * @file
 * Pluggable trace sources: batched readers of flat access streams.
 *
 * A TraceSource produces TraceRecords in caller-sized batches —
 * fill(span) returns how many records it wrote, 0 meaning end of
 * stream — matching the batched front end the cache layer consumes
 * (BufferedStreamSink / StackSimulator::accessBatch). Three families
 * of sources exist:
 *
 *  - VectorSource replays an in-memory record vector (tests, fuzz).
 *  - DinSource streams the dinero "din" text format (trace_io.hh),
 *    sharing its line parser so both paths reject the same inputs.
 *  - OracleGeneralSource streams the CacheLib/libCacheSim
 *    "oracleGeneral" binary format: packed little-endian 24-byte
 *    records {u32 clock_time; u64 obj_id; u32 obj_size; i64
 *    next_access_vtime}. Each record becomes one data read of a
 *    64-byte-aligned pseudo-address derived from obj_id (the id is a
 *    key, not an address; folding it keeps distinct objects in
 *    distinct cache blocks). obj_size and the oracle fields are
 *    ignored. A trailing partial record is a DataError.
 *
 * ProgramSource (kernels.hh) is the fourth implementation: it runs a
 * synthetic benchmark kernel through the isa/ executor on demand.
 *
 * Malformed stream content throws DataError attributed to the source
 * name; openTraceFile throws IoError when the file cannot be opened
 * and UsageError for an unrecognized extension.
 */

#ifndef PIPECACHE_TRACE_SOURCE_HH
#define PIPECACHE_TRACE_SOURCE_HH

#include <cstddef>
#include <istream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/trace_record.hh"

namespace pipecache::trace {

/** Batched producer of flat trace records. */
class TraceSource
{
  public:
    explicit TraceSource(std::string name) : name_(std::move(name)) {}
    virtual ~TraceSource() = default;

    TraceSource(const TraceSource &) = delete;
    TraceSource &operator=(const TraceSource &) = delete;

    /** Diagnostic name (file path, workload name, …). */
    const std::string &name() const { return name_; }

    /**
     * Write up to out.size() records into @p out; returns the number
     * written. 0 means end of stream (and all later calls return 0).
     */
    virtual std::size_t fill(std::span<TraceRecord> out) = 0;

  private:
    std::string name_;
};

/** Replays an in-memory record vector. */
class VectorSource final : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> records,
                          std::string name = "memory");

    std::size_t fill(std::span<TraceRecord> out) override;

  private:
    std::vector<TraceRecord> records_;
    std::size_t at_ = 0;
};

/** Streams din text; shares the trace_io.hh line parser. */
class DinSource final : public TraceSource
{
  public:
    /** Borrow @p is; the caller keeps it alive. */
    DinSource(std::istream &is, std::string name);
    /** Own the stream (file sources). */
    DinSource(std::unique_ptr<std::istream> is, std::string name);

    std::size_t fill(std::span<TraceRecord> out) override;

  private:
    std::unique_ptr<std::istream> owned_;
    std::istream *is_;
    std::string line_;
    std::size_t lineno_ = 0;
};

/** Streams oracleGeneral binary records (format above). */
class OracleGeneralSource final : public TraceSource
{
  public:
    /** Bytes per packed record. */
    static constexpr std::size_t kRecordBytes = 24;

    OracleGeneralSource(std::istream &is, std::string name);
    OracleGeneralSource(std::unique_ptr<std::istream> is, std::string name);

    std::size_t fill(std::span<TraceRecord> out) override;

    /** The obj_id → pseudo-address mapping, exposed for tests. */
    static Addr objIdToAddr(std::uint64_t objId);

  private:
    std::unique_ptr<std::istream> owned_;
    std::istream *is_;
    std::uint64_t recordIndex_ = 0;
};

/**
 * Open a trace file, dispatching on extension: ".din" → DinSource,
 * ".oracleGeneral" (case-insensitive) → OracleGeneralSource. Throws
 * IoError if the file cannot be opened, UsageError for an
 * unrecognized extension.
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path);

/**
 * Drain @p source into a vector, at most @p maxRecords. Reads in
 * fixed 4096-record batches, so the drained prefix is independent of
 * the cap's batch alignment.
 */
std::vector<TraceRecord>
drain(TraceSource &source,
      std::size_t maxRecords = std::numeric_limits<std::size_t>::max());

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_SOURCE_HH
