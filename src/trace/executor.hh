/**
 * @file
 * Structural program executor and recorded traces.
 *
 * The executor walks a synthetic Program's control-flow graph, making
 * branch decisions from the per-branch behaviour profiles (loop trip
 * models for back-edges, bias draws for forward branches) and
 * producing data addresses through a DataAddressGenerator. The result
 * is a *block-level* dynamic trace: one event per executed basic block
 * plus the data references issued inside it.
 *
 * Recording at block granularity is the paper's own trick (Section
 * 3.1): the same block-event stream can be replayed against any number
 * of scheduled code layouts (0-3 branch delay slots, BTB, any cache)
 * via translation files, so the expensive trace is produced once per
 * benchmark and reused for every design point.
 */

#ifndef PIPECACHE_TRACE_EXECUTOR_HH
#define PIPECACHE_TRACE_EXECUTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"
#include "trace/data_address_generator.hh"
#include "trace/trace_record.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace pipecache::trace {

/** One executed basic block. */
struct BlockEvent
{
    isa::BlockId block = isa::invalidBlock;
    /** CTI outcome: for CondBranch the direction; true otherwise. */
    bool taken = true;
    /** Data references issued by this block's instructions. */
    std::vector<MemRef> memRefs;
};

/** Executor configuration. */
struct ExecConfig
{
    std::uint64_t seed = 11;
    /** Stop after at least this many instructions have executed. */
    Counter maxInsts = 100000;
    /** Cap on modelled call depth (beyond it, calls are elided). */
    std::uint32_t maxCallDepth = 256;
    /** Cap on a single drawn loop trip count. */
    std::uint64_t maxTrip = 1u << 20;
};

/**
 * Pull-based executor: call next() until it returns false.
 */
class Executor
{
  public:
    Executor(const isa::Program &program, DataAddressGenerator &dgen,
             const ExecConfig &config);

    /** Produce the next executed block. False once maxInsts reached. */
    bool next(BlockEvent &event);

    /** Instructions executed so far. */
    Counter instCount() const { return instCount_; }

    /** Current call depth (for tests). */
    std::uint32_t callDepth() const
    {
        return static_cast<std::uint32_t>(callStack_.size());
    }

  private:
    const isa::Program &program_;
    DataAddressGenerator &dgen_;
    ExecConfig config_;
    Rng rng_;

    isa::BlockId pc_;
    Counter instCount_ = 0;
    bool done_ = false;

    std::vector<isa::BlockId> callStack_;
    /** Remaining taken executions for active loop back-edges. */
    std::unordered_map<isa::BlockId, std::uint64_t> loopTrips_;

    bool decideCondBranch(isa::BlockId id, const isa::BasicBlock &bb);
};

/**
 * A fully recorded block-level trace (flat storage for cache
 * friendliness during replay).
 */
class RecordedTrace
{
  public:
    struct Block
    {
        isa::BlockId block;
        std::uint8_t taken;
        /** Index of this block's first MemRef; the range ends at the
         *  next block's memBegin (or memRefs.size() for the last). */
        std::uint32_t memBegin;
    };

    std::vector<Block> blocks;
    std::vector<MemRef> memRefs;
    Counter instCount = 0;

    /** Memory-reference range of block event i. */
    std::pair<std::uint32_t, std::uint32_t>
    memRange(std::size_t i) const
    {
        const std::uint32_t begin = blocks[i].memBegin;
        const std::uint32_t end =
            i + 1 < blocks.size()
                ? blocks[i + 1].memBegin
                : static_cast<std::uint32_t>(memRefs.size());
        return {begin, end};
    }
};

/** Run an executor to completion into a RecordedTrace. */
RecordedTrace recordTrace(const isa::Program &program,
                          DataAddressGenerator &dgen,
                          const ExecConfig &config);

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_EXECUTOR_HH
