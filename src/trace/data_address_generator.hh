/**
 * @file
 * Synthetic data-reference address generator.
 *
 * Loads and stores in generated programs carry an AddrClass chosen at
 * code-generation time; this component turns those classes into
 * concrete 32-bit addresses with controllable locality:
 *
 *  - Stack: sp-relative frame slots; the frame base tracks call depth.
 *  - Global: a gp-addressed 64 KB static area; the site's displacement
 *    selects the variable, so loop re-execution gives strong reuse.
 *  - Array: per-stream sequential walks with a configurable element
 *    stride, wrapping at the array size (streaming reuse distance
 *    equal to the array footprint).
 *  - Heap: Zipf-distributed object references over a working set
 *    (short reuse distances for hot objects, a long tail of cold
 *    ones).
 *
 * The knobs (array footprints, heap working set, Zipf skew) are the
 * per-benchmark levers that shape the miss-rate-versus-size curves of
 * Figures 3, 4, and 8.
 */

#ifndef PIPECACHE_TRACE_DATA_ADDRESS_GENERATOR_HH
#define PIPECACHE_TRACE_DATA_ADDRESS_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace pipecache::trace {

/** Configuration for one benchmark's data space. */
struct DataGenConfig
{
    /** Address-space base; distinct per process in a multiprogramming
     *  trace so physical tags do not collide. */
    Addr base = 0;

    std::uint32_t stackBytes = 16 * 1024;
    std::uint32_t globalBytes = 64 * 1024;

    /** Per-stream array footprints in bytes. */
    std::vector<std::uint32_t> arrayBytes = {64 * 1024};
    /** Walk stride in bytes. */
    std::uint32_t arrayStride = 4;

    std::uint32_t heapBytes = 128 * 1024;
    /** Heap object granularity in bytes. */
    std::uint32_t heapObjBytes = 32;
    /** Zipf skew of heap object popularity (higher = more locality). */
    double heapTheta = 0.8;

    std::uint64_t seed = 7;
};

/** Stateful per-benchmark address generator. */
class DataAddressGenerator
{
  public:
    explicit DataAddressGenerator(const DataGenConfig &config);

    /**
     * Produce the address for one executed memory instruction.
     *
     * @param cls        Locality class from the instruction.
     * @param stream     Data stream index (Array/Heap).
     * @param displacement Instruction displacement (Stack/Global).
     * @param call_depth Current procedure call depth (Stack).
     */
    Addr next(isa::AddrClass cls, std::uint8_t stream,
              std::int32_t displacement, std::uint32_t call_depth);

    /** Reset all walk/locality state (new trace run). */
    void reset();

    const DataGenConfig &config() const { return config_; }

  private:
    DataGenConfig config_;
    Rng rng_;
    std::vector<std::uint32_t> arrayPos_;

    static constexpr std::uint32_t frameBytes = 256;

    Addr stackBase() const;
    Addr globalBase() const;
    Addr arrayBase(std::uint8_t stream) const;
    Addr heapBase() const;
};

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_DATA_ADDRESS_GENERATOR_HH
