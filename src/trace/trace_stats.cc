#include "trace/trace_stats.hh"

namespace pipecache::trace {

TraceMix
computeMix(const isa::Program &program, const RecordedTrace &trace)
{
    TraceMix mix;

    // Per-block instruction classification is the same every time a
    // block executes, so classify each block once and weight by its
    // execution count.
    struct BlockCounts
    {
        std::uint32_t size = 0;
        std::uint32_t loads = 0;
        std::uint32_t stores = 0;
        std::uint8_t cond = 0;
        std::uint8_t jump = 0;
        std::uint8_t indirect = 0;
        bool cached = false;
    };
    std::vector<BlockCounts> cache(program.numBlocks());

    for (const auto &ev : trace.blocks) {
        BlockCounts &bc = cache[ev.block];
        if (!bc.cached) {
            const isa::BasicBlock &bb = program.block(ev.block);
            bc.size = static_cast<std::uint32_t>(bb.size());
            for (const auto &inst : bb.insts) {
                switch (isa::opClass(inst.op)) {
                  case isa::OpClass::Load:
                    ++bc.loads;
                    break;
                  case isa::OpClass::Store:
                    ++bc.stores;
                    break;
                  case isa::OpClass::CondBranch:
                    bc.cond = 1;
                    break;
                  case isa::OpClass::Jump:
                    bc.jump = 1;
                    break;
                  case isa::OpClass::IndirectJump:
                    bc.indirect = 1;
                    break;
                  default:
                    break;
                }
            }
            bc.cached = true;
        }

        mix.insts += bc.size;
        mix.loads += bc.loads;
        mix.stores += bc.stores;
        mix.condBranches += bc.cond;
        mix.jumps += bc.jump;
        mix.indirects += bc.indirect;
        ++mix.blockEvents;
        mix.blockLen.sample(bc.size);
        if ((bc.cond || bc.jump || bc.indirect) && ev.taken)
            ++mix.takenCtis;
    }
    return mix;
}

} // namespace pipecache::trace
