#include "trace/executor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pipecache::trace {

using isa::BasicBlock;
using isa::BlockId;
using isa::TermKind;

Executor::Executor(const isa::Program &program, DataAddressGenerator &dgen,
                   const ExecConfig &config)
    : program_(program), dgen_(dgen), config_(config), rng_(config.seed),
      pc_(program.entry())
{
    PC_ASSERT(config_.maxInsts > 0, "executor needs a positive budget");
}

bool
Executor::decideCondBranch(BlockId id, const BasicBlock &bb)
{
    const auto &prof = bb.profile;
    if (!prof.backward)
        return rng_.nextBool(prof.takenProb);

    // Loop back-edge: the latch executes 'trips' times per loop entry,
    // taken on all but the last. 'remaining' counts latch executions
    // still to come, including the current one.
    auto it = loopTrips_.find(id);
    std::uint64_t remaining;
    if (it == loopTrips_.end()) {
        // Trips = 1 + geometric so the mean matches meanTrip.
        const double p = 1.0 / std::max(1.0, prof.meanTrip);
        remaining = std::min<std::uint64_t>(1 + rng_.nextGeometric(p),
                                            config_.maxTrip);
    } else {
        remaining = it->second;
    }

    if (remaining <= 1) {
        // Final latch execution: exit the loop and forget the entry so
        // the next loop entry draws a fresh trip count.
        if (it != loopTrips_.end())
            loopTrips_.erase(it);
        return false;
    }
    if (it == loopTrips_.end())
        loopTrips_.emplace(id, remaining - 1);
    else
        it->second = remaining - 1;
    return true;
}

bool
Executor::next(BlockEvent &event)
{
    if (done_)
        return false;

    const BasicBlock &bb = program_.block(pc_);
    event.block = pc_;
    event.taken = true;
    event.memRefs.clear();

    const auto depth = static_cast<std::uint32_t>(callStack_.size());
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
        const isa::Instruction &inst = bb.insts[i];
        if (isMem(inst.op)) {
            MemRef ref;
            ref.pos = static_cast<std::uint16_t>(i);
            ref.store = isStore(inst.op) ? 1 : 0;
            ref.addr = dgen_.next(inst.addrClass, inst.stream, inst.imm,
                                  depth);
            event.memRefs.push_back(ref);
        }
    }
    instCount_ += bb.size();

    // Decide the successor.
    BlockId next_pc = isa::invalidBlock;
    switch (bb.term) {
      case TermKind::FallThrough:
        next_pc = bb.fallthrough;
        break;
      case TermKind::CondBranch: {
        const bool taken = decideCondBranch(pc_, bb);
        event.taken = taken;
        next_pc = taken ? bb.target : bb.fallthrough;
        break;
      }
      case TermKind::Jump:
        next_pc = bb.target;
        break;
      case TermKind::Call:
        if (callStack_.size() < config_.maxCallDepth) {
            callStack_.push_back(bb.fallthrough);
            next_pc = bb.target;
        } else {
            // Depth cap: elide the call, continue at the return site.
            next_pc = bb.fallthrough;
        }
        break;
      case TermKind::Return:
        if (!callStack_.empty()) {
            next_pc = callStack_.back();
            callStack_.pop_back();
        } else {
            // Returning with an empty stack restarts the program; the
            // generator's driver loop makes this unreachable in
            // practice but hand-built programs may hit it.
            next_pc = program_.entry();
        }
        break;
      case TermKind::Switch:
        next_pc = bb.switchTargets[rng_.nextRange(
            bb.switchTargets.size())];
        break;
    }

    PC_ASSERT(next_pc != isa::invalidBlock,
              "executor lost control flow after block ", pc_);
    pc_ = next_pc;

    if (instCount_ >= config_.maxInsts)
        done_ = true;
    return true;
}

RecordedTrace
recordTrace(const isa::Program &program, DataAddressGenerator &dgen,
            const ExecConfig &config)
{
    Executor exec(program, dgen, config);
    RecordedTrace trace;
    trace.blocks.reserve(static_cast<std::size_t>(config.maxInsts / 6));

    BlockEvent event;
    while (exec.next(event)) {
        RecordedTrace::Block blk;
        blk.block = event.block;
        blk.taken = event.taken ? 1 : 0;
        blk.memBegin = static_cast<std::uint32_t>(trace.memRefs.size());
        trace.blocks.push_back(blk);
        trace.memRefs.insert(trace.memRefs.end(), event.memRefs.begin(),
                             event.memRefs.end());
    }
    trace.instCount = exec.instCount();
    return trace;
}

} // namespace pipecache::trace
