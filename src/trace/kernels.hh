/**
 * @file
 * Classic memory-benchmark kernels assembled as isa/ programs.
 *
 * Each kernel is a tiny hand-built control-flow graph — setup block,
 * hot loop, restart block — whose loads and stores carry the
 * AddrClass that reproduces the kernel's access pattern through
 * DataAddressGenerator: sequential and strided walks use Array
 * streams, random and pointer-chase use the Zipf heap. Running a
 * kernel through the trace executor yields the same flat
 * fetch+data record stream an external trace file would, so the
 * workload registry can mix synthetic kernels and real traces behind
 * one TraceSource interface.
 */

#ifndef PIPECACHE_TRACE_KERNELS_HH
#define PIPECACHE_TRACE_KERNELS_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"
#include "trace/data_address_generator.hh"
#include "trace/executor.hh"
#include "trace/source.hh"
#include "util/units.hh"

namespace pipecache::trace {

/** The classic kernels. */
enum class KernelKind : std::uint8_t
{
    Sequential,   //!< stream copy: sequential read + sequential write
    Strided,      //!< fixed-stride array walk (read-only)
    Random,       //!< near-uniform random reads and writes over a heap
    PointerChase, //!< dependent loads over a small hot working set
};

/** Kernel shape knobs. */
struct KernelConfig
{
    KernelKind kind = KernelKind::Sequential;
    /** Data footprint (array or heap working set) in bytes. */
    std::uint32_t footprintBytes = 256 * 1024;
    /** Walk stride in bytes (Strided only). */
    std::uint32_t strideBytes = 64;
    /** Instruction budget for the executor run. */
    Counter maxInsts = 120000;
    std::uint64_t seed = 1;
};

/** Assemble the kernel's program (laid out and validated). */
isa::Program makeKernelProgram(const KernelConfig &config);

/** The data-space configuration matching the kernel's pattern. */
DataGenConfig kernelDataConfig(const KernelConfig &config);

/**
 * TraceSource that executes a kernel incrementally through the
 * isa/ executor, flattening block events into fetch records
 * interleaved with their data references (din record order).
 */
class ProgramSource final : public TraceSource
{
  public:
    ProgramSource(std::string name, const KernelConfig &config);

    std::size_t fill(std::span<TraceRecord> out) override;

  private:
    isa::Program program_;
    DataAddressGenerator dgen_;
    Executor exec_;
    BlockEvent event_;
    std::vector<TraceRecord> pending_;
    std::size_t pendingAt_ = 0;
    bool done_ = false;

    bool refillPending();
};

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_KERNELS_HH
