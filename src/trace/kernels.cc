#include "trace/kernels.hh"

#include <algorithm>
#include <utility>

#include "isa/opcode.hh"
#include "util/logging.hh"

namespace pipecache::trace {

namespace {

using isa::AddrClass;
using isa::BasicBlock;
using isa::Instruction;
using isa::Opcode;
using isa::TermKind;

/** Loop bodies per kernel; the CTI is appended by the builder. */
std::vector<Instruction>
loopBody(KernelKind kind)
{
    switch (kind) {
    case KernelKind::Sequential:
        // Sequential walk, alternating read and write on one stream
        // (each access advances the walk). One stream, not two: the
        // generator spaces array streams a power of two apart, so a
        // two-stream copy would ping-pong every direct-mapped set —
        // the conflict-storm workload covers that adversary already.
        return {
            Instruction::makeLoad(8, 16, 0, AddrClass::Array, 0),
            Instruction::makeAluImm(Opcode::ADDIU, 9, 8, 1),
            Instruction::makeStore(9, 16, 0, AddrClass::Array, 0),
            Instruction::makeAluImm(Opcode::ADDIU, 16, 16, 4),
        };
    case KernelKind::Strided:
        // Strided read walk with a little index arithmetic.
        return {
            Instruction::makeAluImm(Opcode::SLL, 10, 10, 2),
            Instruction::makeLoad(8, 16, 0, AddrClass::Array, 0),
            Instruction::makeAlu(Opcode::ADDU, 11, 11, 8),
            Instruction::makeAluImm(Opcode::ADDIU, 16, 16, 1),
        };
    case KernelKind::Random:
        // Near-uniform reads and writes over the heap working set.
        return {
            Instruction::makeLoad(8, 16, 0, AddrClass::Heap, 0),
            Instruction::makeAlu(Opcode::XOR, 9, 9, 8),
            Instruction::makeStore(9, 17, 0, AddrClass::Heap, 0),
            Instruction::makeAluImm(Opcode::ADDIU, 16, 16, 1),
        };
    case KernelKind::PointerChase:
        // Dependent load: the loaded value is the next address.
        return {
            Instruction::makeLoad(8, 8, 0, AddrClass::Heap, 0),
            Instruction::makeAlu(Opcode::ADDU, 9, 9, 8),
        };
    }
    PC_FATAL("unreachable kernel kind");
}

} // namespace

isa::Program
makeKernelProgram(const KernelConfig &config)
{
    isa::Program program;

    // Block 0: setup, falls through into the hot loop.
    BasicBlock setup;
    setup.insts = {
        Instruction::makeAluImm(Opcode::ADDIU, 16, 0, 0),
        Instruction::makeAluImm(Opcode::ADDIU, 17, 0, 0),
        Instruction::makeAluImm(Opcode::LUI, 8, 0, 1),
    };
    setup.term = TermKind::FallThrough;

    // Block 1: the hot loop, a backward branch to itself.
    BasicBlock loop;
    loop.insts = loopBody(config.kind);
    loop.insts.push_back(Instruction::makeBranch(Opcode::BNE, 16, 0));
    loop.term = TermKind::CondBranch;
    loop.profile.backward = true;
    // Effectively loop forever; the executor's maxInsts is the budget.
    loop.profile.meanTrip = 1 << 18;

    // Block 2: restart the loop if the trip count ever runs out.
    BasicBlock restart;
    restart.insts = {Instruction::makeJump(Opcode::J)};
    restart.term = TermKind::Jump;

    isa::BlockId b0 = program.addBlock(std::move(setup));
    isa::BlockId b1 = program.addBlock(std::move(loop));
    isa::BlockId b2 = program.addBlock(std::move(restart));

    program.block(b0).fallthrough = b1;
    program.block(b1).target = b1;
    program.block(b1).fallthrough = b2;
    program.block(b2).target = b1;

    program.setEntry(b0);
    program.layout();
    program.validate();
    return program;
}

DataGenConfig
kernelDataConfig(const KernelConfig &config)
{
    DataGenConfig dcfg;
    dcfg.seed = config.seed;
    switch (config.kind) {
    case KernelKind::Sequential:
        dcfg.arrayBytes = {config.footprintBytes};
        dcfg.arrayStride = 4;
        break;
    case KernelKind::Strided:
        dcfg.arrayBytes = {config.footprintBytes};
        dcfg.arrayStride = config.strideBytes;
        break;
    case KernelKind::Random:
        dcfg.heapBytes = config.footprintBytes;
        dcfg.heapObjBytes = 32;
        // Near-zero skew: close to uniform over the footprint.
        dcfg.heapTheta = 0.05;
        break;
    case KernelKind::PointerChase:
        dcfg.heapBytes = config.footprintBytes;
        dcfg.heapObjBytes = 16;
        dcfg.heapTheta = 0.6;
        break;
    }
    return dcfg;
}

ProgramSource::ProgramSource(std::string name, const KernelConfig &config)
    : TraceSource(std::move(name)), program_(makeKernelProgram(config)),
      dgen_(kernelDataConfig(config)),
      exec_(program_, dgen_,
            ExecConfig{.seed = config.seed, .maxInsts = config.maxInsts})
{
}

bool
ProgramSource::refillPending()
{
    pending_.clear();
    pendingAt_ = 0;
    if (done_ || !exec_.next(event_)) {
        done_ = true;
        return false;
    }
    // Const access matters: the mutable Program::block() overload
    // invalidates the layout.
    const isa::Program &prog = program_;
    const BasicBlock &bb = prog.block(event_.block);
    std::size_t mem = 0;
    for (std::size_t pos = 0; pos < bb.size(); ++pos) {
        pending_.push_back(
            {RefKind::Fetch, prog.instAddr(event_.block, pos)});
        while (mem < event_.memRefs.size() &&
               event_.memRefs[mem].pos == pos) {
            const MemRef &ref = event_.memRefs[mem];
            pending_.push_back(
                {ref.store ? RefKind::Write : RefKind::Read, ref.addr});
            ++mem;
        }
    }
    return true;
}

std::size_t
ProgramSource::fill(std::span<TraceRecord> out)
{
    std::size_t n = 0;
    while (n < out.size()) {
        if (pendingAt_ == pending_.size() && !refillPending())
            break;
        std::size_t take = std::min(out.size() - n,
                                    pending_.size() - pendingAt_);
        std::copy_n(pending_.begin() +
                        static_cast<std::ptrdiff_t>(pendingAt_),
                    take, out.begin() + static_cast<std::ptrdiff_t>(n));
        pendingAt_ += take;
        n += take;
    }
    return n;
}

} // namespace pipecache::trace
