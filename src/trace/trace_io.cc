#include "trace/trace_io.hh"

#include <cctype>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace pipecache::trace {

namespace {

template <typename Fn>
void
forEachFlatRecord(const isa::Program &program, const RecordedTrace &trace,
                  Fn &&fn)
{
    for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
        const auto &ev = trace.blocks[i];
        const isa::BasicBlock &bb = program.block(ev.block);
        auto [mem_begin, mem_end] = trace.memRange(i);
        std::uint32_t mem = mem_begin;
        for (std::size_t pos = 0; pos < bb.size(); ++pos) {
            fn(TraceRecord{RefKind::Fetch,
                           program.instAddr(ev.block, pos)});
            while (mem < mem_end && trace.memRefs[mem].pos == pos) {
                const MemRef &ref = trace.memRefs[mem];
                fn(TraceRecord{ref.store ? RefKind::Write : RefKind::Read,
                               ref.addr});
                ++mem;
            }
        }
    }
}

} // namespace

void
writeDin(std::ostream &os, const isa::Program &program,
         const RecordedTrace &trace)
{
    PC_ASSERT(program.laidOut(), "program must be laid out");
    char buf[32];
    forEachFlatRecord(program, trace, [&](const TraceRecord &rec) {
        char *p = buf;
        *p++ = static_cast<char>('0' + static_cast<int>(rec.kind));
        *p++ = ' ';
        auto res = std::to_chars(p, buf + sizeof(buf), rec.addr, 16);
        *res.ptr++ = '\n';
        os.write(buf, res.ptr - buf);
    });
}

std::vector<TraceRecord>
readDin(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Skip blank lines and comments.
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;

        const char *begin = line.data() + start;
        const char *end = line.data() + line.size();

        // Malformed records are a property of the input, not a
        // simulator failure: throw DataError with the line number so
        // a long run can skip or report the file instead of dying.
        int label = -1;
        auto lr = std::from_chars(begin, end, label);
        if (lr.ec != std::errc{} || label < 0 || label > 2)
            throw DataError("", lineno, "bad label in '" + line + "'");

        const char *ap = lr.ptr;
        if (ap == end)
            throw DataError("", lineno,
                            "truncated record '" + line + "'");
        while (ap < end && std::isspace(static_cast<unsigned char>(*ap)))
            ++ap;
        Addr addr = 0;
        auto ar = std::from_chars(ap, end, addr, 16);
        if (ar.ec != std::errc{} || ap == ar.ptr)
            throw DataError("", lineno, "bad address in '" + line + "'");

        records.push_back({static_cast<RefKind>(label), addr});
    }
    return records;
}

void
writeDinFile(const std::string &path, const isa::Program &program,
             const RecordedTrace &trace)
{
    // Atomic write: a crash mid-emission never leaves a truncated
    // trace behind for a later run to choke on.
    util::writeFileAtomic(path, [&](std::ostream &os) {
        writeDin(os, program, trace);
    });
}

std::vector<TraceRecord>
readDinFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw IoError(path, "cannot open trace file");
    try {
        return readDin(in);
    } catch (const DataError &e) {
        throw e.withSource(path);
    }
}

std::vector<TraceRecord>
flatten(const isa::Program &program, const RecordedTrace &trace)
{
    std::vector<TraceRecord> records;
    forEachFlatRecord(program, trace, [&](const TraceRecord &rec) {
        records.push_back(rec);
    });
    return records;
}

} // namespace pipecache::trace
