#include "trace/trace_io.hh"

#include <cctype>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace pipecache::trace {

namespace {

template <typename Fn>
void
forEachFlatRecord(const isa::Program &program, const RecordedTrace &trace,
                  Fn &&fn)
{
    for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
        const auto &ev = trace.blocks[i];
        const isa::BasicBlock &bb = program.block(ev.block);
        auto [mem_begin, mem_end] = trace.memRange(i);
        std::uint32_t mem = mem_begin;
        for (std::size_t pos = 0; pos < bb.size(); ++pos) {
            fn(TraceRecord{RefKind::Fetch,
                           program.instAddr(ev.block, pos)});
            while (mem < mem_end && trace.memRefs[mem].pos == pos) {
                const MemRef &ref = trace.memRefs[mem];
                fn(TraceRecord{ref.store ? RefKind::Write : RefKind::Read,
                               ref.addr});
                ++mem;
            }
        }
    }
}

void
emitDinRecord(std::ostream &os, const TraceRecord &rec)
{
    char buf[32];
    char *p = buf;
    *p++ = static_cast<char>('0' + static_cast<int>(rec.kind));
    *p++ = ' ';
    auto res = std::to_chars(p, buf + sizeof(buf), rec.addr, 16);
    *res.ptr++ = '\n';
    os.write(buf, res.ptr - buf);
}

} // namespace

void
writeDin(std::ostream &os, const isa::Program &program,
         const RecordedTrace &trace)
{
    PC_ASSERT(program.laidOut(), "program must be laid out");
    forEachFlatRecord(program, trace, [&](const TraceRecord &rec) {
        emitDinRecord(os, rec);
    });
}

void
writeDinRecords(std::ostream &os, std::span<const TraceRecord> records)
{
    for (const TraceRecord &rec : records)
        emitDinRecord(os, rec);
}

bool
parseDinLine(std::string_view line, std::size_t lineno, TraceRecord &out)
{
    // Tolerate CRLF input: getline leaves the '\r' on the line.
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);

    // Skip blank lines and comments.
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos || line[start] == '#')
        return false;

    const char *begin = line.data() + start;
    const char *end = line.data() + line.size();

    // Malformed records are a property of the input, not a simulator
    // failure: throw DataError with the line number so a long run can
    // skip or report the file instead of dying.
    auto fail = [&](const std::string &what) -> DataError {
        return DataError("", lineno,
                         what + " in '" + std::string(line) + "'");
    };

    int label = -1;
    auto lr = std::from_chars(begin, end, label);
    if (lr.ec != std::errc{} || label < 0 || label > 2)
        throw fail("bad label");

    const char *ap = lr.ptr;
    if (ap == end)
        throw fail("truncated record");
    if (!std::isspace(static_cast<unsigned char>(*ap)))
        throw fail("bad label");
    while (ap < end && std::isspace(static_cast<unsigned char>(*ap)))
        ++ap;
    if (ap == end)
        throw fail("truncated record");
    Addr addr = 0;
    auto ar = std::from_chars(ap, end, addr, 16);
    if (ar.ec == std::errc::result_out_of_range)
        throw fail("address out of range (wider than 32 bits)");
    if (ar.ec != std::errc{} || ap == ar.ptr)
        throw fail("bad address");

    // Only whitespace may follow the address; "0 ff junk" used to
    // silently parse as addr 0xff.
    for (const char *tp = ar.ptr; tp < end; ++tp)
        if (!std::isspace(static_cast<unsigned char>(*tp)))
            throw fail("trailing garbage");

    out = {static_cast<RefKind>(label), addr};
    return true;
}

std::vector<TraceRecord>
readDin(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::size_t lineno = 0;
    TraceRecord rec;
    while (std::getline(is, line)) {
        ++lineno;
        if (parseDinLine(line, lineno, rec))
            records.push_back(rec);
    }
    return records;
}

void
writeDinFile(const std::string &path, const isa::Program &program,
             const RecordedTrace &trace)
{
    // Atomic write: a crash mid-emission never leaves a truncated
    // trace behind for a later run to choke on.
    util::writeFileAtomic(path, [&](std::ostream &os) {
        writeDin(os, program, trace);
    });
}

std::vector<TraceRecord>
readDinFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw IoError(path, "cannot open trace file");
    try {
        return readDin(in);
    } catch (const DataError &e) {
        throw e.withSource(path);
    }
}

std::vector<TraceRecord>
flatten(const isa::Program &program, const RecordedTrace &trace)
{
    std::vector<TraceRecord> records;
    forEachFlatRecord(program, trace, [&](const TraceRecord &rec) {
        records.push_back(rec);
    });
    return records;
}

} // namespace pipecache::trace
