#include "trace/benchmark.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/logging.hh"

namespace pipecache::trace {

namespace {

constexpr std::uint32_t kb = 1024;

/**
 * Build the suite. Published columns come straight from Table 1 of the
 * paper; the model knobs are chosen per benchmark class: FP kernels
 * get long loops and large array footprints, integer applications get
 * bigger static code, shorter loops, and heap/global-dominated data.
 * ("doduc" appears as the Monte Carlo simulation in the paper's table;
 * the scanned text renders it "dodged".)
 */
std::vector<Benchmark>
buildSuite()
{
    using Class = Benchmark::Class;
    std::vector<Benchmark> suite;

    auto add = [&](Benchmark b) { suite.push_back(std::move(b)); };

    add({.name = "sdiff",
         .description = "File comparison",
         .cls = Class::Integer,
         .instMillions = 218.3,
         .loadPct = 15.3,
         .storePct = 3.4,
         .branchPct = 20.7,
         .syscalls = 305,
         .staticInsts = 4200,
         .meanTrip = 8,
         .stackFrac = 0.25,
         .globalFrac = 0.40,
         .arrayFrac = 0.15,
         .heapFrac = 0.20,
         .arrayBytes = {48 * kb, 48 * kb},
         .heapBytes = 96 * kb,
         .heapTheta = 0.9});

    add({.name = "awk",
         .description = "String matching and processing",
         .cls = Class::Integer,
         .instMillions = 209.5,
         .loadPct = 19.0,
         .storePct = 12.6,
         .branchPct = 14.3,
         .syscalls = 101,
         .staticInsts = 8200,
         .meanTrip = 9,
         .stackFrac = 0.30,
         .globalFrac = 0.30,
         .arrayFrac = 0.10,
         .heapFrac = 0.30,
         .arrayBytes = {32 * kb},
         .heapBytes = 192 * kb,
         .heapTheta = 0.85});

    add({.name = "doduc",
         .description = "Monte Carlo simulation",
         .cls = Class::DoubleFp,
         .instMillions = 96.3,
         .loadPct = 31.0,
         .storePct = 10.0,
         .branchPct = 8.7,
         .syscalls = 427,
         .staticInsts = 14000,
         .meanTrip = 14,
         .stackFrac = 0.15,
         .globalFrac = 0.20,
         .arrayFrac = 0.50,
         .heapFrac = 0.15,
         .arrayBytes = {96 * kb, 96 * kb, 64 * kb, 64 * kb},
         .heapBytes = 128 * kb,
         .heapTheta = 0.8});

    add({.name = "espresso",
         .description = "Logic minimization",
         .cls = Class::Integer,
         .instMillions = 238.0,
         .loadPct = 19.9,
         .storePct = 5.6,
         .branchPct = 16.2,
         .syscalls = 17,
         .staticInsts = 12500,
         .meanTrip = 10,
         .stackFrac = 0.25,
         .globalFrac = 0.25,
         .arrayFrac = 0.15,
         .heapFrac = 0.35,
         .arrayBytes = {64 * kb, 32 * kb},
         .heapBytes = 320 * kb,
         .heapTheta = 0.8});

    add({.name = "gcc",
         .description = "C compiler",
         .cls = Class::Integer,
         .instMillions = 235.7,
         .loadPct = 23.3,
         .storePct = 13.8,
         .branchPct = 20.1,
         .syscalls = 487,
         .staticInsts = 26000,
         .meanTrip = 5,
         .stackFrac = 0.30,
         .globalFrac = 0.20,
         .arrayFrac = 0.10,
         .heapFrac = 0.40,
         .arrayBytes = {32 * kb},
         .heapBytes = 512 * kb,
         .heapTheta = 0.7});

    add({.name = "integral",
         .description = "Numerical integration",
         .cls = Class::DoubleFp,
         .instMillions = 110.5,
         .loadPct = 37.0,
         .storePct = 10.4,
         .branchPct = 7.6,
         .syscalls = 12,
         .staticInsts = 2600,
         .meanTrip = 28,
         .stackFrac = 0.20,
         .globalFrac = 0.25,
         .arrayFrac = 0.45,
         .heapFrac = 0.10,
         .arrayBytes = {64 * kb, 48 * kb},
         .heapBytes = 64 * kb,
         .heapTheta = 0.9});

    add({.name = "linpack",
         .description = "Linear equation solver",
         .cls = Class::DoubleFp,
         .instMillions = 4.0,
         .loadPct = 37.4,
         .storePct = 19.7,
         .branchPct = 5.4,
         .syscalls = 10,
         .staticInsts = 2000,
         .meanTrip = 45,
         .stackFrac = 0.10,
         .globalFrac = 0.15,
         .arrayFrac = 0.70,
         .heapFrac = 0.05,
         .arrayBytes = {80 * kb, 80 * kb},
         .heapBytes = 32 * kb,
         .heapTheta = 0.9});

    add({.name = "loops",
         .description = "First 12 Livermore kernels",
         .cls = Class::DoubleFp,
         .instMillions = 275.5,
         .loadPct = 29.3,
         .storePct = 10.9,
         .branchPct = 5.3,
         .syscalls = 3,
         .staticInsts = 3400,
         .meanTrip = 40,
         .stackFrac = 0.10,
         .globalFrac = 0.15,
         .arrayFrac = 0.65,
         .heapFrac = 0.10,
         .arrayBytes = {128 * kb, 128 * kb, 96 * kb, 96 * kb},
         .heapBytes = 64 * kb,
         .heapTheta = 0.9});

    add({.name = "matrix500",
         .description = "500 x 500 matrix operations",
         .cls = Class::SingleFp,
         .instMillions = 202.2,
         .loadPct = 24.3,
         .storePct = 3.5,
         .branchPct = 3.5,
         .syscalls = 10,
         .staticInsts = 2600,
         .meanTrip = 70,
         .stackFrac = 0.05,
         .globalFrac = 0.10,
         .arrayFrac = 0.80,
         .heapFrac = 0.05,
         .arrayBytes = {512 * kb, 512 * kb, 512 * kb, 512 * kb},
         .heapBytes = 32 * kb,
         .heapTheta = 0.9});

    add({.name = "nroff",
         .description = "Text formatting",
         .cls = Class::Integer,
         .instMillions = 157.1,
         .loadPct = 22.4,
         .storePct = 10.8,
         .branchPct = 24.6,
         .syscalls = 1701,
         .staticInsts = 10500,
         .meanTrip = 6,
         .stackFrac = 0.30,
         .globalFrac = 0.35,
         .arrayFrac = 0.10,
         .heapFrac = 0.25,
         .arrayBytes = {32 * kb},
         .heapBytes = 160 * kb,
         .heapTheta = 0.85});

    add({.name = "small",
         .description = "Stanford small benchmarks",
         .cls = Class::Integer,
         .instMillions = 16.7,
         .loadPct = 19.9,
         .storePct = 8.8,
         .branchPct = 19.6,
         .syscalls = 0,
         .staticInsts = 3100,
         .meanTrip = 9,
         .stackFrac = 0.35,
         .globalFrac = 0.30,
         .arrayFrac = 0.20,
         .heapFrac = 0.15,
         .arrayBytes = {24 * kb, 24 * kb},
         .heapBytes = 64 * kb,
         .heapTheta = 0.9});

    add({.name = "spice2g6",
         .description = "Circuit simulator",
         .cls = Class::SingleFp,
         .instMillions = 297.3,
         .loadPct = 29.8,
         .storePct = 8.6,
         .branchPct = 8.0,
         .syscalls = 395,
         .staticInsts = 21000,
         .meanTrip = 18,
         .stackFrac = 0.15,
         .globalFrac = 0.25,
         .arrayFrac = 0.40,
         .heapFrac = 0.20,
         .arrayBytes = {256 * kb, 192 * kb, 128 * kb, 128 * kb},
         .heapBytes = 256 * kb,
         .heapTheta = 0.8});

    add({.name = "tex",
         .description = "Typesetting",
         .cls = Class::Integer,
         .instMillions = 133.8,
         .loadPct = 30.2,
         .storePct = 14.2,
         .branchPct = 11.7,
         .syscalls = 697,
         .staticInsts = 16500,
         .meanTrip = 8,
         .stackFrac = 0.25,
         .globalFrac = 0.35,
         .arrayFrac = 0.15,
         .heapFrac = 0.25,
         .arrayBytes = {96 * kb, 64 * kb},
         .heapBytes = 256 * kb,
         .heapTheta = 0.8});

    add({.name = "wolf33",
         .description = "Simulated annealing placement",
         .cls = Class::Integer,
         .instMillions = 115.4,
         .loadPct = 30.0,
         .storePct = 7.5,
         .branchPct = 14.8,
         .syscalls = 407,
         .staticInsts = 9000,
         .meanTrip = 12,
         .stackFrac = 0.20,
         .globalFrac = 0.25,
         .arrayFrac = 0.25,
         .heapFrac = 0.30,
         .arrayBytes = {128 * kb, 96 * kb},
         .heapBytes = 256 * kb,
         .heapTheta = 0.8});

    add({.name = "xwim",
         .description = "X-windows application",
         .cls = Class::Integer,
         .instMillions = 52.2,
         .loadPct = 22.5,
         .storePct = 17.7,
         .branchPct = 17.1,
         .syscalls = 65294,
         .staticInsts = 9500,
         .meanTrip = 7,
         .stackFrac = 0.35,
         .globalFrac = 0.30,
         .arrayFrac = 0.10,
         .heapFrac = 0.25,
         .arrayBytes = {48 * kb},
         .heapBytes = 192 * kb,
         .heapTheta = 0.85});

    add({.name = "yacc",
         .description = "Parser generator",
         .cls = Class::Integer,
         .instMillions = 193.9,
         .loadPct = 19.6,
         .storePct = 2.4,
         .branchPct = 25.2,
         .syscalls = 49,
         .staticInsts = 7800,
         .meanTrip = 7,
         .stackFrac = 0.25,
         .globalFrac = 0.40,
         .arrayFrac = 0.20,
         .heapFrac = 0.15,
         .arrayBytes = {64 * kb, 48 * kb},
         .heapBytes = 96 * kb,
         .heapTheta = 0.9});

    return suite;
}

} // namespace

std::uint64_t
Benchmark::seed(std::uint64_t salt) const
{
    // FNV-1a over the name: stable across runs and platforms. The
    // salt yields an independent synthetic instance with the same
    // calibration targets (used for robustness sweeps).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h ^ (salt * 0x9e3779b97f4a7c15ULL);
}

isa::GenProfile
Benchmark::genProfile(std::uint64_t salt) const
{
    isa::GenProfile prof;
    prof.name = name;
    prof.seed = seed(salt);
    prof.staticInsts = staticInsts;
    prof.numProcs = std::clamp<std::uint32_t>(staticInsts / 800, 4, 40);
    prof.loadFrac = loadPct / 100.0;
    prof.storeFrac = storePct / 100.0;
    prof.ctiFrac = branchPct / 100.0;
    prof.fpFrac = cls == Class::Integer ? 0.0
                  : cls == Class::SingleFp ? 0.40
                                           : 0.50;
    prof.meanTrip = meanTrip;
    // FP kernels are loop-dominated; integer codes branchier.
    prof.loopFrac = cls == Class::Integer ? 0.30 : 0.45;
    prof.stackFrac = stackFrac;
    prof.globalFrac = globalFrac;
    prof.arrayFrac = arrayFrac;
    prof.heapFrac = heapFrac;
    prof.numStreams =
        static_cast<std::uint32_t>(std::max<std::size_t>(
            arrayBytes.size(), 2));
    return prof;
}

DataGenConfig
Benchmark::dataConfig(std::uint32_t asid, std::uint64_t salt) const
{
    DataGenConfig config;
    config.base = asid * addressSpaceStride;
    config.arrayBytes = arrayBytes;
    config.heapBytes = heapBytes;
    config.heapTheta = heapTheta;
    config.seed = seed(salt) ^ 0x5bd1e995;
    return config;
}

Addr
Benchmark::codeBase(std::uint32_t asid) const
{
    return asid * addressSpaceStride + 0x4000;
}

Counter
Benchmark::scaledInsts(double scale_divisor) const
{
    if (scale_divisor < 1.0)
        throw UsageError("scale divisor must be >= 1");
    const double scaled = instMillions * 1e6 / scale_divisor;
    return static_cast<Counter>(std::max(scaled, 20000.0));
}

isa::Program
Benchmark::makeProgram(std::uint32_t asid, std::uint64_t salt) const
{
    isa::Program prog = isa::generateProgram(genProfile(salt));
    prog.setBase(codeBase(asid));
    prog.layout();
    return prog;
}

RecordedTrace
Benchmark::record(std::uint32_t asid, double scale_divisor,
                  std::uint64_t salt) const
{
    const isa::Program prog = makeProgram(asid, salt);
    DataAddressGenerator dgen(dataConfig(asid, salt));
    ExecConfig exec;
    exec.seed = seed(salt) ^ 0x2545f491;
    exec.maxInsts = scaledInsts(scale_divisor);
    return recordTrace(prog, dgen, exec);
}

const std::vector<Benchmark> &
table1Suite()
{
    static const std::vector<Benchmark> suite = buildSuite();
    return suite;
}

const Benchmark &
findBenchmark(std::string_view name)
{
    for (const auto &b : table1Suite())
        if (b.name == name)
            return b;
    throw UsageError("unknown benchmark: " + std::string(name));
}

} // namespace pipecache::trace
