/**
 * @file
 * The paper's benchmark suite (Table 1) as synthetic-workload models.
 *
 * Each entry carries the published Table 1 characteristics (dynamic
 * instruction count, load/store/branch percentages, benchmark class)
 * plus the generation knobs — static code size, loop trip counts,
 * addressing mix, and data footprints — that make the synthetic
 * substitute exercise the same mechanisms as the original trace. The
 * published numbers are used (a) to parameterize generation and (b) as
 * the reference column in bench_table1.
 */

#ifndef PIPECACHE_TRACE_BENCHMARK_HH
#define PIPECACHE_TRACE_BENCHMARK_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hh"
#include "isa/program_generator.hh"
#include "trace/data_address_generator.hh"
#include "trace/executor.hh"
#include "util/units.hh"

namespace pipecache::trace {

/** One benchmark of the paper's Table 1. */
struct Benchmark
{
    enum class Class : std::uint8_t
    {
        Integer,   //!< (I)
        SingleFp,  //!< (S)
        DoubleFp,  //!< (D)
    };

    std::string name;
    std::string description;
    Class cls = Class::Integer;

    // --- published Table 1 characteristics -------------------------
    double instMillions = 0.0;
    double loadPct = 0.0;
    double storePct = 0.0;
    double branchPct = 0.0;
    std::uint64_t syscalls = 0;

    // --- synthetic-model knobs --------------------------------------
    std::uint32_t staticInsts = 4000;
    double meanTrip = 10.0;
    double stackFrac = 0.30;
    double globalFrac = 0.35;
    double arrayFrac = 0.15;
    double heapFrac = 0.20;
    std::vector<std::uint32_t> arrayBytes = {64 * 1024};
    std::uint32_t heapBytes = 128 * 1024;
    double heapTheta = 0.85;

    /** Deterministic per-benchmark seed (xor @p salt to get an
     *  independent synthetic instance of the same benchmark). */
    std::uint64_t seed(std::uint64_t salt = 0) const;

    /** Program-generator profile for this benchmark. */
    isa::GenProfile genProfile(std::uint64_t salt = 0) const;

    /**
     * Data-space configuration. @p asid selects a disjoint 16 MB
     * process address space for multiprogramming traces.
     */
    DataGenConfig dataConfig(std::uint32_t asid,
                             std::uint64_t salt = 0) const;

    /** Code-segment base for the given address space. */
    Addr codeBase(std::uint32_t asid) const;

    /**
     * Dynamic instruction budget after applying the suite scale
     * divisor (paper counts divided by @p scale_divisor), with a floor
     * so tiny benchmarks still execute meaningfully.
     */
    Counter scaledInsts(double scale_divisor) const;

    /**
     * Generate this benchmark's program in address space @p asid
     * (validated and laid out).
     */
    isa::Program makeProgram(std::uint32_t asid,
                             std::uint64_t salt = 0) const;

    /** Generate and record this benchmark's trace. */
    RecordedTrace record(std::uint32_t asid, double scale_divisor,
                         std::uint64_t salt = 0) const;
};

/** The 16-benchmark suite of Table 1, in the paper's order. */
const std::vector<Benchmark> &table1Suite();

/** Look up a suite benchmark by name; throws UsageError if absent. */
const Benchmark &findBenchmark(std::string_view name);

/** Per-process address-space stride (16 MB). */
inline constexpr Addr addressSpaceStride = 0x01000000;

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_BENCHMARK_HH
