#include "trace/trace_serialize.hh"

#include <cstring>
#include <type_traits>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace pipecache::trace {

namespace {

constexpr std::uint64_t traceMagic = 0x3145434152544350ULL; // "PCTRACE1"

/** Running FNV-1a checksum over emitted bytes. */
class Crc
{
  public:
    void update(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL;
        }
    }
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        os_.write(reinterpret_cast<const char *>(&value),
                  sizeof(value));
        crc_.update(&value, sizeof(value));
    }

    std::uint64_t crc() const { return crc_.value(); }

  private:
    std::ostream &os_;
    Crc crc_;
};

class Reader
{
  public:
    explicit Reader(std::istream &is) : is_(is) {}

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        is_.read(reinterpret_cast<char *>(&value), sizeof(value));
        if (!is_)
            throw DataError("truncated trace stream");
        crc_.update(&value, sizeof(value));
        return value;
    }

    /** Read without folding into the checksum (for the crc itself). */
    std::uint64_t
    getRawU64()
    {
        std::uint64_t value = 0;
        is_.read(reinterpret_cast<char *>(&value), sizeof(value));
        if (!is_)
            throw DataError("truncated trace stream (checksum)");
        return value;
    }

    std::uint64_t crc() const { return crc_.value(); }

  private:
    std::istream &is_;
    Crc crc_;
};

} // namespace

void
saveTrace(std::ostream &os, const RecordedTrace &trace)
{
    Writer w(os);
    w.put(traceMagic);
    w.put(static_cast<std::uint64_t>(trace.instCount));
    w.put(static_cast<std::uint64_t>(trace.blocks.size()));
    w.put(static_cast<std::uint64_t>(trace.memRefs.size()));
    for (const auto &b : trace.blocks) {
        w.put(b.block);
        w.put(b.taken);
        w.put(b.memBegin);
    }
    for (const auto &m : trace.memRefs) {
        w.put(m.pos);
        w.put(m.store);
        w.put(m.addr);
    }
    const std::uint64_t crc = w.crc();
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    if (!os)
        throw IoError("error while writing trace stream");
}

RecordedTrace
loadTrace(std::istream &is)
{
    Reader r(is);
    if (r.get<std::uint64_t>() != traceMagic)
        throw DataError("not a pipecache trace (bad magic)");

    RecordedTrace trace;
    trace.instCount = r.get<std::uint64_t>();
    const auto nblocks = r.get<std::uint64_t>();
    const auto nmem = r.get<std::uint64_t>();
    // Sanity cap: refuse absurd sizes before allocating.
    if (nblocks > (1ULL << 32) || nmem > (1ULL << 32))
        throw DataError("implausible trace header (" +
                        std::to_string(nblocks) + " blocks, " +
                        std::to_string(nmem) + " mem refs)");

    trace.blocks.reserve(nblocks);
    for (std::uint64_t i = 0; i < nblocks; ++i) {
        RecordedTrace::Block b;
        b.block = r.get<isa::BlockId>();
        b.taken = r.get<std::uint8_t>();
        b.memBegin = r.get<std::uint32_t>();
        trace.blocks.push_back(b);
    }
    trace.memRefs.reserve(nmem);
    for (std::uint64_t i = 0; i < nmem; ++i) {
        MemRef m;
        m.pos = r.get<std::uint16_t>();
        m.store = r.get<std::uint8_t>();
        m.addr = r.get<Addr>();
        trace.memRefs.push_back(m);
    }

    const std::uint64_t expect = r.crc();
    const std::uint64_t stored = r.getRawU64();
    if (expect != stored)
        throw DataError("trace checksum mismatch (corrupt file)");

    // Structural sanity: memBegin indices must be monotone and within
    // range so memRange() stays safe.
    std::uint32_t prev = 0;
    for (const auto &b : trace.blocks) {
        if (b.memBegin < prev ||
            b.memBegin > trace.memRefs.size())
            throw DataError("corrupt trace: bad memBegin ordering");
        prev = b.memBegin;
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const RecordedTrace &trace)
{
    // Atomic write: a crash mid-save never leaves a truncated trace.
    util::writeFileAtomic(
        path, [&](std::ostream &os) { saveTrace(os, trace); },
        util::AtomicWriteMode::Binary);
}

RecordedTrace
loadTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw IoError(path, "cannot open trace file");
    try {
        return loadTrace(in);
    } catch (const DataError &e) {
        throw e.withSource(path);
    }
}

} // namespace pipecache::trace
