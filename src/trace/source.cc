#include "trace/source.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <string_view>

#include "trace/trace_io.hh"
#include "util/error.hh"

namespace pipecache::trace {

namespace {

/** Case-insensitive extension match against the end of @p path. */
bool
hasExtension(const std::string &path, std::string_view ext)
{
    if (path.size() < ext.size())
        return false;
    std::size_t off = path.size() - ext.size();
    for (std::size_t i = 0; i < ext.size(); ++i) {
        char a = static_cast<char>(
            std::tolower(static_cast<unsigned char>(path[off + i])));
        char b = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ext[i])));
        if (a != b)
            return false;
    }
    return true;
}

} // namespace

VectorSource::VectorSource(std::vector<TraceRecord> records, std::string name)
    : TraceSource(std::move(name)), records_(std::move(records))
{
}

std::size_t
VectorSource::fill(std::span<TraceRecord> out)
{
    std::size_t n = std::min(out.size(), records_.size() - at_);
    std::copy_n(records_.begin() + static_cast<std::ptrdiff_t>(at_), n,
                out.begin());
    at_ += n;
    return n;
}

DinSource::DinSource(std::istream &is, std::string name)
    : TraceSource(std::move(name)), is_(&is)
{
}

DinSource::DinSource(std::unique_ptr<std::istream> is, std::string name)
    : TraceSource(std::move(name)), owned_(std::move(is)),
      is_(owned_.get())
{
}

std::size_t
DinSource::fill(std::span<TraceRecord> out)
{
    std::size_t n = 0;
    while (n < out.size() && std::getline(*is_, line_)) {
        ++lineno_;
        try {
            if (parseDinLine(line_, lineno_, out[n]))
                ++n;
        } catch (const DataError &e) {
            throw e.withSource(name());
        }
    }
    return n;
}

OracleGeneralSource::OracleGeneralSource(std::istream &is, std::string name)
    : TraceSource(std::move(name)), is_(&is)
{
}

OracleGeneralSource::OracleGeneralSource(std::unique_ptr<std::istream> is,
                                         std::string name)
    : TraceSource(std::move(name)), owned_(std::move(is)),
      is_(owned_.get())
{
}

Addr
OracleGeneralSource::objIdToAddr(std::uint64_t objId)
{
    // Fold the 64-bit key down to 26 bits (high half is usually zero
    // for dense integer ids, so those survive intact), then place each
    // object on its own 64-byte-aligned line in the 4 GiB space.
    std::uint64_t folded = objId ^ (objId >> 32);
    folded ^= folded >> 26;
    return static_cast<Addr>((folded & 0x03ffffffu) << 6);
}

std::size_t
OracleGeneralSource::fill(std::span<TraceRecord> out)
{
    std::size_t n = 0;
    unsigned char raw[kRecordBytes];
    while (n < out.size()) {
        is_->read(reinterpret_cast<char *>(raw), kRecordBytes);
        std::size_t got = static_cast<std::size_t>(is_->gcount());
        if (got == 0)
            break;
        if (got < kRecordBytes)
            throw DataError(
                name(), 0,
                "truncated oracleGeneral record #" +
                    std::to_string(recordIndex_) +
                    " (stream length is not a multiple of 24 bytes)");
        // Little-endian u64 obj_id at byte offset 4; clock_time,
        // obj_size, and next_access_vtime are ignored.
        std::uint64_t objId = 0;
        for (int i = 7; i >= 0; --i)
            objId = (objId << 8) | raw[4 + i];
        out[n++] = {RefKind::Read, objIdToAddr(objId)};
        ++recordIndex_;
    }
    return n;
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path)
{
    bool din = hasExtension(path, ".din");
    bool oracle = hasExtension(path, ".oracleGeneral");
    if (!din && !oracle)
        throw UsageError("unknown trace format for '" + path +
                         "' (expected .din or .oracleGeneral)");

    auto mode = oracle ? std::ios::in | std::ios::binary : std::ios::in;
    auto file = std::make_unique<std::ifstream>(path, mode);
    if (!*file)
        throw IoError(path, "cannot open trace file");
    if (din)
        return std::make_unique<DinSource>(std::move(file), path);
    return std::make_unique<OracleGeneralSource>(std::move(file), path);
}

std::vector<TraceRecord>
drain(TraceSource &source, std::size_t maxRecords)
{
    std::vector<TraceRecord> records;
    TraceRecord buf[4096];
    while (records.size() < maxRecords) {
        std::size_t got = source.fill(buf);
        if (got == 0)
            break;
        std::size_t take =
            std::min(got, maxRecords - records.size());
        records.insert(records.end(), buf, buf + take);
    }
    return records;
}

} // namespace pipecache::trace
