#include "trace/multiprog.hh"

#include "util/logging.hh"

namespace pipecache::trace {

MultiprogSchedule::MultiprogSchedule(
    const std::vector<const RecordedTrace *> &traces,
    const std::vector<const isa::Program *> &programs, Counter quantum)
{
    PC_ASSERT(!traces.empty(), "multiprogramming schedule with no traces");
    PC_ASSERT(traces.size() == programs.size(),
              "traces/programs size mismatch");
    PC_ASSERT(quantum > 0, "quantum must be positive");

    struct Cursor
    {
        std::uint32_t nextBlock = 0;
    };
    std::vector<Cursor> cursors(traces.size());

    std::size_t live = 0;
    for (const auto *t : traces) {
        PC_ASSERT(t != nullptr, "null trace");
        if (!t->blocks.empty())
            ++live;
        totalInsts_ += t->instCount;
    }

    std::size_t turn = 0;
    while (live > 0) {
        const std::size_t n = traces.size();
        const std::uint32_t bench = static_cast<std::uint32_t>(turn % n);
        ++turn;

        const RecordedTrace &tr = *traces[bench];
        Cursor &cur = cursors[bench];
        if (cur.nextBlock >= tr.blocks.size())
            continue;

        TraceSlice slice;
        slice.bench = bench;
        slice.blockBegin = cur.nextBlock;

        Counter insts = 0;
        std::uint32_t b = cur.nextBlock;
        const auto num_blocks =
            static_cast<std::uint32_t>(tr.blocks.size());
        while (b < num_blocks && insts < quantum) {
            insts += programs[bench]->block(tr.blocks[b].block).size();
            ++b;
        }
        slice.blockEnd = b;
        cur.nextBlock = b;
        if (b >= num_blocks)
            --live;

        slices_.push_back(slice);
    }
}

} // namespace pipecache::trace
