/**
 * @file
 * Multiprogramming trace composition.
 *
 * The paper's traces are *multiprogrammed*: several benchmarks share
 * the machine under round-robin scheduling, so the caches see context
 * switches and inter-process interference. MultiprogSchedule slices a
 * set of per-benchmark recorded traces into quantum-sized segments in
 * round-robin order; replay engines process the slices in sequence
 * against per-benchmark programs/translations while sharing one cache
 * hierarchy.
 */

#ifndef PIPECACHE_TRACE_MULTIPROG_HH
#define PIPECACHE_TRACE_MULTIPROG_HH

#include <cstdint>
#include <vector>

#include "trace/executor.hh"

namespace pipecache::trace {

/** One scheduled segment: a block range of one benchmark's trace. */
struct TraceSlice
{
    /** Index into the trace set. */
    std::uint32_t bench = 0;
    /** Block-event range [blockBegin, blockEnd) of that trace. */
    std::uint32_t blockBegin = 0;
    std::uint32_t blockEnd = 0;
};

/**
 * Round-robin multiprogramming schedule over recorded traces.
 *
 * Each quantum runs approximately @p quantum instructions of one
 * benchmark (rounded to whole basic blocks), then switches to the next
 * benchmark that still has trace left. Traces that finish drop out;
 * the schedule ends when all traces are exhausted.
 */
class MultiprogSchedule
{
  public:
    /**
     * @param traces  One recorded trace per benchmark.
     * @param programs Programs matching each trace (for block sizes).
     * @param quantum Instructions per scheduling quantum.
     */
    MultiprogSchedule(const std::vector<const RecordedTrace *> &traces,
                      const std::vector<const isa::Program *> &programs,
                      Counter quantum);

    const std::vector<TraceSlice> &slices() const { return slices_; }

    /** Total instructions across all traces. */
    Counter totalInsts() const { return totalInsts_; }

    /** Number of context switches in the schedule. */
    std::size_t numSwitches() const
    {
        return slices_.empty() ? 0 : slices_.size() - 1;
    }

  private:
    std::vector<TraceSlice> slices_;
    Counter totalInsts_ = 0;
};

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_MULTIPROG_HH
