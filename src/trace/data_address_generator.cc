#include "trace/data_address_generator.hh"

#include "util/logging.hh"

namespace pipecache::trace {

namespace {

// Region offsets within one process's 16 MB address space. Code
// occupies [0, 1 MB) (see Program::setBase); data regions follow.
constexpr Addr globalOffset = 0x00100000;
constexpr Addr arrayOffset = 0x00200000;
constexpr Addr arraySpacing = 0x00100000;
constexpr Addr heapOffset = 0x00A00000;
constexpr Addr stackTopOffset = 0x00F00000;

} // namespace

DataAddressGenerator::DataAddressGenerator(const DataGenConfig &config)
    : config_(config), rng_(config.seed)
{
    PC_ASSERT(!config_.arrayBytes.empty(), "need at least one array");
    PC_ASSERT(config_.heapObjBytes >= 4 && config_.heapBytes > 0,
              "bad heap configuration");
    PC_ASSERT(config_.arrayStride >= 4, "array stride below word size");
    for (auto bytes : config_.arrayBytes) {
        PC_ASSERT(bytes >= 4 && bytes <= arraySpacing,
                  "array footprint out of range: ", bytes);
    }
    arrayPos_.assign(config_.arrayBytes.size(), 0);
}

Addr
DataAddressGenerator::stackBase() const
{
    return config_.base + stackTopOffset;
}

Addr
DataAddressGenerator::globalBase() const
{
    return config_.base + globalOffset;
}

Addr
DataAddressGenerator::arrayBase(std::uint8_t stream) const
{
    return config_.base + arrayOffset +
           (stream % config_.arrayBytes.size()) * arraySpacing;
}

Addr
DataAddressGenerator::heapBase() const
{
    return config_.base + heapOffset;
}

Addr
DataAddressGenerator::next(isa::AddrClass cls, std::uint8_t stream,
                           std::int32_t displacement,
                           std::uint32_t call_depth)
{
    switch (cls) {
      case isa::AddrClass::Stack: {
        // Frames grow downward from the stack top; deep call chains
        // wrap within the stack region.
        const std::uint32_t frames = config_.stackBytes / frameBytes;
        const std::uint32_t depth = call_depth % std::max(1u, frames);
        const auto disp = static_cast<std::uint32_t>(displacement) %
                          frameBytes;
        return stackBase() - (depth + 1) * frameBytes + disp;
      }
      case isa::AddrClass::Global: {
        const auto disp = static_cast<std::uint32_t>(displacement) %
                          config_.globalBytes;
        return globalBase() + (disp & ~3u);
      }
      case isa::AddrClass::Array: {
        const std::size_t s = stream % config_.arrayBytes.size();
        const std::uint32_t size = config_.arrayBytes[s];
        const Addr addr = arrayBase(stream) + arrayPos_[s];
        arrayPos_[s] = (arrayPos_[s] + config_.arrayStride) % size;
        return addr & ~3u;
      }
      case isa::AddrClass::Heap: {
        const std::uint64_t objects =
            std::max<std::uint64_t>(1, config_.heapBytes /
                                    config_.heapObjBytes);
        const std::uint64_t obj = rng_.nextZipf(objects,
                                                config_.heapTheta);
        const std::uint32_t within =
            4 * static_cast<std::uint32_t>(
                rng_.nextRange(config_.heapObjBytes / 4));
        return heapBase() +
               static_cast<Addr>(obj * config_.heapObjBytes + within);
      }
      case isa::AddrClass::None:
        break;
    }
    PC_PANIC("data address requested for AddrClass::None");
}

void
DataAddressGenerator::reset()
{
    rng_ = Rng(config_.seed);
    arrayPos_.assign(config_.arrayBytes.size(), 0);
}

} // namespace pipecache::trace
