/**
 * @file
 * Flat trace input/output in the dinero "din" format.
 *
 * Each line is "<label> <hex address>" with label 0 = data read,
 * 1 = data write, 2 = instruction fetch — the classic trace-exchange
 * format of the era the paper comes from (DineroIII). Writing a
 * recorded trace flattens the block events into per-instruction fetch
 * records interleaved with their data references, so external cache
 * tools can consume our workloads and our cache model can consume
 * external traces.
 *
 * Malformed input is a property of the data, not a simulator bug, so
 * the readers throw DataError (with 1-based line attribution) rather
 * than aborting; the file wrappers throw IoError when the file itself
 * cannot be opened or written. CRLF line endings and trailing blank
 * lines are accepted; trailing garbage after the address, labels
 * outside {0,1,2}, and addresses wider than 32 bits are rejected.
 */

#ifndef PIPECACHE_TRACE_TRACE_IO_HH
#define PIPECACHE_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hh"
#include "trace/executor.hh"
#include "trace/trace_record.hh"

namespace pipecache::trace {

/**
 * Flatten a recorded trace into din records on @p os. The program must
 * be the one the trace was recorded from (laid out).
 */
void writeDin(std::ostream &os, const isa::Program &program,
              const RecordedTrace &trace);

/** Emit an already-flat record stream as din lines on @p os. */
void writeDinRecords(std::ostream &os, std::span<const TraceRecord> records);

/**
 * Parse one din line (no trailing newline; a trailing '\r' from CRLF
 * input is tolerated). Returns false for blank and comment lines,
 * true with @p out filled for a data line. Throws DataError — with
 * @p lineno attribution and an empty source, so callers can attach a
 * file name via withSource() — on malformed input.
 */
bool parseDinLine(std::string_view line, std::size_t lineno,
                  TraceRecord &out);

/**
 * Parse a din trace. Throws DataError on malformed input, identifying
 * the offending 1-based line.
 */
std::vector<TraceRecord> readDin(std::istream &is);

/**
 * Convenience file wrappers. Throw IoError when the file cannot be
 * opened or written; the reader attributes DataError to the path.
 */
void writeDinFile(const std::string &path, const isa::Program &program,
                  const RecordedTrace &trace);
std::vector<TraceRecord> readDinFile(const std::string &path);

/** Expand one recorded trace into in-memory flat records. */
std::vector<TraceRecord> flatten(const isa::Program &program,
                                 const RecordedTrace &trace);

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_TRACE_IO_HH
