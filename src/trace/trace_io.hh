/**
 * @file
 * Flat trace input/output in the dinero "din" format.
 *
 * Each line is "<label> <hex address>" with label 0 = data read,
 * 1 = data write, 2 = instruction fetch — the classic trace-exchange
 * format of the era the paper comes from (DineroIII). Writing a
 * recorded trace flattens the block events into per-instruction fetch
 * records interleaved with their data references, so external cache
 * tools can consume our workloads and our cache model can consume
 * external traces.
 */

#ifndef PIPECACHE_TRACE_TRACE_IO_HH
#define PIPECACHE_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "trace/executor.hh"
#include "trace/trace_record.hh"

namespace pipecache::trace {

/**
 * Flatten a recorded trace into din records on @p os. The program must
 * be the one the trace was recorded from (laid out).
 */
void writeDin(std::ostream &os, const isa::Program &program,
              const RecordedTrace &trace);

/**
 * Parse a din trace. fatal()s on malformed input, identifying the
 * offending line.
 */
std::vector<TraceRecord> readDin(std::istream &is);

/** Convenience file wrappers; fatal() on I/O failure. */
void writeDinFile(const std::string &path, const isa::Program &program,
                  const RecordedTrace &trace);
std::vector<TraceRecord> readDinFile(const std::string &path);

/** Expand one recorded trace into in-memory flat records. */
std::vector<TraceRecord> flatten(const isa::Program &program,
                                 const RecordedTrace &trace);

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_TRACE_IO_HH
