/**
 * @file
 * Dynamic-mix statistics over recorded traces — the measured
 * counterpart of the paper's Table 1 columns, plus the block-length
 * and CTI-composition detail the calibration tests check.
 */

#ifndef PIPECACHE_TRACE_TRACE_STATS_HH
#define PIPECACHE_TRACE_TRACE_STATS_HH

#include <cstdint>

#include "isa/program.hh"
#include "trace/executor.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace pipecache::trace {

/** Dynamic instruction-mix statistics for one recorded trace. */
struct TraceMix
{
    TraceMix() : blockLen(64) {}

    Counter insts = 0;
    Counter loads = 0;
    Counter stores = 0;
    Counter condBranches = 0;
    Counter jumps = 0;      //!< j / jal
    Counter indirects = 0;  //!< jr / jalr (returns, switches)
    Counter blockEvents = 0;
    Counter takenCtis = 0;

    Histogram blockLen;

    Counter ctis() const { return condBranches + jumps + indirects; }

    double loadPct() const { return pct(loads); }
    double storePct() const { return pct(stores); }
    double ctiPct() const { return pct(ctis()); }
    double indirectCtiFrac() const
    {
        return ctis() == 0
                   ? 0.0
                   : static_cast<double>(indirects) /
                         static_cast<double>(ctis());
    }

  private:
    double pct(Counter n) const
    {
        return insts == 0 ? 0.0
                          : 100.0 * static_cast<double>(n) /
                                static_cast<double>(insts);
    }
};

/** Measure the dynamic mix of a recorded trace. */
TraceMix computeMix(const isa::Program &program,
                    const RecordedTrace &trace);

} // namespace pipecache::trace

#endif // PIPECACHE_TRACE_TRACE_STATS_HH
