#include "obs/tracer.hh"

#include <charconv>
#include <mutex>
#include <ostream>

namespace pipecache::obs {

namespace {

/** Shortest round-trip decimal form of @p v (locale-independent). */
std::string
fmt(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

/** Thread-local cache of (tracer serial -> buffer); see
 *  stats_registry.cc for the lifetime argument. */
struct BufferRef
{
    std::uint64_t serial;
    void *buffer;
};

thread_local std::vector<BufferRef> tlsBuffers;

std::atomic<std::uint64_t> nextTracerSerial{1};

} // namespace

Tracer::Tracer()
    : serial_(nextTracerSerial.fetch_add(1, std::memory_order_relaxed))
{
}

Tracer::~Tracer() = default;

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (!originSet_.load(std::memory_order_relaxed)) {
        origin_ = std::chrono::steady_clock::now();
        originSet_.store(true, std::memory_order_release);
    }
    enabled_.store(true, std::memory_order_release);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_release);
}

Tracer::Buffer &
Tracer::localBuffer()
{
    for (const BufferRef &ref : tlsBuffers) {
        if (ref.serial == serial_)
            return *static_cast<Buffer *>(ref.buffer);
    }
    auto buffer = std::make_unique<Buffer>();
    Buffer *raw = buffer.get();
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        buffer->tid = nextTid_++;
        buffers_.push_back(std::move(buffer));
    }
    tlsBuffers.push_back({serial_, raw});
    return *raw;
}

void
Tracer::recordSpan(const char *name, const char *cat,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end,
                   std::string args)
{
    if (!originSet_.load(std::memory_order_acquire))
        return;
    using us = std::chrono::duration<double, std::micro>;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.tsUs = us(start - origin_).count();
    ev.durUs = us(end - start).count();
    ev.args = std::move(args);

    Buffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(ev));
}

void
Tracer::write(std::ostream &os) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        for (const Event &ev : buffer->events) {
            os << (first ? "" : ",") << "\n{\"name\": \"" << ev.name
               << "\", \"cat\": \"" << (ev.cat ? ev.cat : "default")
               << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
               << buffer->tid << ", \"ts\": " << fmt(ev.tsUs)
               << ", \"dur\": " << fmt(ev.durUs);
            if (!ev.args.empty())
                os << ", \"args\": " << ev.args;
            os << "}";
            first = false;
        }
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void
Tracer::clear()
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->events.clear();
    }
}

} // namespace pipecache::obs
