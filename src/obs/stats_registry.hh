/**
 * @file
 * Simulator-wide statistics registry in the gem5 idiom.
 *
 * Components publish hierarchically named statistics
 * ("layer.component.event", e.g. "cache.l1d.read_misses") into a
 * registry; the registry aggregates and serializes them at dump time.
 * Three statistic types are supported:
 *
 *  - counters:   monotonically accumulated integers;
 *  - scalars:    accumulated doubles (wall times and other
 *                measurements);
 *  - histograms: fixed-bucket integer histograms with an overflow
 *                bucket (util/stats.hh Histogram).
 *
 * Every statistic is classified as *deterministic* or *volatile*:
 *
 *  - Deterministic stats are functions of the simulated input alone —
 *    event counts, stall cycles, miss classifications. Because they
 *    are integers accumulated commutatively, their aggregates are
 *    bit-identical regardless of the worker-thread count or schedule,
 *    and the deterministic section of a JSON dump is byte-stable the
 *    same way the sweep result JSON is.
 *  - Volatile stats depend on wall time or thread scheduling (steal
 *    counts, park counts, evaluation wall ms). They are excluded from
 *    dumps by default, mirroring SinkOptions::includeWallTimes.
 *
 * Concurrency: values live in cheap per-thread shards — a thread's
 * first touch of a registry allocates it a private shard, and all its
 * subsequent updates go there under the shard's (uncontended) mutex.
 * Dumps take the registry lock and fold the shards together. Summing
 * integer contributions is order-independent, so sharding never
 * perturbs deterministic aggregates.
 *
 * Instrumented library code publishes to StatsRegistry::global();
 * collection is always on (publication happens once per simulated
 * design point, not per simulated event, so the overhead is
 * negligible). The one exception is 3C miss classification, which
 * costs a shadow-cache lookup per access and is therefore gated by
 * setClassify3C().
 */

#ifndef PIPECACHE_OBS_STATS_REGISTRY_HH
#define PIPECACHE_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hh"

namespace pipecache::obs {

/** Reproducibility class of one statistic. */
enum class StatKind : std::uint8_t
{
    /** Input-determined; identical across thread counts. */
    Deterministic,
    /** Wall-time or schedule dependent; excluded from dumps by
     *  default. */
    Volatile,
};

/** Dump options. */
struct DumpOptions
{
    /** Include the volatile section (default: deterministic only, so
     *  dumps are byte-identical across thread counts). */
    bool includeVolatile = false;
};

/** The registry. */
class StatsRegistry
{
  public:
    StatsRegistry();
    ~StatsRegistry();

    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** The process-wide registry the instrumented layers publish to. */
    static StatsRegistry &global();

    /**
     * Accumulate @p delta into the counter @p name, registering it on
     * first use. Re-registration with a different kind panics.
     */
    void addCounter(std::string_view name, std::string_view desc,
                    StatKind kind, std::uint64_t delta = 1);

    /** Accumulate @p delta into the scalar @p name. */
    void addScalar(std::string_view name, std::string_view desc,
                   StatKind kind, double delta);

    /**
     * Record @p value (with @p weight) into the fixed-bucket histogram
     * @p name of @p bucket_count exact buckets plus overflow.
     * Re-registration with a different bucket count panics.
     */
    void sampleHistogram(std::string_view name, std::string_view desc,
                         StatKind kind, std::size_t bucket_count,
                         std::uint64_t value, std::uint64_t weight = 1);

    /** Merge a whole util Histogram into the histogram @p name. */
    void mergeHistogram(std::string_view name, std::string_view desc,
                        StatKind kind, const Histogram &h);

    /** Aggregate value of a counter (0 if never registered). */
    std::uint64_t counterValue(std::string_view name) const;

    /** Aggregate value of a scalar (0.0 if never registered). */
    double scalarValue(std::string_view name) const;

    /** Aggregate copy of a histogram (empty 1-bucket if unknown). */
    Histogram histogramValue(std::string_view name) const;

    /**
     * Serialize as a JSON document:
     *
     *   { "stats_version": 1,
     *     "deterministic": { "name": value | {histogram}, ... },
     *     "volatile":      { ... } }          // with includeVolatile
     *
     * Names are emitted in sorted order; doubles use shortest
     * round-trip formatting, so the deterministic section is
     * byte-stable across runs and thread counts.
     */
    void dumpJson(std::ostream &os, const DumpOptions &opts = {}) const;

    /** Human-readable dump: one "name value # desc" line per stat. */
    void dumpText(std::ostream &os,
                  const DumpOptions &opts = {}) const;

    /** Zero every value; registered names and kinds survive. */
    void reset();

  private:
    enum class StatType : std::uint8_t
    {
        Counter,
        Scalar,
        Hist,
    };

    struct StatInfo
    {
        std::string desc;
        StatKind kind;
        StatType type;
        /** Index into the per-type shard vectors. */
        std::size_t slot;
        /** Exact buckets (Hist only). */
        std::size_t buckets = 0;
    };

    /** One thread's private value store. */
    struct Shard
    {
        std::mutex mutex;
        std::vector<std::uint64_t> counters;
        std::vector<double> scalars;
        std::vector<std::unique_ptr<Histogram>> hists;
    };

    /** Find-or-register @p name; returns its descriptor. */
    const StatInfo &info(std::string_view name, std::string_view desc,
                         StatKind kind, StatType type,
                         std::size_t buckets);

    /** This thread's shard of this registry (created on first use). */
    Shard &localShard();

    /** Aggregated histogram for @p info (caller holds mutex_). */
    Histogram foldHistogram(const StatInfo &info) const;

    mutable std::shared_mutex mutex_;
    /** Sorted name -> descriptor map (sorted order drives dumps). */
    std::map<std::string, StatInfo, std::less<>> stats_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t numCounters_ = 0;
    std::size_t numScalars_ = 0;
    std::size_t numHists_ = 0;
    /** Process-unique id keying the thread-local shard cache. */
    std::uint64_t serial_;
};

/**
 * Enable 3C (compulsory/capacity/conflict) miss classification in
 * cache hierarchies built after the call. Off by default: the
 * fully-associative shadow costs a lookup per cache access.
 */
void setClassify3C(bool on);
bool classify3CEnabled();

} // namespace pipecache::obs

#endif // PIPECACHE_OBS_STATS_REGISTRY_HH
