/**
 * @file
 * Process-level observability wiring from the environment.
 *
 *   PIPECACHE_STATS=<path>    dump the global StatsRegistry (JSON,
 *                             volatile section included) to <path> at
 *                             exit
 *   PIPECACHE_TRACE=<path>    enable the global Tracer and write the
 *                             trace JSON to <path> at exit
 *   PIPECACHE_STATS_3C=1      enable 3C miss classification
 *
 * `pipecache_sweep` reads the same variables itself as defaults for
 * its --stats-out/--trace-out flags and dumps explicitly; the atexit
 * path here is for the bench binaries (wired through
 * bench::suiteFromArgs), which gain stats/trace output without any
 * per-binary flag plumbing.
 */

#ifndef PIPECACHE_OBS_ENV_HH
#define PIPECACHE_OBS_ENV_HH

namespace pipecache::obs {

/** $PIPECACHE_STATS, or nullptr when unset/empty. */
const char *envStatsPath();

/** $PIPECACHE_TRACE, or nullptr when unset/empty. */
const char *envTracePath();

/** True when $PIPECACHE_STATS_3C is set to anything but "" or "0". */
bool env3CEnabled();

/**
 * One-shot setup from the environment: applies env3CEnabled(),
 * enables the tracer when a trace path is set, and registers an
 * atexit handler that writes the stats/trace files. Idempotent and
 * a no-op when neither variable is set.
 */
void initFromEnv();

} // namespace pipecache::obs

#endif // PIPECACHE_OBS_ENV_HH
