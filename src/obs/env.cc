#include "obs/env.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace pipecache::obs {

namespace {

const char *
nonEmptyEnv(const char *name)
{
    const char *value = std::getenv(name);
    return (value != nullptr && value[0] != '\0') ? value : nullptr;
}

void
dumpAtExit()
{
    if (const char *path = envStatsPath()) {
        std::ofstream out(path);
        if (out) {
            DumpOptions opts;
            opts.includeVolatile = true;
            StatsRegistry::global().dumpJson(out, opts);
        } else {
            warn("cannot write PIPECACHE_STATS file ", path);
        }
    }
    if (const char *path = envTracePath()) {
        std::ofstream out(path);
        if (out)
            Tracer::global().write(out);
        else
            warn("cannot write PIPECACHE_TRACE file ", path);
    }
}

} // namespace

const char *
envStatsPath()
{
    return nonEmptyEnv("PIPECACHE_STATS");
}

const char *
envTracePath()
{
    return nonEmptyEnv("PIPECACHE_TRACE");
}

bool
env3CEnabled()
{
    const char *value = nonEmptyEnv("PIPECACHE_STATS_3C");
    return value != nullptr && std::strcmp(value, "0") != 0;
}

void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, []() {
        if (env3CEnabled())
            setClassify3C(true);
        if (envStatsPath() == nullptr && envTracePath() == nullptr)
            return;
        // Touch both singletons now so they are constructed before
        // the atexit registration and therefore outlive the handler.
        StatsRegistry::global();
        Tracer::global();
        if (envTracePath() != nullptr)
            Tracer::global().enable();
        std::atexit(dumpAtExit);
    });
}

} // namespace pipecache::obs
