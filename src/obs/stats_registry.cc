#include "obs/stats_registry.hh"

#include <atomic>
#include <charconv>
#include <iomanip>
#include <mutex>
#include <ostream>

#include "util/logging.hh"

namespace pipecache::obs {

namespace {

/** Shortest round-trip decimal form of @p v (locale-independent). */
std::string
fmt(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

/**
 * Thread-local cache of (registry serial -> shard). Shards are owned
 * by their registry; a registry destroyed before its threads simply
 * leaves stale serials here that never match again.
 */
struct ShardRef
{
    std::uint64_t serial;
    void *shard;
};

thread_local std::vector<ShardRef> tlsShards;

std::atomic<std::uint64_t> nextRegistrySerial{1};

std::atomic<bool> classify3C{false};

} // namespace

void
setClassify3C(bool on)
{
    classify3C.store(on, std::memory_order_relaxed);
}

bool
classify3CEnabled()
{
    return classify3C.load(std::memory_order_relaxed);
}

StatsRegistry::StatsRegistry()
    : serial_(nextRegistrySerial.fetch_add(1, std::memory_order_relaxed))
{
}

StatsRegistry::~StatsRegistry() = default;

StatsRegistry &
StatsRegistry::global()
{
    static StatsRegistry registry;
    return registry;
}

const StatsRegistry::StatInfo &
StatsRegistry::info(std::string_view name, std::string_view desc,
                    StatKind kind, StatType type, std::size_t buckets)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const auto it = stats_.find(name);
        if (it != stats_.end()) {
            PC_ASSERT(it->second.kind == kind &&
                          it->second.type == type &&
                          it->second.buckets == buckets,
                      "stat '", std::string(name),
                      "' re-registered with a different "
                      "kind/type/bucket count");
            return it->second;
        }
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const auto it = stats_.find(name);
    if (it != stats_.end())
        return it->second;

    StatInfo info;
    info.desc = std::string(desc);
    info.kind = kind;
    info.type = type;
    info.buckets = buckets;
    switch (type) {
      case StatType::Counter:
        info.slot = numCounters_++;
        break;
      case StatType::Scalar:
        info.slot = numScalars_++;
        break;
      case StatType::Hist:
        PC_ASSERT(buckets >= 1, "histogram '", std::string(name),
                  "' needs at least one bucket");
        info.slot = numHists_++;
        break;
    }
    return stats_.emplace(std::string(name), std::move(info))
        .first->second;
}

StatsRegistry::Shard &
StatsRegistry::localShard()
{
    for (const ShardRef &ref : tlsShards) {
        if (ref.serial == serial_)
            return *static_cast<Shard *>(ref.shard);
    }
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    tlsShards.push_back({serial_, raw});
    return *raw;
}

void
StatsRegistry::addCounter(std::string_view name, std::string_view desc,
                          StatKind kind, std::uint64_t delta)
{
    const StatInfo &stat = info(name, desc, kind, StatType::Counter, 0);
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.counters.size() <= stat.slot)
        shard.counters.resize(stat.slot + 1, 0);
    shard.counters[stat.slot] += delta;
}

void
StatsRegistry::addScalar(std::string_view name, std::string_view desc,
                         StatKind kind, double delta)
{
    const StatInfo &stat = info(name, desc, kind, StatType::Scalar, 0);
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.scalars.size() <= stat.slot)
        shard.scalars.resize(stat.slot + 1, 0.0);
    shard.scalars[stat.slot] += delta;
}

void
StatsRegistry::sampleHistogram(std::string_view name,
                               std::string_view desc, StatKind kind,
                               std::size_t bucket_count,
                               std::uint64_t value, std::uint64_t weight)
{
    const StatInfo &stat =
        info(name, desc, kind, StatType::Hist, bucket_count);
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.hists.size() <= stat.slot)
        shard.hists.resize(stat.slot + 1);
    if (!shard.hists[stat.slot])
        shard.hists[stat.slot] = std::make_unique<Histogram>(stat.buckets);
    shard.hists[stat.slot]->sample(value, weight);
}

void
StatsRegistry::mergeHistogram(std::string_view name,
                              std::string_view desc, StatKind kind,
                              const Histogram &h)
{
    const StatInfo &stat =
        info(name, desc, kind, StatType::Hist, h.bucketCount());
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.hists.size() <= stat.slot)
        shard.hists.resize(stat.slot + 1);
    if (!shard.hists[stat.slot])
        shard.hists[stat.slot] = std::make_unique<Histogram>(stat.buckets);
    shard.hists[stat.slot]->merge(h);
}

std::uint64_t
StatsRegistry::counterValue(std::string_view name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = stats_.find(name);
    if (it == stats_.end() || it->second.type != StatType::Counter)
        return 0;
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        if (shard->counters.size() > it->second.slot)
            total += shard->counters[it->second.slot];
    }
    return total;
}

double
StatsRegistry::scalarValue(std::string_view name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = stats_.find(name);
    if (it == stats_.end() || it->second.type != StatType::Scalar)
        return 0.0;
    double total = 0.0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        if (shard->scalars.size() > it->second.slot)
            total += shard->scalars[it->second.slot];
    }
    return total;
}

Histogram
StatsRegistry::foldHistogram(const StatInfo &info) const
{
    Histogram total(info.buckets);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        if (shard->hists.size() > info.slot && shard->hists[info.slot])
            total.merge(*shard->hists[info.slot]);
    }
    return total;
}

Histogram
StatsRegistry::histogramValue(std::string_view name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = stats_.find(name);
    if (it == stats_.end() || it->second.type != StatType::Hist)
        return Histogram(1);
    return foldHistogram(it->second);
}

void
StatsRegistry::dumpJson(std::ostream &os, const DumpOptions &opts) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);

    auto section = [&](StatKind kind) {
        bool first = true;
        for (const auto &[name, stat] : stats_) {
            if (stat.kind != kind)
                continue;
            os << (first ? "" : ",") << "\n    \"" << name << "\": ";
            first = false;
            switch (stat.type) {
              case StatType::Counter: {
                std::uint64_t total = 0;
                for (const auto &shard : shards_) {
                    std::lock_guard<std::mutex> sl(shard->mutex);
                    if (shard->counters.size() > stat.slot)
                        total += shard->counters[stat.slot];
                }
                os << total;
                break;
              }
              case StatType::Scalar: {
                double total = 0.0;
                for (const auto &shard : shards_) {
                    std::lock_guard<std::mutex> sl(shard->mutex);
                    if (shard->scalars.size() > stat.slot)
                        total += shard->scalars[stat.slot];
                }
                os << fmt(total);
                break;
              }
              case StatType::Hist: {
                const Histogram h = foldHistogram(stat);
                os << "{\"count\": " << h.count() << ", \"buckets\": [";
                for (std::size_t b = 0; b < h.bucketCount(); ++b)
                    os << (b ? "," : "") << h.bucket(b);
                os << "], \"overflow\": " << h.overflow()
                   << ", \"mean\": " << fmt(h.mean()) << "}";
                break;
              }
            }
        }
        if (!first)
            os << "\n  ";
    };

    os << "{\n  \"stats_version\": 1,\n  \"deterministic\": {";
    section(StatKind::Deterministic);
    os << "}";
    if (opts.includeVolatile) {
        os << ",\n  \"volatile\": {";
        section(StatKind::Volatile);
        os << "}";
    }
    os << "\n}\n";
}

void
StatsRegistry::dumpText(std::ostream &os, const DumpOptions &opts) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto &[name, stat] : stats_) {
        if (stat.kind == StatKind::Volatile && !opts.includeVolatile)
            continue;
        os << std::left << std::setw(40) << name << " ";
        switch (stat.type) {
          case StatType::Counter: {
            std::uint64_t total = 0;
            for (const auto &shard : shards_) {
                std::lock_guard<std::mutex> sl(shard->mutex);
                if (shard->counters.size() > stat.slot)
                    total += shard->counters[stat.slot];
            }
            os << total;
            break;
          }
          case StatType::Scalar: {
            double total = 0.0;
            for (const auto &shard : shards_) {
                std::lock_guard<std::mutex> sl(shard->mutex);
                if (shard->scalars.size() > stat.slot)
                    total += shard->scalars[stat.slot];
            }
            os << fmt(total);
            break;
          }
          case StatType::Hist: {
            const Histogram h = foldHistogram(stat);
            os << "count=" << h.count() << " overflow=" << h.overflow()
               << " mean=" << fmt(h.mean());
            break;
          }
        }
        os << " # " << stat.desc;
        if (stat.kind == StatKind::Volatile)
            os << " (volatile)";
        os << "\n";
    }
}

void
StatsRegistry::reset()
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        for (auto &c : shard->counters)
            c = 0;
        for (auto &s : shard->scalars)
            s = 0.0;
        for (auto &h : shard->hists) {
            if (h)
                h->reset();
        }
    }
}

} // namespace pipecache::obs
