/**
 * @file
 * Perfetto / Chrome trace-event tracer for the sweep engine.
 *
 * Emits the Trace Event JSON format (the `traceEvents` array of
 * "ph":"X" complete events) that chrome://tracing and ui.perfetto.dev
 * load directly. Spans are recorded via the RAII ScopedSpan: the
 * constructor samples the start time, the destructor appends one
 * complete event — so spans are balanced by construction and nest
 * exactly like the C++ scopes that produced them.
 *
 * Emission is buffered and thread-safe: each thread appends to its own
 * buffer (created on first use, tagged with a small thread id) under
 * an uncontended mutex; write() folds every buffer into one JSON
 * document. Nothing is written until write() is called.
 *
 * Tracing is off by default; when disabled, ScopedSpan construction is
 * one relaxed atomic load. Timestamps are microseconds relative to the
 * first enable() call.
 *
 * Span names and categories must be string literals (they are stored
 * as pointers); args, when given, must be the text of a valid JSON
 * object (e.g. "{\"b\":3}"). Neither is escaped by the tracer.
 */

#ifndef PIPECACHE_OBS_TRACER_HH
#define PIPECACHE_OBS_TRACER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace pipecache::obs {

/** The buffered trace-event collector. */
class Tracer
{
  public:
    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide tracer ScopedSpan records into. */
    static Tracer &global();

    /** Start collecting; the first call anchors the time origin. */
    void enable();

    /** Stop collecting (already-buffered events are kept). */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one complete ("ph":"X") event on the calling thread's
     * buffer. @p args is either empty or the text of a JSON object.
     */
    void recordSpan(const char *name, const char *cat,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end,
                    std::string args);

    /** Serialize every buffered event as one trace JSON document. */
    void write(std::ostream &os) const;

    /** Drop all buffered events (registered thread ids survive). */
    void clear();

  private:
    struct Event
    {
        const char *name;
        const char *cat;
        double tsUs;
        double durUs;
        std::string args;
    };

    struct Buffer
    {
        std::mutex mutex;
        std::uint32_t tid;
        std::vector<Event> events;
    };

    Buffer &localBuffer();

    std::atomic<bool> enabled_{false};
    std::atomic<bool> originSet_{false};
    std::chrono::steady_clock::time_point origin_;

    mutable std::shared_mutex mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::uint32_t nextTid_ = 1;
    /** Process-unique id keying the thread-local buffer cache. */
    std::uint64_t serial_;
};

/**
 * RAII span: records a complete trace event for the enclosing scope
 * on the global tracer. A no-op (one atomic load) when tracing is
 * disabled at construction.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *cat)
        : ScopedSpan(name, cat, std::string())
    {
    }

    /** @p args must be empty or the text of a JSON object. */
    ScopedSpan(const char *name, const char *cat, std::string args)
        : name_(name), cat_(cat), args_(std::move(args)),
          active_(Tracer::global().enabled())
    {
        if (active_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedSpan()
    {
        if (active_) {
            Tracer::global().recordSpan(
                name_, cat_, start_, std::chrono::steady_clock::now(),
                std::move(args_));
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    const char *cat_;
    std::string args_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace pipecache::obs

#endif // PIPECACHE_OBS_TRACER_HH
