#include "sweep/stream_sweep.hh"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "cache/stack_sim.hh"
#include "sweep/result_sink.hh"
#include "util/error.hh"

namespace pipecache::sweep {

namespace {

using cache::CacheStats;
using cache::Replacement;
using cache::StackGeometry;
using cache::StackSimulator;

/** One cache shape; the memo key for both evaluation engines. */
using GeomKey = std::tuple<std::uint32_t /*blockBytes*/,
                           std::uint32_t /*log2Sets*/,
                           std::uint32_t /*assoc*/, int /*repl*/>;

struct SideGeom
{
    std::uint32_t blockBytes = 0;
    std::uint32_t log2Sets = 0;
    std::uint32_t assoc = 0;
    Replacement repl = Replacement::LRU;

    GeomKey key() const
    {
        return {blockBytes, log2Sets, assoc, static_cast<int>(repl)};
    }
};

/** Derive one side's geometry from a design point; throws UsageError. */
SideGeom
sideGeometry(const core::DesignPoint &p, std::uint32_t sizeKW,
             const char *side)
{
    SideGeom g;
    g.blockBytes = p.blockWords * 4;
    g.assoc = p.assoc;
    g.repl = p.repl;
    const std::uint64_t sizeBytes = kiloWordsToBytes(sizeKW);
    const std::uint64_t wayBytes =
        static_cast<std::uint64_t>(g.blockBytes) * g.assoc;
    if (wayBytes == 0 || sizeBytes % wayBytes != 0 ||
        !isPowerOfTwo(sizeBytes / wayBytes))
        throw UsageError(std::string(side) + " geometry invalid: " +
                         std::to_string(sizeKW) + " KW with block " +
                         std::to_string(g.blockBytes) + " B assoc " +
                         std::to_string(g.assoc));
    g.log2Sets = static_cast<std::uint32_t>(floorLog2(sizeBytes / wayBytes));
    return g;
}

/** Replay @p recs against one concrete cache (Random fallback). */
CacheStats
replayCache(const std::vector<cache::AccessRecord> &recs,
            const SideGeom &g)
{
    cache::CacheConfig cfg;
    cfg.name = "stream";
    cfg.blockBytes = g.blockBytes;
    cfg.assoc = g.assoc;
    cfg.sizeBytes = static_cast<std::uint64_t>(g.blockBytes) * g.assoc
                    << g.log2Sets;
    cfg.repl = g.repl;
    cache::Cache sim(cfg, /*seed=*/0x5eedu);
    for (const auto &r : recs)
        sim.access(r.addr, r.store != 0);
    return sim.stats();
}

/**
 * Evaluate all geometries of one stream side: one stack-sim ladder
 * per block size for the LRU shapes, per-shape replay for Random.
 */
std::map<GeomKey, CacheStats>
evaluateSide(const std::vector<cache::AccessRecord> &recs,
             const std::set<GeomKey> &keys)
{
    // Group the LRU shapes into one ladder per block size.
    std::map<std::uint32_t, std::vector<StackGeometry>> ladders;
    for (const GeomKey &k : keys) {
        auto [blockBytes, log2Sets, assoc, repl] = k;
        if (static_cast<Replacement>(repl) == Replacement::LRU)
            ladders[blockBytes].push_back({log2Sets, assoc});
    }

    std::map<GeomKey, CacheStats> out;
    for (auto &[blockBytes, geoms] : ladders) {
        StackSimulator sim(blockBytes, geoms, /*numBenches=*/1);
        sim.accessBatch(recs);
        sim.finish();
        for (const StackGeometry &g : geoms) {
            const auto &c = sim.counts(g.log2Sets, g.assoc);
            CacheStats s;
            s.reads = sim.benchReads()[0];
            s.writes = sim.benchWrites()[0];
            s.readMisses = c.readMisses[0];
            s.writeMisses = c.writeMisses[0];
            s.evictions = c.evictions;
            s.dirtyEvictions = c.dirtyEvictions;
            out[{blockBytes, g.log2Sets, g.assoc,
                 static_cast<int>(Replacement::LRU)}] = s;
        }
    }
    for (const GeomKey &k : keys) {
        auto [blockBytes, log2Sets, assoc, repl] = k;
        if (static_cast<Replacement>(repl) == Replacement::LRU)
            continue;
        SideGeom g{blockBytes, log2Sets, assoc,
                   static_cast<Replacement>(repl)};
        out[k] = replayCache(recs, g);
    }
    return out;
}

void
writeEscaped(std::ostream &os, const std::string &v)
{
    os << '"';
    for (char c : v) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

StreamSweepResult
sweepStream(const std::vector<trace::TraceRecord> &stream,
            const std::vector<core::DesignPoint> &points)
{
    StreamSweepResult result;

    // Split the flat stream into its fetch and data halves.
    std::vector<cache::AccessRecord> fetches;
    std::vector<cache::AccessRecord> data;
    for (const trace::TraceRecord &rec : stream) {
        if (rec.kind == trace::RefKind::Fetch)
            fetches.push_back({rec.addr, 0, 0});
        else
            data.push_back(
                {rec.addr, 0,
                 static_cast<std::uint8_t>(
                     rec.kind == trace::RefKind::Write ? 1 : 0)});
        switch (rec.kind) {
        case trace::RefKind::Fetch:
            ++result.stream.fetches;
            break;
        case trace::RefKind::Read:
            ++result.stream.reads;
            break;
        case trace::RefKind::Write:
            ++result.stream.writes;
            break;
        }
    }
    result.stream.records = stream.size();

    // Collect every geometry each side needs, then evaluate each side
    // once.
    std::set<GeomKey> ikeys;
    std::set<GeomKey> dkeys;
    for (const core::DesignPoint &p : points) {
        ikeys.insert(sideGeometry(p, p.l1iSizeKW, "l1i").key());
        dkeys.insert(sideGeometry(p, p.l1dSizeKW, "l1d").key());
    }
    std::map<GeomKey, CacheStats> istats = evaluateSide(fetches, ikeys);
    std::map<GeomKey, CacheStats> dstats = evaluateSide(data, dkeys);

    for (const core::DesignPoint &p : points) {
        StreamRecord rec;
        rec.point = p;
        rec.metrics.l1i =
            istats.at(sideGeometry(p, p.l1iSizeKW, "l1i").key());
        rec.metrics.l1d =
            dstats.at(sideGeometry(p, p.l1dSizeKW, "l1d").key());
        rec.metrics.l1iMissRate = rec.metrics.l1i.missRate();
        rec.metrics.l1dMissRate = rec.metrics.l1d.missRate();
        const Counter misses =
            rec.metrics.l1i.misses() + rec.metrics.l1d.misses();
        rec.metrics.stallCycles = p.missPenaltyCycles * misses;
        if (result.stream.fetches > 0)
            rec.metrics.memCpi =
                1.0 + static_cast<double>(rec.metrics.stallCycles) /
                          static_cast<double>(result.stream.fetches);
        result.records.push_back(rec);
    }
    return result;
}

void
writeStreamJson(std::ostream &os, const std::string &name,
                const std::string &source, const StreamSweepResult &result)
{
    os << "{\"sweep\":";
    writeEscaped(os, name);
    os << ",\"mode\":\"stream\",\"source\":";
    writeEscaped(os, source);
    const StreamStats &st = result.stream;
    os << ",\"stream\":{\"records\":" << st.records
       << ",\"fetches\":" << st.fetches << ",\"reads\":" << st.reads
       << ",\"writes\":" << st.writes << "}";
    os << ",\"points\":" << result.records.size() << ",\"results\":[";
    bool first = true;
    for (const StreamRecord &r : result.records) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"design\":";
        writeDesignJson(os, r.point);
        const StreamMetrics &m = r.metrics;
        os << ",\"metrics\":{\"l1i\":{\"fetches\":" << m.l1i.reads
           << ",\"misses\":" << m.l1i.misses()
           << ",\"miss_rate\":" << fmtDouble(m.l1iMissRate)
           << ",\"evictions\":" << m.l1i.evictions
           << "},\"l1d\":{\"reads\":" << m.l1d.reads
           << ",\"writes\":" << m.l1d.writes
           << ",\"misses\":" << m.l1d.misses()
           << ",\"miss_rate\":" << fmtDouble(m.l1dMissRate)
           << ",\"evictions\":" << m.l1d.evictions
           << ",\"dirty_evictions\":" << m.l1d.dirtyEvictions
           << "},\"stall_cycles\":" << m.stallCycles
           << ",\"mem_cpi\":" << fmtDouble(m.memCpi) << "}}";
    }
    os << "]}\n";
}

std::string
streamJsonString(const std::string &name, const std::string &source,
                 const StreamSweepResult &result)
{
    std::ostringstream os;
    writeStreamJson(os, name, source, result);
    return os.str();
}

} // namespace pipecache::sweep
