/**
 * @file
 * Sweep checkpoints: periodically persisted progress of a running
 * sweep, so a killed process can resume and skip the points it
 * already evaluated.
 *
 * A checkpoint is a line-oriented text file:
 *
 *   pipecache-checkpoint 1
 *   grid <16-hex-digit key> unique <N>
 *   ok <idx> <11 metric doubles, shortest round-trip form>
 *   fail <idx> <error-kind> <error message...>
 *
 * <idx> indexes the sweep's unique work list (input order, duplicates
 * collapsed). Metric doubles are emitted with std::to_chars and
 * parsed with std::from_chars, which round-trips them bit-exactly —
 * the property that makes a resumed sweep's final JSON byte-identical
 * to an uninterrupted run's. The grid key hashes the input points and
 * the engine's suite key, so resuming against a different grid or
 * suite is a DataError instead of silently wrong results.
 *
 * Files are written through util::writeFileAtomic: a crash mid-write
 * leaves the previous complete checkpoint.
 */

#ifndef PIPECACHE_SWEEP_CHECKPOINT_HH
#define PIPECACHE_SWEEP_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/point_eval.hh"

namespace pipecache::sweep {

/** One completed unique point. */
struct CheckpointEntry
{
    /** Index into the sweep's unique work list. */
    std::size_t index = 0;
    bool failed = false;
    /** Valid when !failed. */
    core::PointMetrics metrics;
    /** Valid when failed. */
    std::string errorKind;
    std::string errorMessage;
};

struct Checkpoint
{
    /** gridKey() of the sweep this checkpoint belongs to. */
    std::uint64_t gridKey = 0;
    /** Unique-point count of that sweep (second-line sanity check). */
    std::size_t uniquePoints = 0;
    std::vector<CheckpointEntry> entries;
};

/** Key binding a checkpoint to (input points, suite config). */
std::uint64_t gridKey(const std::vector<core::DesignPoint> &points,
                      std::uint64_t suiteKey);

/** Atomically write @p ck to @p path. Throws IoError on failure. */
void saveCheckpoint(const std::string &path, const Checkpoint &ck);

/** Load @p path. Throws IoError (unopenable) or DataError
 *  (malformed), with file and line attribution. */
Checkpoint loadCheckpoint(const std::string &path);

} // namespace pipecache::sweep

#endif // PIPECACHE_SWEEP_CHECKPOINT_HH
