/**
 * @file
 * The parallel design-space sweep engine.
 *
 * Takes a list/grid of design points plus the TPI model, partitions
 * the points into chunks on a work-stealing thread pool, and returns
 * records in deterministic input order regardless of thread count.
 *
 * A memoization cache keyed by (design point, suite configuration)
 * persists across sweeps on the same engine, so overlapping grids
 * (fig3 + fig4 + table6 share every point) simulate each unique point
 * exactly once. The cache is sharded under per-shard mutexes;
 * hit/miss counts are tracked in SweepStats. Duplicate detection runs
 * up front on the submitting thread, which makes the per-record
 * cache-hit flag — and therefore the serialized results — independent
 * of the thread count.
 *
 * Fault tolerance: by default a design point that throws is recorded
 * as a failed record (error kind + message; `sweep.points_failed` in
 * the stats registry) and the sweep keeps going — one bad point in a
 * long sweep must not cost the other ten thousand. Failed points are
 * never memoized, so a later sweep retries them.
 * SweepOptions::failFast restores propagate-first-error semantics
 * (after draining in-flight chunks). With SweepOptions::checkpointPath
 * set, completed points are periodically persisted via an atomic
 * write; `resume` skips the persisted points and — because metrics
 * round-trip bit-exactly — yields results byte-identical to an
 * uninterrupted run.
 *
 * Long-lived callers (the sweep service daemon) use the per-run
 * entry point run(): the same evaluation machinery, but with per-run
 * options (thread budget carved out of the shared pool, cancellation
 * flag) and per-run result metadata. RunOptions::coldMetadata makes
 * the run's records and stats a function of the request's input
 * alone — a warm request reports exactly what a cold process would,
 * so its serialized JSON is byte-identical to the CLI's, while
 * RunResult::memoHits still exposes how much the warm memo served.
 */

#ifndef PIPECACHE_SWEEP_SWEEP_ENGINE_HH
#define PIPECACHE_SWEEP_SWEEP_ENGINE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/point_eval.hh"
#include "sweep/thread_pool.hh"

namespace pipecache::sweep {

/** Engine construction parameters. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Design points per pool task (steal granularity). */
    std::size_t grain = 1;
    /**
     * Invoked after each unique point evaluates, with the number of
     * unique points finished so far and the sweep's unique total.
     * Called concurrently from worker threads — must be thread-safe
     * and cheap. Never called for cache hits.
     */
    std::function<void(std::size_t done, std::size_t total)> onProgress;
    /**
     * When true, the first throwing design point aborts the sweep
     * (every in-flight chunk still drains before the rethrow). The
     * default records the point as failed and keeps sweeping.
     */
    bool failFast = false;
    /**
     * Non-empty: persist completed points to this path (atomic
     * temp+fsync+rename) every checkpointEvery completions and once
     * more when the sweep finishes.
     */
    std::string checkpointPath;
    std::size_t checkpointEvery = 16;
    /**
     * Load checkpointPath (when it exists) before evaluating and skip
     * the points it records. The checkpoint's grid key must match the
     * sweep's input + suite — a mismatch is a DataError.
     */
    bool resume = false;
    /**
     * Evaluate factorable points from shared components (one stack
     * pass per access stream covers every cache geometry; see
     * core::FactoredEvaluator) instead of one full replay per point.
     * Results are bit-identical either way; this is purely a speed
     * knob, with non-factorable points (write buffer, Random
     * replacement, 3C) always taking the exact per-point replay.
     */
    bool factored = true;
};

/** One evaluated design point. */
struct SweepRecord
{
    core::DesignPoint point;
    core::PointMetrics metrics;
    /**
     * True when the point was served from the memo cache: either a
     * duplicate of an earlier point in the same sweep or a point from
     * a previous sweep on this engine. Deterministic — it depends
     * only on the input order, never on thread scheduling.
     */
    bool cacheHit = false;
    /** Evaluation wall time (0 for cache hits). Volatile metadata:
     *  varies run to run, excluded from byte-stable output. */
    double wallMs = 0.0;
    /**
     * True when this point's evaluation threw (metrics are
     * zero-valued and must not be read). Duplicates of a failed point
     * share its failure. Deterministic for deterministic evaluators.
     */
    bool failed = false;
    /** Error taxonomy kind name ("data", "io", ...) when failed. */
    std::string errorKind;
    std::string errorMessage;
};

/** Lifetime counters of one engine. */
struct SweepStats
{
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Unique points whose evaluation threw (isolation mode). */
    std::uint64_t pointsFailed = 0;
    /** Full trace replays avoided by factored evaluation (points
     *  evaluated minus engine replays actually performed). */
    std::uint64_t replaysSaved = 0;
    /** Sum of per-point evaluation wall times (CPU-parallel). */
    double evalWallMs = 0.0;

    double hitRate() const
    {
        const std::uint64_t total = cacheHits + cacheMisses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(cacheHits) /
                         static_cast<double>(total);
    }
};

/**
 * Per-run options for SweepEngine::run(). Engine-level SweepOptions
 * provide the defaults a plain sweep() call uses; a service daemon
 * builds one of these per request.
 */
struct RunOptions
{
    /**
     * Cap on the pool workers this run may occupy (0 = the whole
     * pool). Implemented by chunk sizing: at most threadBudget chunks
     * are created, so the run can never run on more workers than its
     * budget even while other runs share the pool.
     */
    std::size_t threadBudget = 0;
    std::function<void(std::size_t done, std::size_t total)> onProgress;
    bool failFast = false;
    std::string checkpointPath;
    std::size_t checkpointEvery = 16;
    bool resume = false;
    bool factored = true;
    /**
     * Polled between point evaluations when non-null. Once it reads
     * true, no further points start; in-flight points finish, the
     * final checkpoint (when checkpointing) is flushed, and run()
     * throws InterruptedError. The memo keeps every completed point.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Report records and stats as a cold engine would: cache_hit is
     * true only for duplicates within this run's input, and
     * RunResult::stats counts memo-served unique points as misses.
     * Makes warm output a function of the input alone — byte-
     * identical to a cold single-process run — with the actual memo
     * service still visible in RunResult::memoHits.
     */
    bool coldMetadata = false;
};

/** Outcome of one run(). */
struct RunResult
{
    std::vector<SweepRecord> records;
    /** This run only (not engine-lifetime); see coldMetadata. */
    SweepStats stats;
    /** Unique points served from a previous run's memo — the
     *  cross-request warmth a service daemon reports. */
    std::uint64_t memoHits = 0;
};

/** The engine. Bound to one TpiModel (and thus one suite config). */
class SweepEngine : public core::BatchPointEvaluator
{
  public:
    explicit SweepEngine(core::TpiModel &model, SweepOptions opts = {});

    /** Evaluate @p points; records come back in input order. */
    std::vector<SweepRecord>
    sweep(const std::vector<core::DesignPoint> &points);

    /** Evaluate @p points under per-run options (see RunOptions). */
    RunResult run(const std::vector<core::DesignPoint> &points,
                  const RunOptions &run);

    /** BatchPointEvaluator: metrics only, input order. */
    std::vector<core::PointMetrics>
    evaluateBatch(const std::vector<core::DesignPoint> &points) override;

    const SweepStats &stats() const { return stats_; }
    std::size_t threadCount() const { return pool_.workerCount(); }

    /** Key of (suite config) this engine memoizes under. */
    std::uint64_t suiteKey() const { return suiteKey_; }

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<core::DesignPoint, core::PointMetrics,
                           core::DesignPointHash> map;
    };

    std::size_t shardOf(const core::DesignPoint &point) const;
    bool lookup(const core::DesignPoint &point,
                core::PointMetrics &out);
    void insert(const core::DesignPoint &point,
                const core::PointMetrics &metrics);

    core::TpiModel &model_;
    SweepOptions opts_;
    std::uint64_t suiteKey_;
    ThreadPool pool_;
    std::array<Shard, kShards> shards_;
    SweepStats stats_;
};

} // namespace pipecache::sweep

#endif // PIPECACHE_SWEEP_SWEEP_ENGINE_HH
