/**
 * @file
 * Machine-readable emitters for sweep results: JSON and CSV, next to
 * the existing TextTable path. Doubles are printed with
 * std::to_chars shortest round-trip formatting, so serialized output
 * is byte-identical whenever the underlying doubles are bit-identical
 * — the property the determinism tests pin down across thread counts.
 *
 * Wall-clock metadata varies run to run by nature; it is therefore
 * opt-in (SinkOptions::includeWallTimes), keeping the default output
 * byte-stable. The cache-hit flag is deterministic (see SweepRecord)
 * and always included.
 *
 * Failed points (per-point fault isolation) serialize with
 * "metrics": null plus an "error": {"kind", "message"} object in
 * JSON, and failed/error_kind columns in CSV; the header carries the
 * sweep-wide "points_failed" count.
 */

#ifndef PIPECACHE_SWEEP_RESULT_SINK_HH
#define PIPECACHE_SWEEP_RESULT_SINK_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/sweep_engine.hh"

namespace pipecache::sweep {

/** Emission options shared by the JSON and CSV sinks. */
struct SinkOptions
{
    /** Emit per-point and total wall times (volatile metadata). */
    bool includeWallTimes = false;
};

/**
 * Shortest round-trip decimal form of @p v — the double format every
 * sink in this module uses. Exposed so sibling emitters (the stream
 * sweep) produce byte-identical formatting.
 */
std::string fmtDouble(double v);

/** Emit one DesignPoint as the sinks' JSON design object. */
void writeDesignJson(std::ostream &os, const core::DesignPoint &p);

/** Write one sweep as a JSON document. */
void writeJson(std::ostream &os, const std::string &name,
               const std::vector<SweepRecord> &records,
               const SweepStats &stats, const SinkOptions &opts = {});

/** Write one sweep as CSV (header + one row per point). */
void writeCsv(std::ostream &os, const std::vector<SweepRecord> &records,
              const SinkOptions &opts = {});

/** writeJson into a string. */
std::string jsonString(const std::string &name,
                       const std::vector<SweepRecord> &records,
                       const SweepStats &stats,
                       const SinkOptions &opts = {});

/** writeCsv into a string. */
std::string csvString(const std::vector<SweepRecord> &records,
                      const SinkOptions &opts = {});

} // namespace pipecache::sweep

#endif // PIPECACHE_SWEEP_RESULT_SINK_HH
