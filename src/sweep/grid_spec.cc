#include "sweep/grid_spec.hh"

#include "core/experiments.hh"
#include "util/error.hh"
#include "util/parse.hh"

namespace pipecache::sweep {

namespace {

std::vector<std::uint32_t>
rangeValue(const std::string &key, const std::string &value)
{
    std::vector<std::uint32_t> out;
    if (!util::parseRange(value, out)) {
        throw UsageError("bad " + key + " range '" + value +
                         "' (need 'lo:hi' or 'a,b,c')");
    }
    return out;
}

/** The simulator asserts on non-power-of-two cache geometry; reject
 *  it at the spec layer with a usage error instead. */
std::vector<std::uint32_t>
pow2Value(const std::string &key, const std::string &value)
{
    std::vector<std::uint32_t> out = rangeValue(key, value);
    for (const std::uint32_t v : out) {
        if (v == 0 || (v & (v - 1)) != 0) {
            throw UsageError("bad " + key + " value " +
                             std::to_string(v) +
                             " (need a nonzero power of two)");
        }
    }
    return out;
}

} // namespace

void
GridSpec::set(const std::string &key, const std::string &value)
{
    if (key == "b") {
        branchSlots = rangeValue(key, value);
        bSet = true;
    } else if (key == "l") {
        loadSlots = rangeValue(key, value);
        lSet = true;
    } else if (key == "isize") {
        isizesKW = pow2Value(key, value);
        isizeSet = true;
    } else if (key == "dsize") {
        dsizesKW = pow2Value(key, value);
        dsizeSet = true;
    } else if (key == "block") {
        blockWords = pow2Value(key, value);
    } else if (key == "penalty") {
        penalties = rangeValue(key, value);
    } else if (key == "repl") {
        if (value == "lru") {
            repl = cache::Replacement::LRU;
        } else if (value == "random") {
            repl = cache::Replacement::Random;
        } else {
            throw UsageError("bad repl '" + value +
                             "' (need lru or random)");
        }
    } else if (key == "preset") {
        if (value != "fig3" && value != "fig4" && value != "table6" &&
            value != "paper") {
            throw UsageError(
                "unknown preset '" + value +
                "' (known: fig3, fig4, table6, paper)");
        }
        preset = value;
    } else {
        throw UsageError("unknown grid key '" + key + "'");
    }
}

void
GridSpec::validate() const
{
    if (preset.empty())
        return;
    // The presets define their own grid; a range key they would
    // silently ignore is a usage error, not a no-op.
    if (bSet || lSet || isizeSet || dsizeSet) {
        throw UsageError("preset defines its own grid and cannot be "
                         "combined with b/l/isize/dsize");
    }
    if (blockWords.size() > 1 || penalties.size() > 1) {
        throw UsageError("preset takes a single block/penalty value, "
                         "not a range");
    }
}

std::vector<core::DesignPoint>
GridSpec::build() const
{
    validate();
    // The presets reuse the experiment registry's shared grid, so a
    // preset sweep is point-for-point the one figs 3/4 and Table 6
    // read (and overlapping presets hit the engine's memo cache).
    if (!preset.empty()) {
        auto grid = core::experiments::sizeDepthGrid(
            blockWords.front(), penalties.front());
        for (core::DesignPoint &p : grid)
            p.repl = repl;
        return grid;
    }

    std::vector<core::DesignPoint> points;
    for (const std::uint32_t b : branchSlots)
        for (const std::uint32_t l : loadSlots)
            for (const std::uint32_t ikw : isizesKW)
                for (const std::uint32_t dkw : dsizesKW)
                    for (const std::uint32_t bw : blockWords)
                        for (const std::uint32_t pen : penalties) {
                            core::DesignPoint p;
                            p.branchSlots = b;
                            p.loadSlots = l;
                            p.l1iSizeKW = ikw;
                            p.l1dSizeKW = dkw;
                            p.blockWords = bw;
                            p.missPenaltyCycles = pen;
                            p.repl = repl;
                            points.push_back(p);
                        }
    return points;
}

} // namespace pipecache::sweep
