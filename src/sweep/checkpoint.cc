#include "sweep/checkpoint.hh"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.hh"
#include "util/error.hh"

namespace pipecache::sweep {

namespace {

/** The 11 PointMetrics fields, in serialization order. */
constexpr std::size_t kMetricCount = 11;

void
metricsToArray(const core::PointMetrics &m, double (&v)[kMetricCount])
{
    v[0] = m.cpi;
    v[1] = m.branchCpi;
    v[2] = m.loadCpi;
    v[3] = m.iMissCpi;
    v[4] = m.dMissCpi;
    v[5] = m.l1iMissRate;
    v[6] = m.l1dMissRate;
    v[7] = m.tCpuNs;
    v[8] = m.tIsideNs;
    v[9] = m.tDsideNs;
    v[10] = m.tpiNs;
}

void
arrayToMetrics(const double (&v)[kMetricCount], core::PointMetrics &m)
{
    m.cpi = v[0];
    m.branchCpi = v[1];
    m.loadCpi = v[2];
    m.iMissCpi = v[3];
    m.dMissCpi = v[4];
    m.l1iMissRate = v[5];
    m.l1dMissRate = v[6];
    m.tCpuNs = v[7];
    m.tIsideNs = v[8];
    m.tDsideNs = v[9];
    m.tpiNs = v[10];
}

/** Shortest round-trip decimal form (bit-exact via from_chars). */
std::string
fmtDouble(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

std::string
fmtHex64(std::uint64_t v)
{
    char buf[17];
    const auto res = std::to_chars(buf, buf + sizeof buf, v, 16);
    return std::string(buf, res.ptr);
}

/** One whitespace-delimited token from [*p, end); empty at end. */
std::string_view
nextToken(const char *&p, const char *end)
{
    while (p < end && (*p == ' ' || *p == '\t'))
        ++p;
    const char *begin = p;
    while (p < end && *p != ' ' && *p != '\t')
        ++p;
    return {begin, static_cast<std::size_t>(p - begin)};
}

} // namespace

std::uint64_t
gridKey(const std::vector<core::DesignPoint> &points,
        std::uint64_t suiteKey)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(suiteKey);
    mix(points.size());
    for (const core::DesignPoint &p : points)
        mix(core::DesignPointHash{}(p));
    return h;
}

void
saveCheckpoint(const std::string &path, const Checkpoint &ck)
{
    util::writeFileAtomic(path, [&](std::ostream &os) {
        os << "pipecache-checkpoint 1\n"
           << "grid " << fmtHex64(ck.gridKey) << " unique "
           << ck.uniquePoints << "\n";
        for (const CheckpointEntry &e : ck.entries) {
            if (e.failed) {
                // The message rides the rest of the line; strip
                // newlines so one entry stays one line.
                std::string msg = e.errorMessage;
                for (char &c : msg)
                    if (c == '\n' || c == '\r')
                        c = ' ';
                os << "fail " << e.index << " "
                   << (e.errorKind.empty() ? "internal" : e.errorKind)
                   << " " << msg << "\n";
                continue;
            }
            double v[kMetricCount];
            metricsToArray(e.metrics, v);
            os << "ok " << e.index;
            for (const double d : v)
                os << " " << fmtDouble(d);
            os << "\n";
        }
    });
}

Checkpoint
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw IoError(path, "cannot open checkpoint");

    auto bad = [&](std::size_t lineno, const std::string &msg) {
        return DataError(path, lineno, msg);
    };

    Checkpoint ck;
    std::string line;
    std::size_t lineno = 0;

    if (!std::getline(in, line) || line != "pipecache-checkpoint 1")
        throw bad(1, "not a pipecache checkpoint (bad header)");
    ++lineno;

    if (!std::getline(in, line))
        throw bad(2, "missing grid line");
    ++lineno;
    {
        const char *p = line.data();
        const char *end = line.data() + line.size();
        if (nextToken(p, end) != "grid")
            throw bad(lineno, "expected 'grid'");
        const auto key = nextToken(p, end);
        const auto kr = std::from_chars(key.data(),
                                        key.data() + key.size(),
                                        ck.gridKey, 16);
        if (kr.ec != std::errc{} || kr.ptr != key.data() + key.size())
            throw bad(lineno, "bad grid key");
        if (nextToken(p, end) != "unique")
            throw bad(lineno, "expected 'unique'");
        const auto n = nextToken(p, end);
        const auto nr = std::from_chars(n.data(), n.data() + n.size(),
                                        ck.uniquePoints);
        if (nr.ec != std::errc{} || nr.ptr != n.data() + n.size())
            throw bad(lineno, "bad unique-point count");
    }

    // A corrupted (e.g. concatenated) checkpoint must not restore a
    // point twice: track which indices have already appeared.
    std::vector<bool> seen(ck.uniquePoints, false);
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const char *p = line.data();
        const char *end = line.data() + line.size();
        const auto tag = nextToken(p, end);

        CheckpointEntry entry;
        const auto idx = nextToken(p, end);
        const auto ir = std::from_chars(idx.data(),
                                        idx.data() + idx.size(),
                                        entry.index);
        if (ir.ec != std::errc{} || ir.ptr != idx.data() + idx.size())
            throw bad(lineno, "bad point index");
        if (entry.index >= ck.uniquePoints)
            throw bad(lineno, "point index out of range");
        if (seen[entry.index]) {
            throw bad(lineno, "duplicate entry for point index " +
                                  std::to_string(entry.index));
        }
        seen[entry.index] = true;

        if (tag == "ok") {
            double v[kMetricCount];
            for (double &d : v) {
                const auto tok = nextToken(p, end);
                const auto dr = std::from_chars(
                    tok.data(), tok.data() + tok.size(), d);
                if (dr.ec != std::errc{} ||
                    dr.ptr != tok.data() + tok.size()) {
                    throw bad(lineno, "bad metric value");
                }
            }
            if (nextToken(p, end) != "")
                throw bad(lineno, "trailing tokens on ok line");
            arrayToMetrics(v, entry.metrics);
        } else if (tag == "fail") {
            entry.failed = true;
            entry.errorKind = nextToken(p, end);
            if (entry.errorKind.empty())
                throw bad(lineno, "missing error kind");
            // Message = rest of line after exactly one separator
            // space. Consuming a whole whitespace run here would eat
            // leading blanks out of the message and break the
            // save->load->save byte fixpoint (found by the
            // 'checkpoint' fuzz oracle).
            if (p < end && *p == ' ')
                ++p;
            entry.errorMessage.assign(p, end);
        } else {
            throw bad(lineno,
                      "unknown record '" + std::string(tag) + "'");
        }
        ck.entries.push_back(std::move(entry));
    }
    return ck;
}

} // namespace pipecache::sweep
