/**
 * @file
 * A declarative sweep grid: the cross product of the requested
 * parameter ranges (branch slots x load slots x L1-I size x L1-D
 * size x block size x miss penalty) or one of the paper presets.
 *
 * This is the single definition shared by the pipecache_sweep CLI
 * flags and the pipecache_sweepd request protocol, so a daemon
 * request of `b=0:3 isize=1,2,4,8` builds exactly the point list the
 * CLI builds for `--b 0:3 --isize 1,2,4,8` — the property behind the
 * daemon-vs-CLI byte-identity contract.
 *
 * set() applies one key=value pair and throws UsageError on a bad
 * key or value; build() validates cross-key constraints (preset
 * conflicts) and returns the point list in canonical nesting order.
 */

#ifndef PIPECACHE_SWEEP_GRID_SPEC_HH
#define PIPECACHE_SWEEP_GRID_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.hh"

namespace pipecache::sweep {

/** The declarative grid. Defaults mirror the CLI defaults. */
struct GridSpec
{
    std::vector<std::uint32_t> branchSlots{0, 1, 2, 3};
    std::vector<std::uint32_t> loadSlots{0};
    std::vector<std::uint32_t> isizesKW{1, 2, 4, 8, 16, 32};
    std::vector<std::uint32_t> dsizesKW{8};
    std::vector<std::uint32_t> blockWords{4};
    std::vector<std::uint32_t> penalties{10};
    cache::Replacement repl = cache::Replacement::LRU;
    /** "", or fig3 | fig4 | table6 | paper (shared size x depth
     *  grid); a preset owns the b/l/isize/dsize axes. */
    std::string preset;

    /** Range keys given explicitly (so a preset can reject the ones
     *  it would otherwise silently ignore). */
    bool bSet = false;
    bool lSet = false;
    bool isizeSet = false;
    bool dsizeSet = false;

    /**
     * Apply one key=value pair. Keys: b, l, isize, dsize, block,
     * penalty (RANGE = "lo:hi" or "a,b,c"; the cache-geometry keys
     * additionally require nonzero powers of two), repl (lru |
     * random), preset. Throws UsageError on an unknown key or a bad
     * value.
     */
    void set(const std::string &key, const std::string &value);

    /**
     * Cross-key validation: a preset conflicts with explicit
     * b/l/isize/dsize ranges and with multi-valued block/penalty.
     * Throws UsageError. build() calls this itself; the CLI calls it
     * early to fail before constructing models.
     */
    void validate() const;

    /** The point list, canonical nesting order. Throws UsageError. */
    std::vector<core::DesignPoint> build() const;

    /** Sweep name the result JSON carries ("grid" or the preset). */
    std::string name() const
    {
        return preset.empty() ? "grid" : preset;
    }
};

} // namespace pipecache::sweep

#endif // PIPECACHE_SWEEP_GRID_SPEC_HH
