#include "sweep/result_sink.hh"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace pipecache::sweep {

std::string
fmtDouble(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

namespace {

/** Local shorthand for the public formatter. */
std::string
fmt(double v)
{
    return fmtDouble(v);
}

const char *
branchSchemeName(cpusim::BranchScheme s)
{
    return s == cpusim::BranchScheme::Btb ? "btb" : "squash";
}

const char *
loadSchemeName(cpusim::LoadScheme s)
{
    switch (s) {
    case cpusim::LoadScheme::Dynamic:
        return "dynamic";
    case cpusim::LoadScheme::Static:
        return "static";
    default:
        return "none";
    }
}

const char *
predictSourceName(sched::PredictSource s)
{
    return s == sched::PredictSource::Profile ? "profile" : "btfnt";
}

const char *
replacementName(cache::Replacement r)
{
    return r == cache::Replacement::Random ? "random" : "lru";
}

} // namespace

void
writeDesignJson(std::ostream &os, const core::DesignPoint &p)
{
    os << "{\"b\":" << p.branchSlots << ",\"l\":" << p.loadSlots
       << ",\"l1i_kw\":" << p.l1iSizeKW << ",\"l1d_kw\":" << p.l1dSizeKW
       << ",\"block_words\":" << p.blockWords << ",\"assoc\":" << p.assoc
       << ",\"repl\":\"" << replacementName(p.repl)
       << "\",\"penalty\":" << p.missPenaltyCycles << ",\"branch_scheme\":\""
       << branchSchemeName(p.branchScheme) << "\",\"load_scheme\":\""
       << loadSchemeName(p.loadScheme) << "\",\"predict\":\""
       << predictSourceName(p.predictSource) << "\",\"write_buffer\":"
       << (p.writeThroughBuffer ? "true" : "false") << "}";
}

namespace {

void
writeMetrics(std::ostream &os, const core::PointMetrics &m)
{
    os << "{\"cpi\":" << fmt(m.cpi) << ",\"branch_cpi\":"
       << fmt(m.branchCpi) << ",\"load_cpi\":" << fmt(m.loadCpi)
       << ",\"imiss_cpi\":" << fmt(m.iMissCpi) << ",\"dmiss_cpi\":"
       << fmt(m.dMissCpi) << ",\"l1i_miss_rate\":" << fmt(m.l1iMissRate)
       << ",\"l1d_miss_rate\":" << fmt(m.l1dMissRate)
       << ",\"t_cpu_ns\":" << fmt(m.tCpuNs) << ",\"t_iside_ns\":"
       << fmt(m.tIsideNs) << ",\"t_dside_ns\":" << fmt(m.tDsideNs)
       << ",\"tpi_ns\":" << fmt(m.tpiNs) << "}";
}

/** Minimal JSON string escaping (quotes, backslash, control). */
void
writeJsonString(std::ostream &os, const std::string &v)
{
    os << '"';
    for (const char c : v) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
writeJson(std::ostream &os, const std::string &name,
          const std::vector<SweepRecord> &records,
          const SweepStats &stats, const SinkOptions &opts)
{
    os << "{\n"
       << "  \"sweep\": \"" << name << "\",\n"
       << "  \"points\": " << records.size() << ",\n"
       << "  \"cache_hits\": " << stats.cacheHits << ",\n"
       << "  \"cache_misses\": " << stats.cacheMisses << ",\n"
       << "  \"points_failed\": " << stats.pointsFailed << ",\n";
    if (opts.includeWallTimes)
        os << "  \"eval_wall_ms\": " << fmt(stats.evalWallMs) << ",\n";
    os << "  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const SweepRecord &r = records[i];
        os << "    {\"design\":";
        writeDesignJson(os, r.point);
        os << ",\"metrics\":";
        if (r.failed) {
            // Metrics of a failed point are zero-valued noise; emit
            // null plus the error so consumers cannot misread them.
            os << "null,\"error\":{\"kind\":";
            writeJsonString(os, r.errorKind);
            os << ",\"message\":";
            writeJsonString(os, r.errorMessage);
            os << "}";
        } else {
            writeMetrics(os, r.metrics);
        }
        os << ",\"cache_hit\":" << (r.cacheHit ? "true" : "false");
        if (opts.includeWallTimes)
            os << ",\"wall_ms\":" << fmt(r.wallMs);
        os << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
writeCsv(std::ostream &os, const std::vector<SweepRecord> &records,
         const SinkOptions &opts)
{
    os << "b,l,l1i_kw,l1d_kw,block_words,assoc,repl,penalty,branch_scheme,"
          "load_scheme,predict,write_buffer,cpi,branch_cpi,load_cpi,"
          "imiss_cpi,dmiss_cpi,l1i_miss_rate,l1d_miss_rate,t_cpu_ns,"
          "t_iside_ns,t_dside_ns,tpi_ns,cache_hit,failed,error_kind";
    if (opts.includeWallTimes)
        os << ",wall_ms";
    os << "\n";
    for (const SweepRecord &r : records) {
        const core::DesignPoint &p = r.point;
        const core::PointMetrics &m = r.metrics;
        os << p.branchSlots << "," << p.loadSlots << "," << p.l1iSizeKW
           << "," << p.l1dSizeKW << "," << p.blockWords << "," << p.assoc
           << "," << replacementName(p.repl)
           << "," << p.missPenaltyCycles << ","
           << branchSchemeName(p.branchScheme) << ","
           << loadSchemeName(p.loadScheme) << ","
           << predictSourceName(p.predictSource) << ","
           << (p.writeThroughBuffer ? 1 : 0) << "," << fmt(m.cpi) << ","
           << fmt(m.branchCpi) << "," << fmt(m.loadCpi) << ","
           << fmt(m.iMissCpi) << "," << fmt(m.dMissCpi) << ","
           << fmt(m.l1iMissRate) << "," << fmt(m.l1dMissRate) << ","
           << fmt(m.tCpuNs) << "," << fmt(m.tIsideNs) << ","
           << fmt(m.tDsideNs) << "," << fmt(m.tpiNs) << ","
           << (r.cacheHit ? 1 : 0) << "," << (r.failed ? 1 : 0) << ","
           << r.errorKind;
        if (opts.includeWallTimes)
            os << "," << fmt(r.wallMs);
        os << "\n";
    }
}

std::string
jsonString(const std::string &name,
           const std::vector<SweepRecord> &records,
           const SweepStats &stats, const SinkOptions &opts)
{
    std::ostringstream os;
    writeJson(os, name, records, stats, opts);
    return os.str();
}

std::string
csvString(const std::vector<SweepRecord> &records,
          const SinkOptions &opts)
{
    std::ostringstream os;
    writeCsv(os, records, opts);
    return os.str();
}

} // namespace pipecache::sweep
