/**
 * @file
 * A work-stealing thread pool for design-space sweeps.
 *
 * Fixed worker count, one deque per worker (owner pops LIFO from the
 * back, thieves steal FIFO from the front), condition-variable parking
 * when no work is available, and a draining shutdown: the destructor
 * lets every already-posted task finish before joining the workers.
 *
 * Exceptions do not cross the pool boundary on their own — use
 * submit(), which returns a std::future that rethrows the task's
 * exception from future::get().
 */

#ifndef PIPECACHE_SWEEP_THREAD_POOL_HH
#define PIPECACHE_SWEEP_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pipecache::sweep {

/** Fixed-size work-stealing pool. */
class ThreadPool
{
  public:
    /** @param workers Worker count; 0 means hardware concurrency. */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains every posted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t workerCount() const { return workers_.size(); }

    /** Queue a task (fire-and-forget; exceptions terminate). */
    void post(std::function<void()> task);

    /** Queue a task and get a future for its result/exception. */
    template <typename F>
    std::future<std::invoke_result_t<F>> submit(F &&fn)
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); });
        return future;
    }

  private:
    /** One worker's deque; the owner takes the back, thieves the
     *  front, so long chunks migrate and short ones stay hot. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool tryPopLocal(std::size_t self, std::function<void()> &out);
    bool trySteal(std::size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex parkMutex_;
    std::condition_variable parkCv_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

} // namespace pipecache::sweep

#endif // PIPECACHE_SWEEP_THREAD_POOL_HH
