#include "sweep/thread_pool.hh"

#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace pipecache::sweep {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
        stop_.store(true, std::memory_order_release);
    }
    parkCv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
    PC_ASSERT(pending_.load() == 0,
              "thread pool destroyed with tasks still queued");
}

void
ThreadPool::post(std::function<void()> task)
{
    PC_ASSERT(!stop_.load(std::memory_order_acquire),
              "post() on a stopping thread pool");
    // Round-robin the initial placement; stealing rebalances later.
    const std::size_t idx =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    // Publish the increment under parkMutex_ so it cannot land between
    // a parking worker's predicate check and its block in wait() — the
    // classic lost wakeup. Incrementing before the push keeps pending_
    // from transiently underflowing when a worker pops and decrements.
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    {
        std::lock_guard<std::mutex> lock(workers_[idx]->mutex);
        workers_[idx]->tasks.push_back(std::move(task));
    }
    parkCv_.notify_one();
}

bool
ThreadPool::tryPopLocal(std::size_t self, std::function<void()> &out)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.tasks.empty())
        return false;
    out = std::move(w.tasks.back());
    w.tasks.pop_back();
    return true;
}

bool
ThreadPool::trySteal(std::size_t self, std::function<void()> &out)
{
    const std::size_t n = workers_.size();
    for (std::size_t k = 1; k < n; ++k) {
        Worker &victim = *workers_[(self + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        out = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    auto &reg = obs::StatsRegistry::global();
    using obs::StatKind;
    for (;;) {
        std::function<void()> task;
        bool stolen = false;
        if (tryPopLocal(self, task) ||
            (stolen = trySteal(self, task))) {
            pending_.fetch_sub(1, std::memory_order_release);
            if (stolen) {
                reg.addCounter("pool.steals", "tasks taken from siblings",
                               StatKind::Volatile);
            }
            // Count before running: the task's future is satisfied
            // inside task(), and anything sequenced after a get() on
            // it (a stats dump, say) must already see this task.
            reg.addCounter("pool.tasks_run", "pool tasks executed",
                           StatKind::Deterministic);
            task();
            // A finished task may unblock waiters coordinating through
            // futures; parked siblings recheck on the next post.
            continue;
        }
        reg.addCounter("pool.parks", "worker park (idle wait) events",
                       StatKind::Volatile);
        std::unique_lock<std::mutex> lock(parkMutex_);
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            return;
        }
        parkCv_.wait(lock, [this]() {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

} // namespace pipecache::sweep
