#include "sweep/sweep_engine.hh"

#include <atomic>
#include <chrono>
#include <string>

#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace pipecache::sweep {

namespace {

/** Trace args for one design point (built only when tracing). */
std::string
pointArgs(const core::DesignPoint &p)
{
    std::string args = "{\"b\": ";
    args += std::to_string(p.branchSlots);
    args += ", \"l\": ";
    args += std::to_string(p.loadSlots);
    args += ", \"l1i_kw\": ";
    args += std::to_string(p.l1iSizeKW);
    args += ", \"l1d_kw\": ";
    args += std::to_string(p.l1dSizeKW);
    args += ", \"block_words\": ";
    args += std::to_string(p.blockWords);
    args += ", \"penalty\": ";
    args += std::to_string(p.missPenaltyCycles);
    args += "}";
    return args;
}

} // namespace

SweepEngine::SweepEngine(core::TpiModel &model, SweepOptions opts)
    : model_(model), opts_(opts),
      suiteKey_(model.cpiModel().suiteKey()), pool_(opts.threads)
{
    if (opts_.grain == 0)
        opts_.grain = 1;
}

std::size_t
SweepEngine::shardOf(const core::DesignPoint &point) const
{
    // Fold the suite key in so a future process-wide cache can share
    // shards between engines bound to different suites.
    return (core::DesignPointHash{}(point) ^ suiteKey_) % kShards;
}

bool
SweepEngine::lookup(const core::DesignPoint &point,
                    core::PointMetrics &out)
{
    Shard &shard = shards_[shardOf(point)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(point);
    if (it == shard.map.end())
        return false;
    out = it->second;
    return true;
}

void
SweepEngine::insert(const core::DesignPoint &point,
                    const core::PointMetrics &metrics)
{
    Shard &shard = shards_[shardOf(point)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(point, metrics);
}

std::vector<SweepRecord>
SweepEngine::sweep(const std::vector<core::DesignPoint> &points)
{
    // Build the shared artifacts once, on this thread, before any
    // worker touches the model: evaluatePrepared() is only
    // re-entrant with the lazy caches already populated.
    {
        obs::ScopedSpan span("sweep.prepare", "sweep");
        model_.cpiModel().prepare(points);
    }

    std::vector<SweepRecord> records(points.size());

    // Duplicate detection in input order, so cache-hit metadata is a
    // function of the input alone (thread-count independent).
    struct WorkItem
    {
        core::DesignPoint point;
        std::vector<std::size_t> recordIdx;
        core::PointMetrics metrics;
        double wallMs = 0.0;
    };
    std::vector<WorkItem> work;
    std::unordered_map<core::DesignPoint, std::size_t,
                       core::DesignPointHash> firstSeen;
    for (std::size_t i = 0; i < points.size(); ++i) {
        records[i].point = points[i];
        core::PointMetrics cached;
        if (lookup(points[i], cached)) {
            records[i].metrics = cached;
            records[i].cacheHit = true;
            ++stats_.cacheHits;
            continue;
        }
        const auto seen = firstSeen.find(points[i]);
        if (seen != firstSeen.end()) {
            // Duplicate within this sweep: filled in after its first
            // occurrence evaluates; still a hit.
            work[seen->second].recordIdx.push_back(i);
            records[i].cacheHit = true;
            ++stats_.cacheHits;
            continue;
        }
        firstSeen.emplace(points[i], work.size());
        work.push_back({points[i], {i}, {}, 0.0});
        ++stats_.cacheMisses;
    }

    auto &reg = obs::StatsRegistry::global();
    using obs::StatKind;
    const std::size_t serial_hits = points.size() - work.size();
    if (serial_hits > 0) {
        reg.addCounter("sweep.memo.hits", "points served from memo",
                       StatKind::Deterministic, serial_hits);
    }
    if (!work.empty()) {
        reg.addCounter("sweep.memo.misses", "points simulated fresh",
                       StatKind::Deterministic, work.size());
    }

    // Fan the unique points out in grain-sized chunks.
    std::atomic<std::size_t> done{0};
    const std::size_t total = work.size();
    std::vector<std::future<void>> futures;
    for (std::size_t begin = 0; begin < work.size();
         begin += opts_.grain) {
        const std::size_t end =
            std::min(begin + opts_.grain, work.size());
        futures.push_back(
            pool_.submit([this, &work, &done, total, begin, end]() {
            obs::ScopedSpan chunk("sweep.chunk", "sweep");
            auto &reg = obs::StatsRegistry::global();
            for (std::size_t w = begin; w < end; ++w) {
                obs::ScopedSpan span(
                    "sweep.point", "sweep",
                    obs::Tracer::global().enabled()
                        ? pointArgs(work[w].point)
                        : std::string());
                const auto t0 = std::chrono::steady_clock::now();
                const core::CpiResult cpi =
                    model_.cpiModel().evaluatePrepared(work[w].point);
                work[w].metrics = core::makeMetrics(
                    cpi, model_.combineWithCpi(work[w].point,
                                               cpi.cpi()));
                const auto t1 = std::chrono::steady_clock::now();
                work[w].wallMs =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                reg.addCounter("sweep.points.evaluated",
                               "unique design points simulated",
                               obs::StatKind::Deterministic);
                const std::size_t d =
                    done.fetch_add(1, std::memory_order_acq_rel) + 1;
                if (opts_.onProgress)
                    opts_.onProgress(d, total);
            }
        }));
    }

    // Collect. Drain EVERY future before propagating a failure:
    // rethrowing early would unwind `work` and `futures` while
    // surviving chunks still write through their &work captures.
    std::exception_ptr firstError;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);

    for (const WorkItem &item : work) {
        insert(item.point, item.metrics);
        stats_.evalWallMs += item.wallMs;
        reg.addScalar("sweep.eval_wall_ms",
                      "summed per-point evaluation wall time",
                      StatKind::Volatile, item.wallMs);
        bool first = true;
        for (const std::size_t idx : item.recordIdx) {
            records[idx].metrics = item.metrics;
            records[idx].wallMs = first ? item.wallMs : 0.0;
            first = false;
        }
    }
    return records;
}

std::vector<core::PointMetrics>
SweepEngine::evaluateBatch(const std::vector<core::DesignPoint> &points)
{
    std::vector<core::PointMetrics> out;
    out.reserve(points.size());
    for (SweepRecord &record : sweep(points))
        out.push_back(record.metrics);
    return out;
}

} // namespace pipecache::sweep
