#include "sweep/sweep_engine.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <limits>
#include <string>

#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "sweep/checkpoint.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace pipecache::sweep {

namespace {

/** Trace args for one design point (built only when tracing). */
std::string
pointArgs(const core::DesignPoint &p)
{
    std::string args = "{\"b\": ";
    args += std::to_string(p.branchSlots);
    args += ", \"l\": ";
    args += std::to_string(p.loadSlots);
    args += ", \"l1i_kw\": ";
    args += std::to_string(p.l1iSizeKW);
    args += ", \"l1d_kw\": ";
    args += std::to_string(p.l1dSizeKW);
    args += ", \"block_words\": ";
    args += std::to_string(p.blockWords);
    args += ", \"penalty\": ";
    args += std::to_string(p.missPenaltyCycles);
    args += "}";
    return args;
}

} // namespace

SweepEngine::SweepEngine(core::TpiModel &model, SweepOptions opts)
    : model_(model), opts_(opts),
      suiteKey_(model.cpiModel().suiteKey()), pool_(opts.threads)
{
    if (opts_.grain == 0)
        opts_.grain = 1;
    if (opts_.checkpointEvery == 0)
        opts_.checkpointEvery = 1;
}

std::size_t
SweepEngine::shardOf(const core::DesignPoint &point) const
{
    // Fold the suite key in so a future process-wide cache can share
    // shards between engines bound to different suites.
    return (core::DesignPointHash{}(point) ^ suiteKey_) % kShards;
}

bool
SweepEngine::lookup(const core::DesignPoint &point,
                    core::PointMetrics &out)
{
    Shard &shard = shards_[shardOf(point)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(point);
    if (it == shard.map.end())
        return false;
    out = it->second;
    return true;
}

void
SweepEngine::insert(const core::DesignPoint &point,
                    const core::PointMetrics &metrics)
{
    Shard &shard = shards_[shardOf(point)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(point, metrics);
}

std::vector<SweepRecord>
SweepEngine::sweep(const std::vector<core::DesignPoint> &points)
{
    RunOptions run;
    run.onProgress = opts_.onProgress;
    run.failFast = opts_.failFast;
    run.checkpointPath = opts_.checkpointPath;
    run.checkpointEvery = opts_.checkpointEvery;
    run.resume = opts_.resume;
    run.factored = opts_.factored;
    return this->run(points, run).records;
}

RunResult
SweepEngine::run(const std::vector<core::DesignPoint> &points,
                 const RunOptions &run)
{
    // Build the shared artifacts once, on this thread, before any
    // worker touches the model: evaluatePrepared() is only
    // re-entrant with the lazy caches already populated. Concurrent
    // runs on one engine must be serialized by the caller (the
    // service daemon holds a per-engine mutex across run()).
    {
        obs::ScopedSpan span("sweep.prepare", "sweep");
        if (run.factored)
            model_.cpiModel().prepareFactored(points);
        else
            model_.cpiModel().prepare(points);
    }

    RunResult result;
    result.records.resize(points.size());
    std::vector<SweepRecord> &records = result.records;
    SweepStats &runStats = result.stats;

    // Duplicate detection in input order, so cache-hit metadata is a
    // function of the input alone (thread-count independent).
    struct WorkItem
    {
        core::DesignPoint point;
        std::vector<std::size_t> recordIdx;
        core::PointMetrics metrics;
        double wallMs = 0.0;
        bool failed = false;
        /** Evaluation (or restore) finished; false only when the run
         *  was cancelled before this item started. Written by one
         *  worker, read after the futures drain. */
        bool done = false;
        std::string errorKind;
        std::string errorMessage;
    };
    // firstSeen value for points served from a previous run's memo
    // (no work item, but later duplicates must still classify as
    // within-run duplicates under coldMetadata).
    constexpr std::size_t kMemoServed =
        std::numeric_limits<std::size_t>::max();
    std::vector<WorkItem> work;
    std::unordered_map<core::DesignPoint, std::size_t,
                       core::DesignPointHash> firstSeen;
    for (std::size_t i = 0; i < points.size(); ++i) {
        records[i].point = points[i];
        const auto seen = firstSeen.find(points[i]);
        const bool dup = seen != firstSeen.end();
        core::PointMetrics cached;
        if (lookup(points[i], cached)) {
            records[i].metrics = cached;
            // A warm engine serves the point from a previous run's
            // memo; under coldMetadata only within-run duplicates
            // count as hits, so the serialized output matches a cold
            // process byte for byte.
            records[i].cacheHit = run.coldMetadata ? dup : true;
            ++stats_.cacheHits;
            if (dup) {
                ++runStats.cacheHits;
            } else {
                firstSeen.emplace(points[i], kMemoServed);
                ++result.memoHits;
                if (run.coldMetadata)
                    ++runStats.cacheMisses;
                else
                    ++runStats.cacheHits;
            }
            continue;
        }
        if (dup) {
            // Duplicate within this run: filled in after its first
            // occurrence evaluates; still a hit. (A duplicate of a
            // memo-served point always takes the lookup branch
            // above, so seen->second indexes a real work item here.)
            work[seen->second].recordIdx.push_back(i);
            records[i].cacheHit = true;
            ++stats_.cacheHits;
            ++runStats.cacheHits;
            continue;
        }
        firstSeen.emplace(points[i], work.size());
        work.push_back(
            {points[i], {i}, {}, 0.0, false, false, {}, {}});
        ++stats_.cacheMisses;
        ++runStats.cacheMisses;
    }

    auto &reg = obs::StatsRegistry::global();
    using obs::StatKind;
    const std::size_t serial_hits = points.size() - work.size();
    if (serial_hits > 0) {
        reg.addCounter("sweep.memo.hits", "points served from memo",
                       StatKind::Deterministic, serial_hits);
    }
    if (result.memoHits > 0) {
        // Warmth from earlier runs on this engine: the daemon's
        // cross-request signal. Volatile — it depends on request
        // history, not on this run's input.
        reg.addCounter("sweep.memo.cross_request_hits",
                       "points served from a previous run's memo",
                       StatKind::Volatile, result.memoHits);
    }
    if (!work.empty()) {
        reg.addCounter("sweep.memo.misses", "points simulated fresh",
                       StatKind::Deterministic, work.size());
    }

    // Checkpointing: `doneFlags` (guarded by ckMutex) marks work
    // items whose results are final; a snapshot of the done subset is
    // atomically rewritten every checkpointEvery completions.
    const bool checkpointing = !run.checkpointPath.empty();
    const std::size_t checkpointEvery =
        run.checkpointEvery == 0 ? 1 : run.checkpointEvery;
    const std::uint64_t key =
        checkpointing ? gridKey(points, suiteKey_) : 0;
    std::vector<char> doneFlags(work.size(), 0);
    std::mutex ckMutex;
    std::size_t sinceCheckpoint = 0;

    // Called with ckMutex held; done items are no longer written by
    // any worker, so reading them here is race-free.
    auto writeCheckpoint = [&]() {
        Checkpoint ck;
        ck.gridKey = key;
        ck.uniquePoints = work.size();
        for (std::size_t i = 0; i < work.size(); ++i) {
            if (!doneFlags[i])
                continue;
            CheckpointEntry entry;
            entry.index = i;
            entry.failed = work[i].failed;
            entry.metrics = work[i].metrics;
            entry.errorKind = work[i].errorKind;
            entry.errorMessage = work[i].errorMessage;
            ck.entries.push_back(std::move(entry));
        }
        saveCheckpoint(run.checkpointPath, ck);
    };

    std::size_t restored = 0;
    if (checkpointing && run.resume) {
        const bool exists = std::ifstream(run.checkpointPath).good();
        if (exists) {
            const Checkpoint ck =
                loadCheckpoint(run.checkpointPath);
            if (ck.gridKey != key || ck.uniquePoints != work.size()) {
                throw DataError(run.checkpointPath, 0,
                                "checkpoint does not match this sweep "
                                "(different grid or suite)");
            }
            for (const CheckpointEntry &entry : ck.entries) {
                if (doneFlags[entry.index])
                    continue;
                WorkItem &item = work[entry.index];
                item.metrics = entry.metrics;
                item.failed = entry.failed;
                item.errorKind = entry.errorKind;
                item.errorMessage = entry.errorMessage;
                item.done = true;
                doneFlags[entry.index] = 1;
                ++restored;
            }
            reg.addCounter("sweep.points.restored",
                           "points restored from a checkpoint",
                           StatKind::Volatile, restored);
        }
    }

    std::vector<std::size_t> pendingIdx;
    pendingIdx.reserve(work.size() - restored);
    for (std::size_t i = 0; i < work.size(); ++i)
        if (!doneFlags[i])
            pendingIdx.push_back(i);

    // Fan the pending points out in grain-sized chunks. A per-run
    // thread budget is enforced by chunk sizing: at most threadBudget
    // chunks exist, so the run occupies at most that many workers of
    // the shared pool regardless of how idle the rest of it is.
    std::size_t grain = opts_.grain;
    if (run.threadBudget > 0 && !pendingIdx.empty()) {
        const std::size_t perWorker =
            (pendingIdx.size() + run.threadBudget - 1) /
            run.threadBudget;
        grain = std::max(grain, perWorker);
    }
    const std::uint64_t replaysBefore = model_.cpiModel().engineReplays();
    std::atomic<std::size_t> completed{0};
    const std::size_t total = pendingIdx.size();
    std::vector<std::future<void>> futures;
    for (std::size_t begin = 0; begin < pendingIdx.size();
         begin += grain) {
        const std::size_t end =
            std::min(begin + grain, pendingIdx.size());
        futures.push_back(pool_.submit([this, &work, &pendingIdx,
                                        &completed, &doneFlags,
                                        &ckMutex, &sinceCheckpoint,
                                        &writeCheckpoint, checkpointing,
                                        checkpointEvery, &run,
                                        total, begin, end]() {
            obs::ScopedSpan chunk("sweep.chunk", "sweep");
            auto &reg = obs::StatsRegistry::global();
            for (std::size_t pi = begin; pi < end; ++pi) {
                // Cancellation: once the flag reads true no further
                // points start; points already evaluated stay done
                // (and checkpointed), so the flush on interrupt
                // loses nothing.
                if (run.cancel &&
                    run.cancel->load(std::memory_order_relaxed)) {
                    return;
                }
                const std::size_t w = pendingIdx[pi];
                WorkItem &item = work[w];
                obs::ScopedSpan span(
                    "sweep.point", "sweep",
                    obs::Tracer::global().enabled()
                        ? pointArgs(item.point)
                        : std::string());
                const auto t0 = std::chrono::steady_clock::now();
                // Per-point fault isolation: a throwing point is
                // recorded as failed and the sweep moves on, unless
                // the caller asked for fail-fast. InternalError from
                // PC_FAULT_POINT takes the same route as a real one.
                try {
                    PC_FAULT_POINT("sweep.point.eval");
                    const core::CpiModel &cpiModel =
                        model_.cpiModel();
                    const core::CpiResult cpi =
                        run.factored &&
                                cpiModel.factorable(item.point)
                            ? cpiModel.evaluateFactored(item.point)
                            : cpiModel.evaluatePrepared(item.point);
                    item.metrics = core::makeMetrics(
                        cpi, model_.combineWithCpi(item.point,
                                                   cpi.cpi()));
                } catch (const Error &e) {
                    if (run.failFast)
                        throw;
                    item.failed = true;
                    item.errorKind = e.kindName();
                    item.errorMessage = e.what();
                } catch (const std::exception &e) {
                    if (run.failFast)
                        throw;
                    item.failed = true;
                    item.errorKind =
                        errorKindName(ErrorKind::Internal);
                    item.errorMessage = e.what();
                }
                const auto t1 = std::chrono::steady_clock::now();
                item.wallMs =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                item.done = true;
                reg.addCounter("sweep.points.evaluated",
                               "unique design points simulated",
                               obs::StatKind::Deterministic);
                if (item.failed) {
                    reg.addCounter(
                        "sweep.points_failed",
                        "design points whose evaluation threw",
                        obs::StatKind::Deterministic);
                    warn("sweep: point '", item.point.describe(),
                         "' failed (", item.errorKind, "): ",
                         item.errorMessage);
                }
                if (checkpointing) {
                    std::lock_guard<std::mutex> lock(ckMutex);
                    doneFlags[w] = 1;
                    if (++sinceCheckpoint >= checkpointEvery) {
                        sinceCheckpoint = 0;
                        writeCheckpoint();
                    }
                }
                const std::size_t d =
                    completed.fetch_add(1,
                                        std::memory_order_acq_rel) +
                    1;
                if (run.onProgress)
                    run.onProgress(d, total);
            }
        }));
    }

    // Collect. Drain EVERY future before propagating a failure:
    // rethrowing early would unwind `work` and `futures` while
    // surviving chunks still write through their &work captures.
    std::exception_ptr firstError;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);

    // One final checkpoint so a crash between here and the caller's
    // output write resumes instantly (and so an interrupt below
    // flushes every completed point before unwinding).
    if (checkpointing) {
        std::lock_guard<std::mutex> lock(ckMutex);
        writeCheckpoint();
    }

    const std::size_t evaluated =
        completed.load(std::memory_order_acquire);
    if (run.factored) {
        // Replays actually performed vs one-replay-per-point: the
        // count is a function of the grid alone (the claiming
        // protocol runs each component exactly once), so this stays
        // deterministic across thread counts.
        const std::uint64_t replayDelta =
            model_.cpiModel().engineReplays() - replaysBefore;
        const std::uint64_t saved =
            evaluated > replayDelta ? evaluated - replayDelta : 0;
        stats_.replaysSaved += saved;
        runStats.replaysSaved = saved;
        reg.addCounter("sweep.replays_saved",
                       "full trace replays avoided by factored "
                       "evaluation",
                       StatKind::Deterministic, saved);
    }

    for (const WorkItem &item : work) {
        // Items the cancellation flag kept from starting carry
        // zero-valued metrics; they must reach neither the memo nor
        // the records (the InterruptedError below discards them).
        if (!item.done)
            continue;
        if (item.failed) {
            // Never memoize a failure: a later sweep retries it.
            ++stats_.pointsFailed;
            ++runStats.pointsFailed;
        } else {
            insert(item.point, item.metrics);
        }
        stats_.evalWallMs += item.wallMs;
        runStats.evalWallMs += item.wallMs;
        reg.addScalar("sweep.eval_wall_ms",
                      "summed per-point evaluation wall time",
                      StatKind::Volatile, item.wallMs);
        bool first = true;
        for (const std::size_t idx : item.recordIdx) {
            records[idx].metrics = item.metrics;
            records[idx].wallMs = first ? item.wallMs : 0.0;
            records[idx].failed = item.failed;
            records[idx].errorKind = item.errorKind;
            records[idx].errorMessage = item.errorMessage;
            first = false;
        }
    }

    if (run.cancel && run.cancel->load(std::memory_order_relaxed) &&
        evaluated < total) {
        std::string msg =
            "sweep interrupted after " +
            std::to_string(restored + evaluated) + "/" +
            std::to_string(work.size()) + " unique points";
        if (checkpointing)
            msg += "; checkpoint flushed";
        throw InterruptedError(msg);
    }
    return result;
}

std::vector<core::PointMetrics>
SweepEngine::evaluateBatch(const std::vector<core::DesignPoint> &points)
{
    std::vector<core::PointMetrics> out;
    out.reserve(points.size());
    for (SweepRecord &record : sweep(points)) {
        // Batch callers (optimizer, experiments) have no per-point
        // error channel; zero-valued metrics would silently corrupt
        // their results, so surface the first failure instead.
        if (record.failed) {
            throw Error(errorKindFromName(record.errorKind),
                        "design point '" + record.point.describe() +
                            "' failed: " + record.errorMessage);
        }
        out.push_back(record.metrics);
    }
    return out;
}

} // namespace pipecache::sweep
