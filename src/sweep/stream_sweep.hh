/**
 * @file
 * Sweeping cache design points against an external access stream.
 *
 * External traces and named workloads arrive as flat TraceRecord
 * streams — no basic blocks, no schedules — so the block-level CPI
 * machinery (translation files, factored evaluation) does not apply.
 * Instead the stream splits into its fetch and data halves and each
 * design point's I- and D-cache are measured directly:
 *
 *  - LRU points ride the single-pass Mattson stack simulator: all
 *    points sharing a block size form one ladder per side, so the
 *    stream is replayed once per (side, block size) regardless of how
 *    many sizes/associativities the grid asks for.
 *  - Random-replacement points fall back to a per-geometry Cache
 *    replay (inclusion does not hold for Random).
 *
 * Derived metrics per point: miss rates, a memory-stall cycle count
 * (penalty × total misses), and a memory-only CPI (1 + stalls per
 * fetch) when the stream contains fetches. The evaluation is
 * sequential and deterministic, so the JSON emitted here is
 * byte-stable across runs and thread counts by construction.
 */

#ifndef PIPECACHE_SWEEP_STREAM_SWEEP_HH
#define PIPECACHE_SWEEP_STREAM_SWEEP_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/design_point.hh"
#include "trace/trace_record.hh"
#include "util/units.hh"

namespace pipecache::sweep {

/** Stream-wide composition totals. */
struct StreamStats
{
    Counter records = 0;
    Counter fetches = 0;
    Counter reads = 0;
    Counter writes = 0;
};

/** Per-point results of a stream sweep. */
struct StreamMetrics
{
    cache::CacheStats l1i;
    cache::CacheStats l1d;
    double l1iMissRate = 0.0;
    double l1dMissRate = 0.0;
    /** penalty × (I misses + D misses). */
    Counter stallCycles = 0;
    /** 1 + stalls/fetch; 0 when the stream has no fetches. */
    double memCpi = 0.0;
};

struct StreamRecord
{
    core::DesignPoint point;
    StreamMetrics metrics;
};

struct StreamSweepResult
{
    StreamStats stream;
    std::vector<StreamRecord> records;
};

/**
 * Evaluate every design point against @p stream. Throws UsageError if
 * a point's geometry cannot be formed (cache smaller than one way's
 * worth of blocks).
 */
StreamSweepResult sweepStream(const std::vector<trace::TraceRecord> &stream,
                              const std::vector<core::DesignPoint> &points);

/**
 * Emit the result as the sinks' byte-stable JSON dialect. @p source
 * names where the stream came from (file path or workload name).
 */
void writeStreamJson(std::ostream &os, const std::string &name,
                     const std::string &source,
                     const StreamSweepResult &result);

/** writeStreamJson into a string. */
std::string streamJsonString(const std::string &name,
                             const std::string &source,
                             const StreamSweepResult &result);

} // namespace pipecache::sweep

#endif // PIPECACHE_SWEEP_STREAM_SWEEP_HH
