#include "util/stats.hh"

#include "util/logging.hh"

namespace pipecache {

Histogram::Histogram(std::size_t bucket_count) : buckets_(bucket_count, 0)
{
    PC_ASSERT(bucket_count > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t value, std::uint64_t weight)
{
    if (value < buckets_.size()) {
        buckets_[value] += weight;
        weightedSum_ += value * weight;
    } else {
        overflow_ += weight;
        weightedSum_ += buckets_.size() * weight;
    }
    total_ += weight;
}

std::uint64_t
Histogram::bucket(std::size_t b) const
{
    PC_ASSERT(b < buckets_.size(), "histogram bucket out of range: ", b);
    return buckets_[b];
}

double
Histogram::fraction(std::uint64_t v) const
{
    if (total_ == 0)
        return 0.0;
    if (v >= buckets_.size())
        return static_cast<double>(overflow_) / static_cast<double>(total_);
    return static_cast<double>(buckets_[v]) / static_cast<double>(total_);
}

double
Histogram::fractionAtLeast(std::uint64_t v) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = overflow_;
    for (std::size_t b = buckets_.size(); b-- > 0;) {
        if (b < v)
            break;
        acc += buckets_[b];
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(weightedSum_) / static_cast<double>(total_);
}

void
Histogram::merge(const Histogram &other)
{
    PC_ASSERT(other.buckets_.size() == buckets_.size(),
              "histogram merge with mismatched bucket counts");
    for (std::size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    overflow_ += other.overflow_;
    total_ += other.total_;
    weightedSum_ += other.weightedSum_;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    total_ = 0;
    weightedSum_ = 0;
}

void
WeightedHarmonicMean::add(double value, double weight)
{
    PC_ASSERT(value > 0.0, "harmonic mean of non-positive value ", value);
    PC_ASSERT(weight >= 0.0, "negative weight ", weight);
    weightSum_ += weight;
    invSum_ += weight / value;
    ++n_;
}

double
WeightedHarmonicMean::value() const
{
    PC_ASSERT(n_ > 0, "harmonic mean of empty set");
    PC_ASSERT(invSum_ > 0.0, "harmonic mean with zero total weight");
    return weightSum_ / invSum_;
}

void
WeightedArithmeticMean::add(double value, double weight)
{
    PC_ASSERT(weight >= 0.0, "negative weight ", weight);
    weightSum_ += weight;
    sum_ += value * weight;
    ++n_;
}

double
WeightedArithmeticMean::value() const
{
    PC_ASSERT(n_ > 0 && weightSum_ > 0.0, "mean of empty set");
    return sum_ / weightSum_;
}

void
RunningStats::add(double v)
{
    if (n_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++n_;
}

double
RunningStats::mean() const
{
    PC_ASSERT(n_ > 0, "mean of empty RunningStats");
    return sum_ / static_cast<double>(n_);
}

double
RunningStats::min() const
{
    PC_ASSERT(n_ > 0, "min of empty RunningStats");
    return min_;
}

double
RunningStats::max() const
{
    PC_ASSERT(n_ > 0, "max of empty RunningStats");
    return max_;
}

double
weightedHarmonicMean(std::span<const double> values,
                     std::span<const double> weights)
{
    PC_ASSERT(values.size() == weights.size(),
              "values/weights size mismatch");
    WeightedHarmonicMean m;
    for (std::size_t i = 0; i < values.size(); ++i)
        m.add(values[i], weights[i]);
    return m.value();
}

} // namespace pipecache
