/**
 * @file
 * Atomic file writes: temp file in the target directory, fsync,
 * rename over the destination.
 *
 * Every file artifact the tools produce (sweep JSON/CSV, stats and
 * trace dumps, checkpoints, recorded traces) goes through this one
 * helper, so a crash — including SIGKILL mid-write — leaves either
 * the previous complete file or the new complete file, never a
 * truncated mix. This is the property the sweep checkpoint/resume
 * machinery depends on.
 */

#ifndef PIPECACHE_UTIL_ATOMIC_FILE_HH
#define PIPECACHE_UTIL_ATOMIC_FILE_HH

#include <functional>
#include <iosfwd>
#include <string>

namespace pipecache::util {

enum class AtomicWriteMode { Text, Binary };

/**
 * Write @p path atomically: @p producer fills a temp file created in
 * the same directory, the temp file is flushed and fsync()ed, then
 * rename()d over @p path (and the directory entry synced). On any
 * failure the temp file is removed and IoError is thrown; @p path is
 * never left half-written. Exceptions from @p producer propagate
 * unchanged (after cleanup).
 */
void writeFileAtomic(const std::string &path,
                     const std::function<void(std::ostream &)> &producer,
                     AtomicWriteMode mode = AtomicWriteMode::Text);

} // namespace pipecache::util

#endif // PIPECACHE_UTIL_ATOMIC_FILE_HH
