#include "util/fault_injection.hh"

#ifdef PIPECACHE_FAULT_INJECTION

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/error.hh"

namespace pipecache::fi {

namespace {

struct Site
{
    std::uint64_t hits = 0;
    /** Fire when hits reaches this value; 0 = disarmed. */
    std::uint64_t armedAt = 0;
    /** Consecutive firings left once armedAt is reached. */
    std::uint64_t remaining = 0;
};

std::mutex sitesMutex;
std::unordered_map<std::string, Site> &
sites()
{
    static std::unordered_map<std::string, Site> map;
    return map;
}

} // namespace

void
arm(const std::string &site, std::uint64_t nth, std::uint64_t count)
{
    std::lock_guard<std::mutex> lock(sitesMutex);
    Site &s = sites()[site];
    s.armedAt = s.hits + (nth == 0 ? 1 : nth);
    s.remaining = count == 0 ? 1 : count;
}

void
armFromEnv()
{
    const char *spec = std::getenv("PIPECACHE_FAULTS");
    if (!spec || !*spec)
        return;
    std::string rest = spec;
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string entry = rest.substr(0, comma);
        rest = comma == std::string::npos ? ""
                                          : rest.substr(comma + 1);
        // site:nth or site:nth:count (site names contain dots but
        // never colons).
        const auto firstColon = entry.find(':');
        if (firstColon == std::string::npos || firstColon == 0)
            throw UsageError("bad PIPECACHE_FAULTS entry '" + entry +
                             "' (want site:nth[:count])");
        char *end = nullptr;
        const unsigned long long nth =
            std::strtoull(entry.c_str() + firstColon + 1, &end, 10);
        if (end == entry.c_str() + firstColon + 1 || nth == 0 ||
            (*end != '\0' && *end != ':')) {
            throw UsageError("bad PIPECACHE_FAULTS count in '" + entry +
                             "'");
        }
        unsigned long long count = 1;
        if (*end == ':') {
            char *end2 = nullptr;
            count = std::strtoull(end + 1, &end2, 10);
            if (end2 == end + 1 || *end2 != '\0' || count == 0)
                throw UsageError("bad PIPECACHE_FAULTS count in '" +
                                 entry + "'");
        }
        arm(entry.substr(0, firstColon), nth, count);
    }
}

void
clear()
{
    std::lock_guard<std::mutex> lock(sitesMutex);
    sites().clear();
}

std::uint64_t
hitCount(const std::string &site)
{
    std::lock_guard<std::mutex> lock(sitesMutex);
    const auto it = sites().find(site);
    return it == sites().end() ? 0 : it->second.hits;
}

bool
shouldFail(const char *site)
{
    std::lock_guard<std::mutex> lock(sitesMutex);
    Site &s = sites()[site];
    ++s.hits;
    if (s.armedAt != 0 && s.remaining > 0 && s.hits >= s.armedAt) {
        --s.remaining;
        return true;
    }
    return false;
}

void
injectionPoint(const char *site)
{
    if (shouldFail(site))
        throw InternalError(std::string("injected fault at ") + site);
}

} // namespace pipecache::fi

#endif // PIPECACHE_FAULT_INJECTION
