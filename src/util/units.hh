/**
 * @file
 * Unit helpers for the 1992 MIPS/GaAs world of the paper.
 *
 * The paper measures cache sizes in "words" (W) of 4 bytes and quotes
 * sizes as KW (kilowords). 1 KW = 1024 words = 4 KB.
 */

#ifndef PIPECACHE_UTIL_UNITS_HH
#define PIPECACHE_UTIL_UNITS_HH

#include <cstdint>

namespace pipecache {

/** Byte addresses are 32-bit, as on the MIPS R2000. */
using Addr = std::uint32_t;

/** Cycle and instruction counts need 64 bits at trace scale. */
using Counter = std::uint64_t;

/** Bytes per MIPS word. */
inline constexpr std::uint32_t bytesPerWord = 4;

/** Convert a size in words to bytes. */
constexpr std::uint64_t
wordsToBytes(std::uint64_t words)
{
    return words * bytesPerWord;
}

/** Convert a size in kilowords (the paper's unit) to bytes. */
constexpr std::uint64_t
kiloWordsToBytes(std::uint64_t kw)
{
    return kw * 1024 * bytesPerWord;
}

/** Convert a size in bytes to kilowords; size must be KW-aligned. */
constexpr std::uint64_t
bytesToKiloWords(std::uint64_t bytes)
{
    return bytes / (1024 * bytesPerWord);
}

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned l = 0;
    while (x > 1) {
        x >>= 1;
        ++l;
    }
    return l;
}

} // namespace pipecache

#endif // PIPECACHE_UTIL_UNITS_HH
