#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace pipecache {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextRange(std::uint64_t bound)
{
    PC_ASSERT(bound != 0, "nextRange bound must be nonzero");
    // Debiased multiply-shift (Lemire). The rejection loop terminates
    // quickly for any bound.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        __uint128_t m = static_cast<__uint128_t>(r) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low >= threshold)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    PC_ASSERT(lo <= hi, "nextInt: lo > hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextRange(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    PC_ASSERT(p > 0.0 && p <= 1.0, "nextGeometric: p out of range ", p);
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

void
Rng::buildZipf(std::uint64_t n, double theta)
{
    zipfCache_.n = n;
    zipfCache_.theta = theta;
    zipfCache_.cdf.resize(n);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
        zipfCache_.cdf[r] = sum;
    }
    for (auto &v : zipfCache_.cdf)
        v /= sum;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double theta)
{
    PC_ASSERT(n != 0, "nextZipf: empty support");
    if (zipfCache_.n != n || zipfCache_.theta != theta)
        buildZipf(n, theta);
    double u = nextDouble();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0;
    std::size_t hi = zipfCache_.cdf.size() - 1;
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (zipfCache_.cdf[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

std::size_t
Rng::nextDiscrete(std::span<const double> weights)
{
    PC_ASSERT(!weights.empty(), "nextDiscrete: empty weights");
    double total = 0.0;
    for (double w : weights)
        total += w;
    PC_ASSERT(total > 0.0, "nextDiscrete: zero total weight");
    double u = nextDouble() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (u < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    // Mix two outputs into a fresh seed; the child stream is
    // decorrelated from the parent continuation.
    std::uint64_t a = next();
    std::uint64_t b = next();
    return Rng(a ^ rotl(b, 29) ^ 0xd1b54a32d192ed03ULL);
}

} // namespace pipecache
