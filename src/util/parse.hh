/**
 * @file
 * Small strict string-to-number parsers shared by the CLI tools and
 * the sweep-service protocol. All of them validate the full token —
 * trailing junk, overflow, and empty input are failures, never a
 * silently truncated value.
 */

#ifndef PIPECACHE_UTIL_PARSE_HH
#define PIPECACHE_UTIL_PARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pipecache::util {

/** Parse a full decimal token into a uint32; false on any junk. */
bool parseU32(const std::string &tok, std::uint32_t &out);

/** Parse a full decimal token into a size_t; false on any junk. */
bool parseSize(const std::string &tok, std::size_t &out);

/**
 * Parse "lo:hi" (inclusive) or "a,b,c" into a list. False on
 * malformed input, an empty list, or hi < lo.
 */
bool parseRange(const std::string &spec,
                std::vector<std::uint32_t> &out);

/**
 * Parse a full floating-point token; false on junk or a non-finite
 * value (strtod accepts "nan"/"inf", which defeat range checks).
 */
bool parseFiniteDouble(const std::string &tok, double &out);

} // namespace pipecache::util

#endif // PIPECACHE_UTIL_PARSE_HH
