/**
 * @file
 * Structured error taxonomy for library code.
 *
 * panic()/fatal() (util/logging.hh) kill the process, which is the
 * right call for a broken simulator invariant but the wrong one for
 * library entry points fed external input: a malformed trace file
 * must be a recoverable data error in a long sweep, not an abort.
 * Library code throws one of the pipecache::Error subclasses instead
 * and lets the caller decide — the sweep engine records the point as
 * failed and keeps going, the CLI maps the kind to a documented exit
 * code.
 *
 * Kinds and their CLI exit codes:
 *   UsageError       (2) — the caller asked for something the
 *                          simulator cannot do (bad flag value,
 *                          unknown benchmark).
 *   DataError        (3) — external input is malformed (bad din line,
 *                          corrupt trace stream, mismatched
 *                          checkpoint); carries the source name and
 *                          line when known.
 *   IoError          (3) — the environment failed us (cannot open,
 *                          short write, rename failure).
 *   InterruptedError (5) — the operation was cancelled mid-flight
 *                          (SIGINT/SIGTERM on a sweep, a daemon
 *                          client that went away); completed work is
 *                          flushed before the throw.
 *   UnavailableError (6) — a service declined the request under
 *                          admission control (queue full, draining);
 *                          the request itself was well-formed and may
 *                          be retried later.
 *   TimeoutError     (7) — a deadline expired before the operation
 *                          finished (a request's deadline_ms, a
 *                          client-side socket timeout); distinct from
 *                          Interrupted because nobody asked for the
 *                          cancellation — time did.
 *   InternalError    (1) — a bug or an injected fault; nothing the
 *                          user did wrong.
 *
 * Every subclass derives from std::runtime_error, so pre-taxonomy
 * call sites catching std::runtime_error keep working.
 */

#ifndef PIPECACHE_UTIL_ERROR_HH
#define PIPECACHE_UTIL_ERROR_HH

#include <cstddef>
#include <stdexcept>
#include <string>

namespace pipecache {

enum class ErrorKind
{
    Usage,
    Data,
    Io,
    Internal,
    Interrupted,
    Unavailable,
    Timeout,
};

/** Short stable name, used in JSON results and CLI diagnostics. */
constexpr const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::Usage:
        return "usage";
    case ErrorKind::Data:
        return "data";
    case ErrorKind::Io:
        return "io";
    case ErrorKind::Interrupted:
        return "interrupted";
    case ErrorKind::Unavailable:
        return "unavailable";
    case ErrorKind::Timeout:
        return "timeout";
    default:
        return "internal";
    }
}

/** Documented process exit code for an error of @p kind. */
constexpr int
errorExitCode(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::Usage:
        return 2;
    case ErrorKind::Data:
    case ErrorKind::Io:
        return 3;
    case ErrorKind::Interrupted:
        return 5;
    case ErrorKind::Unavailable:
        return 6;
    case ErrorKind::Timeout:
        return 7;
    default:
        return 1;
    }
}

/**
 * Inverse of errorKindName(), for re-raising errors that crossed a
 * process or wire boundary as their kind name (daemon ERR lines,
 * checkpoint fail entries). Unknown names map to Internal.
 */
inline ErrorKind
errorKindFromName(const std::string &name)
{
    if (name == "usage")
        return ErrorKind::Usage;
    if (name == "data")
        return ErrorKind::Data;
    if (name == "io")
        return ErrorKind::Io;
    if (name == "interrupted")
        return ErrorKind::Interrupted;
    if (name == "unavailable")
        return ErrorKind::Unavailable;
    if (name == "timeout")
        return ErrorKind::Timeout;
    return ErrorKind::Internal;
}

/** Base of the taxonomy; what() is the full human-readable message. */
class Error : public std::runtime_error
{
  public:
    Error(ErrorKind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {
    }

    ErrorKind kind() const { return kind_; }
    const char *kindName() const { return errorKindName(kind_); }
    int exitCode() const { return errorExitCode(kind_); }

  private:
    ErrorKind kind_;
};

/** The caller asked for something the simulator cannot do. */
class UsageError : public Error
{
  public:
    explicit UsageError(const std::string &msg)
        : Error(ErrorKind::Usage, msg)
    {
    }
};

/**
 * External input is malformed. Carries the input's name (file path,
 * stream label; may be empty when read from an anonymous stream) and
 * 1-based line number (0 when not line-oriented), so callers can
 * point at the offending record. withSource() rebinds the same error
 * to a named file — used by the *File() wrappers around stream
 * readers that only know line numbers.
 */
class DataError : public Error
{
  public:
    explicit DataError(const std::string &msg)
        : Error(ErrorKind::Data, msg), line_(0), rawMsg_(msg)
    {
    }

    DataError(const std::string &source, std::size_t line,
              const std::string &msg)
        : Error(ErrorKind::Data, format(source, line, msg)),
          source_(source), line_(line), rawMsg_(msg)
    {
    }

    const std::string &source() const { return source_; }
    std::size_t line() const { return line_; }
    /** The message without the source:line prefix. */
    const std::string &rawMessage() const { return rawMsg_; }

    /** The same error, attributed to @p source. */
    DataError withSource(const std::string &source) const
    {
        return DataError(source, line_, rawMsg_);
    }

  private:
    static std::string format(const std::string &source,
                              std::size_t line, const std::string &msg)
    {
        std::string out;
        if (!source.empty()) {
            out += source;
            if (line != 0)
                out += ":" + std::to_string(line);
            out += ": ";
        } else if (line != 0) {
            out += "line " + std::to_string(line) + ": ";
        }
        out += msg;
        return out;
    }

    std::string source_;
    std::size_t line_;
    std::string rawMsg_;
};

/** The environment failed an I/O operation. */
class IoError : public Error
{
  public:
    explicit IoError(const std::string &msg)
        : Error(ErrorKind::Io, msg)
    {
    }

    IoError(const std::string &path, const std::string &msg)
        : Error(ErrorKind::Io, path + ": " + msg), path_(path)
    {
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/**
 * The operation was cancelled before finishing (signal, client
 * disconnect). Work completed so far has been flushed (checkpoint,
 * memo cache) before this is thrown.
 */
class InterruptedError : public Error
{
  public:
    explicit InterruptedError(const std::string &msg)
        : Error(ErrorKind::Interrupted, msg)
    {
    }
};

/**
 * A deadline expired before the operation finished (request
 * deadline_ms on the daemon, socket I/O timeout on the client). The
 * work done so far is abandoned; a retry restarts from scratch.
 */
class TimeoutError : public Error
{
  public:
    explicit TimeoutError(const std::string &msg)
        : Error(ErrorKind::Timeout, msg)
    {
    }
};

/** A service declined the request (admission control, draining). */
class UnavailableError : public Error
{
  public:
    explicit UnavailableError(const std::string &msg)
        : Error(ErrorKind::Unavailable, msg)
    {
    }
};

/** A bug (or an injected fault) — nothing the user did wrong. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &msg)
        : Error(ErrorKind::Internal, msg)
    {
    }
};

} // namespace pipecache

#endif // PIPECACHE_UTIL_ERROR_HH
