#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pipecache {

namespace {

void
defaultSink(const std::string &line)
{
    std::fprintf(stderr, "%s\n", line.c_str());
}

LogSink currentSink = defaultSink;

} // namespace

void
setLogSink(LogSink sink)
{
    currentSink = sink ? sink : defaultSink;
}

/**
 * Exception thrown by panic()/fatal() when a test sink is installed, so
 * unit tests can exercise error paths without killing the process.
 */

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " @ " << file << ":" << line;
    currentSink(os.str());
    if (currentSink != defaultSink)
        throw std::logic_error(os.str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " @ " << file << ":" << line;
    currentSink(os.str());
    if (currentSink != defaultSink)
        throw std::runtime_error(os.str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    currentSink("warn: " + msg);
}

void
informImpl(const std::string &msg)
{
    currentSink("info: " + msg);
}

} // namespace pipecache
