#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace pipecache {

namespace {

void
defaultSink(const std::string &line)
{
    std::fprintf(stderr, "%s\n", line.c_str());
}

/**
 * The sink pointer is atomic so log calls racing a setLogSink() (e.g. a
 * worker thread warning while the main thread swaps test sinks) read a
 * coherent pointer, and emission is serialized under one mutex so lines
 * never interleave and a sink being swapped out is never mid-call.
 */
std::atomic<LogSink> currentSink{&defaultSink};
std::mutex emitMutex;

void
emit(LogSink sink, const std::string &line)
{
    std::lock_guard<std::mutex> lock(emitMutex);
    sink(line);
}

} // namespace

void
setLogSink(LogSink sink)
{
    const LogSink next = sink ? sink : &defaultSink;
    // Take the emission lock so no in-flight line still runs on the
    // outgoing sink when this returns.
    std::lock_guard<std::mutex> lock(emitMutex);
    currentSink.store(next, std::memory_order_release);
}

/**
 * Exception thrown by panic()/fatal() when a test sink is installed, so
 * unit tests can exercise error paths without killing the process.
 */

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " @ " << file << ":" << line;
    const LogSink sink = currentSink.load(std::memory_order_acquire);
    emit(sink, os.str());
    if (sink != &defaultSink)
        throw std::logic_error(os.str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " @ " << file << ":" << line;
    const LogSink sink = currentSink.load(std::memory_order_acquire);
    emit(sink, os.str());
    if (sink != &defaultSink)
        throw std::runtime_error(os.str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit(currentSink.load(std::memory_order_acquire), "warn: " + msg);
}

void
informImpl(const std::string &msg)
{
    emit(currentSink.load(std::memory_order_acquire), "info: " + msg);
}

} // namespace pipecache
