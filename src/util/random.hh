/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that all experiments are reproducible bit-for-bit. The
 * core generator is xoshiro256**, which is fast, high quality, and —
 * unlike std::mt19937 + std::distributions — produces identical
 * sequences on every platform and standard library.
 */

#ifndef PIPECACHE_UTIL_RANDOM_HH
#define PIPECACHE_UTIL_RANDOM_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace pipecache {

/** Deterministic xoshiro256** generator with distribution helpers. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t nextRange(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p. Mean (1-p)/p.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Zipf-like draw over [0, n): rank r with probability proportional
     * to 1/(r+1)^theta. Uses inverse-CDF on a cached table.
     */
    std::uint64_t nextZipf(std::uint64_t n, double theta);

    /** Draw an index from a discrete distribution of weights. */
    std::size_t nextDiscrete(std::span<const double> weights);

    /**
     * Fork a child generator whose stream is decorrelated from this
     * one. Used to give each benchmark / component its own stream.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;

    struct ZipfTable
    {
        std::uint64_t n = 0;
        double theta = 0.0;
        std::vector<double> cdf;
    };
    ZipfTable zipfCache_;

    void buildZipf(std::uint64_t n, double theta);
};

} // namespace pipecache

#endif // PIPECACHE_UTIL_RANDOM_HH
