/**
 * @file
 * Deterministic fault injection for robustness tests.
 *
 * Library code marks interesting failure sites with
 * PC_FAULT_POINT("site.name"). In normal builds the macro expands to
 * nothing — zero instructions on the hot path. Configured with
 * -DPIPECACHE_FAULT_INJECTION=ON, every site counts its hits and an
 * armed site throws InternalError("injected fault at <site> ...") on
 * exactly the n-th hit, which lets tests prove the isolation, drain,
 * and resume paths actually take the routes they claim to.
 *
 * Arming:
 *   - test API: fi::arm("sweep.point.eval", 3) — fire on the 3rd hit
 *     (1-based), once; fi::arm(site, nth, count) fires on `count`
 *     consecutive hits starting at the nth (an "EINTR storm");
 *     fi::clear() resets everything.
 *   - environment: PIPECACHE_FAULTS="site:nth[:count][,...]" parsed
 *     by fi::armFromEnv() (the CLI calls it at startup).
 *
 * Besides the throwing PC_FAULT_POINT sites, the socket layer
 * (serve/fd_io.hh, serve/server.cc) polls fi::shouldFail() on
 * behavioral sites — serve.io.read.short, serve.io.read.eintr,
 * serve.io.read.reset, serve.io.write.short, serve.io.write.eintr,
 * serve.io.write.reset, serve.io.write.torn, serve.accept.fail —
 * where firing does not throw InternalError but simulates the
 * corresponding I/O failure (see DESIGN.md §14 for the catalog).
 *
 * Counting is process-global and thread-safe; with a single worker
 * thread the n-th hit is fully deterministic.
 */

#ifndef PIPECACHE_UTIL_FAULT_INJECTION_HH
#define PIPECACHE_UTIL_FAULT_INJECTION_HH

#include <cstdint>
#include <string>

namespace pipecache::fi {

/** True when the harness is compiled in (PIPECACHE_FAULT_INJECTION). */
constexpr bool
compiledIn()
{
#ifdef PIPECACHE_FAULT_INJECTION
    return true;
#else
    return false;
#endif
}

#ifdef PIPECACHE_FAULT_INJECTION

/** Arm @p site to fire on @p count consecutive hits starting at its
 *  @p nth hit from now (1-based). count = 1 is a single fault;
 *  count > 1 models a storm (e.g. repeated EINTR). */
void arm(const std::string &site, std::uint64_t nth,
         std::uint64_t count = 1);

/** Parse PIPECACHE_FAULTS ("site:nth[:count][,...]"); unset = no-op.
 *  Throws UsageError on a malformed spec. */
void armFromEnv();

/** Disarm every site and reset all hit counters. */
void clear();

/** Hits recorded at @p site since the last clear(). */
std::uint64_t hitCount(const std::string &site);

/** Count a hit; true exactly when an armed site reaches its n-th. */
bool shouldFail(const char *site);

/** Count a hit and throw InternalError when the site fires. */
void injectionPoint(const char *site);

#define PC_FAULT_POINT(site) ::pipecache::fi::injectionPoint(site)

#else

inline void arm(const std::string &, std::uint64_t, std::uint64_t = 1)
{
}
inline void armFromEnv() {}
inline void clear() {}
inline std::uint64_t hitCount(const std::string &) { return 0; }
inline bool shouldFail(const char *) { return false; }
inline void injectionPoint(const char *) {}

#define PC_FAULT_POINT(site)                                              \
    do {                                                                  \
    } while (0)

#endif // PIPECACHE_FAULT_INJECTION

} // namespace pipecache::fi

#endif // PIPECACHE_UTIL_FAULT_INJECTION_HH
