#include "util/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pipecache {

TextTable::TextTable(std::string title) : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::render() const
{
    // Column widths over header + all rows.
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << std::setw(static_cast<int>(width[c])) << cell;
            if (c + 1 < cols)
                os << "  ";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t line = 0;
        for (std::size_t c = 0; c < cols; ++c)
            line += width[c] + (c + 1 < cols ? 2 : 0);
        os << std::string(line, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << quote(row[c]);
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::renderMarkdown() const
{
    std::ostringstream os;
    if (!title_.empty())
        os << "**" << title_ << "**\n\n";

    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());
    if (cols == 0)
        return os.str();

    auto escape = [](const std::string &cell) {
        std::string out;
        for (char ch : cell) {
            if (ch == '|')
                out += "\\|";
            else
                out += ch;
        }
        return out;
    };
    auto emit = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < cols; ++c)
            os << " " << (c < row.size() ? escape(row[c]) : "")
               << " |";
        os << "\n";
    };

    emit(header_);
    os << "|";
    for (std::size_t c = 0; c < cols; ++c)
        os << "---|";
    os << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const TextTable &t)
{
    return os << t.render();
}

} // namespace pipecache
