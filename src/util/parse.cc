#include "util/parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace pipecache::util {

bool
parseU32(const std::string &tok, std::uint32_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (errno != 0 || end == tok.c_str() || *end != '\0' ||
        v > 0xffffffffUL) {
        return false;
    }
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseSize(const std::string &tok, std::size_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v =
        std::strtoull(tok.c_str(), &end, 10);
    if (errno != 0 || end == tok.c_str() || *end != '\0')
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

bool
parseRange(const std::string &spec, std::vector<std::uint32_t> &out)
{
    out.clear();
    const auto colon = spec.find(':');
    if (colon != std::string::npos) {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        if (!parseU32(spec.substr(0, colon), lo) ||
            !parseU32(spec.substr(colon + 1), hi) || hi < lo) {
            return false;
        }
        for (std::uint32_t v = lo; v <= hi; ++v)
            out.push_back(v);
        return true;
    }
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const auto comma = spec.find(',', begin);
        const auto end =
            comma == std::string::npos ? spec.size() : comma;
        std::uint32_t v = 0;
        if (!parseU32(spec.substr(begin, end - begin), v))
            return false;
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return !out.empty();
}

bool
parseFiniteDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

} // namespace pipecache::util
