/**
 * @file
 * ASCII table and CSV emission for experiment reports.
 *
 * Every bench binary prints its table/figure through TextTable so the
 * reproduction output is uniform and diffable against EXPERIMENTS.md.
 */

#ifndef PIPECACHE_UTIL_TABLE_HH
#define PIPECACHE_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pipecache {

/** Column-aligned text table with an optional title and CSV export. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. Resets nothing else. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision (helper for rows). */
    static std::string num(double v, int precision = 3);

    /** Format an integer cell. */
    static std::string num(std::uint64_t v);

    /** Render the aligned table. */
    std::string render() const;

    /** Render as CSV (header + rows, comma separated, quoted as needed). */
    std::string renderCsv() const;

    /** Render as a GitHub-flavored markdown table. */
    std::string renderMarkdown() const;

    /** Write render() to the stream. */
    friend std::ostream &operator<<(std::ostream &os, const TextTable &t);

    const std::string &title() const { return title_; }
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pipecache

#endif // PIPECACHE_UTIL_TABLE_HH
