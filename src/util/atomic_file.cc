#include "util/atomic_file.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.hh"
#include "util/fault_injection.hh"

namespace pipecache::util {

namespace {

/** fsync the object at @p path opened with @p oflags; best-effort
 *  directory sync is not available on all filesystems, so only the
 *  data-file sync failure is fatal. */
bool
syncPath(const std::string &path, int oflags)
{
    const int fd = ::open(path.c_str(), oflags);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

std::string
parentDir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

void
writeFileAtomic(const std::string &path,
                const std::function<void(std::ostream &)> &producer,
                AtomicWriteMode mode)
{
    // A pid suffix keeps concurrent writers of the same target from
    // trampling each other's temp file; last rename wins atomically.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());

    struct TmpGuard
    {
        const std::string &tmp;
        bool armed = true;
        ~TmpGuard()
        {
            if (armed)
                std::remove(tmp.c_str());
        }
    } guard{tmp};

    {
        std::ofstream out(tmp, mode == AtomicWriteMode::Binary
                                   ? std::ios::binary | std::ios::trunc
                                   : std::ios::trunc);
        if (!out)
            throw IoError(tmp, "cannot create temp file");
        producer(out);
        out.flush();
        if (!out)
            throw IoError(tmp, "error while writing temp file");
    }

    if (!syncPath(tmp, O_WRONLY))
        throw IoError(tmp, "fsync failed");

    // Everything up to here left `path` untouched; the rename below
    // is the commit point.
    PC_FAULT_POINT("atomic_file.commit");

    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw IoError(path, "rename from temp file failed");
    guard.armed = false;

    // Make the new directory entry durable too (ignore failure: some
    // filesystems reject O_RDONLY fsync on directories).
    syncPath(parentDir(path), O_RDONLY | O_DIRECTORY);
}

} // namespace pipecache::util
