/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant of the simulator is broken; aborts.
 * fatal()  — the user asked for something the simulator cannot do
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#ifndef PIPECACHE_UTIL_LOGGING_HH
#define PIPECACHE_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace pipecache {

/** Sink for log lines; overridable so tests can capture output. */
using LogSink = void (*)(const std::string &line);

/** Replace the default (stderr) sink. Pass nullptr to restore it. */
void setLogSink(LogSink sink);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
formatMsg(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail

/** Abort on a simulator bug. Usage: panic("bad state ", x). */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, const Args &...args)
{
    panicImpl(file, line, detail::formatMsg(args...));
}

/** Exit(1) on a user error. */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, const Args &...args)
{
    fatalImpl(file, line, detail::formatMsg(args...));
}

template <typename... Args>
void
warn(const Args &...args)
{
    warnImpl(detail::formatMsg(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    informImpl(detail::formatMsg(args...));
}

} // namespace pipecache

#define PC_PANIC(...) ::pipecache::panic(__FILE__, __LINE__, __VA_ARGS__)
#define PC_FATAL(...) ::pipecache::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Always-on invariant check (not compiled out in release builds). */
#define PC_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pipecache::panic(__FILE__, __LINE__,                        \
                               "assertion failed: " #cond " ",            \
                               ##__VA_ARGS__);                            \
        }                                                                 \
    } while (0)

#endif // PIPECACHE_UTIL_LOGGING_HH
