/**
 * @file
 * Statistics containers used throughout the simulator.
 *
 * The paper reports CPI as the *weighted harmonic mean* over the
 * benchmark suite with weights equal to each benchmark's fraction of
 * total execution time; Histogram backs the e-distribution figures
 * (Figures 6 and 7) and general distribution reporting.
 */

#ifndef PIPECACHE_UTIL_STATS_HH
#define PIPECACHE_UTIL_STATS_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pipecache {

/**
 * Fixed-bucket histogram over non-negative integer samples with an
 * overflow bucket for samples >= bucketCount.
 */
class Histogram
{
  public:
    /** @param bucket_count Number of exact buckets before overflow. */
    explicit Histogram(std::size_t bucket_count);

    /** Record one sample (weight 1). */
    void sample(std::uint64_t value) { sample(value, 1); }

    /** Record a sample with a given weight. */
    void sample(std::uint64_t value, std::uint64_t weight);

    /** Total weight recorded. */
    std::uint64_t count() const { return total_; }

    /** Weight recorded in bucket b (b < bucketCount()). */
    std::uint64_t bucket(std::size_t b) const;

    /** Weight recorded in the overflow bucket. */
    std::uint64_t overflow() const { return overflow_; }

    std::size_t bucketCount() const { return buckets_.size(); }

    /** Fraction of samples exactly equal to value v. */
    double fraction(std::uint64_t v) const;

    /** Fraction of samples >= v (overflow counts as >= anything). */
    double fractionAtLeast(std::uint64_t v) const;

    /** Mean treating overflow samples as bucketCount(). */
    double mean() const;

    /** Merge another histogram (must have identical bucket count). */
    void merge(const Histogram &other);

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t weightedSum_ = 0;
};

/**
 * Weighted harmonic mean accumulator.
 *
 * For per-benchmark rates r_i (e.g. CPI) with weights w_i summing to
 * anything positive, yields sum(w) / sum(w_i / r_i).
 */
class WeightedHarmonicMean
{
  public:
    /** Add one value with the given weight. value must be > 0. */
    void add(double value, double weight);

    /** Number of values added. */
    std::size_t count() const { return n_; }

    /** The weighted harmonic mean; panics if nothing was added. */
    double value() const;

  private:
    double weightSum_ = 0.0;
    double invSum_ = 0.0;
    std::size_t n_ = 0;
};

/** Weighted arithmetic mean, for completeness in reports. */
class WeightedArithmeticMean
{
  public:
    void add(double value, double weight);
    std::size_t count() const { return n_; }
    double value() const;

  private:
    double weightSum_ = 0.0;
    double sum_ = 0.0;
    std::size_t n_ = 0;
};

/** Simple running statistics (min/max/mean) over doubles. */
class RunningStats
{
  public:
    void add(double v);
    std::size_t count() const { return n_; }
    double mean() const;
    double min() const;
    double max() const;

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Weighted harmonic mean of a span of (value, weight) pairs. */
double weightedHarmonicMean(std::span<const double> values,
                            std::span<const double> weights);

} // namespace pipecache

#endif // PIPECACHE_UTIL_STATS_HH
