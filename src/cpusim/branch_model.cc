#include "cpusim/branch_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pipecache::cpusim {

SquashOutcome
resolveSquash(const sched::BlockXlat &bx, isa::TermKind term, bool taken,
              std::uint32_t target_useful, bool target_has_cti)
{
    PC_ASSERT(bx.hasCti, "resolveSquash on a fall-through block");
    SquashOutcome out;
    const std::uint32_t s = bx.s;

    // Register-indirect CTIs: the s slots are physical noops, always
    // fetched, always wasted; the target is reached with no skip.
    if (bx.indirect) {
        out.wastedSlots = s;
        return out;
    }

    if (term == isa::TermKind::Jump || term == isa::TermKind::Call ||
        (term == isa::TermKind::CondBranch && bx.predictTaken && taken)) {
        // Predicted taken and taken: the slots held replicas of the
        // target's first instructions; execution resumes past them.
        // A replica can never be the target's own CTI, and slots the
        // target couldn't fill were padded with noops.
        const std::uint32_t replicable =
            target_has_cti ? (target_useful > 0 ? target_useful - 1 : 0)
                           : target_useful;
        out.skipNext = std::min(s, replicable);
        out.wastedSlots = s - out.skipNext;
        return out;
    }

    PC_ASSERT(term == isa::TermKind::CondBranch,
              "unexpected terminator in resolveSquash");

    if (bx.predictTaken && !taken) {
        // Squash the replicated slot instructions.
        out.wastedSlots = s;
        return out;
    }
    if (!bx.predictTaken && !taken) {
        // Slots hold the sequential code that executes anyway.
        return out;
    }
    // Predicted not-taken but taken: the s sequential instructions in
    // the slots were fetched beyond this block and squashed.
    out.extraSeqFetches = s;
    return out;
}

} // namespace pipecache::cpusim
