/**
 * @file
 * The CPI engine — our reimplementation of the paper's cacheSIM.
 *
 * Replays recorded block-level traces through a translation file (the
 * scheduled code layout for b branch delay slots), a split-L1 cache
 * hierarchy, and a branch scheme (squashing delayed branches or a
 * BTB), while measuring load-delay distances on the fly. Produces the
 * per-benchmark and aggregate CPI breakdowns every Section 3 figure
 * and table is built from.
 *
 * Cycle accounting (single-issue, blocking caches):
 *   cycles = fetched instructions            (useful + squashed/noops)
 *          + L1-I miss stalls                (every fetched address)
 *          + L1-D miss stalls                (loads and stores)
 *          + BTB mispredict/fill stalls      (BTB scheme only)
 *          + load delay stalls               (scheme-dependent)
 *   CPI    = cycles / useful instructions,
 * with "useful instructions" the paper's denominator: the instruction
 * count of the canonical zero-delay-slot code.
 */

#ifndef PIPECACHE_CPUSIM_CPI_ENGINE_HH
#define PIPECACHE_CPUSIM_CPI_ENGINE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/btb.hh"
#include "cache/hierarchy.hh"
#include "cache/stack_sim.hh"
#include "cpusim/branch_model.hh"
#include "cpusim/load_model.hh"
#include "cpusim/write_buffer.hh"
#include "sched/load_sched.hh"
#include "sched/translation.hh"
#include "trace/multiprog.hh"

namespace pipecache::obs {
class StatsRegistry;
} // namespace pipecache::obs

namespace pipecache::cpusim {

/** Pipeline/scheme parameters of one simulated design. */
struct EngineConfig
{
    /** Branch delay slots b = d_L1-I. */
    std::uint32_t branchSlots = 0;
    /** Load delay slots l = d_L1-D. */
    std::uint32_t loadSlots = 0;
    BranchScheme branchScheme = BranchScheme::Squash;
    LoadScheme loadScheme = LoadScheme::Static;
    /** BTB geometry (BranchScheme::Btb only). */
    cache::BtbConfig btb;
    /** When set, stores retire through a write buffer (write-through
     *  L1-D) instead of stalling on store misses. */
    std::optional<WriteBufferConfig> writeBuffer;
};

/** Cycle breakdown of one run (per benchmark or aggregated). */
struct CpiBreakdown
{
    Counter usefulInsts = 0;
    Counter fetches = 0;
    Counter iStallCycles = 0;
    Counter dStallCycles = 0;
    /** Squashed/noop fetches (subset of fetches). */
    Counter branchWastedFetches = 0;
    Counter btbPenaltyCycles = 0;
    Counter loadStallCycles = 0;
    Counter ctis = 0;

    /** Static-prediction outcome counts (squashing scheme only). */
    Counter predTakenCtis = 0;
    Counter predTakenCorrect = 0;
    Counter predNotTakenCtis = 0;
    Counter predNotTakenCorrect = 0;

    Counter totalCycles() const
    {
        return fetches + iStallCycles + dStallCycles + btbPenaltyCycles +
               loadStallCycles;
    }

    double cpi() const;

    /** CPI contribution of branch-delay handling. */
    double branchCpi() const;
    /** CPI contribution of load-delay stalls. */
    double loadCpi() const;
    /** CPI contribution of L1-I miss stalls. */
    double iMissCpi() const;
    /** CPI contribution of L1-D miss stalls. */
    double dMissCpi() const;
    /** Cycles per executed CTI spent on control transfer (>= 1). */
    double cyclesPerCti() const;

    void add(const CpiBreakdown &other);
};

/**
 * Observer of the replay's cache access stream, in exact access
 * order. The stream is a pure function of (workloads, schedule,
 * branch scheme/slots, predict source) — cache state never feeds
 * back into it — which is what lets one replay drive a multi-
 * geometry stack simulation (core::FactoredEvaluator).
 */
class AccessStreamSink
{
  public:
    virtual ~AccessStreamSink() = default;

    /** One instruction fetch by @p bench. */
    virtual void instFetch(std::size_t bench, Addr addr) = 0;
    /** One data reference by @p bench. */
    virtual void dataRef(std::size_t bench, Addr addr, bool store) = 0;
};

/**
 * Batched counterpart of AccessStreamSink: receives the same two
 * streams as contiguous blocks of records, in stream order. The
 * instruction and data streams are delivered independently — a
 * consumer that needs their interleaving preserved must take the
 * per-access interface instead.
 */
class BatchStreamSink
{
  public:
    virtual ~BatchStreamSink() = default;

    /** A block of instruction fetches, in fetch order. */
    virtual void instBatch(std::span<const cache::AccessRecord>) = 0;
    /** A block of data references, in reference order. */
    virtual void dataBatch(std::span<const cache::AccessRecord>) = 0;
};

/**
 * AccessStreamSink adapter that accumulates records and forwards them
 * to a BatchStreamSink in blocks of up to kCapacity, so per-access
 * virtual dispatch and consumer setup amortize across a whole block.
 * Call flush() after the replay: the engine does not know when the
 * stream ends.
 */
class BufferedStreamSink final : public AccessStreamSink
{
  public:
    static constexpr std::size_t kCapacity = 256;

    explicit BufferedStreamSink(BatchStreamSink &downstream);

    void instFetch(std::size_t bench, Addr addr) override;
    void dataRef(std::size_t bench, Addr addr, bool store) override;

    /** Deliver any partial buffers (instructions first, then data). */
    void flush();

    /** Batches delivered downstream, full and partial. */
    Counter flushes() const { return flushes_; }

  private:
    BatchStreamSink &downstream_;
    std::vector<cache::AccessRecord> iBuf_;
    std::vector<cache::AccessRecord> dBuf_;
    Counter flushes_ = 0;
};

/** One benchmark's replay inputs. */
struct BenchWorkload
{
    const isa::Program *program = nullptr;
    const sched::TranslationFile *xlat = nullptr;
    const trace::RecordedTrace *trace = nullptr;
};

/** The replay engine. */
class CpiEngine
{
  public:
    /**
     * @param config    Pipeline/scheme parameters.
     * @param hierarchy Shared cache hierarchy (mutated by the run).
     * @param workloads One entry per benchmark; translation files must
     *                  match config.branchSlots (identity/0 for BTB).
     */
    CpiEngine(const EngineConfig &config,
              cache::CacheHierarchy &hierarchy,
              std::vector<BenchWorkload> workloads);

    /** Replay a multiprogramming schedule over the workloads. */
    void run(const trace::MultiprogSchedule &schedule);

    /** Replay every workload back-to-back (no multiprogramming). */
    void runAll();

    /** Per-benchmark results (valid after run()/runAll()). */
    const CpiBreakdown &benchResult(std::size_t i) const;
    /** Per-benchmark load-delay statistics. */
    const sched::LoadDelayStats &loadStats(std::size_t i) const;

    /** Per-benchmark write-buffer statistics (write-buffer mode). */
    const WriteBufferStats *writeBufferStats(std::size_t i) const;

    /** Sum over all benchmarks (time-weighted aggregate CPI). */
    CpiBreakdown aggregate() const;

    /** The BTB (null under the squashing scheme). */
    const cache::BranchTargetBuffer *btb() const { return btb_.get(); }

    /**
     * Publish accumulated counters into @p reg under `cpusim.*`
     * (aggregate breakdown, BTB, write buffer, load-delay
     * distributions). Call once after run()/runAll().
     */
    void publishStats(obs::StatsRegistry &reg) const;

    /** Mirror every cache access into @p sink (null disables). */
    void setStreamSink(AccessStreamSink *sink) { streamSink_ = sink; }

    std::size_t numWorkloads() const { return workloads_.size(); }

  private:
    struct Context
    {
        explicit Context(const isa::Program &program)
            : tracker(program)
        {
        }

        sched::LoadUseTracker tracker;
        CpiBreakdown counts;
        /** Instructions of the next block already executed in delay
         *  slots (squashing scheme). */
        std::uint32_t skipNext = 0;

        /** Deferred BTB resolution for register-indirect CTIs. */
        bool btbPending = false;
        cache::BranchTargetBuffer::Result btbRes;
        Addr btbPc = 0;

        bool finished = false;

        /** Present only in write-buffer mode. */
        std::unique_ptr<WriteBuffer> writeBuffer;
    };

    void processRange(std::size_t bench, std::uint32_t block_begin,
                      std::uint32_t block_end);
    void processEvent(std::size_t bench, Context &ctx, std::size_t i);
    void finishContext(std::size_t bench);

    EngineConfig config_;
    cache::CacheHierarchy &hierarchy_;
    std::vector<BenchWorkload> workloads_;
    std::vector<Context> contexts_;
    std::unique_ptr<cache::BranchTargetBuffer> btb_;
    AccessStreamSink *streamSink_ = nullptr;
};

/**
 * Publish one finished replay's counters under `cpusim.*` exactly as
 * CpiEngine::publishStats does, from plain aggregates. Shared with
 * the factored evaluator so both evaluation paths emit byte-identical
 * registries.
 */
void publishReplayStats(obs::StatsRegistry &reg,
                        const CpiBreakdown &aggregate,
                        const cache::BtbStats *btb,
                        const sched::LoadDelayStats &loads,
                        const WriteBufferStats *writeBuffer);

} // namespace pipecache::cpusim

#endif // PIPECACHE_CPUSIM_CPI_ENGINE_HH
