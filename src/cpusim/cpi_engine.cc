#include "cpusim/cpi_engine.hh"

#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace pipecache::cpusim {

namespace {

double
ratio(Counter num, Counter den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

BufferedStreamSink::BufferedStreamSink(BatchStreamSink &downstream)
    : downstream_(downstream)
{
    iBuf_.reserve(kCapacity);
    dBuf_.reserve(kCapacity);
}

void
BufferedStreamSink::instFetch(std::size_t bench, Addr addr)
{
    iBuf_.push_back(
        {addr, static_cast<std::uint16_t>(bench), 0});
    if (iBuf_.size() == kCapacity) {
        downstream_.instBatch(iBuf_);
        iBuf_.clear();
        ++flushes_;
    }
}

void
BufferedStreamSink::dataRef(std::size_t bench, Addr addr, bool store)
{
    dBuf_.push_back({addr, static_cast<std::uint16_t>(bench),
                     static_cast<std::uint8_t>(store ? 1 : 0)});
    if (dBuf_.size() == kCapacity) {
        downstream_.dataBatch(dBuf_);
        dBuf_.clear();
        ++flushes_;
    }
}

void
BufferedStreamSink::flush()
{
    if (!iBuf_.empty()) {
        downstream_.instBatch(iBuf_);
        iBuf_.clear();
        ++flushes_;
    }
    if (!dBuf_.empty()) {
        downstream_.dataBatch(dBuf_);
        dBuf_.clear();
        ++flushes_;
    }
}

double
CpiBreakdown::cpi() const
{
    PC_ASSERT(usefulInsts > 0, "CPI of an empty run");
    return ratio(totalCycles(), usefulInsts);
}

double
CpiBreakdown::branchCpi() const
{
    return ratio(branchWastedFetches + btbPenaltyCycles, usefulInsts);
}

double
CpiBreakdown::loadCpi() const
{
    return ratio(loadStallCycles, usefulInsts);
}

double
CpiBreakdown::iMissCpi() const
{
    return ratio(iStallCycles, usefulInsts);
}

double
CpiBreakdown::dMissCpi() const
{
    return ratio(dStallCycles, usefulInsts);
}

double
CpiBreakdown::cyclesPerCti() const
{
    // One issue cycle for the CTI itself plus its share of the waste.
    return 1.0 + ratio(branchWastedFetches + btbPenaltyCycles, ctis);
}

void
CpiBreakdown::add(const CpiBreakdown &other)
{
    usefulInsts += other.usefulInsts;
    fetches += other.fetches;
    iStallCycles += other.iStallCycles;
    dStallCycles += other.dStallCycles;
    branchWastedFetches += other.branchWastedFetches;
    btbPenaltyCycles += other.btbPenaltyCycles;
    loadStallCycles += other.loadStallCycles;
    ctis += other.ctis;
    predTakenCtis += other.predTakenCtis;
    predTakenCorrect += other.predTakenCorrect;
    predNotTakenCtis += other.predNotTakenCtis;
    predNotTakenCorrect += other.predNotTakenCorrect;
}

CpiEngine::CpiEngine(const EngineConfig &config,
                     cache::CacheHierarchy &hierarchy,
                     std::vector<BenchWorkload> workloads)
    : config_(config), hierarchy_(hierarchy),
      workloads_(std::move(workloads))
{
    PC_ASSERT(!workloads_.empty(), "engine needs at least one workload");
    contexts_.reserve(workloads_.size());
    for (const auto &w : workloads_) {
        PC_ASSERT(w.program && w.xlat && w.trace,
                  "incomplete workload");
        const std::uint32_t expected_slots =
            config_.branchScheme == BranchScheme::Btb
                ? 0
                : config_.branchSlots;
        PC_ASSERT(w.xlat->delaySlots() == expected_slots,
                  "translation file delay slots (", w.xlat->delaySlots(),
                  ") do not match engine config (", expected_slots, ")");
        contexts_.emplace_back(*w.program);
        if (config_.writeBuffer) {
            contexts_.back().writeBuffer =
                std::make_unique<WriteBuffer>(*config_.writeBuffer);
        }
    }
    if (config_.branchScheme == BranchScheme::Btb)
        btb_ = std::make_unique<cache::BranchTargetBuffer>(config_.btb);
}

void
CpiEngine::processEvent(std::size_t bench, Context &ctx, std::size_t i)
{
    const BenchWorkload &w = workloads_[bench];
    const trace::RecordedTrace &tr = *w.trace;
    const auto &ev = tr.blocks[i];
    const sched::BlockXlat &bx = (*w.xlat)[ev.block];
    CpiBreakdown &counts = ctx.counts;

    // Deferred BTB resolution: a register-indirect CTI's actual target
    // is this block's entry.
    if (ctx.btbPending) {
        counts.btbPenaltyCycles += btb_->resolve(
            ctx.btbRes, ctx.btbPc, true, bx.entry, config_.branchSlots);
        ctx.btbPending = false;
    }

    // Instruction fetches: the scheduled block minus any prefix that
    // already ran in the previous CTI's delay slots.
    const std::uint32_t skip = ctx.skipNext;
    ctx.skipNext = 0;
    PC_ASSERT(skip <= bx.schedLen, "delay-slot skip exceeds block");
    Addr fetch_addr = bx.entry + skip * bytesPerWord;
    const std::uint32_t fetch_count = bx.schedLen - skip;
    if (streamSink_ != nullptr) [[unlikely]] {
        Addr a = fetch_addr;
        for (std::uint32_t f = 0; f < fetch_count; ++f) {
            streamSink_->instFetch(bench, a);
            a += bytesPerWord;
        }
    }
    // Accumulate the fetch-loop stalls locally: one read-modify-write
    // of the context per block instead of one per fetched word.
    Counter istall = 0;
    for (std::uint32_t f = 0; f < fetch_count; ++f) {
        istall += hierarchy_.accessInst(fetch_addr);
        fetch_addr += bytesPerWord;
    }
    counts.iStallCycles += istall;
    counts.fetches += fetch_count;
    counts.usefulInsts += bx.usefulLen;

    // Data references.
    auto [mem_begin, mem_end] = tr.memRange(i);
    if (streamSink_ != nullptr) [[unlikely]] {
        for (std::uint32_t m = mem_begin; m < mem_end; ++m) {
            const trace::MemRef &ref = tr.memRefs[m];
            streamSink_->dataRef(bench, ref.addr, ref.store != 0);
        }
    }
    if (ctx.writeBuffer) {
        for (std::uint32_t m = mem_begin; m < mem_end; ++m) {
            const trace::MemRef &ref = tr.memRefs[m];
            if (ref.store) {
                // Write-through store: L1-D updated, miss absorbed by
                // the buffer; only buffer-full back-pressure stalls
                // the CPU. The buffer reads the running cycle count,
                // so dStallCycles must stay exact per access here.
                hierarchy_.accessDataBuffered(ref.addr);
                counts.dStallCycles +=
                    ctx.writeBuffer->store(counts.totalCycles());
            } else {
                counts.dStallCycles +=
                    hierarchy_.accessData(ref.addr, false);
            }
        }
    } else {
        Counter dstall = 0;
        for (std::uint32_t m = mem_begin; m < mem_end; ++m) {
            const trace::MemRef &ref = tr.memRefs[m];
            dstall += hierarchy_.accessData(ref.addr, ref.store != 0);
        }
        counts.dStallCycles += dstall;
    }

    // Load-delay distance tracking (canonical instruction walk).
    ctx.tracker.processBlock(ev.block);

    if (!bx.hasCti)
        return;
    ++counts.ctis;

    const isa::BasicBlock &bb = w.program->block(ev.block);
    const bool taken = ev.taken != 0;

    if (config_.branchScheme == BranchScheme::Squash) {
        // Static-prediction outcome bookkeeping (direction only;
        // indirect CTIs transfer control, so their direction is
        // trivially "taken").
        if (bb.term == isa::TermKind::CondBranch && !bx.predictTaken) {
            ++counts.predNotTakenCtis;
            if (!taken)
                ++counts.predNotTakenCorrect;
        } else {
            ++counts.predTakenCtis;
            if (taken)
                ++counts.predTakenCorrect;
        }

        // Taken-path target info for the replica-skip rule.
        std::uint32_t target_useful = 0;
        bool target_has_cti = false;
        if (bb.term == isa::TermKind::CondBranch ||
            bb.term == isa::TermKind::Jump ||
            bb.term == isa::TermKind::Call) {
            const sched::BlockXlat &tx = (*w.xlat)[bb.target];
            target_useful = tx.usefulLen;
            target_has_cti = tx.hasCti != 0;
        }
        const SquashOutcome out = resolveSquash(bx, bb.term, taken,
                                                target_useful,
                                                target_has_cti);
        counts.branchWastedFetches += out.wastedSlots;
        if (out.extraSeqFetches > 0) {
            // Mispredicted not-taken CTI: squashed sequential fetches
            // beyond the block, which still probe the I-cache.
            Addr seq = (*w.xlat)[bb.fallthrough].entry;
            if (streamSink_ != nullptr) [[unlikely]] {
                Addr a = seq;
                for (std::uint32_t f = 0; f < out.extraSeqFetches;
                     ++f) {
                    streamSink_->instFetch(bench, a);
                    a += bytesPerWord;
                }
            }
            for (std::uint32_t f = 0; f < out.extraSeqFetches; ++f) {
                counts.iStallCycles += hierarchy_.accessInst(seq);
                seq += bytesPerWord;
            }
            counts.fetches += out.extraSeqFetches;
            counts.branchWastedFetches += out.extraSeqFetches;
        }
        if (taken)
            ctx.skipNext = out.skipNext;
        return;
    }

    // BTB scheme: zero-delay-slot code, stall-based accounting.
    const Addr cti_pc =
        bx.entry + (bx.usefulLen - 1) * bytesPerWord;
    const auto res = btb_->lookup(cti_pc);
    switch (bb.term) {
      case isa::TermKind::CondBranch:
      case isa::TermKind::Jump:
      case isa::TermKind::Call: {
        const Addr target = (*w.xlat)[bb.target].entry;
        counts.btbPenaltyCycles += btb_->resolve(
            res, cti_pc, taken, target, config_.branchSlots);
        break;
      }
      case isa::TermKind::Return:
      case isa::TermKind::Switch:
        // Actual target is wherever the trace goes next.
        ctx.btbPending = true;
        ctx.btbRes = res;
        ctx.btbPc = cti_pc;
        break;
      default:
        PC_PANIC("CTI block with fall-through terminator");
    }
}

void
CpiEngine::processRange(std::size_t bench, std::uint32_t block_begin,
                        std::uint32_t block_end)
{
    Context &ctx = contexts_[bench];
    for (std::uint32_t i = block_begin; i < block_end; ++i)
        processEvent(bench, ctx, i);
}

void
CpiEngine::finishContext(std::size_t bench)
{
    Context &ctx = contexts_[bench];
    if (ctx.finished)
        return;
    ctx.finished = true;

    if (ctx.btbPending) {
        // Trace ended right after an indirect CTI; assume the stored
        // target was right (end-of-trace noise).
        ctx.counts.btbPenaltyCycles += btb_->resolve(
            ctx.btbRes, ctx.btbPc, true, ctx.btbRes.target,
            config_.branchSlots);
        ctx.btbPending = false;
    }

    // Replicas fetched for a final taken CTI whose target never
    // executed (end of trace) are wasted fetches.
    ctx.counts.branchWastedFetches += ctx.skipNext;
    ctx.skipNext = 0;

    ctx.tracker.finish();
    ctx.counts.loadStallCycles = loadStallCycles(
        ctx.tracker.stats(), config_.loadSlots, config_.loadScheme);
}

void
CpiEngine::run(const trace::MultiprogSchedule &schedule)
{
    for (const auto &slice : schedule.slices())
        processRange(slice.bench, slice.blockBegin, slice.blockEnd);
    for (std::size_t b = 0; b < workloads_.size(); ++b)
        finishContext(b);
}

void
CpiEngine::runAll()
{
    for (std::size_t b = 0; b < workloads_.size(); ++b) {
        processRange(b, 0, static_cast<std::uint32_t>(
                               workloads_[b].trace->blocks.size()));
        finishContext(b);
    }
}

const CpiBreakdown &
CpiEngine::benchResult(std::size_t i) const
{
    PC_ASSERT(i < contexts_.size(), "benchmark index out of range");
    PC_ASSERT(contexts_[i].finished, "benchmark ", i, " not yet run");
    return contexts_[i].counts;
}

const sched::LoadDelayStats &
CpiEngine::loadStats(std::size_t i) const
{
    PC_ASSERT(i < contexts_.size(), "benchmark index out of range");
    return contexts_[i].tracker.stats();
}

const WriteBufferStats *
CpiEngine::writeBufferStats(std::size_t i) const
{
    PC_ASSERT(i < contexts_.size(), "benchmark index out of range");
    return contexts_[i].writeBuffer ? &contexts_[i].writeBuffer->stats()
                                    : nullptr;
}

CpiBreakdown
CpiEngine::aggregate() const
{
    CpiBreakdown total;
    for (const auto &ctx : contexts_) {
        PC_ASSERT(ctx.finished, "aggregate before all benchmarks ran");
        total.add(ctx.counts);
    }
    return total;
}

void
CpiEngine::publishStats(obs::StatsRegistry &reg) const
{
    const CpiBreakdown agg = aggregate();

    sched::LoadDelayStats loads;
    WriteBufferStats wbuf;
    bool have_wbuf = false;
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
        loads.merge(contexts_[i].tracker.stats());
        if (const WriteBufferStats *s = writeBufferStats(i)) {
            have_wbuf = true;
            wbuf.stores += s->stores;
            wbuf.stallCycles += s->stallCycles;
            wbuf.fullEvents += s->fullEvents;
        }
    }
    publishReplayStats(reg, agg, btb_ ? &btb_->stats() : nullptr,
                       loads, have_wbuf ? &wbuf : nullptr);
}

void
publishReplayStats(obs::StatsRegistry &reg, const CpiBreakdown &agg,
                   const cache::BtbStats *btb,
                   const sched::LoadDelayStats &loads,
                   const WriteBufferStats *writeBuffer)
{
    using obs::StatKind;
    reg.addCounter("cpusim.insts.useful", "useful instructions retired",
                   StatKind::Deterministic, agg.usefulInsts);
    reg.addCounter("cpusim.fetches", "instruction fetches",
                   StatKind::Deterministic, agg.fetches);
    reg.addCounter("cpusim.branch.ctis", "control-transfer instructions",
                   StatKind::Deterministic, agg.ctis);
    reg.addCounter("cpusim.branch.wasted_fetches",
                   "squashed/noop delay-slot fetches",
                   StatKind::Deterministic, agg.branchWastedFetches);
    reg.addCounter("cpusim.branch.btb_penalty_cycles",
                   "BTB mispredict/fill stall cycles",
                   StatKind::Deterministic, agg.btbPenaltyCycles);
    reg.addCounter("cpusim.branch.pred_taken",
                   "CTIs statically predicted taken",
                   StatKind::Deterministic, agg.predTakenCtis);
    reg.addCounter("cpusim.branch.pred_taken_correct",
                   "correct taken predictions",
                   StatKind::Deterministic, agg.predTakenCorrect);
    reg.addCounter("cpusim.branch.pred_not_taken",
                   "CTIs statically predicted not taken",
                   StatKind::Deterministic, agg.predNotTakenCtis);
    reg.addCounter("cpusim.branch.pred_not_taken_correct",
                   "correct not-taken predictions",
                   StatKind::Deterministic, agg.predNotTakenCorrect);
    reg.addCounter("cpusim.load.stall_cycles", "load-delay stall cycles",
                   StatKind::Deterministic, agg.loadStallCycles);

    if (btb) {
        const cache::BtbStats &b = *btb;
        reg.addCounter("cpusim.btb.lookups", "BTB lookups",
                       StatKind::Deterministic, b.lookups);
        reg.addCounter("cpusim.btb.hits", "BTB hits",
                       StatKind::Deterministic, b.hits);
        reg.addCounter("cpusim.btb.mispredicts",
                       "BTB mispredictions (any cause)",
                       StatKind::Deterministic, b.mispredicts());
        reg.addCounter("cpusim.btb.allocations", "BTB entry allocations",
                       StatKind::Deterministic, b.allocations);
    }

    reg.addCounter("cpusim.load.consumed", "loads whose result was read",
                   StatKind::Deterministic, loads.consumedLoads);
    reg.addCounter("cpusim.load.dead", "loads whose result was never read",
                   StatKind::Deterministic, loads.deadLoads);
    reg.mergeHistogram("cpusim.load.e_static",
                       "static (in-block) load independence distance",
                       StatKind::Deterministic, loads.eStatic);
    reg.mergeHistogram("cpusim.load.e_dynamic",
                       "dynamic load independence distance",
                       StatKind::Deterministic, loads.eDynamic);
    if (writeBuffer) {
        reg.addCounter("cpusim.wbuf.stores", "stores retired via buffer",
                       StatKind::Deterministic, writeBuffer->stores);
        reg.addCounter("cpusim.wbuf.stall_cycles",
                       "buffer-full stall cycles",
                       StatKind::Deterministic,
                       writeBuffer->stallCycles);
        reg.addCounter("cpusim.wbuf.full_events", "buffer-full events",
                       StatKind::Deterministic,
                       writeBuffer->fullEvents);
    }
}

} // namespace pipecache::cpusim
