/**
 * @file
 * Cycle-accurate in-order pipeline simulator (cross-validation
 * substrate).
 *
 * The paper's cacheSIM — like our CpiEngine — accounts CPI
 * *additively*: base issue cycles + miss stalls + branch waste + load
 * stalls. That is exact only if stall sources never overlap. This
 * module provides the check: a scoreboarded, single-issue, in-order
 * pipeline in the shape of the paper's Figure 1 (circular fetch
 * pipeline of depth b, execute, memory pipeline of depth l) that
 * advances a real cycle counter per instruction:
 *
 *  - instructions issue in order, one per cycle at best;
 *  - an instruction waits for its source registers; a load's result
 *    becomes available l cycles after its memory access (the load
 *    delay), so a too-close consumer stalls — hardware interlocks on
 *    the *unscheduled* code, which lands between the paper's static
 *    (basic-block-scheduled) and dynamic (fully reordered) bounds;
 *  - I-cache misses stall fetch, D-cache misses stall the memory
 *    stage, both for the flat penalty;
 *  - branch delay slots are fetched and squashed per the same
 *    translation-file rules as CpiEngine.
 *
 * bench_abl_additive quantifies the additive model's error against
 * this machine.
 */

#ifndef PIPECACHE_CPUSIM_PIPELINE_SIM_HH
#define PIPECACHE_CPUSIM_PIPELINE_SIM_HH

#include <array>
#include <cstdint>

#include "cache/hierarchy.hh"
#include "cpusim/branch_model.hh"
#include "isa/program.hh"
#include "sched/translation.hh"
#include "trace/executor.hh"

namespace pipecache::cpusim {

/** Pipeline parameters. */
struct PipelineConfig
{
    /** Branch delay slots b = fetch (L1-I) pipeline depth. */
    std::uint32_t branchSlots = 0;
    /** Load delay l = L1-D pipeline depth: a load's value is usable
     *  by the instruction issuing l + 1 cycles later. */
    std::uint32_t loadSlots = 0;
};

/** Cycle-level result. */
struct PipelineStats
{
    Counter cycles = 0;
    Counter usefulInsts = 0;
    Counter issueSlots = 0;       //!< fetched instructions (incl. waste)
    Counter loadInterlockCycles = 0;
    Counter iMissCycles = 0;
    Counter dMissCycles = 0;
    Counter branchWasteSlots = 0;

    double cpi() const
    {
        return usefulInsts == 0
                   ? 0.0
                   : static_cast<double>(cycles) /
                         static_cast<double>(usefulInsts);
    }
};

/**
 * The scoreboarded pipeline. Drives one benchmark workload (program +
 * translation + recorded trace) against a cache hierarchy.
 */
class PipelineSim
{
  public:
    PipelineSim(const PipelineConfig &config,
                cache::CacheHierarchy &hierarchy,
                const isa::Program &program,
                const sched::TranslationFile &xlat,
                const trace::RecordedTrace &trace);

    /** Run the whole trace; returns the final statistics. */
    const PipelineStats &run();

    const PipelineStats &stats() const { return stats_; }

  private:
    void issueBlock(std::size_t event_index);
    /** Advance time for one issued instruction; returns issue cycle. */
    std::uint64_t issueOne(const isa::Instruction &inst, Addr fetch_pc,
                           const trace::MemRef *mem);
    /** Charge a wasted (squashed/noop) fetch slot at address pc. */
    void wasteSlot(Addr pc);

    PipelineConfig config_;
    cache::CacheHierarchy &hierarchy_;
    const isa::Program &program_;
    const sched::TranslationFile &xlat_;
    const trace::RecordedTrace &trace_;

    PipelineStats stats_;

    /** Cycle at which each register's value becomes usable. */
    std::array<std::uint64_t, isa::reg::numRegs> regReadyAt_{};
    /** Next cycle the issue stage is free. */
    std::uint64_t nextIssue_ = 0;
    /** Delay-slot skip into the next block (squash scheme). */
    std::uint32_t skipNext_ = 0;
};

} // namespace pipecache::cpusim

#endif // PIPECACHE_CPUSIM_PIPELINE_SIM_HH
