/**
 * @file
 * Write buffer for a write-through L1-D (extension).
 *
 * The paper's CPI accounting charges store misses like load misses
 * (write-back, write-allocate). A classic 1992 alternative is a
 * write-through L1-D with a small write buffer: stores retire into
 * the buffer and drain to the next level at a fixed rate; the CPU
 * only stalls when the buffer is full. This model makes that design
 * choice measurable (bench_abl_writebuf).
 */

#ifndef PIPECACHE_CPUSIM_WRITE_BUFFER_HH
#define PIPECACHE_CPUSIM_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>

#include "util/units.hh"

namespace pipecache::cpusim {

/** Write-buffer geometry and drain speed. */
struct WriteBufferConfig
{
    std::uint32_t entries = 4;
    /** Cycles to retire one buffered store to the next level. */
    std::uint32_t drainCycles = 3;
};

/** Buffer statistics. */
struct WriteBufferStats
{
    Counter stores = 0;
    Counter stallCycles = 0;
    Counter fullEvents = 0;
};

/**
 * Timestamp-based queue model: entries drain one at a time, each
 * taking drainCycles, starting when it reaches the head.
 */
class WriteBuffer
{
  public:
    explicit WriteBuffer(const WriteBufferConfig &config);

    /**
     * Issue a store at absolute cycle @p now; returns the stall
     * cycles (non-zero only when the buffer is full).
     */
    std::uint32_t store(std::uint64_t now);

    /** Entries still draining at cycle @p now. */
    std::uint32_t occupancy(std::uint64_t now) const;

    const WriteBufferStats &stats() const { return stats_; }
    const WriteBufferConfig &config() const { return config_; }

  private:
    WriteBufferConfig config_;
    WriteBufferStats stats_;
    /** Completion times of in-flight stores (ascending). */
    std::deque<std::uint64_t> completions_;
    std::uint64_t lastCompletion_ = 0;
};

} // namespace pipecache::cpusim

#endif // PIPECACHE_CPUSIM_WRITE_BUFFER_HH
