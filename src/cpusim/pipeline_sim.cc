#include "cpusim/pipeline_sim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pipecache::cpusim {

PipelineSim::PipelineSim(const PipelineConfig &config,
                         cache::CacheHierarchy &hierarchy,
                         const isa::Program &program,
                         const sched::TranslationFile &xlat,
                         const trace::RecordedTrace &trace)
    : config_(config), hierarchy_(hierarchy), program_(program),
      xlat_(xlat), trace_(trace)
{
    PC_ASSERT(xlat_.delaySlots() == config_.branchSlots,
              "translation file does not match pipeline depth");
    regReadyAt_.fill(0);
}

void
PipelineSim::wasteSlot(Addr pc)
{
    const std::uint32_t stall = hierarchy_.accessInst(pc);
    stats_.iMissCycles += stall;
    nextIssue_ += 1 + stall;
    ++stats_.branchWasteSlots;
    ++stats_.issueSlots;
}

std::uint64_t
PipelineSim::issueOne(const isa::Instruction &inst, Addr fetch_pc,
                      const trace::MemRef *mem)
{
    std::uint64_t t = nextIssue_;

    // Fetch: an I-miss stalls the front end.
    if (fetch_pc != 0) {
        const std::uint32_t stall = hierarchy_.accessInst(fetch_pc);
        stats_.iMissCycles += stall;
        t += stall;
    }

    // Register interlocks: wait for sources (the hardware equivalent
    // of unfilled load delay slots).
    const std::uint64_t after_fetch = t;
    const auto srcs = inst.srcRegs();
    for (const isa::Reg src : srcs) {
        if (src != isa::reg::zero)
            t = std::max(t, regReadyAt_[src]);
    }
    stats_.loadInterlockCycles += t - after_fetch;

    // Memory stage: a D-miss blocks the (blocking, 1992) pipeline.
    std::uint32_t d_stall = 0;
    if (mem != nullptr) {
        d_stall = hierarchy_.accessData(mem->addr, mem->store != 0);
        stats_.dMissCycles += d_stall;
    }

    // Destination availability: ALU results forward to the next
    // cycle; a load's value appears loadSlots cycles later still.
    const isa::Reg dest = inst.destReg();
    if (dest != isa::reg::zero) {
        const std::uint64_t extra =
            isLoad(inst.op) ? config_.loadSlots : 0;
        regReadyAt_[dest] = t + d_stall + 1 + extra;
    }

    nextIssue_ = t + d_stall + 1;
    ++stats_.issueSlots;
    ++stats_.usefulInsts;
    return t;
}

void
PipelineSim::issueBlock(std::size_t event_index)
{
    const auto &ev = trace_.blocks[event_index];
    const isa::BasicBlock &bb = program_.block(ev.block);
    const sched::BlockXlat &bx = xlat_[ev.block];

    const std::uint32_t skip = skipNext_;
    skipNext_ = 0;

    auto [mem_begin, mem_end] = trace_.memRange(event_index);
    std::uint32_t mem = mem_begin;

    for (std::uint32_t pos = 0; pos < bx.usefulLen; ++pos) {
        const isa::Instruction &inst = bb.insts[pos];
        const trace::MemRef *ref = nullptr;
        if (mem < mem_end && trace_.memRefs[mem].pos == pos)
            ref = &trace_.memRefs[mem++];
        // Instructions executed in the predecessor's delay slots were
        // fetched there (as replicas at the predecessor's addresses):
        // no fetch probe here, but they still issue in program order.
        const Addr pc = pos >= skip
                            ? bx.entry + pos * bytesPerWord
                            : 0;
        issueOne(inst, pc, ref);
    }

    if (!bx.hasCti)
        return;

    const bool taken = ev.taken != 0;
    std::uint32_t target_useful = 0;
    bool target_has_cti = false;
    if (bb.term == isa::TermKind::CondBranch ||
        bb.term == isa::TermKind::Jump ||
        bb.term == isa::TermKind::Call) {
        const sched::BlockXlat &tx = xlat_[bb.target];
        target_useful = tx.usefulLen;
        target_has_cti = tx.hasCti != 0;
    }
    const SquashOutcome out =
        resolveSquash(bx, bb.term, taken, target_useful,
                      target_has_cti);

    // Appended filler fetches (replicas/noops after the CTI). The
    // replicas that become the target's first instructions are probed
    // here but issue inside the target block; the rest are wasted
    // issue slots.
    const std::uint32_t appended = bx.schedLen - bx.usefulLen;
    for (std::uint32_t k = 0; k < appended; ++k) {
        const Addr pc =
            bx.entry + (bx.usefulLen + k) * bytesPerWord;
        if (taken && k < out.skipNext) {
            // Replica that will be counted as a useful issue in the
            // target block; only the fetch happens here.
            const std::uint32_t stall = hierarchy_.accessInst(pc);
            stats_.iMissCycles += stall;
            nextIssue_ += stall;
        } else {
            wasteSlot(pc);
        }
    }

    // Mispredicted not-taken CTI: sequential fetches squashed.
    if (out.extraSeqFetches > 0) {
        Addr seq = xlat_[bb.fallthrough].entry;
        for (std::uint32_t f = 0; f < out.extraSeqFetches; ++f) {
            wasteSlot(seq);
            seq += bytesPerWord;
        }
    }

    if (taken)
        skipNext_ = out.skipNext;
}

const PipelineStats &
PipelineSim::run()
{
    for (std::size_t i = 0; i < trace_.blocks.size(); ++i)
        issueBlock(i);
    stats_.cycles = nextIssue_;
    return stats_;
}

} // namespace pipecache::cpusim
