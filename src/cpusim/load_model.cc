#include "cpusim/load_model.hh"

namespace pipecache::cpusim {

Counter
loadStallCycles(const sched::LoadDelayStats &stats, std::uint32_t l,
                LoadScheme scheme)
{
    if (l == 0)
        return 0;
    switch (scheme) {
      case LoadScheme::Static:
        return stats.totalDelayCycles(l, false);
      case LoadScheme::Dynamic:
        return stats.totalDelayCycles(l, true);
      case LoadScheme::None:
        return stats.totalLoads() * l;
    }
    return 0;
}

} // namespace pipecache::cpusim
