#include "cpusim/write_buffer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pipecache::cpusim {

WriteBuffer::WriteBuffer(const WriteBufferConfig &config)
    : config_(config)
{
    PC_ASSERT(config_.entries >= 1, "write buffer needs an entry");
    PC_ASSERT(config_.drainCycles >= 1, "drain must take a cycle");
}

std::uint32_t
WriteBuffer::store(std::uint64_t now)
{
    ++stats_.stores;

    // Retire everything that has drained by 'now'.
    while (!completions_.empty() && completions_.front() <= now)
        completions_.pop_front();

    std::uint32_t stall = 0;
    if (completions_.size() >= config_.entries) {
        // Full: wait for the head entry to drain.
        ++stats_.fullEvents;
        stall = static_cast<std::uint32_t>(completions_.front() - now);
        stats_.stallCycles += stall;
        now = completions_.front();
        completions_.pop_front();
    }

    // Drains are serialized: this store starts draining when the one
    // before it finishes (or immediately if the port is idle).
    lastCompletion_ =
        std::max(lastCompletion_, now) + config_.drainCycles;
    completions_.push_back(lastCompletion_);
    return stall;
}

std::uint32_t
WriteBuffer::occupancy(std::uint64_t now) const
{
    std::uint32_t n = 0;
    for (std::uint64_t c : completions_)
        n += c > now;
    return n;
}

} // namespace pipecache::cpusim
