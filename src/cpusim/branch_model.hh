/**
 * @file
 * Branch-scheme resolution logic, factored out of the CPI engine so it
 * is unit-testable as pure functions.
 *
 * The squashing scheme follows the paper's translation-file replay
 * rules exactly (see sched/translation.hh); the BTB scheme wraps
 * cache::BranchTargetBuffer's penalty contract.
 */

#ifndef PIPECACHE_CPUSIM_BRANCH_MODEL_HH
#define PIPECACHE_CPUSIM_BRANCH_MODEL_HH

#include <cstdint>

#include "isa/basic_block.hh"
#include "sched/translation.hh"

namespace pipecache::cpusim {

/** How branch delays are handled. */
enum class BranchScheme : std::uint8_t
{
    /** Delayed branches with optional squashing + static prediction. */
    Squash,
    /** Branch-target buffer on zero-delay-slot code. */
    Btb,
};

/** Resolution of one executed CTI under the squashing scheme. */
struct SquashOutcome
{
    /**
     * Slot fetches within this block's scheduled code that end up
     * squashed or were noops (wasted issue cycles already present in
     * the fetch stream).
     */
    std::uint32_t wastedSlots = 0;
    /**
     * Extra sequential fetches made beyond the block (mispredicted
     * not-taken CTI): fetched from the fall-through entry, squashed.
     */
    std::uint32_t extraSeqFetches = 0;
    /**
     * Instructions of the *actual successor* block already executed in
     * this CTI's delay slots (the paper's "add s to the target
     * address").
     */
    std::uint32_t skipNext = 0;
};

/**
 * Resolve one executed CTI.
 *
 * @param bx            Translation entry of the executing block.
 * @param term          The block's terminator kind.
 * @param taken         Actual direction (true for non-conditional).
 * @param target_useful Useful length of the taken-path target block.
 * @param target_has_cti Whether that target block ends in a CTI (its
 *                      CTI can never sit in a delay slot).
 */
SquashOutcome resolveSquash(const sched::BlockXlat &bx,
                            isa::TermKind term, bool taken,
                            std::uint32_t target_useful,
                            bool target_has_cti);

} // namespace pipecache::cpusim

#endif // PIPECACHE_CPUSIM_BRANCH_MODEL_HH
