/**
 * @file
 * Load-delay schemes (Section 3.2 of the paper).
 *
 * Static: compile-time scheduling bounded by basic blocks — the
 * configuration the paper adopts for its final results. Dynamic:
 * out-of-order load issue limited only by true dependences (the
 * paper's upper bound, which costs cycle time the paper separately
 * budgets at ~10%). Both reduce to expected shortfalls over the e
 * distributions measured by sched::LoadUseTracker.
 */

#ifndef PIPECACHE_CPUSIM_LOAD_MODEL_HH
#define PIPECACHE_CPUSIM_LOAD_MODEL_HH

#include <cstdint>

#include "sched/load_sched.hh"

namespace pipecache::cpusim {

/** How load delay slots are filled. */
enum class LoadScheme : std::uint8_t
{
    /** Compile-time scheduling within basic blocks. */
    Static,
    /** Dynamic (out-of-order) scheduling, unbounded by blocks. */
    Dynamic,
    /** No scheduling at all: every load stalls the full l cycles. */
    None,
};

/**
 * Total load-delay stall cycles for @p l delay cycles under the given
 * scheme, from a workload's measured e distributions.
 */
Counter loadStallCycles(const sched::LoadDelayStats &stats,
                        std::uint32_t l, LoadScheme scheme);

} // namespace pipecache::cpusim

#endif // PIPECACHE_CPUSIM_LOAD_MODEL_HH
