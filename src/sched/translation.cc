#include "sched/translation.hh"

#include "util/logging.hh"

namespace pipecache::sched {

std::uint64_t
TranslationFile::scheduledStaticInsts() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks_)
        n += b.schedLen;
    return n;
}

std::uint64_t
TranslationFile::usefulStaticInsts() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks_)
        n += b.usefulLen;
    return n;
}

double
TranslationFile::codeExpansion() const
{
    const std::uint64_t useful = usefulStaticInsts();
    PC_ASSERT(useful > 0, "code expansion of an empty translation");
    return static_cast<double>(scheduledStaticInsts()) /
               static_cast<double>(useful) -
           1.0;
}

ScheduleStats
summarize(const TranslationFile &xlat)
{
    ScheduleStats stats;
    for (std::size_t i = 0; i < xlat.numBlocks(); ++i) {
        const BlockXlat &b = xlat[static_cast<isa::BlockId>(i)];
        if (!b.hasCti)
            continue;
        ++stats.ctis;
        if (b.predictTaken)
            ++stats.predictedTaken;
        if (b.indirect)
            ++stats.indirect;
        if (xlat.delaySlots() > 0 && b.r >= 1)
            ++stats.firstSlotFromBefore;
        stats.slotsFromBefore += b.r;
        stats.slotsFromElsewhere += b.s;
    }
    return stats;
}

} // namespace pipecache::sched
