/**
 * @file
 * Basic-block list scheduler for load delay slots.
 *
 * The paper (and sched/load_sched) models the *potential* of static
 * scheduling analytically through the distance e = c + d. This module
 * closes the loop by actually performing the code motion: a critical-
 * path list scheduler reorders each basic block's instructions under
 * the paper's assumptions (true dependences only, perfect memory
 * disambiguation, the CTI pinned at the block end) with load-use
 * latency l + 1, and a trace-level evaluator replays the scheduled
 * code with a register scoreboard that carries load latencies across
 * block boundaries.
 *
 * The comparison it enables:
 *   analytic static  (load_sched, e-distribution)   — the paper's model
 *   list-scheduled   (this module)                  — real code motion
 *   unscheduled      (pipeline_sim interlocks)      — no motion at all
 */

#ifndef PIPECACHE_SCHED_LIST_SCHED_HH
#define PIPECACHE_SCHED_LIST_SCHED_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "trace/executor.hh"
#include "util/units.hh"

namespace pipecache::sched {

/** One block's scheduled order. */
struct ScheduledBlock
{
    /** Canonical instruction indices in issue order (CTI last). */
    std::vector<std::uint16_t> order;
    /** Stall cycles a lone execution of this block would incur. */
    std::uint32_t localStalls = 0;
};

/**
 * List-schedule one block for @p load_slots load delay cycles.
 * Dependence edges: RAW/WAR/WAW on registers, store-store order; a
 * load may cross stores (perfect disambiguation); the terminating CTI
 * cannot move. Priority = longest latency path to the block exit.
 */
ScheduledBlock listScheduleBlock(const isa::BasicBlock &bb,
                                 std::uint32_t load_slots);

/** Trace-level evaluation results. */
struct ListSchedStats
{
    Counter insts = 0;
    Counter stallCycles = 0;
    Counter loads = 0;

    double stallCpi() const
    {
        return insts == 0 ? 0.0
                          : static_cast<double>(stallCycles) /
                                static_cast<double>(insts);
    }
};

/**
 * Replay a recorded trace over the list-scheduled code with a
 * register scoreboard (load results ready l cycles after issue,
 * carried across block boundaries) and report the load stall cycles
 * the scheduled code actually suffers.
 */
ListSchedStats evaluateListScheduling(const isa::Program &program,
                                      const trace::RecordedTrace &trace,
                                      std::uint32_t load_slots);

} // namespace pipecache::sched

#endif // PIPECACHE_SCHED_LIST_SCHED_HH
