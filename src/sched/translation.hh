/**
 * @file
 * Translation files (Section 3.1 of the paper).
 *
 * A translation file maps the canonical zero-delay-slot program onto
 * the code layout of an architecture with b branch delay slots and
 * optional squashing. Per basic block it records the scheduled entry
 * address and length, and per CTI the static prediction, r (delay
 * slots filled from before the CTI — reordered originals, no code
 * growth) and s = b - r (slots filled with replicated target
 * instructions, sequential-path instructions, or noops — the sources
 * of code expansion and squash waste).
 *
 * Replay of an instruction-fetch stream through a translation file is
 * implemented in cpusim/; the rules are the paper's:
 *
 *  - predicted taken, taken:     next = target entry + 4*s (the first
 *    s target instructions already ran in the delay slots);
 *  - predicted taken, not taken: the s slot fetches are squashed;
 *  - predicted not-taken, not taken: slots hold the sequential code,
 *    nothing special happens;
 *  - predicted not-taken, taken: s extra sequential fetches are
 *    squashed before control reaches the target;
 *  - register-indirect: s noops are fetched and always wasted.
 */

#ifndef PIPECACHE_SCHED_TRANSLATION_HH
#define PIPECACHE_SCHED_TRANSLATION_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sched/static_predict.hh"
#include "util/units.hh"

namespace pipecache::sched {

/** Per-block entry of a translation file. */
struct BlockXlat
{
    /** Scheduled entry address of the block. */
    Addr entry = 0;
    /** Scheduled length in instructions (includes appended fillers). */
    std::uint32_t schedLen = 0;
    /** Original (useful) length in instructions. */
    std::uint32_t usefulLen = 0;

    /** True if the block ends in a CTI. */
    std::uint8_t hasCti = 0;
    /** Static prediction flag (meaningless without a CTI). */
    std::uint8_t predictTaken = 0;
    /** Register-indirect CTI (noop-filled slots). */
    std::uint8_t indirect = 0;
    /** Delay slots filled from before the CTI. */
    std::uint8_t r = 0;
    /** Delay slots filled from the target/sequential path or noops. */
    std::uint8_t s = 0;
};

/** Translation file for one program at one delay-slot count. */
class TranslationFile
{
  public:
    TranslationFile(std::uint32_t delay_slots, std::size_t num_blocks)
        : delaySlots_(delay_slots), blocks_(num_blocks)
    {
    }

    std::uint32_t delaySlots() const { return delaySlots_; }

    BlockXlat &operator[](isa::BlockId id) { return blocks_[id]; }
    const BlockXlat &operator[](isa::BlockId id) const
    {
        return blocks_[id];
    }

    std::size_t numBlocks() const { return blocks_.size(); }

    /** Static instruction count of the scheduled layout. */
    std::uint64_t scheduledStaticInsts() const;

    /** Static instruction count of the canonical layout. */
    std::uint64_t usefulStaticInsts() const;

    /**
     * Fractional code-size increase over the zero-delay-slot layout
     * (the quantity of the paper's Table 2).
     */
    double codeExpansion() const;

  private:
    std::uint32_t delaySlots_;
    std::vector<BlockXlat> blocks_;
};

/** Delay-slot scheduling summary statistics (calibration targets). */
struct ScheduleStats
{
    std::uint64_t ctis = 0;
    std::uint64_t predictedTaken = 0;
    std::uint64_t indirect = 0;
    /** CTIs whose first delay slot was filled from before (r >= 1). */
    std::uint64_t firstSlotFromBefore = 0;
    /** Sum over CTIs of r (slots filled from before). */
    std::uint64_t slotsFromBefore = 0;
    /** Sum over CTIs of s. */
    std::uint64_t slotsFromElsewhere = 0;
};

/** Gather schedule statistics from a translation file. */
ScheduleStats summarize(const TranslationFile &xlat);

} // namespace pipecache::sched

#endif // PIPECACHE_SCHED_TRANSLATION_HH
