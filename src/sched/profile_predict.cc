#include "sched/profile_predict.hh"

#include <algorithm>

#include "isa/dependence.hh"
#include "util/logging.hh"

namespace pipecache::sched {

Prediction
BranchProfileData::predict(const isa::Program &program,
                           isa::BlockId id) const
{
    PC_ASSERT(id < taken_.size(), "block id out of profile range");
    const std::uint64_t t = taken_[id];
    const std::uint64_t n = notTaken_[id];
    if (t == 0 && n == 0)
        return predictStatic(program.block(id), id); // untrained
    return t >= n ? Prediction::Taken : Prediction::NotTaken;
}

double
BranchProfileData::selfAccuracy() const
{
    std::uint64_t right = 0;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < taken_.size(); ++b) {
        right += std::max(taken_[b], notTaken_[b]);
        total += taken_[b] + notTaken_[b];
    }
    return total == 0 ? 0.0
                      : static_cast<double>(right) /
                            static_cast<double>(total);
}

BranchProfileData
collectBranchProfile(const isa::Program &program,
                     const trace::RecordedTrace &trace)
{
    BranchProfileData profile(program.numBlocks());
    for (const auto &ev : trace.blocks) {
        if (program.block(ev.block).term == isa::TermKind::CondBranch)
            profile.record(ev.block, ev.taken != 0);
    }
    return profile;
}

TranslationFile
scheduleBranchDelaysProfiled(const isa::Program &program,
                             std::uint32_t delay_slots,
                             const BranchProfileData &profile)
{
    PC_ASSERT(profile.numBlocks() == program.numBlocks(),
              "profile does not match program");

    // Same procedure as scheduleBranchDelays, with the prediction
    // source swapped (step 3 of the paper's procedure).
    TranslationFile xlat(delay_slots, program.numBlocks());

    for (isa::BlockId id = 0; id < program.numBlocks(); ++id) {
        const isa::BasicBlock &bb = program.block(id);
        BlockXlat &bx = xlat[id];
        bx.usefulLen = static_cast<std::uint32_t>(bb.size());
        bx.schedLen = bx.usefulLen;

        if (!bb.hasCti())
            continue;
        bx.hasCti = 1;

        const Prediction pred =
            bb.term == isa::TermKind::CondBranch
                ? profile.predict(program, id)
                : predictStatic(bb, id);
        bx.predictTaken = pred == Prediction::Taken ? 1 : 0;
        bx.indirect = isIndirectJump(bb.cti().op) ? 1 : 0;

        const std::size_t hoist = isa::ctiHoistDistance(bb);
        bx.r = static_cast<std::uint8_t>(
            std::min<std::size_t>(hoist, delay_slots));
        bx.s = static_cast<std::uint8_t>(delay_slots - bx.r);

        if (bx.predictTaken || bx.indirect)
            bx.schedLen += bx.s;
    }

    Addr addr = program.base();
    for (isa::BlockId id = 0; id < program.numBlocks(); ++id) {
        xlat[id].entry = addr;
        addr += static_cast<Addr>(xlat[id].schedLen * bytesPerWord);
    }
    return xlat;
}

} // namespace pipecache::sched
