/**
 * @file
 * The branch delay-slot post-processor (the paper's object-code
 * post-processor, Section 3.1), operating on our IR instead of MIPS
 * object code. For each CTI it:
 *
 *  1. determines r, the number of delay slots fillable by hoisting the
 *     CTI over preceding independent instructions (dependence-limited,
 *     capped at b);
 *  2. sets s = b - r, the slots needing target-path replicas
 *     (predicted-taken CTIs: code growth of s), sequential-path
 *     instructions (predicted not-taken: no growth, the next block's
 *     code occupies the slots), or noops (register-indirect CTIs:
 *     growth of s);
 *  3. attaches the BTFNT static prediction;
 *  4. lays out the scheduled code and records everything in a
 *     TranslationFile.
 */

#ifndef PIPECACHE_SCHED_BRANCH_SCHED_HH
#define PIPECACHE_SCHED_BRANCH_SCHED_HH

#include "isa/program.hh"
#include "sched/translation.hh"

namespace pipecache::sched {

/**
 * Schedule @p program for an architecture with @p delay_slots branch
 * delay slots with optional squashing; 0 yields the identity layout
 * used by the BTB experiments.
 */
TranslationFile scheduleBranchDelays(const isa::Program &program,
                                     std::uint32_t delay_slots);

} // namespace pipecache::sched

#endif // PIPECACHE_SCHED_BRANCH_SCHED_HH
