#include "sched/static_predict.hh"

#include "util/logging.hh"

namespace pipecache::sched {

bool
isBackwardBranch(const isa::BasicBlock &bb, isa::BlockId id)
{
    PC_ASSERT(bb.term == isa::TermKind::CondBranch,
              "isBackwardBranch on non-branch block");
    return bb.target <= id;
}

Prediction
predictStatic(const isa::BasicBlock &bb, isa::BlockId id)
{
    switch (bb.term) {
      case isa::TermKind::CondBranch:
        return isBackwardBranch(bb, id) ? Prediction::Taken
                                        : Prediction::NotTaken;
      case isa::TermKind::Jump:
      case isa::TermKind::Call:
        // Unconditional direct jumps are always (correctly) taken.
        return Prediction::Taken;
      case isa::TermKind::Return:
      case isa::TermKind::Switch:
        // Register-indirect: control transfers, but the target is not
        // computable at compile time.
        return Prediction::Taken;
      case isa::TermKind::FallThrough:
        break;
    }
    PC_PANIC("predictStatic on a fall-through block ", id);
}

} // namespace pipecache::sched
