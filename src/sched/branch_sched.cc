#include "sched/branch_sched.hh"

#include <algorithm>

#include "isa/dependence.hh"
#include "util/logging.hh"

namespace pipecache::sched {

TranslationFile
scheduleBranchDelays(const isa::Program &program,
                     std::uint32_t delay_slots)
{
    PC_ASSERT(delay_slots <= 8, "implausible delay-slot count ",
              delay_slots);

    TranslationFile xlat(delay_slots,
                         program.numBlocks());

    for (isa::BlockId id = 0; id < program.numBlocks(); ++id) {
        const isa::BasicBlock &bb = program.block(id);
        BlockXlat &bx = xlat[id];
        bx.usefulLen = static_cast<std::uint32_t>(bb.size());
        bx.schedLen = bx.usefulLen;

        if (!bb.hasCti())
            continue;
        bx.hasCti = 1;

        const Prediction pred = predictStatic(bb, id);
        bx.predictTaken = pred == Prediction::Taken ? 1 : 0;
        bx.indirect = isIndirectJump(bb.cti().op) ? 1 : 0;

        // Steps 1-2: hoist the CTI as far as dependences allow; the
        // instructions it crosses fill the first r delay slots with
        // always-useful (pre-branch) work.
        const std::size_t hoist = isa::ctiHoistDistance(bb);
        bx.r = static_cast<std::uint8_t>(
            std::min<std::size_t>(hoist, delay_slots));
        bx.s = static_cast<std::uint8_t>(delay_slots - bx.r);

        // Step 4 (layout): predicted-taken CTIs replicate s target
        // instructions after the CTI; register-indirect CTIs append s
        // noops. Predicted not-taken CTIs use the sequential code that
        // already follows, so the layout does not grow.
        if (bx.predictTaken || bx.indirect)
            bx.schedLen += bx.s;
    }

    // Assign scheduled entry addresses, contiguous in block order from
    // the program's base (mirroring the canonical layout policy).
    Addr addr = program.base();
    for (isa::BlockId id = 0; id < program.numBlocks(); ++id) {
        xlat[id].entry = addr;
        addr += static_cast<Addr>(xlat[id].schedLen * bytesPerWord);
    }
    return xlat;
}

} // namespace pipecache::sched
