/**
 * @file
 * Profile-guided static branch prediction — the extension the paper
 * points at when citing [HCC89]/[KT91]: "static branch prediction
 * techniques using sophisticated program profiling ... are
 * competitive with much larger BTBs".
 *
 * A training run's recorded trace yields per-branch taken/not-taken
 * counts; the post-processor then predicts each conditional branch's
 * majority direction instead of BTFNT. Everything downstream
 * (squashing replay, code-expansion accounting) is unchanged — only
 * the per-CTI prediction flag in the translation file differs.
 */

#ifndef PIPECACHE_SCHED_PROFILE_PREDICT_HH
#define PIPECACHE_SCHED_PROFILE_PREDICT_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "sched/translation.hh"
#include "trace/executor.hh"

namespace pipecache::sched {

/** Per-branch execution profile from a training run. */
class BranchProfileData
{
  public:
    explicit BranchProfileData(std::size_t num_blocks)
        : taken_(num_blocks, 0), notTaken_(num_blocks, 0)
    {
    }

    /** Record one executed conditional branch. */
    void record(isa::BlockId id, bool taken)
    {
        if (taken)
            ++taken_[id];
        else
            ++notTaken_[id];
    }

    std::uint64_t takenCount(isa::BlockId id) const
    {
        return taken_[id];
    }
    std::uint64_t notTakenCount(isa::BlockId id) const
    {
        return notTaken_[id];
    }
    std::uint64_t executions(isa::BlockId id) const
    {
        return taken_[id] + notTaken_[id];
    }

    /**
     * Majority-direction prediction; branches never seen in training
     * fall back to BTFNT.
     */
    Prediction predict(const isa::Program &program,
                       isa::BlockId id) const;

    /** Fraction of trained executions the majority rule would get
     *  right (the self-consistency score of the profile). */
    double selfAccuracy() const;

    std::size_t numBlocks() const { return taken_.size(); }

  private:
    std::vector<std::uint64_t> taken_;
    std::vector<std::uint64_t> notTaken_;
};

/** Collect a branch profile from a recorded training trace. */
BranchProfileData collectBranchProfile(const isa::Program &program,
                                       const trace::RecordedTrace &trace);

/**
 * Delay-slot scheduling with profile-guided predictions for
 * conditional branches (unconditional CTIs keep their BTFNT-identical
 * handling). Same contract as scheduleBranchDelays().
 */
TranslationFile
scheduleBranchDelaysProfiled(const isa::Program &program,
                             std::uint32_t delay_slots,
                             const BranchProfileData &profile);

} // namespace pipecache::sched

#endif // PIPECACHE_SCHED_PROFILE_PREDICT_HH
