/**
 * @file
 * Load-delay analysis (Section 3.2 of the paper).
 *
 * For every executed load we measure the independence distance
 * e = c + d, where c is the number of instructions between the last
 * write of the load's address register and the load, and d is the
 * number of instructions between the load and the first use of its
 * result:
 *
 *  - the *dynamic* (unbounded) distribution corresponds to Figure 6
 *    and models out-of-order load issue;
 *  - the *static* distribution bounds both components by basic-block
 *    limits — c by the dependence-limited hoisting distance within the
 *    block, d by the distance to the block's end — corresponding to
 *    Figure 7 and compile-time scheduling (with perfect memory
 *    disambiguation, per the paper).
 *
 * With l load delay cycles, a load whose hideable distance is e costs
 * max(0, l - e) stall cycles; Table 5 follows directly from the two
 * distributions.
 */

#ifndef PIPECACHE_SCHED_LOAD_SCHED_HH
#define PIPECACHE_SCHED_LOAD_SCHED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "trace/executor.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace pipecache::sched {

/** Aggregated e-distributions for one workload. */
struct LoadDelayStats
{
    static constexpr std::size_t histBuckets = 17;

    LoadDelayStats()
        : eStatic(histBuckets), eDynamic(histBuckets)
    {
    }

    /** Distribution of e bounded by basic blocks (Figure 7). */
    Histogram eStatic;
    /** Unbounded dynamic distribution of e (Figure 6). */
    Histogram eDynamic;

    /** Loads whose result was consumed. */
    Counter consumedLoads = 0;
    /** Loads whose result was never read (no stall possible). */
    Counter deadLoads = 0;

    Counter totalLoads() const { return consumedLoads + deadLoads; }

    /**
     * Total stall cycles for @p l load delay cycles under static
     * (in-block) or dynamic (unbounded) scheduling.
     */
    Counter totalDelayCycles(std::uint32_t l, bool dynamic) const;

    /** Mean stall cycles per load (Table 5's "delay cycles/load"). */
    double delayCyclesPerLoad(std::uint32_t l, bool dynamic) const;

    void merge(const LoadDelayStats &other);
};

/**
 * Streaming tracker: feed executed blocks in trace order; resolves
 * load-use distances on the fly.
 *
 * A tracker holds per-register state, so use one tracker per
 * benchmark (per address space) and keep feeding it across
 * context-switch slices.
 */
class LoadUseTracker
{
  public:
    explicit LoadUseTracker(const isa::Program &program);

    /** Process one executed block (by canonical block id). */
    void processBlock(isa::BlockId id);

    /** Flush pending loads (they become dead loads). Call at end. */
    void finish();

    const LoadDelayStats &stats() const { return stats_; }

  private:
    struct PendingLoad
    {
        bool valid = false;
        std::uint64_t loadIdx = 0;
        std::uint16_t cDynamic = 0;
        std::uint16_t cStatic = 0;
        std::uint16_t remainInBlock = 0;
    };

    /** Cached per-block static analysis. */
    struct BlockInfo
    {
        bool cached = false;
        /** For each position: 0xffff, or the load's static c bound. */
        std::vector<std::uint16_t> loadCStatic;
    };

    void resolve(isa::Reg r, std::uint64_t use_idx);
    void kill(isa::Reg r);

    const isa::Program &program_;
    LoadDelayStats stats_;

    std::uint64_t idx_ = 0;
    static constexpr std::uint64_t neverWritten = ~0ULL;
    std::array<std::uint64_t, isa::reg::numRegs> lastDef_;
    std::array<PendingLoad, isa::reg::numRegs> pending_;
    std::vector<BlockInfo> blockInfo_;
};

/** Analyze a whole recorded trace (convenience wrapper). */
LoadDelayStats analyzeLoadDelays(const isa::Program &program,
                                 const trace::RecordedTrace &trace);

} // namespace pipecache::sched

#endif // PIPECACHE_SCHED_LOAD_SCHED_HH
