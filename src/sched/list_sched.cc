#include "sched/list_sched.hh"

#include <algorithm>
#include <array>

#include "isa/dependence.hh"
#include "util/logging.hh"

namespace pipecache::sched {

namespace {

/** Dependence DAG for one block. */
struct Dag
{
    std::size_t n = 0;
    /** succs[i] = (successor index, latency). */
    std::vector<std::vector<std::pair<std::uint16_t, std::uint8_t>>>
        succs;
    std::vector<std::uint16_t> predCount;
    /** Longest latency path from node to any exit (priority). */
    std::vector<std::uint32_t> height;
};

bool
mustOrder(const isa::Instruction &a, const isa::Instruction &b)
{
    // Register hazards.
    if (!isa::registerIndependent(a, b))
        return true;
    // Stores stay ordered among themselves; loads may cross stores
    // both ways (perfect disambiguation, per the paper).
    if (isStore(a.op) && isStore(b.op))
        return true;
    // Syscalls are scheduling barriers.
    if (a.op == isa::Opcode::SYSCALL || b.op == isa::Opcode::SYSCALL)
        return true;
    return false;
}

Dag
buildDag(const isa::BasicBlock &bb, std::uint32_t load_slots)
{
    const std::size_t n = bb.size();
    Dag dag;
    dag.n = n;
    dag.succs.resize(n);
    dag.predCount.assign(n, 0);
    dag.height.assign(n, 0);

    const std::size_t cti_pos = bb.hasCti() ? n - 1 : n;

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            bool edge = mustOrder(bb.insts[i], bb.insts[j]);
            // The CTI is pinned: everything precedes it.
            if (j == cti_pos)
                edge = true;
            if (!edge)
                continue;
            // Latency: a load's consumer must wait load_slots extra
            // cycles; every other ordering is one cycle.
            std::uint8_t latency = 1;
            const isa::Reg dest = bb.insts[i].destReg();
            if (isLoad(bb.insts[i].op) && dest != isa::reg::zero &&
                bb.insts[j].reads(dest)) {
                latency = static_cast<std::uint8_t>(1 + load_slots);
            }
            dag.succs[i].push_back(
                {static_cast<std::uint16_t>(j), latency});
            ++dag.predCount[j];
        }
    }

    // Heights by reverse topological order (indices are topological
    // because edges always go forward).
    for (std::size_t i = n; i-- > 0;) {
        std::uint32_t h = 0;
        for (const auto &[j, lat] : dag.succs[i])
            h = std::max(h, dag.height[j] + lat);
        dag.height[i] = h;
    }
    return dag;
}

} // namespace

ScheduledBlock
listScheduleBlock(const isa::BasicBlock &bb, std::uint32_t load_slots)
{
    ScheduledBlock out;
    const std::size_t n = bb.size();
    out.order.reserve(n);
    if (n == 0)
        return out;

    Dag dag = buildDag(bb, load_slots);

    // readyAt[i]: earliest cycle node i may issue (data-ready).
    std::vector<std::uint32_t> ready_at(n, 0);
    std::vector<bool> scheduled(n, false);
    std::vector<std::uint16_t> pending_preds = dag.predCount;

    std::uint32_t cycle = 0;
    std::size_t done = 0;
    while (done < n) {
        // Pick the data-ready, dependence-free node with the greatest
        // height (critical path first); ties break toward original
        // order for determinism.
        std::size_t best = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (scheduled[i] || pending_preds[i] != 0 ||
                ready_at[i] > cycle) {
                continue;
            }
            if (best == n || dag.height[i] > dag.height[best])
                best = i;
        }

        if (best == n) {
            // Nothing ready this cycle: a true stall.
            ++cycle;
            ++out.localStalls;
            continue;
        }

        scheduled[best] = true;
        out.order.push_back(static_cast<std::uint16_t>(best));
        ++done;
        for (const auto &[j, lat] : dag.succs[best]) {
            ready_at[j] = std::max(ready_at[j],
                                   cycle + static_cast<std::uint32_t>(
                                               lat));
            --pending_preds[j];
        }
        ++cycle;
    }
    return out;
}

ListSchedStats
evaluateListScheduling(const isa::Program &program,
                       const trace::RecordedTrace &trace,
                       std::uint32_t load_slots)
{
    // Cache each block's schedule.
    std::vector<ScheduledBlock> schedules(program.numBlocks());
    std::vector<bool> cached(program.numBlocks(), false);

    ListSchedStats stats;
    // Scoreboard across block boundaries (absolute cycles).
    std::array<std::uint64_t, isa::reg::numRegs> ready{};
    std::uint64_t cycle = 0;

    for (const auto &ev : trace.blocks) {
        const isa::BasicBlock &bb = program.block(ev.block);
        if (!cached[ev.block]) {
            schedules[ev.block] = listScheduleBlock(bb, load_slots);
            cached[ev.block] = true;
        }
        const ScheduledBlock &sched = schedules[ev.block];

        for (const std::uint16_t idx : sched.order) {
            const isa::Instruction &inst = bb.insts[idx];
            std::uint64_t t = cycle;
            const auto srcs = inst.srcRegs();
            for (const isa::Reg src : srcs) {
                if (src != isa::reg::zero)
                    t = std::max(t, ready[src]);
            }
            stats.stallCycles += t - cycle;

            const isa::Reg dest = inst.destReg();
            if (dest != isa::reg::zero) {
                const std::uint64_t extra =
                    isLoad(inst.op) ? load_slots : 0;
                ready[dest] = t + 1 + extra;
            }
            if (isLoad(inst.op))
                ++stats.loads;
            cycle = t + 1;
            ++stats.insts;
        }
    }
    return stats;
}

} // namespace pipecache::sched
