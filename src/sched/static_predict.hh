/**
 * @file
 * Static branch prediction (step 3 of the paper's delay-slot
 * procedure): backward conditional branches and unconditional jumps
 * are predicted taken, forward conditional branches not-taken.
 * Register-indirect jumps transfer control but have no compile-time
 * target, so they are handled separately (s = 0, noop-filled slots).
 */

#ifndef PIPECACHE_SCHED_STATIC_PREDICT_HH
#define PIPECACHE_SCHED_STATIC_PREDICT_HH

#include "isa/basic_block.hh"

namespace pipecache::sched {

/** Static prediction outcome for a CTI. */
enum class Prediction : std::uint8_t
{
    Taken,
    NotTaken,
};

/** Where static predictions come from. */
enum class PredictSource : std::uint8_t
{
    /** Backward-taken / forward-not-taken heuristic (the paper). */
    Btfnt,
    /** Majority direction from a training-run profile (extension). */
    Profile,
};

/**
 * BTFNT prediction for the CTI terminating block @p id.
 * Direction of a conditional branch is judged by target id relative to
 * the branch block (generator layout is topological, so target < self
 * means a backward branch). Panics on fall-through blocks.
 */
Prediction predictStatic(const isa::BasicBlock &bb, isa::BlockId id);

/** True if a conditional branch is backward (loop-shaped). */
bool isBackwardBranch(const isa::BasicBlock &bb, isa::BlockId id);

} // namespace pipecache::sched

#endif // PIPECACHE_SCHED_STATIC_PREDICT_HH
