#include "sched/load_sched.hh"

#include <algorithm>

#include "isa/dependence.hh"
#include "util/logging.hh"

namespace pipecache::sched {

Counter
LoadDelayStats::totalDelayCycles(std::uint32_t l, bool dynamic) const
{
    PC_ASSERT(l < histBuckets, "delay-cycle count out of range: ", l);
    const Histogram &hist = dynamic ? eDynamic : eStatic;
    Counter total = 0;
    for (std::uint32_t e = 0; e < l; ++e)
        total += hist.bucket(e) * (l - e);
    // Loads with e >= l (including the overflow bucket) stall zero
    // cycles; dead loads never stall.
    return total;
}

double
LoadDelayStats::delayCyclesPerLoad(std::uint32_t l, bool dynamic) const
{
    const Counter loads = totalLoads();
    if (loads == 0)
        return 0.0;
    return static_cast<double>(totalDelayCycles(l, dynamic)) /
           static_cast<double>(loads);
}

void
LoadDelayStats::merge(const LoadDelayStats &other)
{
    eStatic.merge(other.eStatic);
    eDynamic.merge(other.eDynamic);
    consumedLoads += other.consumedLoads;
    deadLoads += other.deadLoads;
}

LoadUseTracker::LoadUseTracker(const isa::Program &program)
    : program_(program), blockInfo_(program.numBlocks())
{
    lastDef_.fill(neverWritten);
}

void
LoadUseTracker::resolve(isa::Reg r, std::uint64_t use_idx)
{
    PendingLoad &p = pending_[r];
    if (!p.valid)
        return;
    p.valid = false;

    const std::uint64_t d_dyn = use_idx - p.loadIdx - 1;
    const std::uint64_t d_static =
        std::min<std::uint64_t>(d_dyn, p.remainInBlock);

    const std::uint64_t e_dyn = p.cDynamic + d_dyn;
    const std::uint64_t e_static = p.cStatic + d_static;

    stats_.eDynamic.sample(e_dyn);
    stats_.eStatic.sample(e_static);
    ++stats_.consumedLoads;
}

void
LoadUseTracker::kill(isa::Reg r)
{
    if (pending_[r].valid) {
        pending_[r].valid = false;
        ++stats_.deadLoads;
    }
}

void
LoadUseTracker::processBlock(isa::BlockId id)
{
    const isa::BasicBlock &bb = program_.block(id);

    BlockInfo &info = blockInfo_[id];
    if (!info.cached) {
        info.loadCStatic.assign(bb.size(), 0xffff);
        for (std::size_t pos = 0; pos < bb.size(); ++pos) {
            if (isLoad(bb.insts[pos].op)) {
                info.loadCStatic[pos] = static_cast<std::uint16_t>(
                    std::min<std::size_t>(
                        isa::loadHoistDistance(bb, pos), 0x7fff));
            }
        }
        info.cached = true;
    }

    const std::size_t size = bb.size();
    for (std::size_t pos = 0; pos < size; ++pos) {
        const isa::Instruction &inst = bb.insts[pos];

        // Reads resolve pending loads before the write is applied.
        const auto srcs = inst.srcRegs();
        if (srcs[0] != isa::reg::zero)
            resolve(srcs[0], idx_);
        if (srcs[1] != isa::reg::zero && srcs[1] != srcs[0])
            resolve(srcs[1], idx_);

        const isa::Reg dest = inst.destReg();
        if (dest != isa::reg::zero)
            kill(dest);

        if (isLoad(inst.op)) {
            PendingLoad &p = pending_[dest];
            p.valid = true;
            p.loadIdx = idx_;

            const isa::Reg addr_reg = inst.addrReg();
            std::uint64_t c_dyn;
            if (addr_reg == isa::reg::zero ||
                lastDef_[addr_reg] == neverWritten) {
                c_dyn = 0x7fff;
            } else {
                c_dyn = idx_ - lastDef_[addr_reg] - 1;
            }
            p.cDynamic = static_cast<std::uint16_t>(
                std::min<std::uint64_t>(c_dyn, 0x7fff));
            p.cStatic = info.loadCStatic[pos];
            p.remainInBlock =
                static_cast<std::uint16_t>(size - 1 - pos);
        }

        if (dest != isa::reg::zero)
            lastDef_[dest] = idx_;
        ++idx_;
    }
}

void
LoadUseTracker::finish()
{
    for (auto &p : pending_) {
        if (p.valid) {
            p.valid = false;
            ++stats_.deadLoads;
        }
    }
}

LoadDelayStats
analyzeLoadDelays(const isa::Program &program,
                  const trace::RecordedTrace &trace)
{
    LoadUseTracker tracker(program);
    for (const auto &ev : trace.blocks)
        tracker.processBlock(ev.block);
    tracker.finish();
    return tracker.stats();
}

} // namespace pipecache::sched
