/**
 * @file
 * Differential oracles: independent implementations of the same
 * quantity, cross-checked on randomized cases.
 *
 * Each oracle owns one disagreement surface (see qa/oracles.cc):
 *
 *   factored   — CpiModel::evaluateFactored() field-for-field equal
 *                to the monolithic evaluatePrepared() replay;
 *   stack      — StackSimulator single-pass counts equal to a real
 *                per-geometry cache::Cache replay of the same stream;
 *   additive   — the additive CPI engine bounds (and where the probe
 *                streams coincide, exactly matches) the cycle-
 *                accurate PipelineSim;
 *   checkpoint — saveCheckpoint/loadCheckpoint reach a byte fixpoint
 *                after one round trip, failed entries included;
 *   sweep      — sweep JSON is byte-identical across thread counts,
 *                factored/monolithic evaluation, and checkpoint
 *                resume (full and truncated);
 *   serve      — SweepService responses (concurrent and warm, with a
 *                tight component-cache bound forcing evictions) are
 *                byte-identical to a cold single-process run, and a
 *                warm request is served entirely from the
 *                cross-request memo;
 *   chaos      — under randomized socket faults (short reads/writes,
 *                EINTR storms, resets, torn lines, accept failures)
 *                and daemon crash/restart mid-stream, every client
 *                attempt over the real socket path terminates with
 *                either a byte-identical RESULT or a documented
 *                taxonomy error — never a hang, crash, or torn
 *                output (fault-injection builds only);
 *   extstream  — a registry workload's record stream survives a din
 *                serialize/parse round trip bit-exactly, and its
 *                batched StackSimulator replay (partial final batch
 *                included) matches a per-geometry cache::Cache replay
 *                field for field.
 *
 * check() returns ok=false with a human-readable first-divergence
 * description; it must be deterministic in the case (the shrinker
 * re-runs it many times and relies on failures being stable).
 */

#ifndef PIPECACHE_QA_ORACLE_HH
#define PIPECACHE_QA_ORACLE_HH

#include <memory>
#include <string>
#include <vector>

#include "qa/fuzz_case.hh"

namespace pipecache::qa {

/** Outcome of one oracle run on one case. */
struct OracleResult
{
    bool ok = true;
    /** First divergence, for humans; empty when ok. */
    std::string detail;

    static OracleResult pass() { return {}; }
    static OracleResult fail(std::string d)
    {
        return {false, std::move(d)};
    }
};

/** One differential check. Implementations are stateless. */
class Oracle
{
  public:
    virtual ~Oracle() = default;

    /** Stable CLI name (--oracle NAME). */
    virtual const char *name() const = 0;

    /** Whether the case exercises this oracle at all. */
    virtual bool applies(const FuzzCase &c) const
    {
        (void)c;
        return true;
    }

    /** Run the differential check. Deterministic in @p c. */
    virtual OracleResult check(const FuzzCase &c) = 0;
};

/** All registered oracles, in documentation order. */
std::vector<std::unique_ptr<Oracle>> makeOracles();

/** The subset named by @p names (empty = all). Throws UsageError on
 *  an unknown name. */
std::vector<std::unique_ptr<Oracle>>
makeOracles(const std::vector<std::string> &names);

} // namespace pipecache::qa

#endif // PIPECACHE_QA_ORACLE_HH
