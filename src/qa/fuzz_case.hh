/**
 * @file
 * One differential-fuzz test case: a randomized suite configuration,
 * a small set of design points, and the auxiliary knobs (thread
 * count, synthetic-stream shape) the oracles draw on.
 *
 * Cases are a pure function of (seed, index) — the same pair always
 * regenerates the same case on every platform — and round-trip
 * through a compact one-line text form, so a failing case can be
 * handed back to the pipecache_fuzz CLI verbatim:
 *
 *   pipecache_fuzz --oracle checkpoint --case \
 *     'suite=scale:20000,quantum:5000,salt:0,bench:small;threads=2;\
 *      stream=seed:7,len:4000,insts:20000;point=b:2,l:1,...'
 *
 * The shrinker (qa/fuzzer.hh) relies on shrinkCandidates(): the
 * ordered list of strictly-simpler variants of a case.
 */

#ifndef PIPECACHE_QA_FUZZ_CASE_HH
#define PIPECACHE_QA_FUZZ_CASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/cpi_model.hh"

namespace pipecache::qa {

/** One fuzz case. Every field participates in serialization. */
struct FuzzCase
{
    core::SuiteConfig suite;
    std::vector<core::DesignPoint> points;
    /** Worker threads for the sweep-identity oracle (>= 2 to make
     *  thread-count invariance non-trivial). */
    std::size_t threads = 2;
    /** Seed of the synthetic access stream / checkpoint randomizer. */
    std::uint64_t streamSeed = 1;
    /** Synthetic access-stream length (stack oracle). */
    std::size_t streamLength = 4000;
    /** Instruction budget of the cycle-accurate pipeline replay. */
    std::uint64_t pipelineInsts = 20000;
};

bool operator==(const FuzzCase &a, const FuzzCase &b);

/** The deterministic case for (seed, index). */
FuzzCase randomCase(std::uint64_t seed, std::uint64_t index);

/** One-line text form accepted by parseCase() and --case. */
std::string serializeCase(const FuzzCase &c);

/** Inverse of serializeCase(). Throws UsageError on malformed input. */
FuzzCase parseCase(const std::string &spec);

/**
 * Strictly-simpler variants of @p c, most aggressive first (dropping
 * a whole design point precedes simplifying one field). The shrinker
 * accepts the first variant that still fails the violated oracle.
 */
std::vector<FuzzCase> shrinkCandidates(const FuzzCase &c);

} // namespace pipecache::qa

#endif // PIPECACHE_QA_FUZZ_CASE_HH
