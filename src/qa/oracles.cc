/**
 * @file
 * The differential oracle set (see qa/oracle.hh for the contract).
 * Every oracle builds its implementations fresh from the case, so a
 * disagreement is attributable to the implementations themselves and
 * never to shared mutable state.
 */

#include "qa/oracle.hh"

#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/stack_sim.hh"
#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "cpusim/cpi_engine.hh"
#include "cpusim/pipeline_sim.hh"
#include "sched/branch_sched.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sweep/checkpoint.hh"
#include "sweep/result_sink.hh"
#include "sweep/sweep_engine.hh"
#include "trace/benchmark.hh"
#include "trace/data_address_generator.hh"
#include "trace/executor.hh"
#include "trace/source.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/random.hh"

namespace pipecache::qa {

namespace {

// ---------------------------------------------------------- helpers

/** Unique scratch path; the oracle removes it when done. */
std::string
tempPath(const char *tag)
{
    static std::atomic<std::uint64_t> counter{0};
    const auto dir = std::filesystem::temp_directory_path();
    return (dir / ("pipecache_qa_" + std::to_string(::getpid()) + "_" +
                   tag + "_" +
                   std::to_string(counter.fetch_add(1))))
        .string();
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw IoError(path, "cannot read back oracle scratch file");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Human-readable first divergence of two byte strings. */
std::string
firstByteDiff(const std::string &a, const std::string &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    std::size_t i = 0;
    while (i < n && a[i] == b[i])
        ++i;
    // Show the enclosing lines for context.
    auto lineAround = [](const std::string &s, std::size_t pos) {
        const std::size_t begin = s.rfind('\n', pos);
        const std::size_t from =
            begin == std::string::npos ? 0 : begin + 1;
        std::size_t end = s.find('\n', pos);
        if (end == std::string::npos)
            end = s.size();
        return s.substr(from, std::min<std::size_t>(end - from, 160));
    };
    std::ostringstream os;
    os << "first divergence at byte " << i << " (sizes " << a.size()
       << " vs " << b.size() << ")";
    if (i < a.size())
        os << "\n    lhs: " << lineAround(a, i);
    if (i < b.size())
        os << "\n    rhs: " << lineAround(b, i);
    return os.str();
}

/** Appends "field: a vs b" mismatches to @p detail; true if equal. */
class FieldComparer
{
  public:
    explicit FieldComparer(std::string context)
        : context_(std::move(context))
    {
    }

    template <typename T>
    void eq(const char *field, const T &a, const T &b)
    {
        if (a == b)
            return;
        std::ostringstream os;
        if (!detail_.empty())
            os << "; ";
        os << context_ << "." << field << ": " << a << " vs " << b;
        detail_ += os.str();
    }

    bool ok() const { return detail_.empty(); }
    const std::string &detail() const { return detail_; }

  private:
    std::string context_;
    std::string detail_;
};

void
compareBreakdown(FieldComparer &cmp, const cpusim::CpiBreakdown &a,
                 const cpusim::CpiBreakdown &b)
{
    cmp.eq("usefulInsts", a.usefulInsts, b.usefulInsts);
    cmp.eq("fetches", a.fetches, b.fetches);
    cmp.eq("iStallCycles", a.iStallCycles, b.iStallCycles);
    cmp.eq("dStallCycles", a.dStallCycles, b.dStallCycles);
    cmp.eq("branchWastedFetches", a.branchWastedFetches,
           b.branchWastedFetches);
    cmp.eq("btbPenaltyCycles", a.btbPenaltyCycles, b.btbPenaltyCycles);
    cmp.eq("loadStallCycles", a.loadStallCycles, b.loadStallCycles);
    cmp.eq("ctis", a.ctis, b.ctis);
    cmp.eq("predTakenCtis", a.predTakenCtis, b.predTakenCtis);
    cmp.eq("predTakenCorrect", a.predTakenCorrect, b.predTakenCorrect);
    cmp.eq("predNotTakenCtis", a.predNotTakenCtis, b.predNotTakenCtis);
    cmp.eq("predNotTakenCorrect", a.predNotTakenCorrect,
           b.predNotTakenCorrect);
}

void
compareCacheStats(FieldComparer &cmp, const cache::CacheStats &a,
                  const cache::CacheStats &b)
{
    cmp.eq("reads", a.reads, b.reads);
    cmp.eq("writes", a.writes, b.writes);
    cmp.eq("readMisses", a.readMisses, b.readMisses);
    cmp.eq("writeMisses", a.writeMisses, b.writeMisses);
    cmp.eq("evictions", a.evictions, b.evictions);
    cmp.eq("dirtyEvictions", a.dirtyEvictions, b.dirtyEvictions);
}

/** factorable() without a model: the same three exclusions. */
bool
pointFactorable(const core::DesignPoint &p)
{
    return !p.writeThroughBuffer &&
           p.repl == cache::Replacement::LRU;
}

// ------------------------------------------- factored vs monolithic

class FactoredOracle final : public Oracle
{
  public:
    const char *name() const override { return "factored"; }

    bool applies(const FuzzCase &c) const override
    {
        for (const core::DesignPoint &p : c.points)
            if (pointFactorable(p))
                return true;
        return false;
    }

    OracleResult check(const FuzzCase &c) override
    {
        core::CpiModel model(c.suite);
        std::vector<core::DesignPoint> pts;
        for (const core::DesignPoint &p : c.points)
            if (model.factorable(p))
                pts.push_back(p);
        if (pts.empty())
            return OracleResult::pass();
        model.prepareFactored(pts);

        for (const core::DesignPoint &p : pts) {
            const core::CpiResult exact = model.evaluatePrepared(p);
            const core::CpiResult fact = model.evaluateFactored(p);

            FieldComparer cmp("point{" + p.describe() + "}");
            compareBreakdown(cmp, exact.aggregate, fact.aggregate);
            cmp.eq("perBench.size", exact.perBench.size(),
                   fact.perBench.size());
            if (exact.perBench.size() == fact.perBench.size()) {
                for (std::size_t i = 0; i < exact.perBench.size();
                     ++i) {
                    FieldComparer bcmp("bench" + std::to_string(i));
                    compareBreakdown(bcmp, exact.perBench[i],
                                     fact.perBench[i]);
                    if (!bcmp.ok())
                        return OracleResult::fail(
                            "factored != monolithic: " +
                            bcmp.detail() + " at " + p.describe());
                }
            }
            compareCacheStats(cmp, exact.l1i, fact.l1i);
            compareCacheStats(cmp, exact.l1d, fact.l1d);
            cmp.eq("btb.lookups", exact.btb.lookups, fact.btb.lookups);
            cmp.eq("btb.hits", exact.btb.hits, fact.btb.hits);
            cmp.eq("btb.correct", exact.btb.correct, fact.btb.correct);
            cmp.eq("btb.allocations", exact.btb.allocations,
                   fact.btb.allocations);
            // Bit-exact doubles: assembly performs the same arithmetic
            // on the same integers.
            cmp.eq("cpi", exact.cpi(), fact.cpi());
            cmp.eq("whmCpi", exact.weightedHarmonicMeanCpi(),
                   fact.weightedHarmonicMeanCpi());
            if (!cmp.ok())
                return OracleResult::fail("factored != monolithic: " +
                                          cmp.detail());
        }
        return OracleResult::pass();
    }
};

// --------------------------------------------- stack sim vs caches

class StackOracle final : public Oracle
{
  public:
    const char *name() const override { return "stack"; }

    OracleResult check(const FuzzCase &c) override
    {
        struct Access
        {
            std::size_t bench;
            Addr addr;
            bool write;
        };
        const std::size_t benches =
            std::max<std::size_t>(1, c.suite.benchmarks.size());
        const std::uint32_t blockBytes =
            c.points.front().blockWords * bytesPerWord;

        Rng rng(c.streamSeed);
        std::vector<Access> stream;
        stream.reserve(c.streamLength);
        for (std::size_t i = 0; i < c.streamLength; ++i) {
            Access a;
            a.bench = rng.nextRange(benches);
            // Mostly a hot region (varied LRU depths), sometimes a
            // roaming access (evictions, dirty writebacks).
            const bool hot = (rng.next() & 3u) != 0;
            const std::uint32_t span = hot ? 0x4000u : 0x100000u;
            a.addr = static_cast<Addr>(rng.nextRange(span) & ~3u);
            a.write = rng.nextBool(0.3);
            stream.push_back(a);
        }

        std::vector<cache::StackGeometry> ladder;
        for (std::uint32_t log2Sets = 0; log2Sets <= 5; ++log2Sets)
            for (const std::uint32_t assoc : {1u, 2u, 4u})
                ladder.push_back({log2Sets, assoc});

        cache::StackSimulator sim(blockBytes, ladder, benches);
        for (const Access &a : stream)
            sim.access(a.bench, a.addr, a.write);
        sim.finish();

        // Differential engines: the same stream fed to the scalar
        // reference engine per access, and to a second vectorized
        // instance through accessBatch() in randomly sized blocks.
        // All three must agree field for field.
        cache::StackSimulator refSim(
            blockBytes, ladder, benches,
            cache::StackSimImpl::ScalarReference);
        for (const Access &a : stream)
            refSim.access(a.bench, a.addr, a.write);
        refSim.finish();

        cache::StackSimulator batchSim(blockBytes, ladder, benches);
        {
            std::vector<cache::AccessRecord> records;
            records.reserve(stream.size());
            for (const Access &a : stream) {
                records.push_back(
                    {a.addr, static_cast<std::uint16_t>(a.bench),
                     static_cast<std::uint8_t>(a.write ? 1 : 0)});
            }
            std::size_t at = 0;
            while (at < records.size()) {
                const std::size_t len = std::min<std::size_t>(
                    1 + rng.nextRange(257), records.size() - at);
                batchSim.accessBatch(
                    std::span<const cache::AccessRecord>(
                        records.data() + at, len));
                at += len;
            }
        }
        batchSim.finish();

        for (const cache::StackGeometry &g : ladder) {
            const auto &vec = sim.counts(g.log2Sets, g.assoc);
            for (const cache::StackSimulator *other :
                 {&refSim, &batchSim}) {
                const auto &oc = other->counts(g.log2Sets, g.assoc);
                FieldComparer icmp(
                    std::string(other == &refSim ? "scalar-ref"
                                                 : "batched") +
                    " geom{2^" + std::to_string(g.log2Sets) +
                    " sets, " + std::to_string(g.assoc) + "-way}");
                for (std::size_t b = 0; b < benches; ++b) {
                    const std::string tag =
                        "[" + std::to_string(b) + "]";
                    icmp.eq(("readMisses" + tag).c_str(),
                            vec.readMisses[b], oc.readMisses[b]);
                    icmp.eq(("writeMisses" + tag).c_str(),
                            vec.writeMisses[b], oc.writeMisses[b]);
                }
                icmp.eq("evictions", vec.evictions, oc.evictions);
                icmp.eq("dirtyEvictions", vec.dirtyEvictions,
                        oc.dirtyEvictions);
                if (!icmp.ok())
                    return OracleResult::fail(
                        "stack sim engines disagree: " +
                        icmp.detail());
            }
        }

        for (const cache::StackGeometry &g : ladder) {
            cache::CacheConfig config;
            config.sizeBytes = g.sets() * g.assoc * blockBytes;
            config.blockBytes = blockBytes;
            config.assoc = g.assoc;
            cache::Cache reference(config);
            std::vector<Counter> readMiss(benches, 0);
            std::vector<Counter> writeMiss(benches, 0);
            for (const Access &a : stream) {
                if (!reference.access(a.addr, a.write)) {
                    if (a.write)
                        ++writeMiss[a.bench];
                    else
                        ++readMiss[a.bench];
                }
            }

            const auto &got = sim.counts(g.log2Sets, g.assoc);
            FieldComparer cmp("geom{2^" +
                              std::to_string(g.log2Sets) + " sets, " +
                              std::to_string(g.assoc) + "-way}");
            for (std::size_t b = 0; b < benches; ++b) {
                const std::string tag = "[" + std::to_string(b) + "]";
                cmp.eq(("readMisses" + tag).c_str(),
                       got.readMisses[b], readMiss[b]);
                cmp.eq(("writeMisses" + tag).c_str(),
                       got.writeMisses[b], writeMiss[b]);
            }
            const cache::CacheStats &ref = reference.stats();
            cmp.eq("evictions", got.evictions, ref.evictions);
            cmp.eq("dirtyEvictions", got.dirtyEvictions,
                   ref.dirtyEvictions);
            if (!cmp.ok())
                return OracleResult::fail("stack sim != cache replay: " +
                                          cmp.detail());
        }
        return OracleResult::pass();
    }
};

// ---------------------------------------- additive vs cycle-accurate

class AdditiveOracle final : public Oracle
{
  public:
    const char *name() const override { return "additive"; }

    bool applies(const FuzzCase &c) const override
    {
        for (const core::DesignPoint &p : c.points)
            if (p.branchScheme == cpusim::BranchScheme::Squash &&
                !p.writeThroughBuffer)
                return true;
        return false;
    }

    OracleResult check(const FuzzCase &c) override
    {
        // One benchmark workload; the pipeline simulator is
        // single-workload by design.
        const trace::Benchmark &bench =
            trace::findBenchmark(c.suite.benchmarks.front());
        const isa::Program prog =
            bench.makeProgram(0, c.suite.seedSalt);
        trace::DataAddressGenerator dgen(
            bench.dataConfig(0, c.suite.seedSalt));
        trace::ExecConfig ec;
        ec.maxInsts = c.pipelineInsts;
        ec.seed = 11 + (c.streamSeed % 9973);
        const trace::RecordedTrace trace =
            trace::recordTrace(prog, dgen, ec);

        // Near-infinite caches so both sides see the same compulsory
        // misses; the flat penalty still scales their cost.
        auto perfect = [](std::uint32_t penalty) {
            cache::HierarchyConfig hc;
            hc.l1i.sizeBytes = 1u << 20;
            hc.l1d.sizeBytes = 1u << 20;
            hc.flatPenalty = penalty;
            return hc;
        };

        std::size_t checked = 0;
        for (const core::DesignPoint &p : c.points) {
            if (p.branchScheme != cpusim::BranchScheme::Squash ||
                p.writeThroughBuffer) {
                continue;
            }
            if (++checked > 2) // bound the per-case cost
                break;
            const std::uint32_t b = p.branchSlots;
            const std::uint32_t l = p.loadSlots;
            const sched::TranslationFile xlat =
                sched::scheduleBranchDelays(prog, b);

            // Additive upper bound: no load scheduling at all — every
            // load stalls the full l cycles.
            cache::CacheHierarchy h1(perfect(p.missPenaltyCycles));
            cpusim::EngineConfig ecfg;
            ecfg.branchSlots = b;
            ecfg.loadSlots = l;
            ecfg.loadScheme = cpusim::LoadScheme::None;
            cpusim::CpiEngine engine(ecfg, h1,
                                     {{&prog, &xlat, &trace}});
            engine.runAll();
            const cpusim::CpiBreakdown agg = engine.aggregate();

            cache::CacheHierarchy h2(perfect(p.missPenaltyCycles));
            cpusim::PipelineSim sim({b, l}, h2, prog, xlat, trace);
            const cpusim::PipelineStats &s = sim.run();

            FieldComparer cmp("b=" + std::to_string(b) +
                              ",l=" + std::to_string(l));
            // Exact agreements: same useful work, same probe streams.
            cmp.eq("usefulInsts", s.usefulInsts, agg.usefulInsts);
            cmp.eq("iMissCycles", s.iMissCycles, agg.iStallCycles);
            cmp.eq("dMissCycles", s.dMissCycles, agg.dStallCycles);
            // The pipeline's own cycle ledger must balance.
            cmp.eq("cycleLedger", s.cycles,
                   s.issueSlots + s.iMissCycles + s.dMissCycles +
                       s.loadInterlockCycles);
            if (!cmp.ok())
                return OracleResult::fail(
                    "additive != pipeline: " + cmp.detail());

            // Bounds: the engine charges replicas of a never-executed
            // final target as waste — at most b slots of end-of-trace
            // slack; interlocks never exceed the unscheduled bound.
            auto bound = [&](const char *what, Counter lo, Counter hi,
                             Counter slack) -> OracleResult {
                if (lo <= hi && hi - lo <= slack)
                    return OracleResult::pass();
                std::ostringstream os;
                os << "additive vs pipeline bound '" << what
                   << "' violated: pipeline " << lo << " additive "
                   << hi << " allowed slack " << slack << " at b=" << b
                   << " l=" << l;
                return OracleResult::fail(os.str());
            };
            if (auto r = bound("issueSlots<=fetches", s.issueSlots,
                               agg.fetches, b);
                !r.ok) {
                return r;
            }
            if (auto r = bound("wasteSlots<=wastedFetches",
                               s.branchWasteSlots,
                               agg.branchWastedFetches, b);
                !r.ok) {
                return r;
            }
            if (s.cycles > agg.totalCycles()) {
                std::ostringstream os;
                os << "pipeline cycles " << s.cycles
                   << " exceed additive no-scheduling bound "
                   << agg.totalCycles() << " at b=" << b
                   << " l=" << l;
                return OracleResult::fail(os.str());
            }
        }
        return OracleResult::pass();
    }
};

// ------------------------------------------- checkpoint byte fixpoint

class CheckpointOracle final : public Oracle
{
  public:
    const char *name() const override { return "checkpoint"; }

    OracleResult check(const FuzzCase &c) override
    {
        Rng rng(c.streamSeed ^ 0x5bf03635ULL);
        const sweep::Checkpoint ck = randomCheckpoint(rng);

        const std::string p1 = tempPath("ck1");
        const std::string p2 = tempPath("ck2");
        sweep::saveCheckpoint(p1, ck);
        const std::string bytes1 = readFileBytes(p1);
        const sweep::Checkpoint loaded = sweep::loadCheckpoint(p1);
        sweep::saveCheckpoint(p2, loaded);
        const std::string bytes2 = readFileBytes(p2);
        std::filesystem::remove(p1);
        std::filesystem::remove(p2);

        if (bytes1 != bytes2) {
            return OracleResult::fail(
                "checkpoint save->load->save is not a byte fixpoint: " +
                firstByteDiff(bytes1, bytes2));
        }
        return OracleResult::pass();
    }

  private:
    static double
    randomMetric(Rng &rng)
    {
        switch (rng.nextRange(8)) {
        case 0:
            return 0.0;
        case 1:
            return -0.0;
        case 2:
            return rng.nextDouble() * 10.0;
        case 3:
            return rng.nextDouble() * 1e-300; // subnormal territory
        case 4:
            return rng.nextDouble() * 1e308;
        case 5:
            return -rng.nextDouble() * 1e3;
        case 6:
            // Raw bit pattern: exercises NaN/inf/denormal encodings.
            return std::bit_cast<double>(rng.next());
        default:
            return static_cast<double>(rng.nextRange(1000000));
        }
    }

    static sweep::Checkpoint
    randomCheckpoint(Rng &rng)
    {
        // Messages deliberately include separators, tabs and newlines
        // (the writer must keep one entry one line regardless).
        static constexpr char kChars[] =
            "abcXYZ 019 \t\r\n!\"\\,;:=  ..";
        sweep::Checkpoint ck;
        ck.gridKey = rng.next();
        ck.uniquePoints = 1 + rng.nextRange(16);
        std::vector<std::size_t> order(ck.uniquePoints);
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.nextRange(i)]);
        const std::size_t n = rng.nextRange(ck.uniquePoints + 1);
        for (std::size_t i = 0; i < n; ++i) {
            sweep::CheckpointEntry entry;
            entry.index = order[i];
            if (rng.nextBool(1.0 / 3.0)) {
                entry.failed = true;
                static constexpr const char *kKinds[] = {
                    "data", "io", "internal", "usage"};
                entry.errorKind = kKinds[rng.nextRange(4)];
                const std::size_t len = rng.nextRange(25);
                for (std::size_t k = 0; k < len; ++k)
                    entry.errorMessage +=
                        kChars[rng.nextRange(sizeof kChars - 1)];
            } else {
                core::PointMetrics &m = entry.metrics;
                m.cpi = randomMetric(rng);
                m.branchCpi = randomMetric(rng);
                m.loadCpi = randomMetric(rng);
                m.iMissCpi = randomMetric(rng);
                m.dMissCpi = randomMetric(rng);
                m.l1iMissRate = randomMetric(rng);
                m.l1dMissRate = randomMetric(rng);
                m.tCpuNs = randomMetric(rng);
                m.tIsideNs = randomMetric(rng);
                m.tDsideNs = randomMetric(rng);
                m.tpiNs = randomMetric(rng);
            }
            ck.entries.push_back(std::move(entry));
        }
        return ck;
    }
};

// ------------------------------------------------ sweep JSON identity

class SweepOracle final : public Oracle
{
  public:
    const char *name() const override { return "sweep"; }

    OracleResult check(const FuzzCase &c) override
    {
        std::vector<core::DesignPoint> grid = c.points;
        // A duplicate exercises the deterministic cache-hit metadata.
        grid.push_back(grid.front());

        auto runJson = [&](sweep::SweepOptions opts) {
            core::CpiModel cpi(c.suite);
            core::TpiModel tpi(cpi);
            sweep::SweepEngine engine(tpi, opts);
            const auto records = engine.sweep(grid);
            return sweep::jsonString("qa", records, engine.stats(),
                                     {});
        };

        sweep::SweepOptions base;
        base.threads = 1;
        const std::string jsonBase = runJson(base);

        sweep::SweepOptions threaded;
        threaded.threads = c.threads;
        if (const std::string json = runJson(threaded);
            json != jsonBase) {
            return OracleResult::fail(
                "sweep JSON differs between --threads 1 and --threads " +
                std::to_string(c.threads) + ": " +
                firstByteDiff(jsonBase, json));
        }

        sweep::SweepOptions mono;
        mono.threads = 1;
        mono.factored = false;
        if (const std::string json = runJson(mono); json != jsonBase) {
            return OracleResult::fail(
                "sweep JSON differs between factored and monolithic "
                "evaluation: " +
                firstByteDiff(jsonBase, json));
        }

        // Checkpointed run, then resume from the complete checkpoint
        // and from a truncated (mid-sweep shaped) one.
        const std::string ckPath = tempPath("sweepck");
        sweep::SweepOptions ckOpts;
        ckOpts.threads = c.threads;
        ckOpts.checkpointPath = ckPath;
        ckOpts.checkpointEvery = 1;
        if (const std::string json = runJson(ckOpts);
            json != jsonBase) {
            std::filesystem::remove(ckPath);
            return OracleResult::fail(
                "sweep JSON differs when checkpointing is enabled: " +
                firstByteDiff(jsonBase, json));
        }

        sweep::SweepOptions resumeOpts = ckOpts;
        resumeOpts.resume = true;
        if (const std::string json = runJson(resumeOpts);
            json != jsonBase) {
            std::filesystem::remove(ckPath);
            return OracleResult::fail(
                "sweep JSON differs after resuming a complete "
                "checkpoint: " +
                firstByteDiff(jsonBase, json));
        }

        sweep::Checkpoint ck = sweep::loadCheckpoint(ckPath);
        ck.entries.resize(ck.entries.size() / 2);
        sweep::saveCheckpoint(ckPath, ck);
        const std::string json = runJson(resumeOpts);
        std::filesystem::remove(ckPath);
        if (json != jsonBase) {
            return OracleResult::fail(
                "sweep JSON differs after resuming a truncated "
                "checkpoint: " +
                firstByteDiff(jsonBase, json));
        }
        return OracleResult::pass();
    }
};

// ---------------------------------------- sweep service identity

class ServeOracle final : public Oracle
{
  public:
    const char *name() const override { return "serve"; }

    OracleResult check(const FuzzCase &c) override
    {
        std::vector<core::DesignPoint> grid = c.points;
        // A duplicate exercises the deterministic cache-hit metadata.
        grid.push_back(grid.front());

        // Cold reference: a fresh single-process engine, exactly what
        // the pipecache_sweep CLI would serialize.
        std::string jsonBase;
        {
            core::CpiModel cpi(c.suite);
            core::TpiModel tpi(cpi);
            sweep::SweepOptions opts;
            opts.threads = 1;
            sweep::SweepEngine engine(tpi, opts);
            const auto records = engine.sweep(grid);
            jsonBase =
                sweep::jsonString("qa", records, engine.stats(), {});
        }

        serve::ServiceOptions sopts;
        sopts.threads = c.threads;
        sopts.maxInflight = 2;
        sopts.maxQueued = 8;
        // A tight bound exercises component eviction under load
        // (evictions must never change results, only replay counts).
        sopts.componentCacheLimit = 4;
        serve::SweepService service(sopts);

        // Concurrent requests over the same grid: every response must
        // be byte-identical to the cold reference, warm or not.
        constexpr std::size_t kConcurrent = 4;
        std::vector<std::string> jsons(kConcurrent);
        std::vector<std::string> errors(kConcurrent);
        {
            std::vector<std::thread> threads;
            threads.reserve(kConcurrent);
            for (std::size_t i = 0; i < kConcurrent; ++i) {
                threads.emplace_back([&, i] {
                    try {
                        jsons[i] =
                            service.runPoints(grid, "qa", c.suite)
                                .json;
                    } catch (const std::exception &e) {
                        errors[i] = e.what();
                    }
                });
            }
            for (std::thread &t : threads)
                t.join();
        }
        for (std::size_t i = 0; i < kConcurrent; ++i) {
            if (!errors[i].empty()) {
                return OracleResult::fail(
                    "concurrent service request " + std::to_string(i) +
                    " threw: " + errors[i]);
            }
            if (jsons[i] != jsonBase) {
                return OracleResult::fail(
                    "service JSON of concurrent request " +
                    std::to_string(i) +
                    " differs from a cold CLI-equivalent run: " +
                    firstByteDiff(jsonBase, jsons[i]));
            }
        }

        // A warm sequential request: still byte-identical, and every
        // unique point that previously succeeded must now be served
        // from the cross-request memo.
        const serve::SweepResponse warm =
            service.runPoints(grid, "qa", c.suite);
        if (warm.json != jsonBase) {
            return OracleResult::fail(
                "warm service JSON differs from a cold "
                "CLI-equivalent run: " +
                firstByteDiff(jsonBase, warm.json));
        }
        const std::uint64_t memoizable =
            warm.stats.cacheMisses - warm.stats.pointsFailed;
        if (warm.memoHits != memoizable) {
            return OracleResult::fail(
                "warm request reported " +
                std::to_string(warm.memoHits) +
                " cross-request memo hits, expected " +
                std::to_string(memoizable) + " (unique " +
                std::to_string(warm.stats.cacheMisses) + ", failed " +
                std::to_string(warm.stats.pointsFailed) + ")");
        }
        return OracleResult::pass();
    }
};

// ------------------------------------------------ chaos robustness

/**
 * Chaos contract over the real socket path: with randomized socket
 * faults (short reads/writes, EINTR storms, resets, torn lines,
 * accept failures) and daemon crash/restart mid-stream, every sweep
 * attempt must terminate with either a RESULT byte-identical to the
 * undisturbed run or a documented taxonomy error — never a hang, a
 * crash, or torn output accepted as truth. Needs the fault-injection
 * build; applies() is false otherwise.
 */
class ChaosOracle final : public Oracle
{
  public:
    const char *name() const override { return "chaos"; }

    bool applies(const FuzzCase &) const override
    {
        return fi::compiledIn();
    }

    OracleResult check(const FuzzCase &c) override
    {
        // Sites are process-global; never leak an armed fault into
        // other oracles (or a later case) on any exit path.
        struct ClearFaults
        {
            ClearFaults() { fi::clear(); }
            ~ClearFaults() { fi::clear(); }
        } clearFaults;

        // A small protocol-expressible grid: the wire path is what
        // is under test, not the evaluation (the serve oracle covers
        // daemon-vs-cold identity for rich grids).
        const std::string baseArgs =
            "b=0:1 isize=1,2 scale=20000 threads=1";

        Daemon daemon;
        std::atomic<int> port{daemon.port};

        // Undisturbed reference through the real socket.
        std::string jsonRef;
        try {
            serve::SweepClient client =
                serve::SweepClient::connectTcp(port.load());
            client.setIoTimeout(kIoTimeoutMs);
            jsonRef = client.sweep(baseArgs).json;
        } catch (const std::exception &e) {
            return OracleResult::fail(
                std::string("chaos reference sweep (no faults "
                            "armed) failed: ") +
                e.what());
        }

        Rng rng(c.streamSeed ^ 0x9e3779b97f4a7c15ULL);
        const auto budgetStart = std::chrono::steady_clock::now();

        for (std::size_t round = 0; round < kRounds; ++round) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - budgetStart)
                    .count();
            if (elapsed > kBudgetSeconds) {
                return OracleResult::fail(
                    "chaos case exceeded its " +
                    std::to_string(kBudgetSeconds) +
                    " s termination budget after " +
                    std::to_string(round) + " rounds");
            }

            fi::clear();
            std::string schedule;
            const std::size_t nFaults = 1 + rng.nextRange(3);
            for (std::size_t f = 0; f < nFaults; ++f) {
                const char *site =
                    kSites[rng.nextRange(kSiteCount)];
                const std::uint64_t nth = 1 + rng.nextRange(30);
                const std::uint64_t count = 1 + rng.nextRange(4);
                fi::arm(site, nth, count);
                schedule += std::string(schedule.empty() ? "" : ",") +
                            site + ":" + std::to_string(nth) + ":" +
                            std::to_string(count);
            }

            std::string args = baseArgs;
            if (rng.nextBool(0.3))
                args += " progress=1";
            const bool deadlined = rng.nextBool(0.25);
            if (deadlined)
                args += " deadline_ms=1";
            const bool crash = rng.nextBool(0.3);
            schedule += crash ? " +crash" : "";
            schedule += deadlined ? " +deadline" : "";

            serve::RetryPolicy policy;
            policy.maxAttempts = 6;
            policy.baseDelayMs = 5;
            policy.maxDelayMs = 50;
            policy.seed = rng.next();
            const auto connect = [&port] {
                serve::SweepClient client =
                    serve::SweepClient::connectTcp(port.load());
                client.setIoTimeout(kIoTimeoutMs);
                return client;
            };

            std::string json;
            std::string error;
            bool typed = true;
            std::thread worker([&] {
                try {
                    json = serve::sweepWithRetry(connect, args,
                                                 policy)
                               .json;
                } catch (const Error &e) {
                    error = std::string(e.kindName()) + ": " +
                            e.what();
                } catch (const std::exception &e) {
                    typed = false;
                    error = e.what();
                }
            });

            if (crash) {
                // Crash/restart mid-stream: hard-drop every live
                // connection, tear the daemon down, and bring a
                // fresh one up on a new port for the retries.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1 + rng.nextRange(8)));
                daemon.server->dropConnections();
                daemon.restart();
                port.store(daemon.port);
            }
            worker.join();

            if (!typed) {
                return OracleResult::fail(
                    "chaos round " + std::to_string(round) + " [" +
                    schedule +
                    "] escaped the error taxonomy: " + error);
            }
            if (error.empty() && json != jsonRef) {
                return OracleResult::fail(
                    "chaos round " + std::to_string(round) + " [" +
                    schedule +
                    "] returned a RESULT that is not byte-identical "
                    "to the undisturbed run: " +
                    firstByteDiff(jsonRef, json));
            }
        }
        return OracleResult::pass();
    }

  private:
    static constexpr std::size_t kRounds = 5;
    static constexpr int kIoTimeoutMs = 10000;
    static constexpr long kBudgetSeconds = 120;

    static constexpr const char *kSites[] = {
        "serve.io.read.short",  "serve.io.read.eintr",
        "serve.io.read.reset",  "serve.io.write.short",
        "serve.io.write.eintr", "serve.io.write.reset",
        "serve.io.write.torn",  "serve.accept.fail",
    };
    static constexpr std::size_t kSiteCount =
        sizeof kSites / sizeof kSites[0];

    /** An in-process daemon: service + server + serve() thread. */
    struct Daemon
    {
        std::unique_ptr<serve::SweepService> service;
        std::unique_ptr<serve::SweepServer> server;
        std::thread thread;
        int port = -1;

        Daemon() { up(); }
        ~Daemon() { down(); }

        void up()
        {
            serve::ServiceOptions so;
            so.threads = 1;
            so.maxInflight = 2;
            so.maxQueued = 8;
            service = std::make_unique<serve::SweepService>(so);
            serve::ServerOptions sv;
            sv.tcpPort = 0;
            server =
                std::make_unique<serve::SweepServer>(*service, sv);
            server->start();
            port = server->tcpPort();
            thread = std::thread([this] { server->serve(); });
        }

        void down()
        {
            if (server)
                server->requestShutdown();
            if (thread.joinable())
                thread.join();
            server.reset();
            service.reset();
        }

        void restart()
        {
            down();
            up();
        }
    };
};

// -------------------------------------- external streams vs caches

/**
 * External-stream replay oracle: a registry workload's record stream
 * (a) survives a din serialize/parse round trip bit-exactly, and
 * (b) produces StackSimulator counts — fed through accessBatch() in
 * fixed blocks with a partial final batch, exactly how the stream
 * sweep consumes TraceSources — that match a per-geometry
 * cache::Cache replay field for field.
 */
class ExtStreamOracle final : public Oracle
{
  public:
    const char *name() const override { return "extstream"; }

    OracleResult check(const FuzzCase &c) override
    {
        const auto infos = workloads::listWorkloads();
        const auto &info =
            infos[c.streamSeed % infos.size()];

        workloads::WorkloadOptions wopts;
        wopts.seed = c.streamSeed;
        wopts.records = std::max<std::size_t>(
            256, std::min<std::size_t>(c.streamLength, 20000));
        auto source = workloads::openWorkload(info.name, wopts);
        const std::vector<trace::TraceRecord> stream =
            trace::drain(*source, wopts.records);
        if (stream.empty())
            return OracleResult::fail("workload '" + info.name +
                                      "' produced an empty stream");

        // (a) din round trip: what writeDinRecords emits, readDin
        // recovers record for record.
        {
            std::ostringstream os;
            trace::writeDinRecords(os, stream);
            std::istringstream is(os.str());
            const std::vector<trace::TraceRecord> back =
                trace::readDin(is);
            if (back.size() != stream.size()) {
                return OracleResult::fail(
                    "din round trip: " + std::to_string(stream.size()) +
                    " records in, " + std::to_string(back.size()) +
                    " out (workload " + info.name + ")");
            }
            for (std::size_t i = 0; i < stream.size(); ++i) {
                if (back[i] != stream[i]) {
                    std::ostringstream detail;
                    detail << "din round trip: record " << i
                           << " diverged (kind "
                           << int(static_cast<std::uint8_t>(
                                  stream[i].kind))
                           << " addr " << std::hex << stream[i].addr
                           << " -> kind "
                           << int(static_cast<std::uint8_t>(
                                  back[i].kind))
                           << " addr " << back[i].addr << std::dec
                           << ", workload " << info.name << ")";
                    return OracleResult::fail(detail.str());
                }
            }
        }

        // (b) batched stack simulation of the data side vs a real
        // cache replay. One bench; fetches fold in as reads so the
        // whole stream participates.
        const std::uint32_t blockBytes =
            c.points.front().blockWords * bytesPerWord;
        std::vector<cache::AccessRecord> records;
        records.reserve(stream.size());
        for (const trace::TraceRecord &r : stream) {
            records.push_back(
                {r.addr, 0,
                 static_cast<std::uint8_t>(
                     r.kind == trace::RefKind::Write ? 1 : 0)});
        }

        std::vector<cache::StackGeometry> ladder;
        for (std::uint32_t log2Sets = 0; log2Sets <= 4; ++log2Sets)
            for (const std::uint32_t assoc : {1u, 2u})
                ladder.push_back({log2Sets, assoc});

        cache::StackSimulator sim(blockBytes, ladder, 1);
        // Fixed 256-record blocks; the final one is almost always
        // partial — exactly the shape sweepStream() feeds.
        std::size_t at = 0;
        while (at < records.size()) {
            const std::size_t len =
                std::min<std::size_t>(256, records.size() - at);
            sim.accessBatch(std::span<const cache::AccessRecord>(
                records.data() + at, len));
            at += len;
        }
        sim.finish();

        for (const cache::StackGeometry &g : ladder) {
            cache::CacheConfig config;
            config.sizeBytes = g.sets() * g.assoc * blockBytes;
            config.blockBytes = blockBytes;
            config.assoc = g.assoc;
            cache::Cache reference(config);
            Counter readMiss = 0;
            Counter writeMiss = 0;
            for (const cache::AccessRecord &r : records) {
                if (!reference.access(r.addr, r.store != 0)) {
                    if (r.store)
                        ++writeMiss;
                    else
                        ++readMiss;
                }
            }
            const auto &got = sim.counts(g.log2Sets, g.assoc);
            FieldComparer cmp("workload " + info.name + " geom{2^" +
                              std::to_string(g.log2Sets) + " sets, " +
                              std::to_string(g.assoc) + "-way}");
            cmp.eq("readMisses", got.readMisses[0], readMiss);
            cmp.eq("writeMisses", got.writeMisses[0], writeMiss);
            const cache::CacheStats &ref = reference.stats();
            cmp.eq("evictions", got.evictions, ref.evictions);
            cmp.eq("dirtyEvictions", got.dirtyEvictions,
                   ref.dirtyEvictions);
            if (!cmp.ok())
                return OracleResult::fail(
                    "external stream replay != cache replay: " +
                    cmp.detail());
        }
        return OracleResult::pass();
    }
};

} // namespace

std::vector<std::unique_ptr<Oracle>>
makeOracles()
{
    std::vector<std::unique_ptr<Oracle>> oracles;
    oracles.push_back(std::make_unique<FactoredOracle>());
    oracles.push_back(std::make_unique<StackOracle>());
    oracles.push_back(std::make_unique<AdditiveOracle>());
    oracles.push_back(std::make_unique<CheckpointOracle>());
    oracles.push_back(std::make_unique<SweepOracle>());
    oracles.push_back(std::make_unique<ServeOracle>());
    oracles.push_back(std::make_unique<ChaosOracle>());
    oracles.push_back(std::make_unique<ExtStreamOracle>());
    return oracles;
}

std::vector<std::unique_ptr<Oracle>>
makeOracles(const std::vector<std::string> &names)
{
    auto all = makeOracles();
    if (names.empty())
        return all;
    std::vector<std::unique_ptr<Oracle>> out;
    for (const std::string &name : names) {
        bool found = false;
        for (auto &oracle : all) {
            if (oracle && name == oracle->name()) {
                out.push_back(std::move(oracle));
                found = true;
                break;
            }
        }
        if (!found) {
            std::string known;
            for (const auto &oracle : makeOracles())
                known += std::string(known.empty() ? "" : ", ") +
                         oracle->name();
            throw UsageError("unknown oracle '" + name +
                             "' (known: " + known + ")");
        }
    }
    return out;
}

} // namespace pipecache::qa
