#include "qa/fuzzer.hh"

#include <ostream>

#include "util/error.hh"

namespace pipecache::qa {

namespace {

/** Hard ceiling on candidate evaluations per shrink, so a flaky
 *  oracle cannot hang the harness. Generously above what the ~40
 *  candidates per level ever need. */
constexpr std::size_t kShrinkBudget = 4000;

} // namespace

OracleResult
runCheck(Oracle &oracle, const FuzzCase &c)
{
    try {
        if (!oracle.applies(c))
            return OracleResult::pass();
        return oracle.check(c);
    } catch (const Error &e) {
        return OracleResult::fail(std::string("uncaught ") +
                                  e.kindName() + " error: " + e.what());
    } catch (const std::exception &e) {
        return OracleResult::fail(
            std::string("uncaught exception: ") + e.what());
    }
}

FuzzCase
shrinkCase(Oracle &oracle, FuzzCase c, std::string *detail,
           std::size_t *steps)
{
    OracleResult last = runCheck(oracle, c);
    std::size_t accepted = 0;
    std::size_t evaluations = 0;
    bool progress = true;
    while (progress && evaluations < kShrinkBudget) {
        progress = false;
        for (FuzzCase &candidate : shrinkCandidates(c)) {
            if (++evaluations >= kShrinkBudget)
                break;
            OracleResult r = runCheck(oracle, candidate);
            if (r.ok)
                continue;
            c = std::move(candidate);
            last = std::move(r);
            ++accepted;
            progress = true;
            break; // restart from the (simpler) case's candidates
        }
    }
    if (detail)
        *detail = last.detail;
    if (steps)
        *steps = accepted;
    return c;
}

std::string
reproducerLine(const std::string &oracleName, const FuzzCase &c)
{
    return "pipecache_fuzz --oracle " + oracleName + " --case '" +
           serializeCase(c) + "'";
}

FuzzReport
runFuzz(const FuzzOptions &opts)
{
    const auto oracles = makeOracles(opts.oracleNames);
    FuzzReport report;
    for (std::uint64_t i = 0; i < opts.cases; ++i) {
        const FuzzCase c = randomCase(opts.seed, i);
        for (const auto &oracle : oracles) {
            if (!oracle->applies(c))
                continue;
            ++report.checksRun;
            OracleResult r = runCheck(*oracle, c);
            if (r.ok)
                continue;

            FuzzFailure failure;
            failure.caseIndex = i;
            failure.oracleName = oracle->name();
            failure.detail = r.detail;
            failure.original = c;
            failure.shrunk = c;
            failure.shrunkDetail = r.detail;
            if (opts.shrink) {
                if (opts.log) {
                    *opts.log << "FAIL: oracle '" << oracle->name()
                              << "' on case " << i << " (seed "
                              << opts.seed << "); shrinking...\n";
                }
                failure.shrunk =
                    shrinkCase(*oracle, c, &failure.shrunkDetail,
                               &failure.shrinkSteps);
            }
            failure.reproducer =
                reproducerLine(failure.oracleName, failure.shrunk);
            if (opts.log) {
                *opts.log << "FAIL: oracle '" << failure.oracleName
                          << "' case " << i << " (seed " << opts.seed
                          << ", " << failure.shrinkSteps
                          << " shrink steps)\n  " << failure.shrunkDetail
                          << "\n  reproduce: " << failure.reproducer
                          << "\n";
            }
            report.failures.push_back(std::move(failure));
            report.casesRun = i + 1;
            return report; // first violation wins; fix it, rerun
        }
        report.casesRun = i + 1;
        if (opts.log && opts.progressEvery != 0 &&
            (i + 1) % opts.progressEvery == 0) {
            *opts.log << "fuzz: " << (i + 1) << "/" << opts.cases
                      << " cases, " << report.checksRun
                      << " oracle checks, 0 failures\n";
        }
    }
    return report;
}

} // namespace pipecache::qa
