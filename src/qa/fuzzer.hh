/**
 * @file
 * The differential fuzz driver: deterministic case generation, the
 * oracle loop, and greedy shrinking of failures down to a minimal
 * reproducer.
 *
 * Determinism contract: runFuzz() is a pure function of FuzzOptions.
 * Case i is randomCase(seed, i) — independent of every other case and
 * of which oracles are enabled — so a failure report's `--seed N`
 * index pair always replays, and the printed `--case` line replays
 * the shrunk case without regenerating anything.
 */

#ifndef PIPECACHE_QA_FUZZER_HH
#define PIPECACHE_QA_FUZZER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qa/oracle.hh"

namespace pipecache::qa {

struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::uint64_t cases = 100;
    /** Oracle names to run; empty = all (makeOracles order). */
    std::vector<std::string> oracleNames;
    /** Shrink failures to a minimal reproducer before reporting. */
    bool shrink = true;
    /** Progress notes / failure reports; nullptr = silent. */
    std::ostream *log = nullptr;
    /** Emit a progress line every N cases (0 = never). */
    std::uint64_t progressEvery = 0;
};

/** One oracle violation, shrunk (when enabled) and replayable. */
struct FuzzFailure
{
    std::uint64_t caseIndex = 0;
    std::string oracleName;
    /** Divergence detail of the original (unshrunk) case. */
    std::string detail;
    FuzzCase original;
    /** Minimal still-failing case (== original when not shrunk). */
    FuzzCase shrunk;
    std::string shrunkDetail;
    /** Accepted shrink steps (not candidate evaluations). */
    std::size_t shrinkSteps = 0;
    /** Ready-to-run CLI line reproducing the shrunk failure. */
    std::string reproducer;
};

struct FuzzReport
{
    std::uint64_t casesRun = 0;
    std::uint64_t checksRun = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Run @p oracle on @p c, converting any escaped exception into a
 * failed OracleResult (an oracle that throws has found a bug too).
 */
OracleResult runCheck(Oracle &oracle, const FuzzCase &c);

/**
 * Greedily shrink @p c while @p oracle still fails: repeatedly adopt
 * the first shrinkCandidates() variant that keeps failing, until none
 * does (or an evaluation budget runs out). Returns the minimal case;
 * @p detail / @p steps (optional) receive its divergence and the
 * number of accepted steps.
 */
FuzzCase shrinkCase(Oracle &oracle, FuzzCase c,
                    std::string *detail = nullptr,
                    std::size_t *steps = nullptr);

/** The `pipecache_fuzz --oracle X --case '...'` replay line. */
std::string reproducerLine(const std::string &oracleName,
                           const FuzzCase &c);

/**
 * The fuzz loop. Stops at the first violation (its report carries
 * the shrunk reproducer); a clean run reports every case that ran.
 */
FuzzReport runFuzz(const FuzzOptions &opts);

} // namespace pipecache::qa

#endif // PIPECACHE_QA_FUZZER_HH
