#include "qa/fuzz_case.hh"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "trace/benchmark.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace pipecache::qa {

namespace {

/** Cheap suite members only: fuzz throughput beats coverage-per-case
 *  here, the case *count* supplies the coverage. */
constexpr const char *kBenchPool[] = {"small",    "linpack", "yacc",
                                      "integral", "sdiff",   "xwim"};

constexpr double kScales[] = {40000.0, 20000.0, 10000.0};
constexpr std::uint64_t kQuanta[] = {2000, 5000, 10000};

template <typename T, std::size_t N>
T
pick(Rng &rng, const T (&pool)[N])
{
    return pool[rng.nextRange(N)];
}

core::DesignPoint
randomPoint(Rng &rng)
{
    core::DesignPoint p;
    p.branchSlots = static_cast<std::uint32_t>(rng.nextRange(4));
    p.loadSlots = static_cast<std::uint32_t>(rng.nextRange(4));
    p.l1iSizeKW = 1u << rng.nextRange(4);
    p.l1dSizeKW = 1u << rng.nextRange(4);
    p.blockWords = 2u << rng.nextRange(3);
    p.assoc = 1u << rng.nextRange(3);
    p.missPenaltyCycles =
        static_cast<std::uint32_t>(2 + rng.nextRange(11));
    if (rng.nextBool(0.2))
        p.repl = cache::Replacement::Random;
    if (rng.nextBool(1.0 / 3.0)) {
        p.branchScheme = cpusim::BranchScheme::Btb;
        p.btb.entries = 64u << (2 * rng.nextRange(3));
        p.btb.assoc = 1u << rng.nextRange(3);
    }
    const std::uint64_t ls = rng.nextRange(3);
    p.loadScheme = ls == 0   ? cpusim::LoadScheme::Static
                   : ls == 1 ? cpusim::LoadScheme::Dynamic
                             : cpusim::LoadScheme::None;
    if (rng.nextBool(0.25))
        p.predictSource = sched::PredictSource::Profile;
    if (rng.nextBool(1.0 / 6.0)) {
        p.writeThroughBuffer = true;
        p.writeBufferConfig.entries =
            2u << rng.nextRange(3);
        p.writeBufferConfig.drainCycles =
            static_cast<std::uint32_t>(1 + 2 * rng.nextRange(3));
    }
    return p;
}

// ------------------------------------------------------- serialization

const char *
replName(cache::Replacement r)
{
    return r == cache::Replacement::Random ? "random" : "lru";
}

const char *
branchName(cpusim::BranchScheme s)
{
    return s == cpusim::BranchScheme::Btb ? "btb" : "squash";
}

const char *
loadName(cpusim::LoadScheme s)
{
    switch (s) {
    case cpusim::LoadScheme::Dynamic:
        return "dynamic";
    case cpusim::LoadScheme::None:
        return "none";
    default:
        return "static";
    }
}

const char *
predictName(sched::PredictSource s)
{
    return s == sched::PredictSource::Profile ? "profile" : "btfnt";
}

[[noreturn]] void
badSpec(const std::string &what)
{
    throw UsageError("bad fuzz case spec: " + what);
}

std::uint64_t
parseU64(std::string_view tok, const std::string &what)
{
    std::uint64_t v = 0;
    const auto r =
        std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (r.ec != std::errc{} || r.ptr != tok.data() + tok.size())
        badSpec("bad number '" + std::string(tok) + "' in " + what);
    return v;
}

/** Split @p body at @p sep; empty input yields no parts. */
std::vector<std::string_view>
split(std::string_view body, char sep)
{
    std::vector<std::string_view> parts;
    std::size_t begin = 0;
    while (begin <= body.size()) {
        const auto end = body.find(sep, begin);
        if (end == std::string_view::npos) {
            if (begin < body.size())
                parts.push_back(body.substr(begin));
            break;
        }
        parts.push_back(body.substr(begin, end - begin));
        begin = end + 1;
    }
    return parts;
}

/** "key:value" -> pair; panics the parse otherwise. */
std::pair<std::string_view, std::string_view>
keyValue(std::string_view item, const std::string &what)
{
    const auto colon = item.find(':');
    if (colon == std::string_view::npos)
        badSpec("expected key:value, got '" + std::string(item) +
                "' in " + what);
    return {item.substr(0, colon), item.substr(colon + 1)};
}

core::SuiteConfig
parseSuite(std::string_view body)
{
    core::SuiteConfig suite;
    suite.benchmarks.clear();
    for (const auto item : split(body, ',')) {
        const auto [key, value] = keyValue(item, "suite");
        if (key == "scale") {
            suite.scaleDivisor =
                static_cast<double>(parseU64(value, "suite.scale"));
        } else if (key == "quantum") {
            suite.quantum = parseU64(value, "suite.quantum");
        } else if (key == "salt") {
            suite.seedSalt = parseU64(value, "suite.salt");
        } else if (key == "bench") {
            for (const auto name : split(value, '+'))
                suite.benchmarks.emplace_back(name);
        } else {
            badSpec("unknown suite key '" + std::string(key) + "'");
        }
    }
    if (suite.benchmarks.empty())
        badSpec("suite needs at least one benchmark");
    // Fail typos at parse time, not mid-oracle.
    for (const std::string &name : suite.benchmarks)
        (void)trace::findBenchmark(name);
    return suite;
}

core::DesignPoint
parsePoint(std::string_view body)
{
    core::DesignPoint p;
    for (const auto item : split(body, ',')) {
        const auto [key, value] = keyValue(item, "point");
        if (key == "b") {
            p.branchSlots =
                static_cast<std::uint32_t>(parseU64(value, "point.b"));
        } else if (key == "l") {
            p.loadSlots =
                static_cast<std::uint32_t>(parseU64(value, "point.l"));
        } else if (key == "i") {
            p.l1iSizeKW =
                static_cast<std::uint32_t>(parseU64(value, "point.i"));
        } else if (key == "d") {
            p.l1dSizeKW =
                static_cast<std::uint32_t>(parseU64(value, "point.d"));
        } else if (key == "blk") {
            p.blockWords = static_cast<std::uint32_t>(
                parseU64(value, "point.blk"));
        } else if (key == "assoc") {
            p.assoc = static_cast<std::uint32_t>(
                parseU64(value, "point.assoc"));
        } else if (key == "pen") {
            p.missPenaltyCycles = static_cast<std::uint32_t>(
                parseU64(value, "point.pen"));
        } else if (key == "repl") {
            if (value == "lru")
                p.repl = cache::Replacement::LRU;
            else if (value == "random")
                p.repl = cache::Replacement::Random;
            else
                badSpec("bad repl '" + std::string(value) + "'");
        } else if (key == "bs") {
            if (value == "squash")
                p.branchScheme = cpusim::BranchScheme::Squash;
            else if (value == "btb")
                p.branchScheme = cpusim::BranchScheme::Btb;
            else
                badSpec("bad branch scheme '" + std::string(value) +
                        "'");
        } else if (key == "ls") {
            if (value == "static")
                p.loadScheme = cpusim::LoadScheme::Static;
            else if (value == "dynamic")
                p.loadScheme = cpusim::LoadScheme::Dynamic;
            else if (value == "none")
                p.loadScheme = cpusim::LoadScheme::None;
            else
                badSpec("bad load scheme '" + std::string(value) +
                        "'");
        } else if (key == "ps") {
            if (value == "btfnt")
                p.predictSource = sched::PredictSource::Btfnt;
            else if (value == "profile")
                p.predictSource = sched::PredictSource::Profile;
            else
                badSpec("bad predict source '" + std::string(value) +
                        "'");
        } else if (key == "btb") {
            const auto dot = value.find('.');
            if (dot == std::string_view::npos)
                badSpec("bad btb geometry '" + std::string(value) +
                        "' (want entries.assoc)");
            p.btb.entries = static_cast<std::uint32_t>(
                parseU64(value.substr(0, dot), "point.btb"));
            p.btb.assoc = static_cast<std::uint32_t>(
                parseU64(value.substr(dot + 1), "point.btb"));
        } else if (key == "wb") {
            if (value == "0") {
                p.writeThroughBuffer = false;
            } else {
                const auto dot = value.find('.');
                if (dot == std::string_view::npos)
                    badSpec("bad wb '" + std::string(value) +
                            "' (want 0 or entries.drain)");
                p.writeThroughBuffer = true;
                p.writeBufferConfig.entries =
                    static_cast<std::uint32_t>(parseU64(
                        value.substr(0, dot), "point.wb"));
                p.writeBufferConfig.drainCycles =
                    static_cast<std::uint32_t>(parseU64(
                        value.substr(dot + 1), "point.wb"));
            }
        } else {
            badSpec("unknown point key '" + std::string(key) + "'");
        }
    }
    return p;
}

} // namespace

bool
operator==(const FuzzCase &a, const FuzzCase &b)
{
    return a.suite.scaleDivisor == b.suite.scaleDivisor &&
           a.suite.quantum == b.suite.quantum &&
           a.suite.seedSalt == b.suite.seedSalt &&
           a.suite.benchmarks == b.suite.benchmarks &&
           a.points == b.points && a.threads == b.threads &&
           a.streamSeed == b.streamSeed &&
           a.streamLength == b.streamLength &&
           a.pipelineInsts == b.pipelineInsts;
}

FuzzCase
randomCase(std::uint64_t seed, std::uint64_t index)
{
    // Decorrelate neighbouring indices: the Rng seed constructor
    // splitmix-expands, so a simple odd-multiplier mix suffices.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL +
            index * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL);

    FuzzCase c;
    c.suite.scaleDivisor = pick(rng, kScales);
    c.suite.quantum = pick(rng, kQuanta);
    c.suite.seedSalt = rng.nextRange(4);
    const std::size_t nBench = 1 + rng.nextRange(3);
    std::vector<std::size_t> order(std::size(kBenchPool));
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.nextRange(i)]);
    for (std::size_t i = 0; i < nBench; ++i)
        c.suite.benchmarks.emplace_back(kBenchPool[order[i]]);

    const std::size_t nPoints = 1 + rng.nextRange(3);
    for (std::size_t i = 0; i < nPoints; ++i)
        c.points.push_back(randomPoint(rng));

    c.threads = 2 + rng.nextRange(4);
    c.streamSeed = rng.next();
    c.streamLength = 1000 + rng.nextRange(7001);
    c.pipelineInsts = 8000 + rng.nextRange(22001);
    return c;
}

std::string
serializeCase(const FuzzCase &c)
{
    std::ostringstream os;
    os << "suite=scale:"
       << static_cast<std::uint64_t>(c.suite.scaleDivisor)
       << ",quantum:" << c.suite.quantum << ",salt:"
       << c.suite.seedSalt << ",bench:";
    for (std::size_t i = 0; i < c.suite.benchmarks.size(); ++i)
        os << (i ? "+" : "") << c.suite.benchmarks[i];
    os << ";threads=" << c.threads << ";stream=seed:" << c.streamSeed
       << ",len:" << c.streamLength << ",insts:" << c.pipelineInsts;
    for (const core::DesignPoint &p : c.points) {
        os << ";point=b:" << p.branchSlots << ",l:" << p.loadSlots
           << ",i:" << p.l1iSizeKW << ",d:" << p.l1dSizeKW
           << ",blk:" << p.blockWords << ",assoc:" << p.assoc
           << ",pen:" << p.missPenaltyCycles << ",repl:"
           << replName(p.repl) << ",bs:" << branchName(p.branchScheme)
           << ",ls:" << loadName(p.loadScheme) << ",ps:"
           << predictName(p.predictSource) << ",btb:" << p.btb.entries
           << "." << p.btb.assoc << ",wb:";
        if (p.writeThroughBuffer) {
            os << p.writeBufferConfig.entries << "."
               << p.writeBufferConfig.drainCycles;
        } else {
            os << "0";
        }
    }
    return os.str();
}

FuzzCase
parseCase(const std::string &spec)
{
    FuzzCase c;
    bool haveSuite = false;
    for (const auto section : split(spec, ';')) {
        const auto eq = section.find('=');
        if (eq == std::string_view::npos)
            badSpec("expected name=body, got '" +
                    std::string(section) + "'");
        const auto name = section.substr(0, eq);
        const auto body = section.substr(eq + 1);
        if (name == "suite") {
            c.suite = parseSuite(body);
            haveSuite = true;
        } else if (name == "threads") {
            c.threads = parseU64(body, "threads");
            if (c.threads == 0 || c.threads > 64)
                badSpec("threads must be in 1..64");
        } else if (name == "stream") {
            for (const auto item : split(body, ',')) {
                const auto [key, value] = keyValue(item, "stream");
                if (key == "seed")
                    c.streamSeed = parseU64(value, "stream.seed");
                else if (key == "len")
                    c.streamLength = parseU64(value, "stream.len");
                else if (key == "insts")
                    c.pipelineInsts = parseU64(value, "stream.insts");
                else
                    badSpec("unknown stream key '" + std::string(key) +
                            "'");
            }
        } else if (name == "point") {
            c.points.push_back(parsePoint(body));
        } else {
            badSpec("unknown section '" + std::string(name) + "'");
        }
    }
    if (!haveSuite)
        badSpec("missing suite section");
    if (c.points.empty())
        badSpec("need at least one point");
    return c;
}

std::vector<FuzzCase>
shrinkCandidates(const FuzzCase &c)
{
    std::vector<FuzzCase> out;
    auto add = [&](FuzzCase v) { out.push_back(std::move(v)); };

    // Whole-point removal first: the single biggest simplification.
    if (c.points.size() > 1) {
        for (std::size_t i = 0; i < c.points.size(); ++i) {
            FuzzCase v = c;
            v.points.erase(v.points.begin() +
                           static_cast<std::ptrdiff_t>(i));
            add(std::move(v));
        }
    }
    // Then suite reduction.
    if (c.suite.benchmarks.size() > 1) {
        for (std::size_t i = 0; i < c.suite.benchmarks.size(); ++i) {
            FuzzCase v = c;
            v.suite.benchmarks.erase(
                v.suite.benchmarks.begin() +
                static_cast<std::ptrdiff_t>(i));
            add(std::move(v));
        }
    }
    if (c.suite.scaleDivisor < 40000.0) {
        FuzzCase v = c;
        v.suite.scaleDivisor = 40000.0; // smallest traces
        add(std::move(v));
    }
    if (c.suite.seedSalt != 0) {
        FuzzCase v = c;
        v.suite.seedSalt = 0;
        add(std::move(v));
    }
    // Stream / budget halving.
    if (c.streamLength > 64) {
        FuzzCase v = c;
        v.streamLength = std::max<std::size_t>(64, c.streamLength / 2);
        add(std::move(v));
    }
    if (c.pipelineInsts > 2000) {
        FuzzCase v = c;
        v.pipelineInsts =
            std::max<std::uint64_t>(2000, c.pipelineInsts / 2);
        add(std::move(v));
    }
    if (c.streamSeed != 1) {
        FuzzCase v = c;
        v.streamSeed = 1;
        add(std::move(v));
    }
    if (c.threads > 2) {
        FuzzCase v = c;
        v.threads = 2;
        add(std::move(v));
    }
    // Per-point field simplification, one field at a time.
    for (std::size_t i = 0; i < c.points.size(); ++i) {
        const core::DesignPoint &p = c.points[i];
        auto withPoint = [&](auto &&mutate) {
            FuzzCase v = c;
            mutate(v.points[i]);
            add(std::move(v));
        };
        if (p.branchSlots != 0)
            withPoint([](auto &q) { q.branchSlots = 0; });
        if (p.loadSlots != 0)
            withPoint([](auto &q) { q.loadSlots = 0; });
        if (p.l1iSizeKW != 1)
            withPoint([](auto &q) { q.l1iSizeKW = 1; });
        if (p.l1dSizeKW != 1)
            withPoint([](auto &q) { q.l1dSizeKW = 1; });
        if (p.blockWords != 4)
            withPoint([](auto &q) { q.blockWords = 4; });
        if (p.assoc != 1)
            withPoint([](auto &q) { q.assoc = 1; });
        if (p.missPenaltyCycles != 10)
            withPoint([](auto &q) { q.missPenaltyCycles = 10; });
        if (p.repl != cache::Replacement::LRU)
            withPoint(
                [](auto &q) { q.repl = cache::Replacement::LRU; });
        if (p.branchScheme != cpusim::BranchScheme::Squash)
            withPoint([](auto &q) {
                q.branchScheme = cpusim::BranchScheme::Squash;
                q.btb = {};
            });
        if (p.loadScheme != cpusim::LoadScheme::Static)
            withPoint([](auto &q) {
                q.loadScheme = cpusim::LoadScheme::Static;
            });
        if (p.predictSource != sched::PredictSource::Btfnt)
            withPoint([](auto &q) {
                q.predictSource = sched::PredictSource::Btfnt;
            });
        if (p.writeThroughBuffer)
            withPoint([](auto &q) {
                q.writeThroughBuffer = false;
                q.writeBufferConfig = {};
            });
    }
    return out;
}

} // namespace pipecache::qa
