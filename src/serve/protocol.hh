/**
 * @file
 * The pipecache_sweepd wire protocol: line-oriented, human-typeable,
 * transport-agnostic (the same grammar runs over a Unix socket or
 * TCP). This header is pure parsing/formatting — no I/O — so the
 * daemon, the client, the fuzz oracle, and the tests all share one
 * definition.
 *
 * Requests (one line each, space-separated tokens):
 *
 *   SWEEP [key=value ...]     run a sweep; grid keys are exactly the
 *                             GridSpec keys (b, l, isize, dsize,
 *                             block, penalty, repl, preset) plus
 *                             scale=N (suite scale divisor >= 1),
 *                             threads=N (per-request worker budget,
 *                             0 = server default), progress=0|1
 *                             (stream PROGRESS lines), factored=0|1
 *                             (default 1), deadline_ms=N (server-
 *                             side deadline; expiry cancels the run
 *                             and answers `ERR timeout`; 0 = none),
 *                             and the external-stream keys
 *                             workload=NAME (registry scenario),
 *                             trace=PATH (server-side .din or
 *                             .oracleGeneral file), workload_seed=N
 *   PING                      liveness probe
 *   STATUS                    one-line service counters
 *   SHUTDOWN                  ask the daemon to drain and exit
 *
 * Responses:
 *
 *   ACK id=<n> points=<m>                       sweep parsed; next
 *                                               comes PROGRESS/RESULT
 *                                               or ERR (admission may
 *                                               still reject)
 *   PROGRESS <done>/<total>                     streamed (progress=1)
 *   RESULT <nbytes>\n<payload>                  exactly nbytes of
 *                                               sweep JSON, byte-
 *                                               identical to the
 *                                               pipecache_sweep CLI
 *   DONE evaluated=<n> memo_hits=<n> cross_hits=<n> failed=<n>
 *        wall_ms=<x>                             (one line)
 *   OK [text]                                   PING/STATUS/SHUTDOWN
 *   ERR <kind> <message>                        error taxonomy kind
 *                                               name + one-line
 *                                               message; the client
 *                                               re-raises it as the
 *                                               matching Error class
 *
 * DONE is deliberately separate from the payload: evaluated/memo
 * split and wall time are volatile request metadata, while the RESULT
 * payload stays a pure function of the request (the byte-identity
 * contract, DESIGN.md par. 13).
 */

#ifndef PIPECACHE_SERVE_PROTOCOL_HH
#define PIPECACHE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "sweep/grid_spec.hh"
#include "util/error.hh"

namespace pipecache::serve {

/** The request verbs. */
enum class Verb
{
    Sweep,
    Ping,
    Status,
    Shutdown,
};

/** A parsed SWEEP request. */
struct SweepRequest
{
    sweep::GridSpec grid;
    /** Suite scale divisor (selects/creates the daemon suite state). */
    double scaleDivisor = 2000.0;
    /** Worker budget carved from the shared pool; 0 = server default. */
    std::size_t threads = 0;
    /** Stream PROGRESS lines while the sweep runs. */
    bool progress = false;
    /** Factored (shared-component) evaluation; results identical. */
    bool factored = true;
    /**
     * Server-side deadline in milliseconds (0 = none). The service's
     * watchdog cancels the run at expiry — whether it is queued or
     * evaluating — and the daemon answers `ERR timeout` (client exit
     * code 7) instead of wedging the connection slot.
     */
    std::uint64_t deadlineMs = 0;
    /**
     * External stream mode (at most one may be set): evaluate the
     * grid against a named registry workload or a trace file readable
     * by the *server* process instead of the synthetic suite. The
     * RESULT payload is the stream-sweep JSON, byte-identical to the
     * CLI's --workload/--trace output.
     */
    std::string workload;
    std::string tracePath;
    /** Workload stream seed (workload mode only). */
    std::uint64_t workloadSeed = 1;

    bool streamMode() const
    {
        return !workload.empty() || !tracePath.empty();
    }
};

/** One parsed request line. */
struct Request
{
    Verb verb = Verb::Ping;
    /** Valid when verb == Verb::Sweep. */
    SweepRequest sweep;
};

/**
 * Parse one request line. Throws UsageError on an unknown verb, an
 * unknown or malformed key=value pair, or a bad value — the daemon
 * maps that onto an `ERR usage ...` response, never a dropped
 * connection.
 */
Request parseRequest(const std::string &line);

/** Collapse @p msg onto one line (the ERR grammar is line-oriented). */
std::string oneLine(const std::string &msg);

/** Format an `ERR <kind> <message>` line (no trailing newline). */
std::string errLine(ErrorKind kind, const std::string &msg);

/**
 * Parse an `ERR <kind> <message>` line (without the "ERR " prefix
 * already consumed or not — pass the full line) and throw the
 * matching taxonomy error. Throws IoError if @p line is not an ERR
 * line at all.
 */
[[noreturn]] void raiseErrLine(const std::string &line);

/** Parse "key=value" into its halves; false when '=' is missing. */
bool splitKeyValue(const std::string &tok, std::string &key,
                   std::string &value);

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_PROTOCOL_HH
