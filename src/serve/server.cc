#include "serve/server.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/fd_io.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace pipecache::serve {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

void
closeIfOpen(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

SweepServer::SweepServer(SweepService &service, ServerOptions opts)
    : service_(service), opts_(std::move(opts))
{
}

SweepServer::~SweepServer()
{
    reapConnections(true);
    for (int fd : listenFds_)
        ::close(fd);
    listenFds_.clear();
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    closeIfOpen(wakeRead_);
    closeIfOpen(wakeWrite_);
}

void
SweepServer::start()
{
    if (opts_.socketPath.empty() && opts_.tcpPort < 0)
        throw UsageError("server needs a socket path or a TCP port");

    int pipeFds[2];
    if (::pipe(pipeFds) != 0)
        throwErrno("pipe");
    wakeRead_ = pipeFds[0];
    wakeWrite_ = pipeFds[1];
    ::fcntl(wakeRead_, F_SETFD, FD_CLOEXEC);
    ::fcntl(wakeWrite_, F_SETFD, FD_CLOEXEC);

    if (!opts_.socketPath.empty()) {
        sockaddr_un addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        if (opts_.socketPath.size() >= sizeof addr.sun_path) {
            throw UsageError("socket path too long (" +
                             std::to_string(opts_.socketPath.size()) +
                             " bytes, max " +
                             std::to_string(sizeof addr.sun_path - 1) +
                             "): " + opts_.socketPath);
        }
        std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                    opts_.socketPath.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throwErrno("socket(AF_UNIX)");
        // The daemon owns its path; a stale socket from a killed
        // predecessor must not block startup.
        ::unlink(opts_.socketPath.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            ::close(fd);
            throwErrno("bind(" + opts_.socketPath + ")");
        }
        if (::listen(fd, 16) != 0) {
            ::close(fd);
            throwErrno("listen(" + opts_.socketPath + ")");
        }
        listenFds_.push_back(fd);
    }

    if (opts_.tcpPort >= 0) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throwErrno("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcpPort));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            ::close(fd);
            throwErrno("bind(127.0.0.1:" +
                       std::to_string(opts_.tcpPort) + ")");
        }
        if (::listen(fd, 16) != 0) {
            ::close(fd);
            throwErrno("listen");
        }
        socklen_t len = sizeof addr;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len) != 0) {
            ::close(fd);
            throwErrno("getsockname");
        }
        boundPort_ = static_cast<int>(ntohs(addr.sin_port));
        listenFds_.push_back(fd);
    }
}

void
SweepServer::requestShutdown()
{
    shutdown_.store(true, std::memory_order_relaxed);
    if (wakeWrite_ >= 0) {
        const char byte = 'x';
        // Async-signal-safe. Retry EINTR: a signal landing on the
        // signal handler's own write must not lose the only wakeup.
        // Anything else (EAGAIN = pipe full) means a wakeup is
        // already pending, which is all we need.
        ssize_t rc;
        do {
            rc = ::write(wakeWrite_, &byte, 1);
        } while (rc < 0 && errno == EINTR);
    }
}

void
SweepServer::serve()
{
    PC_ASSERT(!listenFds_.empty() && wakeRead_ >= 0,
              "serve() before start()");
    while (!shutdown_.load(std::memory_order_relaxed)) {
        std::vector<pollfd> fds;
        fds.push_back({wakeRead_, POLLIN, 0});
        for (int fd : listenFds_)
            fds.push_back({fd, POLLIN, 0});
        const int rc = ::poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("poll");
        }
        if (fds[0].revents != 0)
            break;
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if ((fds[i].revents & POLLIN) == 0)
                continue;
            const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
            // EINTR/ECONNABORTED/EMFILE all land here: drop this
            // round and keep accepting — a transient accept failure
            // must never take down the loop.
            if (cfd < 0)
                continue;
            if (fi::shouldFail("serve.accept.fail")) {
                // Simulate the kernel accepting but the daemon
                // failing to take the connection (e.g. fd pressure):
                // the client sees an immediate close and retries.
                ::close(cfd);
                continue;
            }
            auto conn = std::make_unique<Conn>();
            conn->fd = cfd;
            Conn &ref = *conn;
            {
                std::lock_guard<std::mutex> lock(connMutex_);
                conns_.push_back(std::move(conn));
            }
            ref.thread =
                std::thread([this, &ref] { handleConnection(ref); });
        }
        reapConnections(false);
    }

    // Drain: no new connections or admissions; in-flight requests
    // finish and stream their results. SHUT_RD unblocks idle readers
    // without cutting the write side a finishing sweep still needs.
    service_.beginDrain();
    for (int fd : listenFds_)
        ::close(fd);
    listenFds_.clear();
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto &conn : conns_)
            ::shutdown(conn->fd, SHUT_RD);
    }
    reapConnections(true);
}

void
SweepServer::dropConnections()
{
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto &conn : conns_) {
        conn->gone.store(true, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

void
SweepServer::reapConnections(bool all)
{
    std::list<std::unique_ptr<Conn>> toJoin;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (all || (*it)->done.load(std::memory_order_acquire)) {
                toJoin.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &conn : toJoin) {
        if (conn->thread.joinable())
            conn->thread.join();
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
}

void
SweepServer::handleConnection(Conn &conn)
{
    FdStream io(conn.fd);
    // Every write is serialized: PROGRESS lines come from engine
    // worker threads while RESULT/DONE come from this one.
    std::mutex writeMutex;
    auto sendLine = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(writeMutex);
        io.writeLine(line);
    };

    std::string line;
    for (;;) {
        try {
            if (!io.readLine(line))
                break;
        } catch (const DataError &e) {
            // Oversized line: the stream cannot be resynchronized.
            // Tell the client why, then close.
            try {
                sendLine(errLine(e.kind(), e.what()));
            } catch (const IoError &) {
            }
            break;
        } catch (const IoError &) {
            break;
        }
        if (line.empty())
            continue;

        Request req;
        try {
            req = parseRequest(line);
        } catch (const Error &e) {
            try {
                sendLine(errLine(e.kind(), e.what()));
                continue;
            } catch (const IoError &) {
                break;
            }
        }

        try {
            switch (req.verb) {
            case Verb::Ping:
                sendLine("OK pong");
                continue;
            case Verb::Status:
                sendLine("OK " + service_.statusLine());
                continue;
            case Verb::Shutdown:
                sendLine("OK draining");
                requestShutdown();
                continue;
            case Verb::Sweep:
                break;
            }
        } catch (const IoError &) {
            break;
        }

        // --- SWEEP ---
        std::vector<core::DesignPoint> points;
        try {
            points = req.sweep.grid.build();
            const std::uint64_t id = requestSeq_.fetch_add(
                                         1, std::memory_order_relaxed) +
                                     1;
            sendLine("ACK id=" + std::to_string(id) +
                     " points=" + std::to_string(points.size()));
        } catch (const Error &e) {
            try {
                sendLine(errLine(e.kind(), e.what()));
                continue;
            } catch (const IoError &) {
                break;
            }
        }

        std::function<void(std::size_t, std::size_t)> progress;
        if (req.sweep.progress) {
            progress = [&](std::size_t done, std::size_t total) {
                // Called on engine workers; a dead client turns into
                // cancellation, never an exception into the pool.
                try {
                    sendLine("PROGRESS " + std::to_string(done) + "/" +
                             std::to_string(total));
                } catch (...) {
                    conn.gone.store(true, std::memory_order_relaxed);
                }
            };
        }

        // Journal the raw request line before evaluation: if the
        // daemon dies anywhere in runPoints, a restart replays this
        // line to re-warm the caches for the client's retry. The
        // guard ends the entry on *every* exit — including ERR
        // responses, which are final answers, not crashes.
        struct JournalGuard
        {
            RequestJournal *j;
            std::uint64_t id;
            JournalGuard(RequestJournal *journal,
                         const std::string &request)
                : j(journal), id(j ? j->begin(request) : 0)
            {
            }
            ~JournalGuard()
            {
                // Unwinding must not terminate on a full disk; a
                // stale B record only costs one redundant replay.
                try {
                    if (j)
                        j->end(id);
                } catch (...) {
                }
            }
        };

        try {
            JournalGuard journal(opts_.journal, line);
            core::SuiteConfig suite;
            suite.scaleDivisor = req.sweep.scaleDivisor;
            RequestOptions reqOpts;
            reqOpts.threads = req.sweep.threads;
            reqOpts.factored = req.sweep.factored;
            reqOpts.deadlineMs = req.sweep.deadlineMs;
            reqOpts.onProgress = progress;
            reqOpts.cancel = &conn.gone;
            SweepResponse resp =
                req.sweep.streamMode()
                    ? service_.runStream(req.sweep, reqOpts)
                    : service_.runPoints(points,
                                         req.sweep.grid.name(), suite,
                                         reqOpts);
            {
                std::lock_guard<std::mutex> lock(writeMutex);
                io.writeLine("RESULT " +
                             std::to_string(resp.json.size()));
                io.writeAll(resp.json.data(), resp.json.size());
            }
            sendLine("DONE evaluated=" +
                     std::to_string(resp.stats.cacheMisses) +
                     " memo_hits=" +
                     std::to_string(resp.stats.cacheHits) +
                     " cross_hits=" + std::to_string(resp.memoHits) +
                     " failed=" +
                     std::to_string(resp.stats.pointsFailed) +
                     " wall_ms=" + std::to_string(resp.wallMs));
        } catch (const IoError &) {
            // Writing the result failed: the client is gone. Nothing
            // to report to, so just close up.
            conn.gone.store(true, std::memory_order_relaxed);
            break;
        } catch (const Error &e) {
            try {
                sendLine(errLine(e.kind(), e.what()));
            } catch (const IoError &) {
                break;
            }
            // A cancelled request means the client vanished — no
            // point reading more from this connection.
            if (conn.gone.load(std::memory_order_relaxed))
                break;
        } catch (const std::exception &e) {
            try {
                sendLine(errLine(ErrorKind::Internal, e.what()));
            } catch (const IoError &) {
                break;
            }
        }
    }

    conn.done.store(true, std::memory_order_release);
}

} // namespace pipecache::serve
