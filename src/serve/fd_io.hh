/**
 * @file
 * Minimal buffered line I/O over a connected socket fd, shared by the
 * daemon's connection handler and the client. Writes go through
 * send(MSG_NOSIGNAL) so a peer that went away surfaces as an IoError
 * (EPIPE) instead of a process-killing SIGPIPE — the daemon turns
 * that into request cancellation, never a crash.
 *
 * Robustness contract (DESIGN.md §14):
 *   - every read/write loop retries EINTR and resumes partial
 *     transfers, so a signal or a short send() never tears a line;
 *   - setTimeout() arms a per-operation deadline: a blocked read or
 *     write past it throws TimeoutError (exit code 7) instead of
 *     hanging forever on a stalled peer;
 *   - a protocol line longer than kMaxLineBytes is rejected as
 *     DataError rather than silently truncated — the stream cannot
 *     be resynchronized after an oversized line, so callers close
 *     the connection;
 *   - with PIPECACHE_FAULT_INJECTION=ON, the serve.io.* sites let
 *     tests and the chaos fuzz oracle inject short reads/writes,
 *     EINTR storms, connection resets, and torn lines at exactly
 *     these loops.
 *
 * Internal to src/serve (both sides of the wire live here); not a
 * general-purpose stream.
 */

#ifndef PIPECACHE_SERVE_FD_IO_HH
#define PIPECACHE_SERVE_FD_IO_HH

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hh"
#include "util/fault_injection.hh"

namespace pipecache::serve {

/** Longest accepted protocol line (requests, ACK/DONE/ERR). The
 *  RESULT payload is length-prefixed and goes through readExact(), so
 *  this bounds only the line-oriented grammar. */
constexpr std::size_t kMaxLineBytes = 64 * 1024;

/** Largest accepted RESULT payload announcement — a corrupt or
 *  hostile length must not turn into a multi-gigabyte allocation. */
constexpr std::size_t kMaxPayloadBytes = std::size_t(1) << 30;

/** Buffered reader + unbuffered writer on one socket fd (not owned). */
class FdStream
{
  public:
    explicit FdStream(int fd) : fd_(fd) {}

    /**
     * Per-operation I/O timeout in milliseconds (0 = block forever).
     * Applies to each readLine/readExact/writeAll call as a whole;
     * expiry throws TimeoutError.
     */
    void setTimeout(int ms) { timeoutMs_ = ms; }
    int timeout() const { return timeoutMs_; }

    /**
     * Read one '\n'-terminated line (terminator stripped, a final
     * unterminated line is returned as-is). False on clean EOF with
     * nothing buffered; throws IoError on a read error, TimeoutError
     * past the configured timeout, and DataError when the line
     * exceeds kMaxLineBytes (the stream is then unrecoverable).
     */
    bool readLine(std::string &line)
    {
        const Deadline deadline(timeoutMs_);
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                if (nl > kMaxLineBytes)
                    throw overlongLine(nl);
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            if (buf_.size() > kMaxLineBytes)
                throw overlongLine(buf_.size());
            if (!fill(deadline)) {
                if (buf_.empty())
                    return false;
                line = std::move(buf_);
                buf_.clear();
                return true;
            }
        }
    }

    /** Read exactly @p n bytes. Throws IoError on error or short EOF,
     *  TimeoutError past the configured timeout. */
    std::string readExact(std::size_t n)
    {
        const Deadline deadline(timeoutMs_);
        while (buf_.size() < n) {
            if (!fill(deadline)) {
                throw IoError("connection closed mid-payload (" +
                              std::to_string(buf_.size()) + " of " +
                              std::to_string(n) + " bytes)");
            }
        }
        std::string out = buf_.substr(0, n);
        buf_.erase(0, n);
        return out;
    }

    /** Write all of @p data. Throws IoError (EPIPE = peer gone) or
     *  TimeoutError past the configured timeout. */
    void writeAll(const char *data, std::size_t n)
    {
        const Deadline deadline(timeoutMs_);
        while (n > 0) {
            if (fi::shouldFail("serve.io.write.reset")) {
                throw IoError(
                    "socket write: injected connection reset");
            }
            if (fi::shouldFail("serve.io.write.torn")) {
                // Leave a torn line on the wire: deliver a prefix,
                // then fail as if the peer reset underneath us.
                const std::size_t half = n / 2;
                if (half > 0)
                    writeChunk(data, half, deadline);
                throw IoError("socket write: injected torn write "
                              "(connection reset)");
            }
            std::size_t chunk = n;
            if (fi::shouldFail("serve.io.write.short"))
                chunk = 1;
            const std::size_t w = writeChunk(data, chunk, deadline);
            data += w;
            n -= w;
        }
    }

    /** Write @p line plus the '\n' terminator. */
    void writeLine(const std::string &line)
    {
        std::string out = line;
        out += '\n';
        writeAll(out.data(), out.size());
    }

    int fd() const { return fd_; }

  private:
    /** Absolute deadline of one logical operation (0 = none) — a
     *  peer trickling one byte per poll cannot extend it. */
    class Deadline
    {
      public:
        explicit Deadline(int timeoutMs) : timeoutMs_(timeoutMs)
        {
            if (armed()) {
                expiry_ = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
            }
        }

        /** poll() timeout argument for the time remaining; 0 when
         *  already expired (poll returns immediately). */
        int remainingMs() const
        {
            if (!armed())
                return -1;
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    expiry_ - std::chrono::steady_clock::now())
                    .count();
            return left < 0 ? 0 : static_cast<int>(left);
        }

        bool armed() const { return timeoutMs_ > 0; }
        int totalMs() const { return timeoutMs_; }

      private:
        int timeoutMs_;
        std::chrono::steady_clock::time_point expiry_;
    };

    static DataError overlongLine(std::size_t n)
    {
        return DataError("protocol line exceeds " +
                         std::to_string(kMaxLineBytes) + " bytes (" +
                         std::to_string(n) +
                         " and counting); closing the stream");
    }

    /** Wait until @p events is ready; throws TimeoutError on expiry. */
    void waitReady(short events, const Deadline &deadline,
                   const char *what)
    {
        for (;;) {
            pollfd pfd{fd_, events, 0};
            const int rc = ::poll(&pfd, 1, deadline.remainingMs());
            if (rc > 0)
                return;
            if (rc == 0) {
                throw TimeoutError(
                    std::string("socket ") + what +
                    " timed out after " +
                    std::to_string(deadline.totalMs()) + " ms");
            }
            if (errno == EINTR)
                continue;
            throw IoError(std::string("poll(") + what +
                          "): " + std::strerror(errno));
        }
    }

    /** One send() of at most @p n bytes; returns bytes written. */
    std::size_t writeChunk(const char *data, std::size_t n,
                           const Deadline &deadline)
    {
        for (;;) {
            if (deadline.armed())
                waitReady(POLLOUT, deadline, "write");
            if (fi::shouldFail("serve.io.write.eintr")) {
                // Simulated EINTR: retry exactly like the real one.
                continue;
            }
            const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                throw IoError(std::string("socket write: ") +
                              std::strerror(errno));
            }
            return static_cast<std::size_t>(w);
        }
    }

    /** Pull more bytes into buf_; false on EOF. */
    bool fill(const Deadline &deadline)
    {
        char tmp[4096];
        for (;;) {
            if (deadline.armed())
                waitReady(POLLIN, deadline, "read");
            if (fi::shouldFail("serve.io.read.eintr"))
                continue;
            if (fi::shouldFail("serve.io.read.reset")) {
                throw IoError(
                    "socket read: injected connection reset");
            }
            std::size_t want = sizeof tmp;
            if (fi::shouldFail("serve.io.read.short"))
                want = 1;
            const ssize_t r = ::recv(fd_, tmp, want, 0);
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                throw IoError(std::string("socket read: ") +
                              std::strerror(errno));
            }
            if (r == 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(r));
            return true;
        }
    }

    int fd_;
    int timeoutMs_ = 0;
    std::string buf_;
};

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_FD_IO_HH
