/**
 * @file
 * Minimal buffered line I/O over a connected socket fd, shared by the
 * daemon's connection handler and the client. Writes go through
 * send(MSG_NOSIGNAL) so a peer that went away surfaces as an IoError
 * (EPIPE) instead of a process-killing SIGPIPE — the daemon turns
 * that into request cancellation, never a crash.
 *
 * Internal to src/serve (both sides of the wire live here); not a
 * general-purpose stream.
 */

#ifndef PIPECACHE_SERVE_FD_IO_HH
#define PIPECACHE_SERVE_FD_IO_HH

#include <cerrno>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hh"

namespace pipecache::serve {

/** Buffered reader + unbuffered writer on one socket fd (not owned). */
class FdStream
{
  public:
    explicit FdStream(int fd) : fd_(fd) {}

    /**
     * Read one '\n'-terminated line (terminator stripped, a final
     * unterminated line is returned as-is). False on clean EOF with
     * nothing buffered; throws IoError on a read error.
     */
    bool readLine(std::string &line)
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            if (!fill()) {
                if (buf_.empty())
                    return false;
                line = std::move(buf_);
                buf_.clear();
                return true;
            }
        }
    }

    /** Read exactly @p n bytes. Throws IoError on error or short EOF. */
    std::string readExact(std::size_t n)
    {
        while (buf_.size() < n) {
            if (!fill()) {
                throw IoError("connection closed mid-payload (" +
                              std::to_string(buf_.size()) + " of " +
                              std::to_string(n) + " bytes)");
            }
        }
        std::string out = buf_.substr(0, n);
        buf_.erase(0, n);
        return out;
    }

    /** Write all of @p data. Throws IoError (EPIPE = peer gone). */
    void writeAll(const char *data, std::size_t n)
    {
        while (n > 0) {
            const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                throw IoError(std::string("socket write: ") +
                              std::strerror(errno));
            }
            data += w;
            n -= static_cast<std::size_t>(w);
        }
    }

    /** Write @p line plus the '\n' terminator. */
    void writeLine(const std::string &line)
    {
        std::string out = line;
        out += '\n';
        writeAll(out.data(), out.size());
    }

    int fd() const { return fd_; }

  private:
    /** Pull more bytes into buf_; false on EOF. */
    bool fill()
    {
        char tmp[4096];
        for (;;) {
            const ssize_t r = ::recv(fd_, tmp, sizeof tmp, 0);
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                throw IoError(std::string("socket read: ") +
                              std::strerror(errno));
            }
            if (r == 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(r));
            return true;
        }
    }

    int fd_;
    std::string buf_;
};

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_FD_IO_HH
