/**
 * @file
 * SweepService: the transport-free heart of pipecache_sweepd.
 *
 * Holds the expensive state a cold CLI run pays for on every
 * invocation — prepared CpiModels (traces, translations, schedules),
 * the factored-evaluation component cache, and the sweep engine's
 * point memo — and serves sweep requests against it, so a warm
 * request skips straight to assembly. State is keyed by suite
 * configuration (the scale divisor): requests with equal scale share
 * one engine and therefore one memo.
 *
 * Admission control: at most maxInflight requests evaluate at once;
 * up to maxQueued more wait in FIFO order (ticket numbers, so a
 * burst drains in arrival order); beyond that — or once draining —
 * requests are rejected with UnavailableError, which the protocol
 * layer maps to `ERR unavailable ...` and exit code 6. A queued
 * request whose client goes away leaves the queue via its cancel
 * flag (InterruptedError).
 *
 * Determinism contract: responses carry RunOptions::coldMetadata
 * output — the JSON payload is a pure function of the request, byte-
 * identical to a cold `pipecache_sweep` run of the same grid, no
 * matter how warm the service is, how many requests run concurrently,
 * or what thread budget the request got. The warmth is reported out
 * of band (SweepResponse::memoHits, the DONE line, and the volatile
 * `sweep.memo.cross_request_hits` counter).
 *
 * Concurrency: one engine runs one sweep at a time (its runMutex) —
 * prepareFactored()/plan() are serial-by-contract — so concurrent
 * requests on the same suite serialize at the engine while requests
 * on different suites run truly in parallel. The engine's own pool
 * parallelizes within a request; RunOptions::threadBudget carves the
 * per-request share.
 *
 * Observability (first-day): serve.requests / serve.rejected /
 * serve.cancelled counters, serve.queue_depth and serve.request_ms
 * histograms (volatile: they depend on arrival timing), and a
 * "serve.request" Perfetto span per request.
 */

#ifndef PIPECACHE_SERVE_SERVICE_HH
#define PIPECACHE_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "serve/protocol.hh"
#include "sweep/sweep_engine.hh"

namespace pipecache::serve {

/** Service construction parameters. */
struct ServiceOptions
{
    /** Worker threads per suite engine; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Requests evaluating at once (admission control). */
    std::size_t maxInflight = 2;
    /** Requests allowed to wait beyond that; more are rejected. */
    std::size_t maxQueued = 8;
    /**
     * Hard cap on any request's thread budget (0 = uncapped). A
     * request's own threads= value is clamped to this.
     */
    std::size_t maxThreadsPerRequest = 0;
    /**
     * Bound on the factored component cache per suite (see
     * FactoredEvaluator::setComponentLimit). 0 = unbounded; the
     * daemon default bounds it so an adversarial mix of geometries
     * cannot grow memory without limit.
     */
    std::size_t componentCacheLimit = 256;
};

/** Per-request knobs shared by the protocol and oracle entry points. */
struct RequestOptions
{
    /** Worker budget carved from the shared pool; 0 = server default. */
    std::size_t threads = 0;
    /** Factored (shared-component) evaluation; results identical. */
    bool factored = true;
    /**
     * Deadline in milliseconds (0 = none). The service watchdog
     * cancels the request at expiry — while it is queued or while it
     * is evaluating — and the request fails with TimeoutError instead
     * of occupying its slot indefinitely.
     */
    std::uint64_t deadlineMs = 0;
    /** Forwarded to the engine (may be empty). */
    std::function<void(std::size_t, std::size_t)> onProgress;
    /** Client-gone flag, polled while queued and between points. */
    const std::atomic<bool> *cancel = nullptr;
};

/** Outcome of one admitted, completed sweep request. */
struct SweepResponse
{
    /** Byte-identical to the cold CLI's default JSON for this grid. */
    std::string json;
    /** As-if-cold stats (what the JSON header reports). */
    sweep::SweepStats stats;
    /** Unique points served from previous requests' memo. */
    std::uint64_t memoHits = 0;
    std::size_t points = 0;
    double wallMs = 0.0;
    std::string name;
};

/** The shared-state sweep service. */
class SweepService
{
  public:
    explicit SweepService(ServiceOptions opts = {});
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Admit, evaluate, and serialize one sweep request. Blocks while
     * queued and while evaluating. RequestOptions::onProgress is
     * forwarded to the engine; RequestOptions::cancel is polled both
     * in the queue and between point evaluations; a nonzero
     * RequestOptions::deadlineMs arms the watchdog.
     *
     * Throws UsageError (bad grid), UnavailableError (admission),
     * InterruptedError (cancelled), TimeoutError (deadline expired
     * while queued or evaluating), or whatever the evaluation threw
     * under fail-fast semantics — per-point faults are recorded in
     * the JSON instead (the engine's isolation default).
     */
    SweepResponse sweep(const SweepRequest &req,
                        const std::function<void(std::size_t,
                                                 std::size_t)>
                            &onProgress = nullptr,
                        const std::atomic<bool> *cancel = nullptr);

    /**
     * Same admission + evaluation path for an explicit point list and
     * full suite configuration (the fuzz oracle's grids and suites
     * are richer than the protocol exposes). @p name is the JSON
     * sweep name.
     */
    SweepResponse
    runPoints(const std::vector<core::DesignPoint> &points,
              const std::string &name,
              const core::SuiteConfig &suite,
              const RequestOptions &reqOpts = {});

    /**
     * Admission + evaluation for an external-stream request
     * (workload= / trace=). Stateless per request — no suite state,
     * no memo — but it occupies an admission slot like any other
     * sweep. The stream evaluation is one uninterruptible pass, so a
     * deadline or cancel takes effect while queued, not mid-pass.
     */
    SweepResponse runStream(const SweepRequest &req,
                            const RequestOptions &reqOpts = {});

    /**
     * Replay a journaled request from a previous daemon run to
     * re-warm the suite state, bypassing admission control: recovery
     * must not consume the live slots a retrying client is about to
     * need (the engine's runMutex still serializes per suite, and the
     * memo dedups the work either way). No deadline, no progress —
     * the original client is gone; this run exists for its side
     * effects on the caches. Counted as serve.recovered.
     */
    SweepResponse warm(const SweepRequest &req);

    /**
     * Stop admitting: queued requests are rejected, new ones refused,
     * in-flight ones finish. Idempotent.
     */
    void beginDrain();
    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    /** One-line counters for the STATUS verb. */
    std::string statusLine();

    /** Requests admitted so far (monotonic; ACK ids). */
    std::uint64_t requestsAdmitted() const
    {
        return admitted_.load(std::memory_order_relaxed);
    }

    const ServiceOptions &options() const { return opts_; }

  private:
    /** Everything one suite configuration owns. */
    struct SuiteState
    {
        core::CpiModel cpi;
        core::TpiModel tpi;
        sweep::SweepEngine engine;
        /** One sweep at a time per engine (plan() is serial). */
        std::mutex runMutex;

        SuiteState(const core::SuiteConfig &suite,
                   const sweep::SweepOptions &engineOpts)
            : cpi(suite), tpi(cpi), engine(tpi, engineOpts)
        {
        }
    };

    /** RAII admission ticket: release on every exit path. */
    class Admission;
    friend class Admission;

    /**
     * One watchdog-monitored request. The watchdog thread folds the
     * client-gone flag and deadline expiry into `combined`, which is
     * what the queue wait and the engine actually poll — one flag,
     * two causes, disambiguated by `expired` after the fact.
     */
    struct Watch
    {
        std::atomic<bool> combined{false};
        std::atomic<bool> expired{false};
        const std::atomic<bool> *clientCancel = nullptr;
        std::chrono::steady_clock::time_point expiry;
    };

    /** RAII watchdog registration for one deadline'd request. */
    class DeadlineGuard;
    friend class DeadlineGuard;

    SuiteState &stateFor(const core::SuiteConfig &suite);

    /** Caller holds watchMutex_. Starts the watchdog thread once. */
    void ensureWatchdogLocked();
    void watchdogLoop();

    ServiceOptions opts_;

    std::mutex admitMutex_;
    std::condition_variable admitCv_;
    std::size_t inflight_ = 0;
    /** FIFO of waiting tickets (front is next to admit). */
    std::deque<std::uint64_t> waiters_;
    std::uint64_t nextTicket_ = 1;
    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> recovered_{0};

    /** Watchdog: lazily started on the first deadline'd request. */
    std::mutex watchMutex_;
    std::condition_variable watchCv_;
    std::vector<Watch *> watches_;
    bool watchStop_ = false;
    std::thread watchdog_;

    std::mutex stateMutex_;
    /** Keyed by core::suiteConfigKey(). */
    std::map<std::uint64_t, std::unique_ptr<SuiteState>> states_;
};

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_SERVICE_HH
