/**
 * @file
 * Client side of the pipecache_sweepd protocol: connect to the
 * daemon's Unix or loopback-TCP endpoint, submit requests, stream
 * progress, and re-raise daemon `ERR <kind> ...` lines as the
 * matching error-taxonomy exception — so pipecache_sweepctl exits
 * with exactly the documented code for the kind (6 when the daemon
 * rejected under admission control, 5 when the request was
 * interrupted, and so on), the same way the local CLI would.
 */

#ifndef PIPECACHE_SERVE_CLIENT_HH
#define PIPECACHE_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/error.hh"

namespace pipecache::serve {

class FdStream;

/**
 * A client-side transport failure — connect refused, connection
 * reset, unexpected EOF — as opposed to an `ERR io ...` the daemon
 * itself reported (which stays a plain IoError). The distinction is
 * what makes retry sound: a transport failure before the first
 * RESULT byte means the daemon never answered, and sweeps are
 * idempotent (the response is a pure function of the request), so
 * re-issuing is safe; a daemon-reported error is a final answer and
 * must not be retried into a different one. Same kind/exit code (io,
 * 3) when it escapes.
 */
class TransportError : public IoError
{
  public:
    TransportError(const std::string &msg, bool retrySafe)
        : IoError(msg), retrySafe_(retrySafe)
    {
    }

    /** True when the failure predates the first RESULT line. */
    bool retrySafe() const { return retrySafe_; }

  private:
    bool retrySafe_;
};

/** Deterministic exponential-backoff retry for transport failures. */
struct RetryPolicy
{
    /** Total attempts including the first (1 = never retry). */
    std::size_t maxAttempts = 1;
    /** First backoff; doubles per retry up to maxDelayMs. */
    std::uint64_t baseDelayMs = 50;
    std::uint64_t maxDelayMs = 2000;
    /**
     * Jitter seed. The actual delay for attempt k is drawn
     * deterministically from (seed, request, k) — reproducible runs
     * stay reproducible, while distinct clients (distinct seeds)
     * decorrelate their retry storms.
     */
    std::uint64_t seed = 0;
};

/** One completed sweep request as the daemon reported it. */
struct SweepOutcome
{
    /** The RESULT payload — the cold-identical sweep JSON. */
    std::string json;
    /** Points from the ACK line. */
    std::uint64_t points = 0;
    /** DONE line fields. */
    std::uint64_t evaluated = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t crossHits = 0;
    /** Points recorded as failed (the CLI's exit-4 condition). */
    std::uint64_t failed = 0;
    double wallMs = 0.0;
};

/** A connected protocol client (one socket, serial requests). */
class SweepClient
{
  public:
    /** Connect to a Unix-domain endpoint. Throws IoError. */
    static SweepClient connectUnix(const std::string &path);
    /** Connect to 127.0.0.1:@p port. Throws IoError. */
    static SweepClient connectTcp(int port);

    ~SweepClient();
    SweepClient(SweepClient &&other) noexcept;
    SweepClient &operator=(SweepClient &&other) noexcept;
    SweepClient(const SweepClient &) = delete;
    SweepClient &operator=(const SweepClient &) = delete;

    /**
     * Submit `SWEEP @p args` (key=value tokens, already formatted;
     * may be empty for the default grid) and block until DONE.
     * @p onProgress (may be null) receives streamed PROGRESS lines —
     * include progress=1 in @p args to get any. Throws the taxonomy
     * error a daemon ERR line carries, or IoError on a broken
     * connection.
     */
    SweepOutcome
    sweep(const std::string &args,
          const std::function<void(std::size_t, std::size_t)>
              &onProgress = nullptr);

    /**
     * Send a no-argument verb ("PING", "STATUS", "SHUTDOWN") and
     * return the OK payload (e.g. "pong"). Throws on ERR.
     */
    std::string command(const std::string &verb);

    /**
     * Per-operation socket inactivity timeout in milliseconds (0 =
     * block forever, the default). A read or write stalled past it
     * throws TimeoutError (exit code 7). While a sweep evaluates the
     * daemon is silent, so pair a read timeout with progress=1 or
     * size it above the expected sweep duration.
     */
    void setIoTimeout(int ms);

  private:
    explicit SweepClient(int fd);

    int fd_ = -1;
    /** Persistent read buffer (protocol read-ahead must survive
     *  across calls). */
    std::unique_ptr<FdStream> io_;
    int ioTimeoutMs_ = 0;
};

/**
 * Issue `SWEEP @p args` with transport-failure retry: call
 * @p connect for a fresh client, run the sweep, and on a retry-safe
 * TransportError (connect failure, disconnect before the first
 * RESULT byte) back off deterministically per @p policy and re-issue
 * the identical request. The determinism contract makes the retried
 * response byte-identical to the uninterrupted one. Daemon-reported
 * errors (usage, unavailable, timeout, ...) propagate immediately —
 * only transport failures retry. @p retriesOut (may be null) receives
 * the number of retries performed, including on the throwing path.
 */
SweepOutcome
sweepWithRetry(const std::function<SweepClient()> &connect,
               const std::string &args, const RetryPolicy &policy,
               const std::function<void(std::size_t, std::size_t)>
                   &onProgress = nullptr,
               std::size_t *retriesOut = nullptr);

/**
 * The deterministic backoff schedule sweepWithRetry sleeps between
 * attempt @p attempt (0-based) and the next: half of
 * min(maxDelayMs, baseDelayMs * 2^attempt), plus a jitter drawn by
 * hashing (policy.seed, request, attempt) into the other half.
 * Exposed for tests — determinism is only a property if it's pinned.
 */
std::uint64_t retryDelayMs(const RetryPolicy &policy,
                           const std::string &request,
                           std::size_t attempt);

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_CLIENT_HH
