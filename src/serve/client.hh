/**
 * @file
 * Client side of the pipecache_sweepd protocol: connect to the
 * daemon's Unix or loopback-TCP endpoint, submit requests, stream
 * progress, and re-raise daemon `ERR <kind> ...` lines as the
 * matching error-taxonomy exception — so pipecache_sweepctl exits
 * with exactly the documented code for the kind (6 when the daemon
 * rejected under admission control, 5 when the request was
 * interrupted, and so on), the same way the local CLI would.
 */

#ifndef PIPECACHE_SERVE_CLIENT_HH
#define PIPECACHE_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace pipecache::serve {

class FdStream;

/** One completed sweep request as the daemon reported it. */
struct SweepOutcome
{
    /** The RESULT payload — the cold-identical sweep JSON. */
    std::string json;
    /** Points from the ACK line. */
    std::uint64_t points = 0;
    /** DONE line fields. */
    std::uint64_t evaluated = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t crossHits = 0;
    /** Points recorded as failed (the CLI's exit-4 condition). */
    std::uint64_t failed = 0;
    double wallMs = 0.0;
};

/** A connected protocol client (one socket, serial requests). */
class SweepClient
{
  public:
    /** Connect to a Unix-domain endpoint. Throws IoError. */
    static SweepClient connectUnix(const std::string &path);
    /** Connect to 127.0.0.1:@p port. Throws IoError. */
    static SweepClient connectTcp(int port);

    ~SweepClient();
    SweepClient(SweepClient &&other) noexcept;
    SweepClient &operator=(SweepClient &&other) noexcept;
    SweepClient(const SweepClient &) = delete;
    SweepClient &operator=(const SweepClient &) = delete;

    /**
     * Submit `SWEEP @p args` (key=value tokens, already formatted;
     * may be empty for the default grid) and block until DONE.
     * @p onProgress (may be null) receives streamed PROGRESS lines —
     * include progress=1 in @p args to get any. Throws the taxonomy
     * error a daemon ERR line carries, or IoError on a broken
     * connection.
     */
    SweepOutcome
    sweep(const std::string &args,
          const std::function<void(std::size_t, std::size_t)>
              &onProgress = nullptr);

    /**
     * Send a no-argument verb ("PING", "STATUS", "SHUTDOWN") and
     * return the OK payload (e.g. "pong"). Throws on ERR.
     */
    std::string command(const std::string &verb);

  private:
    explicit SweepClient(int fd);

    int fd_ = -1;
    /** Persistent read buffer (protocol read-ahead must survive
     *  across calls). */
    std::unique_ptr<FdStream> io_;
};

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_CLIENT_HH
