#include "serve/journal.hh"

#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "util/error.hh"

namespace pipecache::serve {

namespace {

/** Parse "B <id> <request...>" / "E <id>"; false on anything else
 *  (torn tail from a mid-append crash, stray garbage). */
bool
parseRecord(const std::string &line, char &tag, std::uint64_t &id,
            std::string &request)
{
    if (line.size() < 3 || line[1] != ' ')
        return false;
    tag = line[0];
    if (tag != 'B' && tag != 'E')
        return false;
    std::istringstream is(line.substr(2));
    if (!(is >> id))
        return false;
    if (tag == 'B') {
        // The request is everything after "B <id> ".
        std::getline(is >> std::ws, request);
        if (request.empty())
            return false;
    } else {
        std::string extra;
        if (is >> extra)
            return false;
        request.clear();
    }
    return true;
}

} // namespace

RequestJournal::RequestJournal(const std::string &path,
                               std::uint64_t firstId)
    : path_(path), nextId_(firstId == 0 ? 1 : firstId)
{
    out_.open(path, std::ios::out | std::ios::app);
    if (!out_)
        throw IoError("cannot open journal '" + path + "' for append");
}

std::uint64_t
RequestJournal::begin(const std::string &requestLine)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = nextId_++;
    // The request line is newline-free by construction (it came off a
    // line-oriented stream), so one record is one journal line.
    out_ << "B " << id << ' ' << requestLine << '\n';
    out_.flush();
    if (!out_)
        throw IoError("journal append failed ('" + path_ + "')");
    return id;
}

void
RequestJournal::end(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << "E " << id << '\n';
    out_.flush();
    if (!out_)
        throw IoError("journal append failed ('" + path_ + "')");
}

std::vector<JournalEntry>
RequestJournal::loadPending(const std::string &path)
{
    std::vector<JournalEntry> pending;
    std::ifstream in(path);
    if (!in)
        return pending; // absent file = empty journal

    // Insertion-ordered: map id -> index into `pending`; an E record
    // tombstones its B. Ids are per-process-run sequential, so a
    // journal that accumulated several runs (B 1 ... E 1 ... B 1)
    // still resolves correctly as long as we match an E against the
    // *latest* open B with that id — which the map overwrite gives us.
    std::unordered_map<std::uint64_t, std::size_t> open;
    std::string line;
    while (std::getline(in, line)) {
        char tag = 0;
        std::uint64_t id = 0;
        std::string request;
        if (!parseRecord(line, tag, id, request))
            continue;
        if (tag == 'B') {
            open[id] = pending.size();
            pending.push_back(JournalEntry{id, std::move(request)});
        } else {
            const auto it = open.find(id);
            if (it != open.end()) {
                pending[it->second].request.clear();
                open.erase(it);
            }
        }
    }
    // Compact out the tombstoned slots, preserving begin order.
    std::vector<JournalEntry> out;
    for (auto &e : pending) {
        if (!e.request.empty())
            out.push_back(std::move(e));
    }
    return out;
}

std::vector<JournalEntry>
RequestJournal::compact(const std::string &path,
                        const std::vector<JournalEntry> &pending)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::out | std::ios::trunc);
        if (!out)
            throw IoError("cannot write journal '" + tmp + "'");
        std::uint64_t id = 1;
        for (const auto &e : pending)
            out << "B " << id++ << ' ' << e.request << '\n';
        out.flush();
        if (!out)
            throw IoError("journal compaction failed ('" + tmp + "')");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw IoError("cannot replace journal '" + path + "'");

    std::vector<JournalEntry> out;
    std::uint64_t id = 1;
    for (const auto &e : pending)
        out.push_back(JournalEntry{id++, e.request});
    return out;
}

} // namespace pipecache::serve
