/**
 * @file
 * RequestJournal: a line-oriented write-ahead journal of in-flight
 * SWEEP requests, so a daemon that crashes (SIGKILL, OOM, power)
 * mid-request can recover its working set on restart.
 *
 * The daemon appends `B <id> <request line>` when a sweep request is
 * admitted to the connection handler and `E <id>` when its response
 * (RESULT or ERR) has been written. A `B` without a matching `E` is
 * an in-flight request the crash orphaned. On startup the daemon
 * loads those, rewrites the journal to contain only them (so the file
 * stays bounded across restarts), and replays them through the
 * service to re-warm the suite state — the retrying client's request
 * then assembles from warm components instead of paying the cold
 * cost again. Replay is warmth, not correctness: responses are byte-
 * identical either way (the determinism contract), recovery only
 * buys back the latency.
 *
 * The idempotency key is the request line itself (the grid key plus
 * the protocol knobs); recovery strips the deadline before replaying
 * so an orphaned deadline cannot expire a warm-up run.
 *
 * Robustness: entries are flushed to the kernel per append (SIGKILL
 * cannot lose them; only power loss can), a torn final line from a
 * mid-append crash is ignored on load, and a missing journal file is
 * an empty journal, never an error.
 */

#ifndef PIPECACHE_SERVE_JOURNAL_HH
#define PIPECACHE_SERVE_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace pipecache::serve {

/** One orphaned (begun, never ended) request from a prior run. */
struct JournalEntry
{
    std::uint64_t id = 0;
    /** The raw request line ("SWEEP key=value ..."). */
    std::string request;
};

/** Append-only journal of in-flight request lines. Thread-safe. */
class RequestJournal
{
  public:
    /**
     * Open @p path for appending, creating it when absent. Opening is
     * cheap and does not read existing content — run loadPending() +
     * compact() first when restart recovery is wanted, and pass the
     * first id after the compacted range as @p firstId so fresh
     * requests never collide with the recovered entries' ids. Throws
     * IoError when the path cannot be opened.
     */
    explicit RequestJournal(const std::string &path,
                            std::uint64_t firstId = 1);

    RequestJournal(const RequestJournal &) = delete;
    RequestJournal &operator=(const RequestJournal &) = delete;

    /** Journal a request as in-flight; returns its entry id. */
    std::uint64_t begin(const std::string &requestLine);

    /** Mark the entry @p id as completed (responded, even with ERR). */
    void end(std::uint64_t id);

    const std::string &path() const { return path_; }

    /**
     * Read @p path and return every begun-but-never-ended request, in
     * begin order. Malformed or torn lines are skipped; a missing
     * file yields an empty list.
     */
    static std::vector<JournalEntry>
    loadPending(const std::string &path);

    /**
     * Rewrite @p path to contain exactly @p pending as fresh `B`
     * entries (new sequential ids starting at 1) and return them —
     * the startup compaction step. A recovery pass then end()s each
     * as it replays. Throws IoError on write failure.
     */
    static std::vector<JournalEntry>
    compact(const std::string &path,
            const std::vector<JournalEntry> &pending);

  private:
    void append(const std::string &record);

    std::string path_;
    std::mutex mutex_;
    std::ofstream out_;
    std::uint64_t nextId_ = 1;
};

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_JOURNAL_HH
