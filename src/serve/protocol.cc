#include "serve/protocol.hh"

#include <sstream>
#include <vector>

#include "util/parse.hh"

namespace pipecache::serve {

namespace {

/** Split @p line on runs of spaces/tabs. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "0" || value == "false")
        return false;
    if (value == "1" || value == "true")
        return true;
    throw UsageError("bad " + key + " value '" + value +
                     "' (need 0 or 1)");
}

} // namespace

bool
splitKeyValue(const std::string &tok, std::string &key,
              std::string &value)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = tok.substr(0, eq);
    value = tok.substr(eq + 1);
    return true;
}

Request
parseRequest(const std::string &line)
{
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty())
        throw UsageError("empty request line");

    Request req;
    const std::string &verb = toks.front();
    if (verb == "PING") {
        req.verb = Verb::Ping;
    } else if (verb == "STATUS") {
        req.verb = Verb::Status;
    } else if (verb == "SHUTDOWN") {
        req.verb = Verb::Shutdown;
    } else if (verb == "SWEEP") {
        req.verb = Verb::Sweep;
    } else {
        throw UsageError("unknown verb '" + verb +
                         "' (known: SWEEP, PING, STATUS, SHUTDOWN)");
    }
    if (req.verb != Verb::Sweep) {
        if (toks.size() > 1)
            throw UsageError(verb + " takes no arguments");
        return req;
    }

    SweepRequest &sw = req.sweep;
    for (std::size_t i = 1; i < toks.size(); ++i) {
        std::string key;
        std::string value;
        if (!splitKeyValue(toks[i], key, value)) {
            throw UsageError("bad token '" + toks[i] +
                             "' (need key=value)");
        }
        if (key == "scale") {
            if (!util::parseFiniteDouble(value, sw.scaleDivisor) ||
                sw.scaleDivisor < 1.0) {
                throw UsageError("bad scale '" + value +
                                 "' (need a finite number >= 1)");
            }
        } else if (key == "threads") {
            if (!util::parseSize(value, sw.threads)) {
                throw UsageError("bad threads '" + value + "'");
            }
        } else if (key == "progress") {
            sw.progress = parseBool(key, value);
        } else if (key == "factored") {
            sw.factored = parseBool(key, value);
        } else if (key == "deadline_ms") {
            std::size_t ms = 0;
            // Bounded so a deadline survives int-milliseconds math
            // everywhere downstream (~24 days is "no deadline").
            if (!util::parseSize(value, ms) || ms > (1u << 31)) {
                throw UsageError("bad deadline_ms '" + value +
                                 "' (need 0.." +
                                 std::to_string(1u << 31) + ")");
            }
            sw.deadlineMs = ms;
        } else if (key == "workload") {
            if (value.empty())
                throw UsageError("bad workload '' (need a name)");
            sw.workload = value;
        } else if (key == "trace") {
            if (value.empty())
                throw UsageError("bad trace '' (need a path)");
            sw.tracePath = value;
        } else if (key == "workload_seed") {
            std::size_t seed = 0;
            if (!util::parseSize(value, seed)) {
                throw UsageError("bad workload_seed '" + value + "'");
            }
            sw.workloadSeed = seed;
        } else {
            // Everything else is a grid key; GridSpec::set throws
            // UsageError on unknown keys and bad values.
            sw.grid.set(key, value);
        }
    }
    if (!sw.workload.empty() && !sw.tracePath.empty())
        throw UsageError("workload= and trace= are exclusive");
    sw.grid.validate();
    return req;
}

std::string
oneLine(const std::string &msg)
{
    std::string out = msg;
    for (char &c : out) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    return out;
}

std::string
errLine(ErrorKind kind, const std::string &msg)
{
    return std::string("ERR ") + errorKindName(kind) + " " +
           oneLine(msg);
}

void
raiseErrLine(const std::string &line)
{
    // "ERR <kind> <message>"
    if (line.rfind("ERR ", 0) != 0)
        throw IoError("malformed daemon error line: " + line);
    const auto kindBegin = 4U;
    const auto kindEnd = line.find(' ', kindBegin);
    const std::string kindName =
        line.substr(kindBegin, kindEnd == std::string::npos
                                   ? std::string::npos
                                   : kindEnd - kindBegin);
    const std::string msg = kindEnd == std::string::npos
                                ? std::string("(no message)")
                                : line.substr(kindEnd + 1);
    switch (errorKindFromName(kindName)) {
    case ErrorKind::Usage:
        throw UsageError(msg);
    case ErrorKind::Data:
        throw DataError(msg);
    case ErrorKind::Io:
        throw IoError(msg);
    case ErrorKind::Interrupted:
        throw InterruptedError(msg);
    case ErrorKind::Unavailable:
        throw UnavailableError(msg);
    case ErrorKind::Timeout:
        throw TimeoutError(msg);
    default:
        throw InternalError(msg);
    }
}

} // namespace pipecache::serve
