#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "sweep/result_sink.hh"
#include "sweep/stream_sweep.hh"
#include "trace/source.hh"
#include "workloads/registry.hh"

namespace pipecache::serve {

/**
 * Registers one request with the watchdog for the lifetime of the
 * request. With no deadline this is a pass-through (cancel() returns
 * the client's own flag and nothing is registered); with one, the
 * watchdog folds client-gone and expiry into the combined flag the
 * queue wait and the engine poll, and expired() tells the caller
 * which cause fired so InterruptedError can be upgraded to
 * TimeoutError.
 */
class SweepService::DeadlineGuard
{
  public:
    DeadlineGuard(SweepService &s, std::uint64_t deadlineMs,
                  const std::atomic<bool> *clientCancel)
        : s_(s), armed_(deadlineMs != 0), deadlineMs_(deadlineMs)
    {
        if (!armed_) {
            flag_ = clientCancel;
            return;
        }
        watch_.clientCancel = clientCancel;
        watch_.expiry = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadlineMs);
        flag_ = &watch_.combined;
        std::lock_guard<std::mutex> lock(s_.watchMutex_);
        s_.watches_.push_back(&watch_);
        s_.ensureWatchdogLocked();
        s_.watchCv_.notify_all();
    }

    ~DeadlineGuard()
    {
        if (!armed_)
            return;
        std::lock_guard<std::mutex> lock(s_.watchMutex_);
        auto &v = s_.watches_;
        v.erase(std::remove(v.begin(), v.end(), &watch_), v.end());
    }

    DeadlineGuard(const DeadlineGuard &) = delete;
    DeadlineGuard &operator=(const DeadlineGuard &) = delete;

    /** The flag the queue wait and the engine should poll. */
    const std::atomic<bool> *cancel() const { return flag_; }

    bool expired() const
    {
        return armed_ && watch_.expired.load(std::memory_order_relaxed);
    }

    std::uint64_t deadlineMs() const { return deadlineMs_; }

  private:
    SweepService &s_;
    bool armed_;
    std::uint64_t deadlineMs_;
    Watch watch_;
    const std::atomic<bool> *flag_ = nullptr;
};

/**
 * FIFO admission ticket. Construction blocks until admitted and
 * throws UnavailableError (queue full / draining) or
 * InterruptedError (cancel observed while queued); destruction
 * releases the slot. Lives on the request thread's stack, so every
 * exit path — including evaluation exceptions — releases.
 */
class SweepService::Admission
{
  public:
    Admission(SweepService &s, const std::atomic<bool> *cancel) : s_(s)
    {
        std::unique_lock<std::mutex> lock(s.admitMutex_);
        depth_ = s.waiters_.size();
        rejectIfDraining(lock);
        if (s.inflight_ < s.opts_.maxInflight && s.waiters_.empty()) {
            ++s.inflight_;
        } else {
            if (s.waiters_.size() >= s.opts_.maxQueued) {
                s.rejected_.fetch_add(1, std::memory_order_relaxed);
                throw UnavailableError(
                    "admission queue full (" +
                    std::to_string(s.inflight_) + " in flight, " +
                    std::to_string(s.waiters_.size()) +
                    " queued); retry later");
            }
            const std::uint64_t ticket = s.nextTicket_++;
            s.waiters_.push_back(ticket);
            // Bounded waits so a queued request notices its client's
            // cancel flag without a dedicated wakeup channel.
            for (;;) {
                if (!s.waiters_.empty() &&
                    s.waiters_.front() == ticket &&
                    s.inflight_ < s.opts_.maxInflight) {
                    s.waiters_.pop_front();
                    ++s.inflight_;
                    break;
                }
                s.admitCv_.wait_for(lock,
                                    std::chrono::milliseconds(50));
                if (s.draining_.load(std::memory_order_relaxed)) {
                    dropTicket(ticket);
                    s.rejected_.fetch_add(1,
                                          std::memory_order_relaxed);
                    throw UnavailableError(
                        "service is draining; request rejected");
                }
                if (cancel &&
                    cancel->load(std::memory_order_relaxed)) {
                    dropTicket(ticket);
                    s.cancelled_.fetch_add(1,
                                           std::memory_order_relaxed);
                    throw InterruptedError(
                        "request cancelled while queued");
                }
            }
        }
        id_ = s.admitted_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    ~Admission()
    {
        std::lock_guard<std::mutex> lock(s_.admitMutex_);
        --s_.inflight_;
        s_.admitCv_.notify_all();
    }

    Admission(const Admission &) = delete;
    Admission &operator=(const Admission &) = delete;

    /** Waiters already queued when this request arrived. */
    std::size_t depthAtArrival() const { return depth_; }
    std::uint64_t id() const { return id_; }

  private:
    void rejectIfDraining(std::unique_lock<std::mutex> &)
    {
        if (s_.draining_.load(std::memory_order_relaxed)) {
            s_.rejected_.fetch_add(1, std::memory_order_relaxed);
            throw UnavailableError(
                "service is draining; request rejected");
        }
    }

    /** Caller holds admitMutex_. */
    void dropTicket(std::uint64_t ticket)
    {
        for (auto it = s_.waiters_.begin(); it != s_.waiters_.end();
             ++it) {
            if (*it == ticket) {
                s_.waiters_.erase(it);
                break;
            }
        }
        s_.admitCv_.notify_all();
    }

    SweepService &s_;
    std::size_t depth_ = 0;
    std::uint64_t id_ = 0;
};

SweepService::SweepService(ServiceOptions opts) : opts_(opts)
{
    if (opts_.maxInflight == 0)
        opts_.maxInflight = 1;
}

SweepService::~SweepService()
{
    {
        std::lock_guard<std::mutex> lock(watchMutex_);
        watchStop_ = true;
        watchCv_.notify_all();
    }
    if (watchdog_.joinable())
        watchdog_.join();
}

void
SweepService::ensureWatchdogLocked()
{
    if (watchdog_.joinable())
        return;
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

void
SweepService::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(watchMutex_);
    while (!watchStop_) {
        const auto now = std::chrono::steady_clock::now();
        for (Watch *w : watches_) {
            if (w->clientCancel &&
                w->clientCancel->load(std::memory_order_relaxed)) {
                w->combined.store(true, std::memory_order_relaxed);
            }
            if (now >= w->expiry &&
                !w->expired.load(std::memory_order_relaxed)) {
                w->expired.store(true, std::memory_order_relaxed);
                w->combined.store(true, std::memory_order_relaxed);
            }
        }
        // A 10 ms tick bounds deadline overshoot; the engine polls
        // the combined flag between points, so total detection
        // latency is tick + one point evaluation.
        watchCv_.wait_for(lock, std::chrono::milliseconds(10));
    }
}

SweepService::SuiteState &
SweepService::stateFor(const core::SuiteConfig &suite)
{
    const std::uint64_t key = core::suiteConfigKey(suite);
    std::lock_guard<std::mutex> lock(stateMutex_);
    auto it = states_.find(key);
    if (it == states_.end()) {
        sweep::SweepOptions engineOpts;
        engineOpts.threads = opts_.threads;
        auto state =
            std::make_unique<SuiteState>(suite, engineOpts);
        state->cpi.setFactoredComponentLimit(
            opts_.componentCacheLimit);
        it = states_.emplace(key, std::move(state)).first;
    }
    return *it->second;
}

SweepResponse
SweepService::sweep(
    const SweepRequest &req,
    const std::function<void(std::size_t, std::size_t)> &onProgress,
    const std::atomic<bool> *cancel)
{
    RequestOptions reqOpts;
    reqOpts.threads = req.threads;
    reqOpts.factored = req.factored;
    reqOpts.deadlineMs = req.deadlineMs;
    reqOpts.onProgress = onProgress;
    reqOpts.cancel = cancel;
    if (req.streamMode())
        return runStream(req, reqOpts);
    // Build (and thus validate) the grid before taking an admission
    // slot: a malformed request must not occupy capacity.
    const std::vector<core::DesignPoint> points = req.grid.build();
    core::SuiteConfig suite;
    suite.scaleDivisor = req.scaleDivisor;
    return runPoints(points, req.grid.name(), suite, reqOpts);
}

SweepResponse
SweepService::runPoints(const std::vector<core::DesignPoint> &points,
                        const std::string &name,
                        const core::SuiteConfig &suite,
                        const RequestOptions &reqOpts)
{
    if (points.empty())
        throw UsageError("empty sweep grid");

    obs::ScopedSpan span("serve.request", "serve");
    auto &reg = obs::StatsRegistry::global();

    DeadlineGuard guard(*this, reqOpts.deadlineMs, reqOpts.cancel);
    try {
        Admission admission(*this, guard.cancel());
        reg.addCounter("serve.requests", "sweep requests admitted",
                       obs::StatKind::Volatile);
        reg.sampleHistogram("serve.queue_depth",
                            "admission queue depth seen by arrivals",
                            obs::StatKind::Volatile, 16,
                            admission.depthAtArrival());

        const auto t0 = std::chrono::steady_clock::now();
        SuiteState &state = stateFor(suite);

        sweep::RunOptions run;
        run.threadBudget = reqOpts.threads;
        if (opts_.maxThreadsPerRequest != 0 &&
            (run.threadBudget == 0 ||
             run.threadBudget > opts_.maxThreadsPerRequest)) {
            run.threadBudget = opts_.maxThreadsPerRequest;
        }
        run.onProgress = reqOpts.onProgress;
        run.factored = reqOpts.factored;
        run.cancel = guard.cancel();
        run.coldMetadata = true;

        sweep::RunResult result;
        {
            std::lock_guard<std::mutex> runLock(state.runMutex);
            result = state.engine.run(points, run);
        }

        SweepResponse resp;
        resp.name = name;
        resp.points = points.size();
        resp.stats = result.stats;
        resp.memoHits = result.memoHits;
        resp.json =
            sweep::jsonString(name, result.records, result.stats);
        const auto t1 = std::chrono::steady_clock::now();
        resp.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();

        completed_.fetch_add(1, std::memory_order_relaxed);
        reg.sampleHistogram(
            "serve.request_ms",
            "request latency (admission to result)",
            obs::StatKind::Volatile, 64,
            static_cast<std::uint64_t>(resp.wallMs));
        return resp;
    } catch (const InterruptedError &) {
        // The combined flag fired; disambiguate the cause. A run
        // that finished before expiry returned above — a deadline is
        // a cancellation point, not a result-discarding gate.
        if (guard.expired()) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            reg.addCounter("serve.timeouts",
                           "requests that hit their deadline",
                           obs::StatKind::Volatile);
            throw TimeoutError("deadline of " +
                               std::to_string(guard.deadlineMs()) +
                               " ms expired before the sweep "
                               "finished");
        }
        throw;
    }
}

namespace {

/** Evaluate one external-stream request (the shared core of
 *  runStream and stream-request recovery). */
SweepResponse
evaluateStream(const SweepRequest &req)
{
    const std::vector<core::DesignPoint> points = req.grid.build();
    if (points.empty())
        throw UsageError("empty sweep grid");

    std::unique_ptr<trace::TraceSource> source;
    if (!req.tracePath.empty()) {
        source = trace::openTraceFile(req.tracePath);
    } else {
        workloads::WorkloadOptions wopts;
        wopts.seed = req.workloadSeed;
        source = workloads::openWorkload(req.workload, wopts);
    }
    const std::vector<trace::TraceRecord> stream =
        trace::drain(*source);
    const sweep::StreamSweepResult result =
        sweep::sweepStream(stream, points);

    SweepResponse resp;
    resp.name = req.grid.name();
    resp.points = points.size();
    resp.json = sweep::streamJsonString(req.grid.name(),
                                        source->name(), result);
    return resp;
}

} // namespace

SweepResponse
SweepService::runStream(const SweepRequest &req,
                        const RequestOptions &reqOpts)
{
    obs::ScopedSpan span("serve.stream_request", "serve");
    auto &reg = obs::StatsRegistry::global();

    DeadlineGuard guard(*this, reqOpts.deadlineMs, reqOpts.cancel);
    try {
        Admission admission(*this, guard.cancel());
        reg.addCounter("serve.requests", "sweep requests admitted",
                       obs::StatKind::Volatile);
        reg.sampleHistogram("serve.queue_depth",
                            "admission queue depth seen by arrivals",
                            obs::StatKind::Volatile, 16,
                            admission.depthAtArrival());

        const auto t0 = std::chrono::steady_clock::now();
        SweepResponse resp = evaluateStream(req);
        const auto t1 = std::chrono::steady_clock::now();
        resp.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();

        completed_.fetch_add(1, std::memory_order_relaxed);
        reg.sampleHistogram(
            "serve.request_ms",
            "request latency (admission to result)",
            obs::StatKind::Volatile, 64,
            static_cast<std::uint64_t>(resp.wallMs));
        return resp;
    } catch (const InterruptedError &) {
        if (guard.expired()) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            reg.addCounter("serve.timeouts",
                           "requests that hit their deadline",
                           obs::StatKind::Volatile);
            throw TimeoutError("deadline of " +
                               std::to_string(guard.deadlineMs()) +
                               " ms expired before the sweep "
                               "finished");
        }
        throw;
    }
}

SweepResponse
SweepService::warm(const SweepRequest &req)
{
    // Stream requests carry no suite state, so recovery is just a
    // straight re-evaluation (bounded: streams are finite).
    if (req.streamMode())
        return evaluateStream(req);
    const std::vector<core::DesignPoint> points = req.grid.build();
    if (points.empty())
        throw UsageError("empty sweep grid");
    core::SuiteConfig suite;
    suite.scaleDivisor = req.scaleDivisor;

    obs::ScopedSpan span("serve.recover", "serve");
    const auto t0 = std::chrono::steady_clock::now();
    SuiteState &state = stateFor(suite);

    sweep::RunOptions run;
    run.threadBudget = req.threads;
    if (opts_.maxThreadsPerRequest != 0 &&
        (run.threadBudget == 0 ||
         run.threadBudget > opts_.maxThreadsPerRequest)) {
        run.threadBudget = opts_.maxThreadsPerRequest;
    }
    run.factored = req.factored;
    run.coldMetadata = true;

    sweep::RunResult result;
    {
        std::lock_guard<std::mutex> runLock(state.runMutex);
        result = state.engine.run(points, run);
    }

    recovered_.fetch_add(1, std::memory_order_relaxed);
    obs::StatsRegistry::global().addCounter(
        "serve.recovered", "journaled requests replayed on restart",
        obs::StatKind::Volatile);

    SweepResponse resp;
    resp.name = req.grid.name();
    resp.points = points.size();
    resp.stats = result.stats;
    resp.memoHits = result.memoHits;
    resp.json = sweep::jsonString(req.grid.name(), result.records,
                                  result.stats);
    const auto t1 = std::chrono::steady_clock::now();
    resp.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return resp;
}

void
SweepService::beginDrain()
{
    draining_.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(admitMutex_);
    admitCv_.notify_all();
}

std::string
SweepService::statusLine()
{
    std::size_t inflight = 0;
    std::size_t queued = 0;
    {
        std::lock_guard<std::mutex> lock(admitMutex_);
        inflight = inflight_;
        queued = waiters_.size();
    }
    std::size_t suites = 0;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        suites = states_.size();
    }
    const std::uint64_t crossHits =
        obs::StatsRegistry::global().counterValue(
            "sweep.memo.cross_request_hits");
    const std::uint64_t evictions =
        obs::StatsRegistry::global().counterValue(
            "sweep.memo_evictions");
    std::string out;
    out += "inflight=" + std::to_string(inflight);
    out += " queued=" + std::to_string(queued);
    out += " max_inflight=" + std::to_string(opts_.maxInflight);
    out += " max_queue=" + std::to_string(opts_.maxQueued);
    out += " admitted=" +
           std::to_string(admitted_.load(std::memory_order_relaxed));
    out += " completed=" +
           std::to_string(completed_.load(std::memory_order_relaxed));
    out += " rejected=" +
           std::to_string(rejected_.load(std::memory_order_relaxed));
    out += " cancelled=" +
           std::to_string(cancelled_.load(std::memory_order_relaxed));
    out += " timeouts=" +
           std::to_string(timeouts_.load(std::memory_order_relaxed));
    out += " recovered=" +
           std::to_string(recovered_.load(std::memory_order_relaxed));
    out += " suites=" + std::to_string(suites);
    out += " cross_hits=" + std::to_string(crossHits);
    out += " memo_evictions=" + std::to_string(evictions);
    out += std::string(" draining=") + (draining() ? "1" : "0");
    return out;
}

} // namespace pipecache::serve
