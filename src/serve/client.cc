#include "serve/client.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/fd_io.hh"
#include "serve/protocol.hh"
#include "util/parse.hh"

namespace pipecache::serve {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

bool
consumePrefix(const std::string &line, const char *prefix,
              std::string &rest)
{
    const std::size_t n = std::strlen(prefix);
    if (line.compare(0, n, prefix) != 0)
        return false;
    rest = line.substr(n);
    return true;
}

/** Parse the "key=value key=value ..." tail of ACK/DONE lines. */
void
parseFields(const std::string &rest,
            const std::function<void(const std::string &,
                                     const std::string &)> &apply)
{
    std::size_t begin = 0;
    while (begin < rest.size()) {
        while (begin < rest.size() && rest[begin] == ' ')
            ++begin;
        const std::size_t end = rest.find(' ', begin);
        const std::string tok =
            rest.substr(begin, end == std::string::npos
                                   ? std::string::npos
                                   : end - begin);
        std::string key;
        std::string value;
        if (splitKeyValue(tok, key, value))
            apply(key, value);
        if (end == std::string::npos)
            break;
        begin = end + 1;
    }
}

std::uint64_t
fieldU64(const std::string &value)
{
    std::size_t out = 0;
    if (!util::parseSize(value, out))
        return 0;
    return out;
}

} // namespace

SweepClient::SweepClient(int fd)
    : fd_(fd), io_(std::make_unique<FdStream>(fd))
{
}

SweepClient::~SweepClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

SweepClient::SweepClient(SweepClient &&other) noexcept
    : fd_(other.fd_), io_(std::move(other.io_))
{
    other.fd_ = -1;
}

SweepClient &
SweepClient::operator=(SweepClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        io_ = std::move(other.io_);
        other.fd_ = -1;
    }
    return *this;
}

SweepClient
SweepClient::connectUnix(const std::string &path)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        throw IoError("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throwErrno("connect(" + path + ")");
    }
    return SweepClient(fd);
}

SweepClient
SweepClient::connectTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_INET)");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throwErrno("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    return SweepClient(fd);
}

SweepOutcome
SweepClient::sweep(
    const std::string &args,
    const std::function<void(std::size_t, std::size_t)> &onProgress)
{
    std::string request = "SWEEP";
    if (!args.empty())
        request += " " + args;
    io_->writeLine(request);

    SweepOutcome outcome;
    std::string line;
    std::string rest;
    for (;;) {
        if (!io_->readLine(line))
            throw IoError("daemon closed the connection mid-request");
        if (consumePrefix(line, "ACK ", rest)) {
            parseFields(rest, [&](const std::string &key,
                                  const std::string &value) {
                if (key == "points")
                    outcome.points = fieldU64(value);
            });
        } else if (consumePrefix(line, "PROGRESS ", rest)) {
            const auto slash = rest.find('/');
            if (onProgress && slash != std::string::npos) {
                std::size_t done = 0;
                std::size_t total = 0;
                if (util::parseSize(rest.substr(0, slash), done) &&
                    util::parseSize(rest.substr(slash + 1), total)) {
                    onProgress(done, total);
                }
            }
        } else if (consumePrefix(line, "RESULT ", rest)) {
            std::size_t nbytes = 0;
            if (!util::parseSize(rest, nbytes))
                throw IoError("malformed RESULT line: " + line);
            outcome.json = io_->readExact(nbytes);
        } else if (consumePrefix(line, "DONE", rest)) {
            parseFields(rest, [&](const std::string &key,
                                  const std::string &value) {
                if (key == "evaluated") {
                    outcome.evaluated = fieldU64(value);
                } else if (key == "memo_hits") {
                    outcome.memoHits = fieldU64(value);
                } else if (key == "cross_hits") {
                    outcome.crossHits = fieldU64(value);
                } else if (key == "failed") {
                    outcome.failed = fieldU64(value);
                } else if (key == "wall_ms") {
                    outcome.wallMs = std::strtod(value.c_str(), nullptr);
                }
            });
            return outcome;
        } else if (line.rfind("ERR ", 0) == 0) {
            raiseErrLine(line);
        } else {
            throw IoError("unexpected daemon line: " + line);
        }
    }
}

std::string
SweepClient::command(const std::string &verb)
{
    io_->writeLine(verb);
    std::string line;
    if (!io_->readLine(line))
        throw IoError("daemon closed the connection");
    std::string rest;
    if (consumePrefix(line, "OK ", rest))
        return rest;
    if (line == "OK")
        return "";
    if (line.rfind("ERR ", 0) == 0)
        raiseErrLine(line);
    throw IoError("unexpected daemon line: " + line);
}

} // namespace pipecache::serve
