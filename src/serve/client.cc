#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/fd_io.hh"
#include "serve/protocol.hh"
#include "util/parse.hh"

namespace pipecache::serve {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

bool
consumePrefix(const std::string &line, const char *prefix,
              std::string &rest)
{
    const std::size_t n = std::strlen(prefix);
    if (line.compare(0, n, prefix) != 0)
        return false;
    rest = line.substr(n);
    return true;
}

/** Parse the "key=value key=value ..." tail of ACK/DONE lines. */
void
parseFields(const std::string &rest,
            const std::function<void(const std::string &,
                                     const std::string &)> &apply)
{
    std::size_t begin = 0;
    while (begin < rest.size()) {
        while (begin < rest.size() && rest[begin] == ' ')
            ++begin;
        const std::size_t end = rest.find(' ', begin);
        const std::string tok =
            rest.substr(begin, end == std::string::npos
                                   ? std::string::npos
                                   : end - begin);
        std::string key;
        std::string value;
        if (splitKeyValue(tok, key, value))
            apply(key, value);
        if (end == std::string::npos)
            break;
        begin = end + 1;
    }
}

std::uint64_t
fieldU64(const std::string &value)
{
    std::size_t out = 0;
    if (!util::parseSize(value, out))
        return 0;
    return out;
}

} // namespace

SweepClient::SweepClient(int fd)
    : fd_(fd), io_(std::make_unique<FdStream>(fd))
{
}

void
SweepClient::setIoTimeout(int ms)
{
    ioTimeoutMs_ = ms < 0 ? 0 : ms;
    io_->setTimeout(ioTimeoutMs_);
}

SweepClient::~SweepClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

SweepClient::SweepClient(SweepClient &&other) noexcept
    : fd_(other.fd_), io_(std::move(other.io_))
{
    other.fd_ = -1;
}

SweepClient &
SweepClient::operator=(SweepClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        io_ = std::move(other.io_);
        other.fd_ = -1;
    }
    return *this;
}

SweepClient
SweepClient::connectUnix(const std::string &path)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        throw IoError("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throwErrno("connect(" + path + ")");
    }
    return SweepClient(fd);
}

SweepClient
SweepClient::connectTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_INET)");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throwErrno("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    return SweepClient(fd);
}

SweepOutcome
SweepClient::sweep(
    const std::string &args,
    const std::function<void(std::size_t, std::size_t)> &onProgress)
{
    std::string request = "SWEEP";
    if (!args.empty())
        request += " " + args;

    // Socket failures below become TransportError so retry logic can
    // tell them from daemon-reported `ERR io` lines (plain IoError
    // out of raiseErrLine): only the transport variety may re-issue.
    // Once the RESULT line has been seen the response is in flight
    // and the error is no longer marked retry-safe.
    bool resultSeen = false;
    try {
        io_->writeLine(request);
    } catch (const IoError &e) {
        throw TransportError(e.what(), true);
    }

    SweepOutcome outcome;
    std::string line;
    std::string rest;
    for (;;) {
        bool gotLine = false;
        try {
            gotLine = io_->readLine(line);
        } catch (const IoError &e) {
            throw TransportError(e.what(), !resultSeen);
        }
        if (!gotLine) {
            throw TransportError(
                "daemon closed the connection mid-request",
                !resultSeen);
        }
        if (consumePrefix(line, "ACK ", rest)) {
            parseFields(rest, [&](const std::string &key,
                                  const std::string &value) {
                if (key == "points")
                    outcome.points = fieldU64(value);
            });
        } else if (consumePrefix(line, "PROGRESS ", rest)) {
            const auto slash = rest.find('/');
            if (onProgress && slash != std::string::npos) {
                std::size_t done = 0;
                std::size_t total = 0;
                if (util::parseSize(rest.substr(0, slash), done) &&
                    util::parseSize(rest.substr(slash + 1), total)) {
                    onProgress(done, total);
                }
            }
        } else if (consumePrefix(line, "RESULT ", rest)) {
            resultSeen = true;
            std::size_t nbytes = 0;
            if (!util::parseSize(rest, nbytes))
                throw IoError("malformed RESULT line: " + line);
            if (nbytes > kMaxPayloadBytes) {
                throw DataError(
                    "RESULT announces " + std::to_string(nbytes) +
                    " bytes (cap " + std::to_string(kMaxPayloadBytes) +
                    "); refusing the allocation");
            }
            try {
                outcome.json = io_->readExact(nbytes);
            } catch (const IoError &e) {
                throw TransportError(e.what(), false);
            }
        } else if (consumePrefix(line, "DONE", rest)) {
            parseFields(rest, [&](const std::string &key,
                                  const std::string &value) {
                if (key == "evaluated") {
                    outcome.evaluated = fieldU64(value);
                } else if (key == "memo_hits") {
                    outcome.memoHits = fieldU64(value);
                } else if (key == "cross_hits") {
                    outcome.crossHits = fieldU64(value);
                } else if (key == "failed") {
                    outcome.failed = fieldU64(value);
                } else if (key == "wall_ms") {
                    outcome.wallMs = std::strtod(value.c_str(), nullptr);
                }
            });
            return outcome;
        } else if (line.rfind("ERR ", 0) == 0) {
            raiseErrLine(line);
        } else {
            throw IoError("unexpected daemon line: " + line);
        }
    }
}

std::string
SweepClient::command(const std::string &verb)
{
    std::string line;
    try {
        io_->writeLine(verb);
        if (!io_->readLine(line))
            throw IoError("daemon closed the connection");
    } catch (const IoError &e) {
        // Commands carry no state; any socket failure is retry-safe.
        throw TransportError(e.what(), true);
    }
    std::string rest;
    if (consumePrefix(line, "OK ", rest))
        return rest;
    if (line == "OK")
        return "";
    if (line.rfind("ERR ", 0) == 0)
        raiseErrLine(line);
    throw IoError("unexpected daemon line: " + line);
}

std::uint64_t
retryDelayMs(const RetryPolicy &policy, const std::string &request,
             std::size_t attempt)
{
    std::uint64_t cap = policy.baseDelayMs;
    for (std::size_t i = 0; i < attempt && cap < policy.maxDelayMs;
         ++i) {
        cap *= 2;
    }
    if (cap > policy.maxDelayMs)
        cap = policy.maxDelayMs;
    if (cap == 0)
        return 0;
    // FNV-1a over (seed, request, attempt): the jitter is a pure
    // function of what is being retried, so a replayed run backs off
    // identically while distinct seeds decorrelate.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](const void *p, std::size_t n) {
        const auto *bytes = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= bytes[i];
            h *= 1099511628211ull;
        }
    };
    mix(&policy.seed, sizeof policy.seed);
    mix(request.data(), request.size());
    const std::uint64_t a = attempt;
    mix(&a, sizeof a);
    const std::uint64_t half = cap / 2;
    return half + (half > 0 ? h % (half + 1) : 0);
}

SweepOutcome
sweepWithRetry(
    const std::function<SweepClient()> &connect,
    const std::string &args, const RetryPolicy &policy,
    const std::function<void(std::size_t, std::size_t)> &onProgress,
    std::size_t *retriesOut)
{
    const std::size_t attempts =
        policy.maxAttempts == 0 ? 1 : policy.maxAttempts;
    if (retriesOut)
        *retriesOut = 0;
    std::string request = "SWEEP";
    if (!args.empty())
        request += " " + args;

    for (std::size_t attempt = 0;; ++attempt) {
        bool connected = false;
        try {
            SweepClient client = connect();
            connected = true;
            return client.sweep(args, onProgress);
        } catch (const TransportError &e) {
            // Daemon-reported errors are plain taxonomy exceptions
            // and fall through to the caller; only transport-level
            // failures that predate the first RESULT byte re-issue.
            if (!e.retrySafe() || attempt + 1 >= attempts)
                throw;
        } catch (const IoError &) {
            // A connect() failure surfaces as plain IoError: the
            // daemon never saw the request, so retrying is safe. A
            // plain IoError *after* connecting is a daemon-reported
            // `ERR io` — a final answer, never retried.
            if (connected || attempt + 1 >= attempts)
                throw;
        }
        if (retriesOut)
            ++*retriesOut;
        const std::uint64_t delay =
            retryDelayMs(policy, request, attempt);
        if (delay > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

} // namespace pipecache::serve
