/**
 * @file
 * The socket front end of pipecache_sweepd: listeners (Unix and/or
 * loopback TCP), one handler thread per connection, and a poll-based
 * accept loop that a signal handler can interrupt through a self-pipe
 * — the piece that makes SIGTERM a *graceful* drain (stop accepting,
 * reject queued work, let in-flight sweeps finish and stream their
 * results, then exit) instead of an abort.
 *
 * All protocol logic lives in serve/protocol.*; all evaluation and
 * admission logic in serve/service.*. This layer only moves lines and
 * payload bytes, and maps everything thrown at it onto ERR lines —
 * a client can be malformed, slow, or gone, and the daemon keeps
 * serving the others.
 *
 * Client-disconnect handling: every connection owns a `gone` flag
 * wired into the engine's cancellation poll. A failed write (EPIPE on
 * a PROGRESS line or the RESULT payload) sets it, the engine winds
 * down at the next point boundary, and the request is accounted as
 * interrupted — the memo keeps whatever completed, so a retry is
 * warm.
 */

#ifndef PIPECACHE_SERVE_SERVER_HH
#define PIPECACHE_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"

namespace pipecache::serve {

class RequestJournal;

/** Listener configuration. At least one of the two must be set. */
struct ServerOptions
{
    /** Unix-domain socket path ("" = no Unix listener). The server
     *  owns the path: it unlinks stale ones at bind and its own at
     *  shutdown. */
    std::string socketPath;
    /** Loopback TCP port (-1 = no TCP listener; 0 = ephemeral, read
     *  the bound port back via tcpPort()). */
    int tcpPort = -1;
    /**
     * Crash-recovery journal (may be null). When set, every SWEEP
     * request is journaled from admission to response, so a daemon
     * killed mid-request can re-warm those sweeps on restart (see
     * serve/journal.hh). Not owned.
     */
    RequestJournal *journal = nullptr;
};

/** The daemon's accept loop + connection threads. */
class SweepServer
{
  public:
    SweepServer(SweepService &service, ServerOptions opts);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind + listen on the configured endpoints. Throws IoError. */
    void start();

    /** The TCP port actually bound (after start(); -1 if no TCP). */
    int tcpPort() const { return boundPort_; }

    /**
     * Accept and serve until requestShutdown(), then drain: stop
     * accepting, SweepService::beginDrain(), let in-flight requests
     * finish streaming, join every connection. Call from the main
     * thread after start().
     */
    void serve();

    /**
     * Ask serve() to wind down. Async-signal-safe (an atomic store
     * plus one write() on the self-pipe) — call it from SIGTERM /
     * SIGINT handlers.
     */
    void requestShutdown();

    /**
     * Hard-close every live connection (shutdown(SHUT_RDWR)), as if
     * the daemon's network vanished mid-stream. Clients see EOF or
     * ECONNRESET at an arbitrary protocol position; the engine winds
     * down through the normal client-gone path. A chaos/test hook —
     * the production path never calls it.
     */
    void dropConnections();

  private:
    struct Conn
    {
        int fd = -1;
        std::thread thread;
        /** Set when the client is known gone (failed write); doubles
         *  as the engine's cancellation flag. */
        std::atomic<bool> gone{false};
        /** Handler finished; the accept loop may join/reap it. */
        std::atomic<bool> done{false};
    };

    void handleConnection(Conn &conn);
    void reapConnections(bool all);

    SweepService &service_;
    ServerOptions opts_;
    std::vector<int> listenFds_;
    int boundPort_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> shutdown_{false};

    std::mutex connMutex_;
    std::list<std::unique_ptr<Conn>> conns_;
    std::atomic<std::uint64_t> requestSeq_{0};
};

} // namespace pipecache::serve

#endif // PIPECACHE_SERVE_SERVER_HH
