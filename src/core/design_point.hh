/**
 * @file
 * A design point in the paper's optimization space: primary-cache
 * organization (sizes, block size, associativity, miss penalty),
 * pipeline depths (b branch delay slots = d_L1-I, l load delay slots
 * = d_L1-D), and the branch/load handling schemes.
 */

#ifndef PIPECACHE_CORE_DESIGN_POINT_HH
#define PIPECACHE_CORE_DESIGN_POINT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "cache/hierarchy.hh"
#include "cpusim/cpi_engine.hh"
#include "sched/static_predict.hh"

namespace pipecache::core {

/** One candidate design. */
struct DesignPoint
{
    /** Branch delay slots b = L1-I pipeline depth. */
    std::uint32_t branchSlots = 2;
    /** Load delay slots l = L1-D pipeline depth. */
    std::uint32_t loadSlots = 2;

    /** L1 instruction cache size in kilowords. */
    std::uint32_t l1iSizeKW = 8;
    /** L1 data cache size in kilowords. */
    std::uint32_t l1dSizeKW = 8;
    /** Block (line) size in words (the paper's B). */
    std::uint32_t blockWords = 4;
    /** Set associativity (1 = direct-mapped, the paper's design). */
    std::uint32_t assoc = 1;
    /** L1 replacement policy (Random breaks the LRU inclusion
     *  property, so such points take the exact-replay path). */
    cache::Replacement repl = cache::Replacement::LRU;
    /** Flat L1 miss penalty in cycles (the paper's P). */
    std::uint32_t missPenaltyCycles = 10;

    cpusim::BranchScheme branchScheme = cpusim::BranchScheme::Squash;
    cpusim::LoadScheme loadScheme = cpusim::LoadScheme::Static;
    /** Static-prediction source for the squashing scheme. */
    sched::PredictSource predictSource = sched::PredictSource::Btfnt;
    cache::BtbConfig btb{};

    /** Write-through L1-D with a write buffer instead of the default
     *  write-back, write-allocate policy. */
    bool writeThroughBuffer = false;
    cpusim::WriteBufferConfig writeBufferConfig{};

    /** Combined L1 size in kilowords. */
    std::uint32_t totalKW() const { return l1iSizeKW + l1dSizeKW; }

    /** Cache hierarchy configuration for this point. */
    cache::HierarchyConfig hierarchyConfig() const;

    /** Replay-engine configuration for this point. */
    cpusim::EngineConfig engineConfig() const;

    /** Human-readable one-liner. */
    std::string describe() const;

    /** Memoization identity (btb geometry included). */
    friend bool operator==(const DesignPoint &a, const DesignPoint &b);
};

/** Hash for memoization maps. */
struct DesignPointHash
{
    std::size_t operator()(const DesignPoint &p) const;
};

} // namespace pipecache::core

#endif // PIPECACHE_CORE_DESIGN_POINT_HH
