/**
 * @file
 * TPI = CPI x t_CPU (equation 1) — the paper's figure of merit.
 *
 * The cycle time comes from the timing substrate: each L1 side's
 * pipeline loop (depth = its delay-slot count) and the ALU loop,
 * with the system clock set by the slower side (Section 5: pipelining
 * one side deeper than the other wastes CPI without shortening the
 * cycle).
 */

#ifndef PIPECACHE_CORE_TPI_MODEL_HH
#define PIPECACHE_CORE_TPI_MODEL_HH

#include "core/cpi_model.hh"
#include "core/design_point.hh"
#include "timing/cpu_circuit.hh"

namespace pipecache::core {

/** Full evaluation of one design point. */
struct TpiResult
{
    double cpi = 0.0;
    /** System cycle time (max of the two sides, >= ALU loop). */
    double tCpuNs = 0.0;
    /** Cycle time the I-side alone would allow. */
    double tIsideNs = 0.0;
    /** Cycle time the D-side alone would allow. */
    double tDsideNs = 0.0;
    /** Time per instruction in ns. */
    double tpiNs = 0.0;
};

/** Combines the CPI model with the timing model. */
class TpiModel
{
  public:
    TpiModel(CpiModel &cpi_model,
             const timing::CpuTimingParams &params = {});

    /** Evaluate TPI for a design point. */
    TpiResult evaluate(const DesignPoint &point);

    /**
     * Thread-safe TPI evaluation through the CPI model's prepared
     * path (see CpiModel::evaluatePrepared). Bypasses the CPI memo.
     */
    TpiResult evaluatePrepared(const DesignPoint &point) const;

    /** Cycle time only (no simulation). */
    double cycleNs(const DesignPoint &point) const;

    /** Attach the timing side to an already-simulated CPI (lets a
     *  caller holding the CpiResult avoid a second simulation). */
    TpiResult combineWithCpi(const DesignPoint &point, double cpi) const;

    const timing::CpuTimingParams &timingParams() const
    {
        return params_;
    }
    CpiModel &cpiModel() { return cpiModel_; }
    const CpiModel &cpiModel() const { return cpiModel_; }

  private:
    CpiModel &cpiModel_;
    timing::CpuTimingParams params_;
};

} // namespace pipecache::core

#endif // PIPECACHE_CORE_TPI_MODEL_HH
