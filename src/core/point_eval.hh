/**
 * @file
 * Scalar per-point metrics and the batch-evaluation seam between the
 * serial experiment code in core/ and the parallel sweep engine in
 * sweep/. Experiments and the optimizer ask a BatchPointEvaluator for
 * whole candidate sets at once; the serial implementation here walks
 * them one by one through the memoized models, while
 * sweep::SweepEngine fans them out across a thread pool.
 */

#ifndef PIPECACHE_CORE_POINT_EVAL_HH
#define PIPECACHE_CORE_POINT_EVAL_HH

#include <vector>

#include "core/tpi_model.hh"

namespace pipecache::core {

/** Every scalar an experiment reads off one evaluated design point. */
struct PointMetrics
{
    double cpi = 0.0;
    /** CPI contributions (additive accounting, Section 3). */
    double branchCpi = 0.0;
    double loadCpi = 0.0;
    double iMissCpi = 0.0;
    double dMissCpi = 0.0;

    double l1iMissRate = 0.0;
    double l1dMissRate = 0.0;

    /** Timing side of the merit function (equation 1). */
    double tCpuNs = 0.0;
    double tIsideNs = 0.0;
    double tDsideNs = 0.0;
    double tpiNs = 0.0;

    /** The TPI view of these metrics (for the optimizer). */
    TpiResult tpi() const
    {
        return {cpi, tCpuNs, tIsideNs, tDsideNs, tpiNs};
    }
};

/** Combine one CPI result with its timing result into metrics. */
PointMetrics makeMetrics(const CpiResult &cpi, const TpiResult &tpi);

/** Batch design-point evaluation, result order = input order. */
class BatchPointEvaluator
{
  public:
    virtual ~BatchPointEvaluator() = default;

    virtual std::vector<PointMetrics>
    evaluateBatch(const std::vector<DesignPoint> &points) = 0;
};

/** Single-threaded evaluator over the memoized models. */
class SerialEvaluator : public BatchPointEvaluator
{
  public:
    explicit SerialEvaluator(TpiModel &model) : model_(model) {}

    std::vector<PointMetrics>
    evaluateBatch(const std::vector<DesignPoint> &points) override;

  private:
    TpiModel &model_;
};

} // namespace pipecache::core

#endif // PIPECACHE_CORE_POINT_EVAL_HH
