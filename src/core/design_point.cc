#include "core/design_point.hh"

#include <sstream>

namespace pipecache::core {

cache::HierarchyConfig
DesignPoint::hierarchyConfig() const
{
    cache::HierarchyConfig config;
    config.l1i.name = "L1-I";
    config.l1i.sizeBytes = kiloWordsToBytes(l1iSizeKW);
    config.l1i.blockBytes = blockWords * bytesPerWord;
    config.l1i.assoc = assoc;
    config.l1i.repl = repl;
    config.l1d.name = "L1-D";
    config.l1d.sizeBytes = kiloWordsToBytes(l1dSizeKW);
    config.l1d.blockBytes = blockWords * bytesPerWord;
    config.l1d.assoc = assoc;
    config.l1d.repl = repl;
    if (writeThroughBuffer) {
        // Stores go around the fill path; misses do not allocate.
        config.l1d.writeAllocate = false;
    }
    config.flatPenalty = missPenaltyCycles;
    return config;
}

cpusim::EngineConfig
DesignPoint::engineConfig() const
{
    cpusim::EngineConfig config;
    config.branchSlots = branchSlots;
    config.loadSlots = loadSlots;
    config.branchScheme = branchScheme;
    config.loadScheme = loadScheme;
    config.btb = btb;
    if (writeThroughBuffer)
        config.writeBuffer = writeBufferConfig;
    return config;
}

std::string
DesignPoint::describe() const
{
    std::ostringstream os;
    os << "b=" << branchSlots << " l=" << loadSlots << " I=" << l1iSizeKW
       << "KW D=" << l1dSizeKW << "KW B=" << blockWords << "W P="
       << missPenaltyCycles << " assoc=" << assoc << " "
       << (branchScheme == cpusim::BranchScheme::Squash ? "squash"
                                                        : "btb")
       << "/"
       << (loadScheme == cpusim::LoadScheme::Static    ? "static"
           : loadScheme == cpusim::LoadScheme::Dynamic ? "dynamic"
                                                       : "none");
    if (repl == cache::Replacement::Random)
        os << " random-repl";
    if (predictSource == sched::PredictSource::Profile)
        os << " profile-pred";
    if (writeThroughBuffer)
        os << " wbuf(" << writeBufferConfig.entries << ")";
    return os.str();
}

bool
operator==(const DesignPoint &a, const DesignPoint &b)
{
    return a.branchSlots == b.branchSlots && a.loadSlots == b.loadSlots &&
           a.l1iSizeKW == b.l1iSizeKW && a.l1dSizeKW == b.l1dSizeKW &&
           a.blockWords == b.blockWords && a.assoc == b.assoc &&
           a.repl == b.repl &&
           a.missPenaltyCycles == b.missPenaltyCycles &&
           a.branchScheme == b.branchScheme &&
           a.loadScheme == b.loadScheme &&
           a.predictSource == b.predictSource &&
           a.writeThroughBuffer == b.writeThroughBuffer &&
           a.writeBufferConfig.entries == b.writeBufferConfig.entries &&
           a.writeBufferConfig.drainCycles ==
               b.writeBufferConfig.drainCycles &&
           a.btb.entries == b.btb.entries && a.btb.assoc == b.btb.assoc;
}

std::size_t
DesignPointHash::operator()(const DesignPoint &p) const
{
    std::size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(p.branchSlots);
    mix(p.loadSlots);
    mix(p.l1iSizeKW);
    mix(p.l1dSizeKW);
    mix(p.blockWords);
    mix(p.assoc);
    mix(static_cast<std::uint64_t>(p.repl));
    mix(p.missPenaltyCycles);
    mix(static_cast<std::uint64_t>(p.branchScheme));
    mix(static_cast<std::uint64_t>(p.loadScheme));
    mix(static_cast<std::uint64_t>(p.predictSource));
    mix(p.writeThroughBuffer ? 1 : 0);
    mix(p.writeBufferConfig.entries);
    mix(p.writeBufferConfig.drainCycles);
    mix(p.btb.entries);
    mix(p.btb.assoc);
    return h;
}

} // namespace pipecache::core
