/**
 * @file
 * The CPI model: owns the benchmark suite's synthetic programs,
 * recorded traces, translation files, and multiprogramming schedule,
 * and evaluates design points by replaying through cpusim. All
 * expensive artifacts are built once and shared; design-point results
 * are memoized — the same reuse structure the paper's methodology
 * relies on (one trace, many architectures).
 */

#ifndef PIPECACHE_CORE_CPI_MODEL_HH
#define PIPECACHE_CORE_CPI_MODEL_HH

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/design_point.hh"
#include "sched/branch_sched.hh"
#include "sched/profile_predict.hh"
#include "trace/benchmark.hh"
#include "trace/multiprog.hh"
#include "util/stats.hh"

namespace pipecache::core {

class FactoredEvaluator;

/** Suite-level configuration. */
struct SuiteConfig
{
    /** Divide the paper's Table 1 instruction counts by this. */
    double scaleDivisor = 200.0;
    /** Context-switch quantum in instructions. */
    Counter quantum = 200000;
    /** Benchmark names to include (empty = full Table 1 suite). */
    std::vector<std::string> benchmarks;
    /** Workload-generation salt: different salts give independent
     *  synthetic instances of the same suite (robustness sweeps). */
    std::uint64_t seedSalt = 0;
};

/**
 * Stable identity hash of a suite configuration (the value
 * CpiModel::suiteKey() reports). Configurations with equal keys
 * produce bit-identical results for the same design point — external
 * caches (the sweep memo, the sweep service's suite-state map) key on
 * it.
 */
std::uint64_t suiteConfigKey(const SuiteConfig &config);

/** Evaluation result of one design point. */
struct CpiResult
{
    cpusim::CpiBreakdown aggregate;
    std::vector<cpusim::CpiBreakdown> perBench;

    /** Aggregate CPI (time-weighted over the multiprogramming mix). */
    double cpi() const { return aggregate.cpi(); }

    /**
     * Weighted harmonic mean of per-benchmark CPI, weighted by each
     * benchmark's share of execution time — the paper's reporting
     * convention. Mathematically equal to cpi(); both are exposed so
     * tests can verify the identity.
     */
    double weightedHarmonicMeanCpi() const;

    cache::CacheStats l1i;
    cache::CacheStats l1d;
    cache::BtbStats btb;
};

/** The suite-owning evaluator. */
class CpiModel
{
  public:
    explicit CpiModel(const SuiteConfig &config = {});
    ~CpiModel();

    /** Evaluate (memoized) a design point over the multiprog mix. */
    const CpiResult &evaluate(const DesignPoint &point);

    /**
     * Pre-build every shared artifact (traces, translation files,
     * multiprogramming schedule) the given points need, so that
     * evaluatePrepared() can afterwards run concurrently from many
     * threads without touching any lazy cache.
     */
    void prepare(const std::vector<DesignPoint> &points);

    /**
     * Thread-safe evaluation of one design point. Requires a prior
     * prepare() call covering the point's translation needs; panics
     * otherwise. Does not consult or fill the memoization cache —
     * callers (the sweep engine) memoize at their own layer.
     */
    CpiResult evaluatePrepared(const DesignPoint &point) const;

    /**
     * Whether @p point is exactly factorable into cached components
     * (see FactoredEvaluator): write-buffer points couple data stalls
     * to the running cycle count, Random replacement breaks the LRU
     * inclusion property, and 3C classification needs a real
     * per-point hierarchy — all three take the monolithic path.
     */
    bool factorable(const DesignPoint &point) const;

    /**
     * prepare() plus factored-evaluation planning: registers the
     * factorable points' streams and cache geometries so that
     * evaluateFactored() can serve them from shared single-pass
     * stack simulations. Call serially, before concurrent
     * evaluateFactored()/evaluatePrepared() calls.
     */
    void prepareFactored(const std::vector<DesignPoint> &points);

    /**
     * Thread-safe factored evaluation of one design point; requires a
     * prior prepareFactored() covering it and factorable(point).
     * Bit-identical to evaluatePrepared(), typically without a replay.
     */
    CpiResult evaluateFactored(const DesignPoint &point) const;

    /**
     * Bound the factored-evaluation component cache (0 = unbounded,
     * the default; see FactoredEvaluator::setComponentLimit). Takes
     * effect immediately if the evaluator exists and is remembered
     * for the one prepareFactored() lazily creates otherwise. Meant
     * for long-lived daemons; single-process sweeps stay unbounded.
     */
    void setFactoredComponentLimit(std::size_t limit);

    /**
     * Full trace replays performed so far (monolithic evaluations plus
     * factored component replays). The sweep engine diffs this across
     * a run to report how many replays factoring saved.
     */
    std::uint64_t engineReplays() const
    {
        return engineReplays_.load(std::memory_order_relaxed);
    }

    /**
     * Stable identity of this model's suite configuration, for keying
     * external memoization caches: two models with equal suite keys
     * produce bit-identical results for the same design point.
     */
    std::uint64_t suiteKey() const;

    /** Benchmarks in this model's suite. */
    const std::vector<trace::Benchmark> &suite() const { return suite_; }
    std::size_t numBenchmarks() const { return suite_.size(); }

    /** Canonical program of benchmark @p i (lazily built). */
    const isa::Program &program(std::size_t i);
    /** Recorded trace of benchmark @p i (lazily built). */
    const trace::RecordedTrace &traceOf(std::size_t i);
    /** Translation file of benchmark @p i for @p b delay slots. */
    const sched::TranslationFile &
    xlat(std::size_t i, std::uint32_t b,
         sched::PredictSource source = sched::PredictSource::Btfnt);

    /** Self-trained branch profile of benchmark @p i. */
    const sched::BranchProfileData &branchProfile(std::size_t i);
    /** The shared multiprogramming schedule. */
    const trace::MultiprogSchedule &schedule();

    /** Suite-aggregate load-delay statistics (Figures 6/7, Table 5). */
    const sched::LoadDelayStats &loadDelayStats();

    const SuiteConfig &config() const { return config_; }

  private:
    void ensureTraces();

    /** Slot count whose translation files @p point replays through. */
    static std::uint32_t xlatSlots(const DesignPoint &point);

    /** The simulation itself; all shared artifacts must exist. */
    CpiResult simulate(const DesignPoint &point) const;

    SuiteConfig config_;
    std::vector<trace::Benchmark> suite_;

    bool tracesBuilt_ = false;
    std::vector<isa::Program> programs_;
    std::vector<trace::RecordedTrace> traces_;
    /** xlats_[{b, source}][bench]; built on demand. */
    std::map<std::pair<std::uint32_t, int>,
             std::vector<sched::TranslationFile>> xlats_;
    std::vector<sched::BranchProfileData> profiles_;
    std::unique_ptr<trace::MultiprogSchedule> schedule_;
    std::unique_ptr<sched::LoadDelayStats> loadStats_;

    std::unordered_map<DesignPoint, CpiResult, DesignPointHash> memo_;

    /** Component cache for evaluateFactored() (reads the shared
     *  artifacts above, hence the friendship). */
    friend class FactoredEvaluator;
    std::unique_ptr<FactoredEvaluator> factored_;
    /** Applied to factored_ when it is (or has been) created. */
    std::size_t factoredComponentLimit_ = 0;
    mutable std::atomic<std::uint64_t> engineReplays_{0};
};

} // namespace pipecache::core

#endif // PIPECACHE_CORE_CPI_MODEL_HH
