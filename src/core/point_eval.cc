#include "core/point_eval.hh"

namespace pipecache::core {

PointMetrics
makeMetrics(const CpiResult &cpi, const TpiResult &tpi)
{
    PointMetrics m;
    m.cpi = tpi.cpi;
    m.branchCpi = cpi.aggregate.branchCpi();
    m.loadCpi = cpi.aggregate.loadCpi();
    m.iMissCpi = cpi.aggregate.iMissCpi();
    m.dMissCpi = cpi.aggregate.dMissCpi();
    m.l1iMissRate = cpi.l1i.missRate();
    m.l1dMissRate = cpi.l1d.missRate();
    m.tCpuNs = tpi.tCpuNs;
    m.tIsideNs = tpi.tIsideNs;
    m.tDsideNs = tpi.tDsideNs;
    m.tpiNs = tpi.tpiNs;
    return m;
}

std::vector<PointMetrics>
SerialEvaluator::evaluateBatch(const std::vector<DesignPoint> &points)
{
    std::vector<PointMetrics> out;
    out.reserve(points.size());
    for (const DesignPoint &p : points) {
        const CpiResult &cpi = model_.cpiModel().evaluate(p);
        out.push_back(makeMetrics(cpi, model_.evaluate(p)));
    }
    return out;
}

} // namespace pipecache::core
