/**
 * @file
 * Timing-parameter sensitivity analysis.
 *
 * The reproduction's one divergence from the paper (the Figure 13
 * optimum location) traces to the calibrated timing constants, so a
 * careful reproduction must show which conclusions survive
 * perturbation of those constants. This module sweeps one timing
 * parameter at a time, recomputes the Figure 12 optimum for each
 * setting (reusing the simulated CPI surface — only the timing side
 * changes), and reports how the optimum's location and value move.
 */

#ifndef PIPECACHE_CORE_SENSITIVITY_HH
#define PIPECACHE_CORE_SENSITIVITY_HH

#include <functional>
#include <string>
#include <vector>

#include "core/tpi_model.hh"

namespace pipecache::core {

/** One sweepable timing parameter. */
struct TimingParameter
{
    std::string name;
    /** Nominal value (the calibrated default). */
    double nominal;
    /** Values to sweep (should bracket the nominal). */
    std::vector<double> values;
    /** Apply a value to a parameter set. */
    std::function<void(timing::CpuTimingParams &, double)> apply;
};

/** The canonical sweep set: t_SRAM, latch overhead, k0, ALU add. */
std::vector<TimingParameter> defaultTimingParameters();

/** Optimum of a Figure 12-style search under given timing params. */
struct OptimumPoint
{
    std::uint32_t depth = 0;
    std::uint32_t totalKW = 0;
    double tpiNs = 0.0;
    double tCpuNs = 0.0;
};

/**
 * Find the equal-split b = l optimum over depth 0..3 and total sizes
 * {8..128} KW under explicit timing parameters. CPI evaluations are
 * memoized inside @p cpi_model, so repeated calls only redo timing.
 */
OptimumPoint findOptimum(CpiModel &cpi_model,
                         const timing::CpuTimingParams &params,
                         std::uint32_t penalty = 10);

/** One row of a sensitivity report. */
struct SensitivityRow
{
    std::string parameter;
    double value = 0.0;
    OptimumPoint optimum;
    bool isNominal = false;
};

/** Sweep every parameter in @p params; rows grouped by parameter. */
std::vector<SensitivityRow>
sensitivitySweep(CpiModel &cpi_model,
                 const std::vector<TimingParameter> &params,
                 std::uint32_t penalty = 10);

} // namespace pipecache::core

#endif // PIPECACHE_CORE_SENSITIVITY_HH
