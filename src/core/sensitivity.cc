#include "core/sensitivity.hh"

#include "util/logging.hh"

namespace pipecache::core {

std::vector<TimingParameter>
defaultTimingParameters()
{
    std::vector<TimingParameter> params;

    params.push_back(
        {"t_SRAM ns",
         timing::SramChip{}.accessNs,
         {4.5, 5.0, 5.5, 6.0, 6.5},
         [](timing::CpuTimingParams &p, double v) {
             p.sram.accessNs = v;
         }});

    params.push_back(
        {"latch overhead ns",
         timing::CpuTimingParams{}.latchNs,
         {0.2, 0.3, 0.4, 0.5, 0.6},
         [](timing::CpuTimingParams &p, double v) { p.latchNs = v; }});

    params.push_back(
        {"MCM driver k0 ns",
         timing::McmParams{}.k0Ns,
         {0.6, 0.8, 1.0, 1.2, 1.4},
         [](timing::CpuTimingParams &p, double v) {
             p.mcm.k0Ns = v;
         }});

    params.push_back(
        {"ALU add ns",
         timing::CpuTimingParams{}.aluNs,
         {1.7, 1.9, 2.1, 2.3, 2.5},
         [](timing::CpuTimingParams &p, double v) {
             p.aluNs = v;
             p.agenNs = v; // the address adder scales with the ALU
         }});

    return params;
}

OptimumPoint
findOptimum(CpiModel &cpi_model, const timing::CpuTimingParams &params,
            std::uint32_t penalty)
{
    TpiModel tpi(cpi_model, params);

    OptimumPoint best;
    best.tpiNs = 1e18;
    for (std::uint32_t total : {8u, 16u, 32u, 64u, 128u}) {
        for (std::uint32_t depth = 0; depth <= 3; ++depth) {
            DesignPoint p;
            p.l1iSizeKW = total / 2;
            p.l1dSizeKW = total / 2;
            p.branchSlots = depth;
            p.loadSlots = depth;
            p.missPenaltyCycles = penalty;
            const TpiResult r = tpi.evaluate(p);
            if (r.tpiNs < best.tpiNs) {
                best.tpiNs = r.tpiNs;
                best.tCpuNs = r.tCpuNs;
                best.depth = depth;
                best.totalKW = total;
            }
        }
    }
    return best;
}

std::vector<SensitivityRow>
sensitivitySweep(CpiModel &cpi_model,
                 const std::vector<TimingParameter> &params,
                 std::uint32_t penalty)
{
    std::vector<SensitivityRow> rows;
    for (const auto &param : params) {
        PC_ASSERT(param.apply != nullptr, "parameter without applier");
        for (double value : param.values) {
            timing::CpuTimingParams tp;
            param.apply(tp, value);
            SensitivityRow row;
            row.parameter = param.name;
            row.value = value;
            row.isNominal = value == param.nominal;
            row.optimum = findOptimum(cpi_model, tp, penalty);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

} // namespace pipecache::core
