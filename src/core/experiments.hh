/**
 * @file
 * Experiment registry: one function per table/figure of the paper's
 * evaluation. Each returns a TextTable whose rows place the paper's
 * published anchor values (where the paper gives them) next to our
 * measured reproduction. Bench binaries are thin wrappers around these
 * functions; integration tests call them at reduced scale.
 */

#ifndef PIPECACHE_CORE_EXPERIMENTS_HH
#define PIPECACHE_CORE_EXPERIMENTS_HH

#include "core/optimizer.hh"
#include "core/point_eval.hh"
#include "core/tpi_model.hh"
#include "util/table.hh"

namespace pipecache::core::experiments {

/** Table 1: benchmark characteristics, paper vs. synthetic suite. */
TextTable table1(CpiModel &model);

/** Table 2: static code-size increase vs. branch delay slots. */
TextTable table2(CpiModel &model);

/** Table 3: static branch prediction performance vs. delay slots. */
TextTable table3(CpiModel &model);

/** Table 4: BTB prediction performance vs. delay cycles. */
TextTable table4(CpiModel &model);

/** Table 5: CPI increase due to load delay cycles. */
TextTable table5(CpiModel &model);

/** Table 6: optimal cycle times vs. L1 size and pipeline depth. */
TextTable table6(const timing::CpuTimingParams &params = {});

/**
 * The (L1-I size × depth) candidate grid behind Figures 3/4 and
 * Table 6 — one shared point set, so a sweep engine evaluating all
 * three reports serves figs 4 and the table entirely from its memo
 * cache after fig 3 runs.
 */
std::vector<DesignPoint> sizeDepthGrid(std::uint32_t block_words = 4,
                                       std::uint32_t penalty = 10);

/** Figure 3 evaluated as one batch (e.g. the parallel sweep engine). */
TextTable fig3(BatchPointEvaluator &eval, std::uint32_t block_words = 4,
               std::uint32_t penalty = 10);

/** Figure 4 evaluated as one batch. */
TextTable fig4(BatchPointEvaluator &eval, std::uint32_t block_words = 4,
               std::uint32_t penalty = 10);

/**
 * Table 6's cycle-time columns read off batch-evaluated grid points
 * (tIsideNs of the (size, depth) point). @p params must match the
 * evaluator's timing model for the chips / t_L1 columns to agree.
 */
TextTable table6(BatchPointEvaluator &eval,
                 const timing::CpuTimingParams &params = {});

/** Figure 3: I-miss CPI vs. L1-I size for b = 0..3. */
TextTable fig3(CpiModel &model, std::uint32_t block_words = 4,
               std::uint32_t penalty = 10);

/** Figure 4: total CPI vs. L1-I size for b = 0..3. */
TextTable fig4(CpiModel &model, std::uint32_t block_words = 4,
               std::uint32_t penalty = 10);

/** Figure 5: CPI vs. t_CPU (constant-time miss penalty). */
TextTable fig5(CpiModel &model);

/** Figure 6: dynamic distribution of the load distance e. */
TextTable fig6(CpiModel &model);

/** Figure 7: block-bounded distribution of e. */
TextTable fig7(CpiModel &model);

/** Figure 8: total CPI vs. L1-D size for l = 0..3. */
TextTable fig8(CpiModel &model, std::uint32_t block_words = 4,
               std::uint32_t penalty = 10);

/** Figure 9: TPI vs. L1-D size at l = 2. */
TextTable fig9(TpiModel &model);

/** Figure 11: relative CPI increase of extra load delay cycles. */
TextTable fig11(CpiModel &model);

/** Figure 12: TPI vs. combined L1 size, b = l = 0..3, P = 10. */
TextTable fig12(TpiModel &model, std::uint32_t penalty = 10);

/** Figure 12 companion: the same sweep with dynamic load issue. */
TextTable fig12Dynamic(TpiModel &model, std::uint32_t penalty = 10);

/** Figure 13: Figure 12 at P = 6, plus asymmetric I/D splits. */
TextTable fig13(TpiModel &model);

/** Run the multilevel optimizer from the paper's base architecture. */
TextTable optimizerTrajectory(TpiModel &model);

} // namespace pipecache::core::experiments

#endif // PIPECACHE_CORE_EXPERIMENTS_HH
