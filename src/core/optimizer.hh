/**
 * @file
 * Multilevel optimization (Section 2 of the paper): starting from a
 * base architecture, repeatedly generate candidate single-parameter
 * changes, evaluate each candidate's TPI through trace-driven
 * simulation plus timing analysis, adopt the best, and stop when no
 * change improves performance (or the step budget runs out). The
 * adopted design at each step becomes the new base architecture,
 * exactly as the paper's design loop prescribes.
 */

#ifndef PIPECACHE_CORE_OPTIMIZER_HH
#define PIPECACHE_CORE_OPTIMIZER_HH

#include <string>
#include <vector>

#include "core/point_eval.hh"
#include "core/tpi_model.hh"

namespace pipecache::core {

/** Search-space bounds for the optimizer. */
struct OptimizerConfig
{
    std::uint32_t maxSlots = 3;
    std::uint32_t minSizeKW = 1;
    std::uint32_t maxSizeKW = 32;
    /** Also consider toggling the load scheme (static/dynamic). */
    bool exploreLoadScheme = false;
    std::size_t maxSteps = 32;
};

/** One accepted optimization step. */
struct OptStep
{
    DesignPoint point;
    TpiResult tpi;
    /** What changed relative to the previous base. */
    std::string change;
};

/** The multilevel optimizer. */
class MultilevelOptimizer
{
  public:
    MultilevelOptimizer(TpiModel &model, const OptimizerConfig &config);

    /**
     * Route candidate-set evaluation through @p evaluator (the
     * parallel sweep engine) instead of the serial model. Pass
     * nullptr to restore the serial path. The trajectory is identical
     * either way: candidates are compared in generation order with a
     * strict improvement test, so the choice at every step does not
     * depend on evaluation order or thread count.
     */
    void setEvaluator(BatchPointEvaluator *evaluator)
    {
        evaluator_ = evaluator;
    }

    /**
     * Optimize from @p start. The returned trajectory begins with the
     * base evaluation and ends at the local optimum.
     */
    std::vector<OptStep> optimize(const DesignPoint &start);

  private:
    std::vector<DesignPoint> neighbors(const DesignPoint &base) const;

    /** Evaluate one step's candidate set (batch or serial). */
    std::vector<TpiResult>
    evaluateCandidates(const std::vector<DesignPoint> &candidates);

    TpiModel &model_;
    OptimizerConfig config_;
    BatchPointEvaluator *evaluator_ = nullptr;
};

} // namespace pipecache::core

#endif // PIPECACHE_CORE_OPTIMIZER_HH
