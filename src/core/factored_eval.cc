#include "core/factored_eval.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cpusim/load_model.hh"
#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace pipecache::core {

namespace {

/**
 * log2(set count) of one L1 side; false when the geometry is not a
 * valid power-of-two configuration (such points are left to the
 * monolithic path's validation so they fail with its exact errors).
 */
bool
geometryOf(std::uint32_t sizeKW, std::uint32_t blockWords,
           std::uint32_t assoc, std::uint32_t &log2Sets)
{
    const std::uint64_t sizeBytes = kiloWordsToBytes(sizeKW);
    const std::uint64_t blockBytes =
        static_cast<std::uint64_t>(blockWords) * bytesPerWord;
    if (assoc < 1 || blockBytes < 4 || !isPowerOfTwo(blockBytes) ||
        sizeBytes == 0 || !isPowerOfTwo(sizeBytes) ||
        sizeBytes < blockBytes * assoc) {
        return false;
    }
    const std::uint64_t sets = sizeBytes / (blockBytes * assoc);
    if (!isPowerOfTwo(sets) || sets > (1ULL << 31))
        return false;
    log2Sets = static_cast<std::uint32_t>(floorLog2(sets));
    return true;
}

/**
 * Fan the engine's batched access stream out to the claimed stack
 * passes. Each pass consumes whole blocks via accessBatch(), so the
 * simulator's per-call setup amortizes across a block; the I and D
 * streams feed disjoint simulators, so buffering them independently
 * preserves each pass's stream order exactly.
 */
class BatchMuxSink final : public cpusim::BatchStreamSink
{
  public:
    std::vector<cache::StackSimulator *> iSims;
    std::vector<cache::StackSimulator *> dSims;

    void instBatch(
        std::span<const cache::AccessRecord> records) override
    {
        for (cache::StackSimulator *sim : iSims)
            sim->accessBatch(records);
    }

    void dataBatch(
        std::span<const cache::AccessRecord> records) override
    {
        for (cache::StackSimulator *sim : dSims)
            sim->accessBatch(records);
    }
};

void
insertGeometry(std::vector<cache::StackGeometry> &geoms,
               cache::StackGeometry g)
{
    const auto it = std::lower_bound(geoms.begin(), geoms.end(), g);
    if (it == geoms.end() || *it != g)
        geoms.insert(it, g);
}

} // namespace

FactoredEvaluator::FactoredEvaluator(CpiModel &model) : model_(model)
{
}

FactoredEvaluator::StreamKey
FactoredEvaluator::streamKeyOf(const DesignPoint &p)
{
    return {static_cast<int>(p.branchScheme), CpiModel::xlatSlots(p),
            static_cast<int>(p.predictSource)};
}

FactoredEvaluator::BranchKey
FactoredEvaluator::branchKeyOf(const DesignPoint &p)
{
    // The squashing scheme never builds a BTB, so its geometry is
    // normalized out of the key.
    const bool btb = p.branchScheme == cpusim::BranchScheme::Btb;
    return {static_cast<int>(p.branchScheme), p.branchSlots,
            static_cast<int>(p.predictSource),
            btb ? p.btb.entries : 0, btb ? p.btb.assoc : 0};
}

FactoredEvaluator::PassKey
FactoredEvaluator::iPassKeyOf(const DesignPoint &p) const
{
    const std::uint32_t blockBytes = p.blockWords * bytesPerWord;
    const auto it =
        iGeoms_.find({streamKeyOf(p), blockBytes});
    PC_ASSERT(it != iGeoms_.end(),
              "design point not covered by prepareFactored()");
    return {false, streamKeyOf(p), blockBytes, it->second};
}

FactoredEvaluator::PassKey
FactoredEvaluator::dPassKeyOf(const DesignPoint &p) const
{
    const std::uint32_t blockBytes = p.blockWords * bytesPerWord;
    const auto it = dGeoms_.find(blockBytes);
    PC_ASSERT(it != dGeoms_.end(),
              "design point not covered by prepareFactored()");
    return {true, StreamKey{}, blockBytes, it->second};
}

void
FactoredEvaluator::plan(const std::vector<DesignPoint> &points)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const DesignPoint &p : points) {
        if (!model_.factorable(p))
            continue;
        std::uint32_t ilog = 0;
        std::uint32_t dlog = 0;
        if (!geometryOf(p.l1iSizeKW, p.blockWords, p.assoc, ilog) ||
            !geometryOf(p.l1dSizeKW, p.blockWords, p.assoc, dlog)) {
            continue;
        }
        const std::uint32_t blockBytes = p.blockWords * bytesPerWord;
        insertGeometry(iGeoms_[{streamKeyOf(p), blockBytes}],
                       {ilog, p.assoc});
        insertGeometry(dGeoms_[blockBytes], {dlog, p.assoc});
    }
}

void
FactoredEvaluator::claimLocked(const StreamKey &stream, Claims &claims)
{
    for (const auto &[key, geoms] : iGeoms_) {
        if (key.first != stream)
            continue;
        PassKey pk{false, key.first, key.second, geoms};
        if (passes_.find(pk) != passes_.end())
            continue;
        Claims::Pass claim;
        claim.isData = false;
        claim.sim = std::make_shared<cache::StackSimulator>(
            key.second, geoms, model_.numBenchmarks());
        passes_.emplace(pk, claim.promise.get_future().share());
        evictOrder_.push_back(pk);
        claim.key = std::move(pk);
        claims.passes.push_back(std::move(claim));
    }
    // The data stream is layout-independent, so any replay feeds the
    // data passes of every block size.
    for (const auto &[blockBytes, geoms] : dGeoms_) {
        PassKey pk{true, StreamKey{}, blockBytes, geoms};
        if (passes_.find(pk) != passes_.end())
            continue;
        Claims::Pass claim;
        claim.isData = true;
        claim.sim = std::make_shared<cache::StackSimulator>(
            blockBytes, geoms, model_.numBenchmarks());
        passes_.emplace(pk, claim.promise.get_future().share());
        evictOrder_.push_back(pk);
        claim.key = std::move(pk);
        claims.passes.push_back(std::move(claim));
    }
    if (!loadsStarted_) {
        loadsStarted_ = true;
        claims.claimedLoads = true;
        loads_ = claims.loads.get_future().share();
    }
    enforceLimitLocked();
}

void
FactoredEvaluator::enforceLimitLocked()
{
    if (componentLimit_ == 0)
        return;
    const auto ready = [](const auto &fut) {
        return fut.valid() &&
               fut.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    };
    // One bounded scan: keys whose computation is still in flight
    // rotate to the back (evicting them would orphan their waiters);
    // keys already erased by the poison path just drop out. If
    // everything live is in flight the cache overshoots temporarily.
    std::size_t scanned = 0;
    const std::size_t maxScan = evictOrder_.size();
    while (branch_.size() + passes_.size() > componentLimit_ &&
           scanned < maxScan && !evictOrder_.empty()) {
        ++scanned;
        auto key = std::move(evictOrder_.front());
        evictOrder_.pop_front();
        bool evicted = false;
        bool inFlight = false;
        if (std::holds_alternative<BranchKey>(key)) {
            const auto it = branch_.find(std::get<BranchKey>(key));
            if (it != branch_.end()) {
                if (ready(it->second)) {
                    branch_.erase(it);
                    evicted = true;
                } else {
                    inFlight = true;
                }
            }
        } else {
            const auto it = passes_.find(std::get<PassKey>(key));
            if (it != passes_.end()) {
                if (ready(it->second)) {
                    passes_.erase(it);
                    evicted = true;
                } else {
                    inFlight = true;
                }
            }
        }
        if (evicted) {
            obs::StatsRegistry::global().addCounter(
                "sweep.memo_evictions",
                "factored components evicted by the cache bound",
                obs::StatKind::Volatile);
        } else if (inFlight) {
            evictOrder_.push_back(std::move(key));
        }
    }
}

void
FactoredEvaluator::setComponentLimit(std::size_t limit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    componentLimit_ = limit;
    enforceLimitLocked();
}

std::size_t
FactoredEvaluator::componentCount()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return branch_.size() + passes_.size();
}

void
FactoredEvaluator::runReplay(const DesignPoint &p, Claims &claims,
                             BranchComponent *branchOut)
{
    try {
        const auto xkey = std::make_pair(
            CpiModel::xlatSlots(p), static_cast<int>(p.predictSource));
        const auto it = model_.xlats_.find(xkey);
        PC_ASSERT(model_.tracesBuilt_ && model_.schedule_ &&
                      it != model_.xlats_.end(),
                  "design point not covered by CpiModel::prepare()");

        const std::size_t n = model_.numBenchmarks();
        std::vector<cpusim::BenchWorkload> workloads;
        workloads.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            cpusim::BenchWorkload w;
            w.program = &model_.programs_[i];
            w.xlat = &it->second[i];
            w.trace = &model_.traces_[i];
            workloads.push_back(w);
        }

        // Minimal single-set hierarchy: the replay is run for its
        // control flow, branch counters, and access stream; the stall
        // fields it accumulates are discarded.
        cache::HierarchyConfig hc;
        hc.l1i.name = "stack-stub-i";
        hc.l1i.sizeBytes = 16;
        hc.l1i.blockBytes = 16;
        hc.l1i.assoc = 1;
        hc.l1d.name = "stack-stub-d";
        hc.l1d.sizeBytes = 16;
        hc.l1d.blockBytes = 16;
        hc.l1d.assoc = 1;
        hc.flatPenalty = 1;
        cache::CacheHierarchy hierarchy(hc);

        cpusim::EngineConfig ec;
        ec.branchSlots = p.branchSlots;
        ec.loadSlots = 0;
        ec.branchScheme = p.branchScheme;
        ec.loadScheme = cpusim::LoadScheme::Static;
        ec.btb = p.btb;
        cpusim::CpiEngine engine(ec, hierarchy, std::move(workloads));

        BatchMuxSink mux;
        for (Claims::Pass &claim : claims.passes) {
            (claim.isData ? mux.dSims : mux.iSims)
                .push_back(claim.sim.get());
        }
        cpusim::BufferedStreamSink buffer(mux);
        if (!mux.iSims.empty() || !mux.dSims.empty())
            engine.setStreamSink(&buffer);

        model_.engineReplays_.fetch_add(1, std::memory_order_relaxed);
        engine.run(*model_.schedule_);
        buffer.flush();

        if (branchOut != nullptr) {
            branchOut->perBench.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                cpusim::CpiBreakdown c = engine.benchResult(i);
                // Stall fields came from the stub hierarchy; the
                // assembled point overwrites all three.
                c.iStallCycles = 0;
                c.dStallCycles = 0;
                c.loadStallCycles = 0;
                branchOut->perBench.push_back(c);
            }
            if (engine.btb() != nullptr) {
                branchOut->btb = engine.btb()->stats();
                branchOut->hasBtb = true;
            }
        }

        if (!claims.passes.empty()) {
            Counter accesses = 0;
            std::uint64_t geometries = 0;
            for (Claims::Pass &claim : claims.passes) {
                claim.sim->finish();
                accesses += claim.sim->accesses();
                geometries += claim.sim->geometries().size();
            }
            using obs::StatKind;
            auto &reg = obs::StatsRegistry::global();
            reg.addCounter("stack_sim.passes",
                           "one-pass multi-geometry stack simulations",
                           StatKind::Deterministic,
                           claims.passes.size());
            reg.addCounter(
                "stack_sim.accesses",
                "stream accesses replayed through stack passes",
                StatKind::Deterministic, accesses);
            reg.addCounter("stack_sim.geometries",
                           "cache geometries served by stack passes",
                           StatKind::Deterministic, geometries);
            reg.addCounter(
                "stack_sim.batch_flushes",
                "access batches delivered to stack passes",
                StatKind::Deterministic, buffer.flushes());
        }

        if (claims.claimedLoads) {
            auto lc = std::make_shared<LoadComponent>();
            lc->perBench.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                lc->perBench.push_back(engine.loadStats(i));
            claims.loads.set_value(std::move(lc));
        }
        for (Claims::Pass &claim : claims.passes)
            claim.promise.set_value(claim.sim);
    } catch (...) {
        // Poison waiters, then forget the claims so a later call can
        // retry the computation.
        const std::exception_ptr err = std::current_exception();
        for (Claims::Pass &claim : claims.passes)
            claim.promise.set_exception(err);
        if (claims.claimedLoads)
            claims.loads.set_exception(err);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (Claims::Pass &claim : claims.passes)
                passes_.erase(claim.key);
            if (claims.claimedLoads) {
                loadsStarted_ = false;
                loads_ = {};
            }
        }
        throw;
    }
}

std::shared_ptr<const FactoredEvaluator::BranchComponent>
FactoredEvaluator::getBranch(const DesignPoint &p)
{
    const BranchKey key = branchKeyOf(p);
    std::promise<std::shared_ptr<const BranchComponent>> pr;
    BranchFuture fut;
    Claims claims;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = branch_.find(key);
        if (it != branch_.end()) {
            fut = it->second;
        } else {
            // Claim the component and every pass this replay's stream
            // can feed, atomically, so concurrent evaluations neither
            // duplicate a replay nor miss a pass.
            fut = pr.get_future().share();
            branch_.emplace(key, fut);
            evictOrder_.push_back(key);
            claimLocked(streamKeyOf(p), claims);
            owner = true;
        }
    }
    if (!owner)
        return fut.get();

    auto component = std::make_shared<BranchComponent>();
    try {
        runReplay(p, claims, component.get());
    } catch (...) {
        pr.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        branch_.erase(key);
        throw;
    }
    pr.set_value(component);
    return component;
}

std::shared_ptr<const cache::StackSimulator>
FactoredEvaluator::getPass(const PassKey &key, const DesignPoint &p)
{
    PassFuture fut;
    Claims claims;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = passes_.find(key);
        if (it != passes_.end()) {
            fut = it->second;
        } else {
            // Reachable when the branch component was cached by an
            // earlier sweep but a later plan() widened the ladder:
            // run a dedicated stream replay for the missing passes.
            claimLocked(streamKeyOf(p), claims);
            owner = true;
        }
    }
    if (owner) {
        runReplay(p, claims, nullptr);
        // Serve from the claims directly: the map entry may already
        // have been evicted by a concurrent insert now that its
        // future is ready.
        for (Claims::Pass &claim : claims.passes) {
            if (claim.key == key)
                return claim.sim;
        }
        PC_ASSERT(false, "claimLocked() missed the requested pass");
    }
    return fut.get();
}

std::shared_ptr<const FactoredEvaluator::LoadComponent>
FactoredEvaluator::getLoads(const DesignPoint &p)
{
    LoadFuture fut;
    Claims claims;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (loadsStarted_) {
            fut = loads_;
        } else {
            claimLocked(streamKeyOf(p), claims);
            fut = loads_;
            owner = true;
        }
    }
    if (owner)
        runReplay(p, claims, nullptr);
    return fut.get();
}

CpiResult
FactoredEvaluator::assemble(const DesignPoint &p,
                            const BranchComponent &branch,
                            const cache::StackSimulator &ipass,
                            const cache::StackSimulator &dpass,
                            const LoadComponent &loads) const
{
    const std::size_t n = model_.numBenchmarks();
    PC_ASSERT(branch.perBench.size() == n && loads.perBench.size() == n,
              "factored component shape mismatch");

    std::uint32_t ilog = 0;
    std::uint32_t dlog = 0;
    PC_ASSERT(geometryOf(p.l1iSizeKW, p.blockWords, p.assoc, ilog) &&
                  geometryOf(p.l1dSizeKW, p.blockWords, p.assoc, dlog),
              "factored evaluation of an invalid geometry");
    const auto &ic = ipass.counts(ilog, p.assoc);
    const auto &dc = dpass.counts(dlog, p.assoc);
    const Counter penalty = p.missPenaltyCycles;

    CpiResult r;
    r.perBench.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        cpusim::CpiBreakdown c = branch.perBench[i];
        c.iStallCycles = ic.readMisses[i] * penalty;
        c.dStallCycles =
            (dc.readMisses[i] + dc.writeMisses[i]) * penalty;
        c.loadStallCycles = cpusim::loadStallCycles(
            loads.perBench[i], p.loadSlots, p.loadScheme);
        r.aggregate.add(c);
        r.perBench.push_back(c);
    }

    for (std::size_t i = 0; i < n; ++i) {
        r.l1i.reads += ipass.benchReads()[i];
        r.l1d.reads += dpass.benchReads()[i];
        r.l1d.writes += dpass.benchWrites()[i];
    }
    r.l1i.readMisses = ic.readMissTotal();
    r.l1i.evictions = ic.evictions;
    r.l1d.readMisses = dc.readMissTotal();
    r.l1d.writeMisses = dc.writeMissTotal();
    r.l1d.evictions = dc.evictions;
    r.l1d.dirtyEvictions = dc.dirtyEvictions;
    if (branch.hasBtb)
        r.btb = branch.btb;

    // Publish the same per-point counters the monolithic path does,
    // through the same helpers, so stats dumps are byte-identical
    // whichever path evaluated the point.
    auto &reg = obs::StatsRegistry::global();
    cache::publishL1Stats(reg, r.l1i, r.l1i.misses() * penalty,
                          r.l1d, r.l1d.misses() * penalty);
    sched::LoadDelayStats merged;
    for (std::size_t i = 0; i < n; ++i)
        merged.merge(loads.perBench[i]);
    cpusim::publishReplayStats(reg, r.aggregate,
                               branch.hasBtb ? &r.btb : nullptr,
                               merged, nullptr);
    return r;
}

CpiResult
FactoredEvaluator::evaluate(const DesignPoint &point)
{
    // Mirror the monolithic path's construction-time validation (same
    // checks, same order, same messages) so an invalid point fails
    // identically whichever path evaluates it.
    const cache::HierarchyConfig hcfg = point.hierarchyConfig();
    hcfg.l1i.validate();
    hcfg.l1d.validate();
    PC_ASSERT(point.missPenaltyCycles >= 1,
              "flat penalty must be >= 1 cycle");

    const auto branch = getBranch(point);
    PassKey ikey;
    PassKey dkey;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ikey = iPassKeyOf(point);
        dkey = dPassKeyOf(point);
    }
    const auto ipass = getPass(ikey, point);
    const auto dpass = getPass(dkey, point);
    const auto loads = getLoads(point);
    return assemble(point, *branch, *ipass, *dpass, *loads);
}

} // namespace pipecache::core
