#include "core/cpi_model.hh"

#include <cstring>

#include "core/factored_eval.hh"
#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace pipecache::core {

double
CpiResult::weightedHarmonicMeanCpi() const
{
    WeightedHarmonicMean whm;
    for (const auto &b : perBench) {
        // Weight = the benchmark's share of total execution time.
        whm.add(b.cpi(), static_cast<double>(b.totalCycles()));
    }
    return whm.value();
}

CpiModel::CpiModel(const SuiteConfig &config) : config_(config)
{
    PC_ASSERT(config_.scaleDivisor >= 1.0, "bad scale divisor");
    if (config_.benchmarks.empty()) {
        suite_ = trace::table1Suite();
    } else {
        for (const auto &name : config_.benchmarks)
            suite_.push_back(trace::findBenchmark(name));
    }
}

CpiModel::~CpiModel() = default;

void
CpiModel::ensureTraces()
{
    if (tracesBuilt_)
        return;
    programs_.reserve(suite_.size());
    traces_.reserve(suite_.size());
    for (std::size_t i = 0; i < suite_.size(); ++i) {
        const auto asid = static_cast<std::uint32_t>(i);
        programs_.push_back(
            suite_[i].makeProgram(asid, config_.seedSalt));

        trace::DataAddressGenerator dgen(
            suite_[i].dataConfig(asid, config_.seedSalt));
        trace::ExecConfig exec;
        exec.seed = suite_[i].seed(config_.seedSalt) ^ 0x2545f491;
        exec.maxInsts = suite_[i].scaledInsts(config_.scaleDivisor);
        traces_.push_back(
            trace::recordTrace(programs_[i], dgen, exec));
    }
    tracesBuilt_ = true;
}

const isa::Program &
CpiModel::program(std::size_t i)
{
    ensureTraces();
    PC_ASSERT(i < programs_.size(), "benchmark index out of range");
    return programs_[i];
}

const trace::RecordedTrace &
CpiModel::traceOf(std::size_t i)
{
    ensureTraces();
    PC_ASSERT(i < traces_.size(), "benchmark index out of range");
    return traces_[i];
}

const sched::BranchProfileData &
CpiModel::branchProfile(std::size_t i)
{
    ensureTraces();
    if (profiles_.empty()) {
        profiles_.reserve(programs_.size());
        for (std::size_t p = 0; p < programs_.size(); ++p) {
            profiles_.push_back(
                sched::collectBranchProfile(programs_[p], traces_[p]));
        }
    }
    PC_ASSERT(i < profiles_.size(), "benchmark index out of range");
    return profiles_[i];
}

const sched::TranslationFile &
CpiModel::xlat(std::size_t i, std::uint32_t b,
               sched::PredictSource source)
{
    ensureTraces();
    const auto key = std::make_pair(b, static_cast<int>(source));
    auto it = xlats_.find(key);
    if (it == xlats_.end()) {
        std::vector<sched::TranslationFile> files;
        files.reserve(programs_.size());
        for (std::size_t p = 0; p < programs_.size(); ++p) {
            if (source == sched::PredictSource::Profile) {
                files.push_back(sched::scheduleBranchDelaysProfiled(
                    programs_[p], b, branchProfile(p)));
            } else {
                files.push_back(
                    sched::scheduleBranchDelays(programs_[p], b));
            }
        }
        it = xlats_.emplace(key, std::move(files)).first;
    }
    PC_ASSERT(i < it->second.size(), "benchmark index out of range");
    return it->second[i];
}

const trace::MultiprogSchedule &
CpiModel::schedule()
{
    ensureTraces();
    if (!schedule_) {
        std::vector<const trace::RecordedTrace *> traces;
        std::vector<const isa::Program *> programs;
        for (std::size_t i = 0; i < suite_.size(); ++i) {
            traces.push_back(&traces_[i]);
            programs.push_back(&programs_[i]);
        }
        schedule_ = std::make_unique<trace::MultiprogSchedule>(
            traces, programs, config_.quantum);
    }
    return *schedule_;
}

const sched::LoadDelayStats &
CpiModel::loadDelayStats()
{
    ensureTraces();
    if (!loadStats_) {
        loadStats_ = std::make_unique<sched::LoadDelayStats>();
        for (std::size_t i = 0; i < suite_.size(); ++i) {
            loadStats_->merge(
                sched::analyzeLoadDelays(programs_[i], traces_[i]));
        }
    }
    return *loadStats_;
}

std::uint32_t
CpiModel::xlatSlots(const DesignPoint &point)
{
    // The BTB scheme replays canonical (zero-delay-slot) code.
    return point.branchScheme == cpusim::BranchScheme::Btb
               ? 0
               : point.branchSlots;
}

void
CpiModel::prepare(const std::vector<DesignPoint> &points)
{
    ensureTraces();
    schedule();
    for (const DesignPoint &p : points) {
        // Building the translation set for benchmark 0 builds it for
        // the whole suite (the xlat cache is keyed per slot/source).
        xlat(0, xlatSlots(p), p.predictSource);
    }
}

bool
CpiModel::factorable(const DesignPoint &point) const
{
    return !point.writeThroughBuffer &&
           point.repl == cache::Replacement::LRU &&
           !obs::classify3CEnabled();
}

void
CpiModel::prepareFactored(const std::vector<DesignPoint> &points)
{
    prepare(points);
    if (!factored_) {
        factored_ = std::make_unique<FactoredEvaluator>(*this);
        factored_->setComponentLimit(factoredComponentLimit_);
    }
    factored_->plan(points);
}

void
CpiModel::setFactoredComponentLimit(std::size_t limit)
{
    factoredComponentLimit_ = limit;
    if (factored_)
        factored_->setComponentLimit(limit);
}

CpiResult
CpiModel::evaluateFactored(const DesignPoint &point) const
{
    PC_ASSERT(factored_ != nullptr,
              "evaluateFactored() without prepareFactored()");
    return factored_->evaluate(point);
}

CpiResult
CpiModel::simulate(const DesignPoint &point) const
{
    engineReplays_.fetch_add(1, std::memory_order_relaxed);
    const auto key = std::make_pair(xlatSlots(point),
                                    static_cast<int>(point.predictSource));
    const auto it = xlats_.find(key);
    PC_ASSERT(tracesBuilt_ && schedule_ && it != xlats_.end(),
              "design point not covered by CpiModel::prepare()");

    std::vector<cpusim::BenchWorkload> workloads;
    workloads.reserve(suite_.size());
    for (std::size_t i = 0; i < suite_.size(); ++i) {
        cpusim::BenchWorkload w;
        w.program = &programs_[i];
        w.xlat = &it->second[i];
        w.trace = &traces_[i];
        workloads.push_back(w);
    }

    cache::HierarchyConfig hcfg = point.hierarchyConfig();
    hcfg.classify3C = obs::classify3CEnabled();
    cache::CacheHierarchy hierarchy(hcfg);
    cpusim::CpiEngine engine(point.engineConfig(), hierarchy,
                             std::move(workloads));
    engine.run(*schedule_);

    CpiResult result;
    result.aggregate = engine.aggregate();
    for (std::size_t i = 0; i < suite_.size(); ++i)
        result.perBench.push_back(engine.benchResult(i));
    result.l1i = hierarchy.l1i().stats();
    result.l1d = hierarchy.l1d().stats();
    if (engine.btb())
        result.btb = engine.btb()->stats();

    // Publish once per evaluated design point: integer contributions
    // summed commutatively across per-thread shards, so the aggregate
    // is the same whatever the sweep's thread count.
    auto &reg = obs::StatsRegistry::global();
    hierarchy.publishStats(reg);
    engine.publishStats(reg);
    return result;
}

CpiResult
CpiModel::evaluatePrepared(const DesignPoint &point) const
{
    return simulate(point);
}

const CpiResult &
CpiModel::evaluate(const DesignPoint &point)
{
    auto memo = memo_.find(point);
    if (memo != memo_.end())
        return memo->second;

    prepare({point});
    return memo_.emplace(point, simulate(point)).first->second;
}

std::uint64_t
suiteConfigKey(const SuiteConfig &config)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    std::uint64_t scale_bits = 0;
    static_assert(sizeof scale_bits == sizeof config.scaleDivisor);
    std::memcpy(&scale_bits, &config.scaleDivisor, sizeof scale_bits);
    mix(scale_bits);
    mix(config.quantum);
    mix(config.seedSalt);
    mix(config.benchmarks.size());
    for (const std::string &name : config.benchmarks)
        for (const char c : name)
            mix(static_cast<std::uint64_t>(c));
    return h;
}

std::uint64_t
CpiModel::suiteKey() const
{
    return suiteConfigKey(config_);
}

} // namespace pipecache::core
