#include "core/optimizer.hh"

#include <sstream>

#include "util/logging.hh"

namespace pipecache::core {

MultilevelOptimizer::MultilevelOptimizer(TpiModel &model,
                                         const OptimizerConfig &config)
    : model_(model), config_(config)
{
    PC_ASSERT(config_.minSizeKW >= 1 &&
              config_.minSizeKW <= config_.maxSizeKW,
              "bad optimizer size bounds");
}

std::vector<DesignPoint>
MultilevelOptimizer::neighbors(const DesignPoint &base) const
{
    std::vector<DesignPoint> out;
    auto push = [&](DesignPoint p) { out.push_back(p); };

    // Joint depth moves first: the TPI surface has a ridge along
    // b = l (the slower side sets the clock), which single-parameter
    // moves cannot cross.
    if (base.branchSlots < config_.maxSlots &&
        base.loadSlots < config_.maxSlots) {
        DesignPoint p = base;
        ++p.branchSlots;
        ++p.loadSlots;
        push(p);
    }
    if (base.branchSlots > 0 && base.loadSlots > 0) {
        DesignPoint p = base;
        --p.branchSlots;
        --p.loadSlots;
        push(p);
    }

    // Pipeline depth changes (b and l move together or separately).
    if (base.branchSlots < config_.maxSlots) {
        DesignPoint p = base;
        ++p.branchSlots;
        push(p);
    }
    if (base.branchSlots > 0) {
        DesignPoint p = base;
        --p.branchSlots;
        push(p);
    }
    if (base.loadSlots < config_.maxSlots) {
        DesignPoint p = base;
        ++p.loadSlots;
        push(p);
    }
    if (base.loadSlots > 0) {
        DesignPoint p = base;
        --p.loadSlots;
        push(p);
    }

    // Cache size changes, one side at a time.
    if (base.l1iSizeKW * 2 <= config_.maxSizeKW) {
        DesignPoint p = base;
        p.l1iSizeKW *= 2;
        push(p);
    }
    if (base.l1iSizeKW / 2 >= config_.minSizeKW) {
        DesignPoint p = base;
        p.l1iSizeKW /= 2;
        push(p);
    }
    if (base.l1dSizeKW * 2 <= config_.maxSizeKW) {
        DesignPoint p = base;
        p.l1dSizeKW *= 2;
        push(p);
    }
    if (base.l1dSizeKW / 2 >= config_.minSizeKW) {
        DesignPoint p = base;
        p.l1dSizeKW /= 2;
        push(p);
    }

    if (config_.exploreLoadScheme) {
        DesignPoint p = base;
        p.loadScheme = base.loadScheme == cpusim::LoadScheme::Static
                           ? cpusim::LoadScheme::Dynamic
                           : cpusim::LoadScheme::Static;
        push(p);
    }
    return out;
}

namespace {

std::string
describeChange(const DesignPoint &from, const DesignPoint &to)
{
    std::ostringstream os;
    auto item = [&os](const char *what, auto a, auto b) {
        if (a != b)
            os << what << " " << a << "->" << b << " ";
    };
    item("b", from.branchSlots, to.branchSlots);
    item("l", from.loadSlots, to.loadSlots);
    item("I-KW", from.l1iSizeKW, to.l1iSizeKW);
    item("D-KW", from.l1dSizeKW, to.l1dSizeKW);
    if (from.loadScheme != to.loadScheme)
        os << "load-scheme ";
    std::string s = os.str();
    if (!s.empty() && s.back() == ' ')
        s.pop_back();
    return s;
}

} // namespace

std::vector<TpiResult>
MultilevelOptimizer::evaluateCandidates(
    const std::vector<DesignPoint> &candidates)
{
    if (evaluator_ != nullptr) {
        std::vector<TpiResult> out;
        out.reserve(candidates.size());
        for (const PointMetrics &m :
             evaluator_->evaluateBatch(candidates)) {
            out.push_back(m.tpi());
        }
        return out;
    }
    std::vector<TpiResult> out;
    out.reserve(candidates.size());
    for (const DesignPoint &cand : candidates)
        out.push_back(model_.evaluate(cand));
    return out;
}

std::vector<OptStep>
MultilevelOptimizer::optimize(const DesignPoint &start)
{
    std::vector<OptStep> trajectory;
    DesignPoint base = start;
    TpiResult base_tpi = evaluateCandidates({base}).front();
    trajectory.push_back({base, base_tpi, "base"});

    for (std::size_t step = 0; step < config_.maxSteps; ++step) {
        const std::vector<DesignPoint> candidates = neighbors(base);
        const std::vector<TpiResult> results =
            evaluateCandidates(candidates);
        DesignPoint best = base;
        TpiResult best_tpi = base_tpi;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (results[i].tpiNs < best_tpi.tpiNs) {
                best = candidates[i];
                best_tpi = results[i];
            }
        }
        if (best == base)
            break;
        trajectory.push_back(
            {best, best_tpi, describeChange(base, best)});
        base = best;
        base_tpi = best_tpi;
    }
    return trajectory;
}

} // namespace pipecache::core
