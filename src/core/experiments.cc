#include "core/experiments.hh"

#include <cmath>

#include "trace/trace_stats.hh"
#include "util/logging.hh"

namespace pipecache::core::experiments {

namespace {

/** Common design point for the Section 3 cache experiments. */
DesignPoint
basePoint(std::uint32_t block_words, std::uint32_t penalty)
{
    DesignPoint p;
    p.blockWords = block_words;
    p.missPenaltyCycles = penalty;
    p.l1iSizeKW = 8;
    p.l1dSizeKW = 8;
    p.branchSlots = 0;
    p.loadSlots = 0;
    return p;
}

const std::uint32_t kSizesKW[] = {1, 2, 4, 8, 16, 32};

} // namespace

TextTable
table1(CpiModel &model)
{
    TextTable t("Table 1: benchmark characteristics "
                "(paper | measured synthetic)");
    t.setHeader({"benchmark", "class", "Minst(p)", "ld%(p)", "st%(p)",
                 "br%(p)", "Kinst(m)", "ld%(m)", "st%(m)", "br%(m)"});

    for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
        const auto &b = model.suite()[i];
        const auto mix =
            trace::computeMix(model.program(i), model.traceOf(i));
        const char *cls = b.cls == trace::Benchmark::Class::Integer
                              ? "I"
                          : b.cls == trace::Benchmark::Class::SingleFp
                              ? "S"
                              : "D";
        t.addRow({b.name, cls, TextTable::num(b.instMillions, 1),
                  TextTable::num(b.loadPct, 1),
                  TextTable::num(b.storePct, 1),
                  TextTable::num(b.branchPct, 1),
                  TextTable::num(mix.insts / 1000),
                  TextTable::num(mix.loadPct(), 1),
                  TextTable::num(mix.storePct(), 1),
                  TextTable::num(mix.ctiPct(), 1)});
    }
    return t;
}

TextTable
table2(CpiModel &model)
{
    TextTable t("Table 2: static code size increase vs. branch delay "
                "slots (paper: 6 / 14 / 23 %)");
    t.setHeader({"delay slots", "paper %", "measured %",
                 "1st slot from before %"});
    const double paper[] = {6.0, 14.0, 23.0};

    for (std::uint32_t b = 1; b <= 3; ++b) {
        std::uint64_t useful = 0;
        std::uint64_t sched = 0;
        std::uint64_t ctis = 0;
        std::uint64_t first_from_before = 0;
        for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
            const auto &xl = model.xlat(i, b);
            useful += xl.usefulStaticInsts();
            sched += xl.scheduledStaticInsts();
            const auto stats = sched::summarize(xl);
            ctis += stats.ctis;
            first_from_before += stats.firstSlotFromBefore;
        }
        const double expansion =
            100.0 * (static_cast<double>(sched) /
                         static_cast<double>(useful) -
                     1.0);
        const double first_pct =
            100.0 * static_cast<double>(first_from_before) /
            static_cast<double>(ctis);
        t.addRow({TextTable::num(std::uint64_t{b}),
                  TextTable::num(paper[b - 1], 0),
                  TextTable::num(expansion, 1),
                  TextTable::num(first_pct, 1)});
    }
    return t;
}

TextTable
table3(CpiModel &model)
{
    TextTable t("Table 3: static branch prediction vs. delay slots "
                "(paper dCPI @ b=3: ~0.087; CTIs are 13% of insts)");
    t.setHeader({"slots", "predT %", "predT corr %", "predNT %",
                 "predNT corr %", "cyc/CTI", "dCPI"});

    for (std::uint32_t b = 1; b <= 3; ++b) {
        DesignPoint p = basePoint(4, 10);
        p.branchSlots = b;
        const auto &res = model.evaluate(p);
        const auto &agg = res.aggregate;

        const double total_ctis = static_cast<double>(agg.ctis);
        const double pt =
            100.0 * static_cast<double>(agg.predTakenCtis) / total_ctis;
        const double ptc = agg.predTakenCtis == 0
                               ? 0.0
                               : 100.0 *
                                     static_cast<double>(
                                         agg.predTakenCorrect) /
                                     static_cast<double>(
                                         agg.predTakenCtis);
        const double pn = 100.0 *
                          static_cast<double>(agg.predNotTakenCtis) /
                          total_ctis;
        const double pnc = agg.predNotTakenCtis == 0
                               ? 0.0
                               : 100.0 *
                                     static_cast<double>(
                                         agg.predNotTakenCorrect) /
                                     static_cast<double>(
                                         agg.predNotTakenCtis);

        t.addRow({TextTable::num(std::uint64_t{b}),
                  TextTable::num(pt, 0), TextTable::num(ptc, 0),
                  TextTable::num(pn, 0), TextTable::num(pnc, 0),
                  TextTable::num(agg.cyclesPerCti(), 2),
                  TextTable::num(agg.branchCpi(), 3)});
    }
    return t;
}

TextTable
table4(CpiModel &model)
{
    TextTable t("Table 4: BTB (256 entries, 2b counters) performance "
                "(paper cyc/CTI: 1.44/1.65/1.85; dCPI: "
                "0.057/0.082/0.110)");
    t.setHeader({"delay cycles", "cyc/CTI", "dCPI", "BTB hit %",
                 "correct %"});

    for (std::uint32_t b = 1; b <= 3; ++b) {
        DesignPoint p = basePoint(4, 10);
        p.branchSlots = b;
        p.branchScheme = cpusim::BranchScheme::Btb;
        const auto &res = model.evaluate(p);
        const auto &agg = res.aggregate;

        const double hit_pct =
            res.btb.lookups == 0
                ? 0.0
                : 100.0 * static_cast<double>(res.btb.hits) /
                      static_cast<double>(res.btb.lookups);
        const double corr_pct =
            res.btb.lookups == 0
                ? 0.0
                : 100.0 * static_cast<double>(res.btb.correct) /
                      static_cast<double>(res.btb.lookups);

        t.addRow({TextTable::num(std::uint64_t{b}),
                  TextTable::num(agg.cyclesPerCti(), 2),
                  TextTable::num(agg.branchCpi(), 3),
                  TextTable::num(hit_pct, 1),
                  TextTable::num(corr_pct, 1)});
    }
    return t;
}

TextTable
table5(CpiModel &model)
{
    TextTable t("Table 5: CPI increase from load delay cycles "
                "(paper static cyc/load: 0.21/0.62/1.21, dCPI: "
                "0.05/0.16/0.29; dynamic: 0.04/0.19/0.39, dCPI: "
                "0.01/0.05/0.10)");
    t.setHeader({"slots", "static cyc/load", "static dCPI",
                 "dynamic cyc/load", "dynamic dCPI"});

    const auto &stats = model.loadDelayStats();
    Counter insts = 0;
    for (std::size_t i = 0; i < model.numBenchmarks(); ++i)
        insts += model.traceOf(i).instCount;

    for (std::uint32_t l = 1; l <= 3; ++l) {
        const double s_per = stats.delayCyclesPerLoad(l, false);
        const double d_per = stats.delayCyclesPerLoad(l, true);
        const double s_cpi =
            static_cast<double>(stats.totalDelayCycles(l, false)) /
            static_cast<double>(insts);
        const double d_cpi =
            static_cast<double>(stats.totalDelayCycles(l, true)) /
            static_cast<double>(insts);
        t.addRow({TextTable::num(std::uint64_t{l}),
                  TextTable::num(s_per, 2), TextTable::num(s_cpi, 3),
                  TextTable::num(d_per, 2), TextTable::num(d_cpi, 3)});
    }
    return t;
}

TextTable
table6(const timing::CpuTimingParams &params)
{
    TextTable t("Table 6: optimal cycle time (ns) vs. L1 size and "
                "pipeline depth (paper anchors: depth 0 > 10 ns; "
                "depth 3 ALU-limited at 3.5 ns)");
    t.setHeader({"size KW", "chips", "t_L1 ns", "depth 0", "depth 1",
                 "depth 2", "depth 3"});

    for (std::uint32_t kw : kSizesKW) {
        std::vector<std::string> row;
        row.push_back(TextTable::num(std::uint64_t{kw}));
        row.push_back(TextTable::num(std::uint64_t{
            timing::chipsForCache(params.sram, kw)}));
        row.push_back(TextTable::num(
            timing::l1AccessNs(params.sram, params.mcm, kw), 2));
        for (std::uint32_t d = 0; d <= 3; ++d) {
            row.push_back(TextTable::num(
                timing::sideCycleNs(params, {kw, d}), 2));
        }
        t.addRow(std::move(row));
    }
    return t;
}

std::vector<DesignPoint>
sizeDepthGrid(std::uint32_t block_words, std::uint32_t penalty)
{
    std::vector<DesignPoint> points;
    for (std::uint32_t kw : kSizesKW) {
        for (std::uint32_t b = 0; b <= 3; ++b) {
            DesignPoint p = basePoint(block_words, penalty);
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            points.push_back(p);
        }
    }
    return points;
}

namespace {

/** Render the figure-3/4 (size × b) table from batch metrics. */
TextTable
sizeDepthTable(TextTable t, BatchPointEvaluator &eval,
               std::uint32_t block_words, std::uint32_t penalty,
               double (*cell)(const PointMetrics &))
{
    t.setHeader({"I-size KW", "b=0", "b=1", "b=2", "b=3"});
    const auto points = sizeDepthGrid(block_words, penalty);
    const auto metrics = eval.evaluateBatch(points);

    std::size_t i = 0;
    for (std::uint32_t kw : kSizesKW) {
        std::vector<std::string> row{TextTable::num(std::uint64_t{kw})};
        for (std::uint32_t b = 0; b <= 3; ++b)
            row.push_back(TextTable::num(cell(metrics[i++]), 3));
        t.addRow(std::move(row));
    }
    return t;
}

} // namespace

TextTable
fig3(BatchPointEvaluator &eval, std::uint32_t block_words,
     std::uint32_t penalty)
{
    TextTable t("Figure 3: L1-I miss CPI vs. cache size per branch "
                "delay slots (B=" + std::to_string(block_words) +
                "W, P=" + std::to_string(penalty) + ")");
    return sizeDepthTable(
        std::move(t), eval, block_words, penalty,
        [](const PointMetrics &m) { return m.iMissCpi; });
}

TextTable
fig4(BatchPointEvaluator &eval, std::uint32_t block_words,
     std::uint32_t penalty)
{
    TextTable t("Figure 4: total CPI vs. L1-I size per branch delay "
                "slots (B=" + std::to_string(block_words) + "W, P=" +
                std::to_string(penalty) + ")");
    return sizeDepthTable(std::move(t), eval, block_words, penalty,
                          [](const PointMetrics &m) { return m.cpi; });
}

TextTable
table6(BatchPointEvaluator &eval, const timing::CpuTimingParams &params)
{
    TextTable t("Table 6: optimal cycle time (ns) vs. L1 size and "
                "pipeline depth (paper anchors: depth 0 > 10 ns; "
                "depth 3 ALU-limited at 3.5 ns)");
    t.setHeader({"size KW", "chips", "t_L1 ns", "depth 0", "depth 1",
                 "depth 2", "depth 3"});

    const auto points = sizeDepthGrid();
    const auto metrics = eval.evaluateBatch(points);

    std::size_t i = 0;
    for (std::uint32_t kw : kSizesKW) {
        std::vector<std::string> row;
        row.push_back(TextTable::num(std::uint64_t{kw}));
        row.push_back(TextTable::num(std::uint64_t{
            timing::chipsForCache(params.sram, kw)}));
        row.push_back(TextTable::num(
            timing::l1AccessNs(params.sram, params.mcm, kw), 2));
        // The grid point's I side is exactly (kw, depth), so its
        // standalone cycle time is Table 6's entry.
        for (std::uint32_t d = 0; d <= 3; ++d)
            row.push_back(TextTable::num(metrics[i++].tIsideNs, 2));
        t.addRow(std::move(row));
    }
    return t;
}

TextTable
fig3(CpiModel &model, std::uint32_t block_words, std::uint32_t penalty)
{
    TextTable t("Figure 3: L1-I miss CPI vs. cache size per branch "
                "delay slots (B=" + std::to_string(block_words) +
                "W, P=" + std::to_string(penalty) + ")");
    t.setHeader({"I-size KW", "b=0", "b=1", "b=2", "b=3"});

    for (std::uint32_t kw : kSizesKW) {
        std::vector<std::string> row{TextTable::num(std::uint64_t{kw})};
        for (std::uint32_t b = 0; b <= 3; ++b) {
            DesignPoint p = basePoint(block_words, penalty);
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            row.push_back(TextTable::num(
                model.evaluate(p).aggregate.iMissCpi(), 3));
        }
        t.addRow(std::move(row));
    }
    return t;
}

TextTable
fig4(CpiModel &model, std::uint32_t block_words, std::uint32_t penalty)
{
    TextTable t("Figure 4: total CPI vs. L1-I size per branch delay "
                "slots (B=" + std::to_string(block_words) + "W, P=" +
                std::to_string(penalty) + ")");
    t.setHeader({"I-size KW", "b=0", "b=1", "b=2", "b=3"});

    for (std::uint32_t kw : kSizesKW) {
        std::vector<std::string> row{TextTable::num(std::uint64_t{kw})};
        for (std::uint32_t b = 0; b <= 3; ++b) {
            DesignPoint p = basePoint(block_words, penalty);
            p.l1iSizeKW = kw;
            p.branchSlots = b;
            row.push_back(
                TextTable::num(model.evaluate(p).cpi(), 3));
        }
        t.addRow(std::move(row));
    }
    return t;
}

TextTable
fig5(CpiModel &model)
{
    // Constant-time miss penalty: 10 cycles at a 5 ns cycle = 50 ns of
    // memory time; longer cycles need fewer stall cycles per miss.
    constexpr double memory_ns = 50.0;
    const double cycles_ns[] = {3.5, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0};
    const std::uint32_t sizes[] = {1, 4, 16};

    TextTable t("Figure 5: CPI vs. t_CPU (b=2, constant-time penalty "
                "of 50 ns)");
    t.setHeader({"t_CPU ns", "penalty cyc", "I=1KW", "I=4KW",
                 "I=16KW"});

    for (double tc : cycles_ns) {
        const auto pen = static_cast<std::uint32_t>(
            std::lround(std::max(1.0, memory_ns / tc)));
        std::vector<std::string> row{TextTable::num(tc, 1),
                                     TextTable::num(std::uint64_t{pen})};
        for (std::uint32_t kw : sizes) {
            DesignPoint p = basePoint(4, pen);
            p.l1iSizeKW = kw;
            p.branchSlots = 2;
            row.push_back(
                TextTable::num(model.evaluate(p).cpi(), 3));
        }
        t.addRow(std::move(row));
    }
    return t;
}

namespace {

TextTable
eDistributionTable(CpiModel &model, bool dynamic)
{
    const char *title =
        dynamic ? "Figure 6: dynamic distribution of e (paper: >80% "
                  "of loads have e >= 3)"
                : "Figure 7: distribution of e bounded by basic "
                  "blocks";
    TextTable t(title);
    t.setHeader({"e", "fraction %", "cumulative >= e %"});

    const auto &stats = model.loadDelayStats();
    const Histogram &hist =
        dynamic ? stats.eDynamic : stats.eStatic;
    const double denom = static_cast<double>(stats.totalLoads());

    for (std::uint64_t e = 0; e <= 8; ++e) {
        const double frac =
            100.0 * static_cast<double>(hist.bucket(e)) / denom;
        // Cumulative over consumed loads; dead loads count as e = inf.
        double cum = 100.0 *
                     (static_cast<double>(stats.deadLoads) +
                      static_cast<double>(hist.count()) *
                          hist.fractionAtLeast(e)) /
                     denom;
        t.addRow({TextTable::num(e), TextTable::num(frac, 1),
                  TextTable::num(cum, 1)});
    }
    return t;
}

} // namespace

TextTable
fig6(CpiModel &model)
{
    return eDistributionTable(model, true);
}

TextTable
fig7(CpiModel &model)
{
    return eDistributionTable(model, false);
}

TextTable
fig8(CpiModel &model, std::uint32_t block_words, std::uint32_t penalty)
{
    TextTable t("Figure 8: total CPI vs. L1-D size per load delay "
                "cycles (B=" + std::to_string(block_words) + "W, P=" +
                std::to_string(penalty) + ")");
    t.setHeader({"D-size KW", "l=0", "l=1", "l=2", "l=3"});

    for (std::uint32_t kw : kSizesKW) {
        std::vector<std::string> row{TextTable::num(std::uint64_t{kw})};
        for (std::uint32_t l = 0; l <= 3; ++l) {
            DesignPoint p = basePoint(block_words, penalty);
            p.l1dSizeKW = kw;
            p.loadSlots = l;
            row.push_back(
                TextTable::num(model.evaluate(p).cpi(), 3));
        }
        t.addRow(std::move(row));
    }
    return t;
}

TextTable
fig9(TpiModel &model)
{
    TextTable t("Figure 9: TPI vs. L1-D size at l=2 (D-side sets the "
                "cycle)");
    t.setHeader({"D-size KW", "t_Dside ns", "CPI", "TPI ns"});

    for (std::uint32_t kw : kSizesKW) {
        DesignPoint p = basePoint(4, 10);
        p.l1dSizeKW = kw;
        p.loadSlots = 2;
        p.branchSlots = 2;
        const TpiResult r = model.evaluate(p);
        t.addRow({TextTable::num(std::uint64_t{kw}),
                  TextTable::num(r.tDsideNs, 2),
                  TextTable::num(r.cpi, 3),
                  TextTable::num(r.cpi * r.tDsideNs, 2)});
    }
    return t;
}

TextTable
fig11(CpiModel &model)
{
    TextTable t("Figure 11: relative CPI increase of load delay "
                "cycles vs. D size (paper: < 10% for 2 cycles) — the "
                "t_CPU reduction needed to break even");
    t.setHeader({"D-size KW", "l=1 %", "l=2 %", "l=3 %"});

    for (std::uint32_t kw : kSizesKW) {
        DesignPoint base = basePoint(4, 10);
        base.l1dSizeKW = kw;
        const double cpi0 = model.evaluate(base).cpi();
        std::vector<std::string> row{TextTable::num(std::uint64_t{kw})};
        for (std::uint32_t l = 1; l <= 3; ++l) {
            DesignPoint p = base;
            p.loadSlots = l;
            const double rel =
                100.0 * (model.evaluate(p).cpi() - cpi0) / cpi0;
            row.push_back(TextTable::num(rel, 1));
        }
        t.addRow(std::move(row));
    }
    return t;
}

namespace {

void
addTpiSweep(TextTable &t, TpiModel &model, std::uint32_t penalty,
            cpusim::LoadScheme load_scheme)
{
    const std::uint32_t totals[] = {2, 4, 8, 16, 32, 64, 128};
    for (std::uint32_t total : totals) {
        std::vector<std::string> row{
            TextTable::num(std::uint64_t{total})};
        for (std::uint32_t depth = 0; depth <= 3; ++depth) {
            DesignPoint p = basePoint(4, penalty);
            p.l1iSizeKW = total / 2;
            p.l1dSizeKW = total / 2;
            p.branchSlots = depth;
            p.loadSlots = depth;
            p.loadScheme = load_scheme;
            row.push_back(
                TextTable::num(model.evaluate(p).tpiNs, 2));
        }
        t.addRow(std::move(row));
    }
}

} // namespace

TextTable
fig12(TpiModel &model, std::uint32_t penalty)
{
    TextTable t("Figure 12: TPI (ns) vs. combined L1 size, b=l=0..3, "
                "P=" + std::to_string(penalty) +
                " (paper optimum: b=l=3, 64KW, ~6.8 ns)");
    t.setHeader({"total KW", "b=l=0", "b=l=1", "b=l=2", "b=l=3"});
    addTpiSweep(t, model, penalty, cpusim::LoadScheme::Static);
    return t;
}

TextTable
fig12Dynamic(TpiModel &model, std::uint32_t penalty)
{
    TextTable t("Figure 12 (dynamic loads): TPI (ns) vs. combined L1 "
                "size, P=" + std::to_string(penalty) +
                " (paper: optimum improves to ~6.2 ns)");
    t.setHeader({"total KW", "b=l=0", "b=l=1", "b=l=2", "b=l=3"});
    addTpiSweep(t, model, penalty, cpusim::LoadScheme::Dynamic);
    return t;
}

TextTable
fig13(TpiModel &model)
{
    TextTable t("Figure 13: TPI (ns) vs. combined L1 size at P=6 "
                "(paper optimum: b=l=2, 16KW, ~6.61 ns; asymmetric "
                "32KW-I/8KW-D ~6.5 ns)");
    t.setHeader({"total KW", "b=l=0", "b=l=1", "b=l=2", "b=l=3"});
    addTpiSweep(t, model, 6, cpusim::LoadScheme::Static);

    // The paper's asymmetric design: bigger, deeper L1-I.
    DesignPoint p = basePoint(4, 6);
    p.l1iSizeKW = 32;
    p.l1dSizeKW = 8;
    p.branchSlots = 3;
    p.loadSlots = 2;
    const TpiResult r = model.evaluate(p);
    t.addRow({});
    t.addRow({"asym", "I=32KW b=3, D=8KW l=2:",
              TextTable::num(r.tpiNs, 2), "ns", ""});
    return t;
}

TextTable
optimizerTrajectory(TpiModel &model)
{
    OptimizerConfig config;
    MultilevelOptimizer opt(model, config);

    DesignPoint start = basePoint(4, 10);
    start.l1iSizeKW = 2;
    start.l1dSizeKW = 2;
    const auto steps = opt.optimize(start);

    TextTable t("Multilevel optimization from the base architecture");
    t.setHeader({"step", "design", "CPI", "t_CPU ns", "TPI ns",
                 "change"});
    for (std::size_t i = 0; i < steps.size(); ++i) {
        t.addRow({TextTable::num(std::uint64_t{i}),
                  steps[i].point.describe(),
                  TextTable::num(steps[i].tpi.cpi, 3),
                  TextTable::num(steps[i].tpi.tCpuNs, 2),
                  TextTable::num(steps[i].tpi.tpiNs, 2),
                  steps[i].change});
    }
    return t;
}

} // namespace pipecache::core::experiments
