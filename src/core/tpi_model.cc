#include "core/tpi_model.hh"

#include <algorithm>

namespace pipecache::core {

TpiModel::TpiModel(CpiModel &cpi_model,
                   const timing::CpuTimingParams &params)
    : cpiModel_(cpi_model), params_(params)
{
}

double
TpiModel::cycleNs(const DesignPoint &point) const
{
    const timing::CacheSide iside{point.l1iSizeKW, point.branchSlots,
                                  point.assoc};
    const timing::CacheSide dside{point.l1dSizeKW, point.loadSlots,
                                  point.assoc};
    return timing::cpuCycleNs(params_, iside, dside);
}

TpiResult
TpiModel::evaluate(const DesignPoint &point)
{
    TpiResult result;
    result.cpi = cpiModel_.evaluate(point).cpi();

    const timing::CacheSide iside{point.l1iSizeKW, point.branchSlots,
                                  point.assoc};
    const timing::CacheSide dside{point.l1dSizeKW, point.loadSlots,
                                  point.assoc};
    result.tIsideNs = timing::sideCycleNs(params_, iside);
    result.tDsideNs = timing::sideCycleNs(params_, dside);
    result.tCpuNs = std::max(result.tIsideNs, result.tDsideNs);
    result.tpiNs = result.cpi * result.tCpuNs;
    return result;
}

} // namespace pipecache::core
