#include "core/tpi_model.hh"

#include <algorithm>

namespace pipecache::core {

TpiModel::TpiModel(CpiModel &cpi_model,
                   const timing::CpuTimingParams &params)
    : cpiModel_(cpi_model), params_(params)
{
}

double
TpiModel::cycleNs(const DesignPoint &point) const
{
    const timing::CacheSide iside{point.l1iSizeKW, point.branchSlots,
                                  point.assoc};
    const timing::CacheSide dside{point.l1dSizeKW, point.loadSlots,
                                  point.assoc};
    return timing::cpuCycleNs(params_, iside, dside);
}

namespace {

TpiResult
combine(const timing::CpuTimingParams &params, const DesignPoint &point,
        double cpi)
{
    TpiResult result;
    result.cpi = cpi;

    const timing::CacheSide iside{point.l1iSizeKW, point.branchSlots,
                                  point.assoc};
    const timing::CacheSide dside{point.l1dSizeKW, point.loadSlots,
                                  point.assoc};
    result.tIsideNs = timing::sideCycleNs(params, iside);
    result.tDsideNs = timing::sideCycleNs(params, dside);
    result.tCpuNs = std::max(result.tIsideNs, result.tDsideNs);
    result.tpiNs = result.cpi * result.tCpuNs;
    return result;
}

} // namespace

TpiResult
TpiModel::evaluate(const DesignPoint &point)
{
    return combine(params_, point, cpiModel_.evaluate(point).cpi());
}

TpiResult
TpiModel::evaluatePrepared(const DesignPoint &point) const
{
    return combine(params_, point,
                   cpiModel_.evaluatePrepared(point).cpi());
}

TpiResult
TpiModel::combineWithCpi(const DesignPoint &point, double cpi) const
{
    return combine(params_, point, cpi);
}

} // namespace pipecache::core
