/**
 * @file
 * Factored CPI evaluation: the sweep-side complement of the stack
 * simulator (cache::StackSimulator).
 *
 * A monolithic CpiModel::evaluatePrepared() replays the whole trace
 * once per design point, so a b x l x size grid costs |b|*|l|*|size|
 * replays. But the replay's control flow never reads cache state —
 * caches and the BTB only contribute stall cycles — so CpiResult
 * factors exactly into independently memoized components:
 *
 *  - branch component, keyed (scheme, b, predict source, BTB
 *    geometry): per-benchmark fetch/branch counters and BTB stats;
 *  - load component, keyed by the suite alone: per-benchmark
 *    load-delay distributions, turned into stall cycles per (l,
 *    scheme) by the pure cpusim::loadStallCycles();
 *  - miss components, keyed (access stream, block size): one stack
 *    pass yields exact per-benchmark miss counts for every cache
 *    geometry on the grid at once.
 *
 * One replay per distinct branch key computes its branch component
 * AND feeds every not-yet-claimed stack pass through the engine's
 * AccessStreamSink — the grid costs O(|branch keys|) replays instead
 * of O(points). Assembly is pure integer arithmetic followed by the
 * same double-valued accessors the monolithic path uses, so results
 * (and the serialized JSON) are bit-identical.
 *
 * Fallbacks (callers route these to the monolithic path, see
 * CpiModel::factorable): write-through buffer points (the buffer
 * couples D-stalls to the running cycle count), Random replacement
 * (breaks LRU inclusion), and 3C classification (wants a real
 * hierarchy per point).
 */

#ifndef PIPECACHE_CORE_FACTORED_EVAL_HH
#define PIPECACHE_CORE_FACTORED_EVAL_HH

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <variant>
#include <vector>

#include "cache/stack_sim.hh"
#include "core/cpi_model.hh"

namespace pipecache::core {

/** The component cache + assembler. Owned by a CpiModel. */
class FactoredEvaluator
{
  public:
    explicit FactoredEvaluator(CpiModel &model);

    /**
     * Register the geometries/streams of @p points (factorable ones
     * only), extending earlier plans. Call serially — typically right
     * after CpiModel::prepare() — before concurrent evaluate() calls.
     */
    void plan(const std::vector<DesignPoint> &points);

    /**
     * Evaluate @p point from components, computing (and caching) any
     * missing ones. Thread-safe; concurrent callers needing the same
     * component share one computation. Requires a plan() covering the
     * point and CpiModel::prepare() covering its translations.
     */
    CpiResult evaluate(const DesignPoint &point);

    /**
     * Bound the component cache to @p limit branch + pass entries
     * (0 = unbounded, the default). When an insert pushes the cache
     * past the limit, the oldest *completed* components are evicted
     * (in-flight ones are never touched) and counted in the
     * `sweep.memo_evictions` registry counter. Evicted components
     * recompute bit-identically on the next request, so results are
     * unaffected — only replay counts change — which is why a
     * long-lived daemon bounds the cache while single-process sweeps
     * leave it unbounded and byte-stable.
     */
    void setComponentLimit(std::size_t limit);

    /** Cached branch + pass components (tests and STATUS lines). */
    std::size_t componentCount();

  private:
    /** (scheme, xlat slots, predict source): what fixes the streams. */
    using StreamKey = std::tuple<int, std::uint32_t, int>;
    /** StreamKey + BTB geometry: what fixes the branch counters. */
    using BranchKey =
        std::tuple<int, std::uint32_t, int, std::uint32_t,
                   std::uint32_t>;
    /**
     * One stack pass: instruction passes are per (stream, block
     * size); data passes per block size (the data stream does not
     * depend on the code layout). The registered geometry ladder is
     * part of the identity, so a later plan() that widens the ladder
     * simply keys a fresh, wider pass.
     */
    using PassKey = std::tuple<bool, StreamKey, std::uint32_t,
                               std::vector<cache::StackGeometry>>;

    /** Branch-side counters of one replay (stall fields zeroed). */
    struct BranchComponent
    {
        std::vector<cpusim::CpiBreakdown> perBench;
        cache::BtbStats btb;
        bool hasBtb = false;
    };

    /** Per-benchmark load-delay stats (suite-wide, stream-free). */
    struct LoadComponent
    {
        std::vector<sched::LoadDelayStats> perBench;
    };

    using BranchFuture =
        std::shared_future<std::shared_ptr<const BranchComponent>>;
    using PassFuture = std::shared_future<
        std::shared_ptr<const cache::StackSimulator>>;
    using LoadFuture =
        std::shared_future<std::shared_ptr<const LoadComponent>>;

    /** Passes + load stats one replay has claimed responsibility for. */
    struct Claims
    {
        struct Pass
        {
            PassKey key;
            bool isData = false;
            std::shared_ptr<cache::StackSimulator> sim;
            std::promise<std::shared_ptr<const cache::StackSimulator>>
                promise;
        };
        std::vector<Pass> passes;
        bool claimedLoads = false;
        std::promise<std::shared_ptr<const LoadComponent>> loads;
    };

    static StreamKey streamKeyOf(const DesignPoint &p);
    static BranchKey branchKeyOf(const DesignPoint &p);

    PassKey iPassKeyOf(const DesignPoint &p) const;
    PassKey dPassKeyOf(const DesignPoint &p) const;

    /** Under mutex_: claim every unclaimed pass @p stream can feed. */
    void claimLocked(const StreamKey &stream, Claims &claims);

    /** Under mutex_: evict oldest completed components while over
     *  the limit (never in-flight ones; may overshoot then). */
    void enforceLimitLocked();

    /** Replay the schedule once, feeding @p claims' simulators; fill
     *  @p branchOut when non-null. Fulfills/poisons the claims. */
    void runReplay(const DesignPoint &p, Claims &claims,
                   BranchComponent *branchOut);

    std::shared_ptr<const BranchComponent>
    getBranch(const DesignPoint &p);
    std::shared_ptr<const cache::StackSimulator>
    getPass(const PassKey &key, const DesignPoint &p);
    std::shared_ptr<const LoadComponent>
    getLoads(const DesignPoint &p);

    CpiResult
    assemble(const DesignPoint &p, const BranchComponent &branch,
             const cache::StackSimulator &ipass,
             const cache::StackSimulator &dpass,
             const LoadComponent &loads) const;

    CpiModel &model_;

    std::mutex mutex_;
    /** Cumulative geometry ladders from plan(), sorted. */
    std::map<std::pair<StreamKey, std::uint32_t>,
             std::vector<cache::StackGeometry>> iGeoms_;
    std::map<std::uint32_t, std::vector<cache::StackGeometry>> dGeoms_;
    /** Memoized components (futures, so concurrent callers share). */
    std::map<BranchKey, BranchFuture> branch_;
    std::map<PassKey, PassFuture> passes_;
    bool loadsStarted_ = false;
    LoadFuture loads_;

    /** 0 = unbounded. See setComponentLimit(). */
    std::size_t componentLimit_ = 0;
    /** Insertion order of branch_/passes_ keys (FIFO eviction). */
    std::deque<std::variant<BranchKey, PassKey>> evictOrder_;
};

} // namespace pipecache::core

#endif // PIPECACHE_CORE_FACTORED_EVAL_HH
