#include "cache/hierarchy.hh"

#include "util/logging.hh"

namespace pipecache::cache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i, 0x11), l1d_(config.l1d, 0x22)
{
    if (!config_.flatPenalty) {
        l2_ = std::make_unique<Cache>(config_.l2, 0x33);
    } else {
        PC_ASSERT(*config_.flatPenalty >= 1,
                  "flat penalty must be >= 1 cycle");
    }
}

std::uint32_t
CacheHierarchy::missCycles(Addr addr, bool write)
{
    if (config_.flatPenalty)
        return *config_.flatPenalty;

    // Full hierarchy: L2 hit or memory refill.
    const bool l2_hit = l2_->access(addr, write);
    if (l2_hit)
        return config_.l2HitCycles;
    ++stats_.l2Misses;
    return config_.l2HitCycles + config_.memoryCycles;
}

std::uint32_t
CacheHierarchy::accessInst(Addr addr)
{
    if (l1i_.access(addr, false))
        return 0;
    const std::uint32_t stall = missCycles(addr, false);
    stats_.l1iStallCycles += stall;
    return stall;
}

std::uint32_t
CacheHierarchy::accessData(Addr addr, bool write)
{
    if (l1d_.access(addr, write))
        return 0;
    const std::uint32_t stall = missCycles(addr, write);
    stats_.l1dStallCycles += stall;
    return stall;
}

void
CacheHierarchy::accessDataBuffered(Addr addr)
{
    l1d_.access(addr, true);
    if (l2_) {
        // The buffered write still updates L2 (write-through point).
        l2_->access(addr, true);
    }
}

void
CacheHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    if (l2_)
        l2_->flush();
}

} // namespace pipecache::cache
