#include "cache/hierarchy.hh"

#include <string>

#include "obs/stats_registry.hh"
#include "util/logging.hh"

namespace pipecache::cache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i, 0x11), l1d_(config.l1d, 0x22)
{
    if (!config_.flatPenalty) {
        l2_ = std::make_unique<Cache>(config_.l2, 0x33);
    } else {
        PC_ASSERT(*config_.flatPenalty >= 1,
                  "flat penalty must be >= 1 cycle");
    }
    if (config_.classify3C) {
        classifyI_ = std::make_unique<ThreeCClassifier>(
            config_.l1i.sizeBytes, config_.l1i.blockBytes);
        classifyD_ = std::make_unique<ThreeCClassifier>(
            config_.l1d.sizeBytes, config_.l1d.blockBytes);
    }
}

std::uint32_t
CacheHierarchy::missCycles(Addr addr, bool write)
{
    if (config_.flatPenalty)
        return *config_.flatPenalty;

    // Full hierarchy: L2 hit or memory refill.
    const bool l2_hit = l2_->access(addr, write);
    if (l2_hit)
        return config_.l2HitCycles;
    ++stats_.l2Misses;
    return config_.l2HitCycles + config_.memoryCycles;
}

std::uint32_t
CacheHierarchy::accessInst(Addr addr)
{
    const bool hit = l1i_.access(addr, false);
    if (classifyI_)
        classifyI_->classify(addr, hit);
    if (hit)
        return 0;
    const std::uint32_t stall = missCycles(addr, false);
    stats_.l1iStallCycles += stall;
    return stall;
}

std::uint32_t
CacheHierarchy::accessData(Addr addr, bool write)
{
    const bool hit = l1d_.access(addr, write);
    if (classifyD_)
        classifyD_->classify(addr, hit);
    if (hit)
        return 0;
    const std::uint32_t stall = missCycles(addr, write);
    stats_.l1dStallCycles += stall;
    return stall;
}

void
CacheHierarchy::accessDataBuffered(Addr addr)
{
    const bool hit = l1d_.access(addr, true);
    if (classifyD_)
        classifyD_->classify(addr, hit);
    if (l2_) {
        // The buffered write still updates L2 (write-through point).
        l2_->access(addr, true);
    }
}

namespace {

void
publishCache(obs::StatsRegistry &reg, const std::string &prefix,
             const CacheStats &s)
{
    using obs::StatKind;
    reg.addCounter(prefix + ".reads", "read accesses",
                   StatKind::Deterministic, s.reads);
    reg.addCounter(prefix + ".writes", "write accesses",
                   StatKind::Deterministic, s.writes);
    reg.addCounter(prefix + ".read_misses", "read misses",
                   StatKind::Deterministic, s.readMisses);
    reg.addCounter(prefix + ".write_misses", "write misses",
                   StatKind::Deterministic, s.writeMisses);
    reg.addCounter(prefix + ".evictions", "block evictions",
                   StatKind::Deterministic, s.evictions);
    reg.addCounter(prefix + ".dirty_evictions", "dirty block evictions",
                   StatKind::Deterministic, s.dirtyEvictions);
}

void
publishThreeC(obs::StatsRegistry &reg, const std::string &prefix,
              const ThreeCStats &s)
{
    using obs::StatKind;
    reg.addCounter(prefix + ".miss.compulsory", "3C compulsory misses",
                   StatKind::Deterministic, s.compulsory);
    reg.addCounter(prefix + ".miss.capacity", "3C capacity misses",
                   StatKind::Deterministic, s.capacity);
    reg.addCounter(prefix + ".miss.conflict", "3C conflict misses",
                   StatKind::Deterministic, s.conflict);
}

} // namespace

void
publishL1Stats(obs::StatsRegistry &reg, const CacheStats &l1i,
               Counter l1iStallCycles, const CacheStats &l1d,
               Counter l1dStallCycles)
{
    using obs::StatKind;
    publishCache(reg, "cache.l1i", l1i);
    publishCache(reg, "cache.l1d", l1d);
    reg.addCounter("cache.l1i.stall_cycles", "I-fetch miss stall cycles",
                   StatKind::Deterministic, l1iStallCycles);
    reg.addCounter("cache.l1d.stall_cycles", "data miss stall cycles",
                   StatKind::Deterministic, l1dStallCycles);
}

void
CacheHierarchy::publishStats(obs::StatsRegistry &reg) const
{
    using obs::StatKind;
    publishL1Stats(reg, l1i_.stats(), stats_.l1iStallCycles,
                   l1d_.stats(), stats_.l1dStallCycles);
    if (l2_) {
        publishCache(reg, "cache.l2", l2_->stats());
        reg.addCounter("cache.l2.misses", "L2 misses (memory refills)",
                       StatKind::Deterministic, stats_.l2Misses);
    }
    if (classifyI_)
        publishThreeC(reg, "cache.l1i", classifyI_->stats());
    if (classifyD_)
        publishThreeC(reg, "cache.l1d", classifyD_->stats());
}

void
CacheHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    if (l2_)
        l2_->flush();
}

} // namespace pipecache::cache
