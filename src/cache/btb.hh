/**
 * @file
 * Branch-target buffer (Section 3.1 of the paper).
 *
 * A cache of branch addresses: entries hold the CTI's address tag, its
 * predicted target, and a 2-bit saturating direction counter (the Lee
 * & Smith scheme the paper cites). The paper's instance is 256 entries
 * — the largest SRAM that still allows single-cycle access at the
 * target cycle time — holding two 32-bit addresses plus 2 bits per
 * entry (~2 KB).
 *
 * Prediction contract (paper's accounting):
 *  - hit with correct direction *and* target: the branch delay is
 *    completely hidden;
 *  - any misprediction or a miss on a taken CTI: b + 1 cycles
 *    (b delay cycles plus one fill/update stall);
 *  - miss on a not-taken CTI: sequential fetch was correct, no cost.
 */

#ifndef PIPECACHE_CACHE_BTB_HH
#define PIPECACHE_CACHE_BTB_HH

#include <cstdint>
#include <vector>

#include "util/units.hh"

namespace pipecache::cache {

/** BTB geometry. */
struct BtbConfig
{
    std::uint32_t entries = 256;
    std::uint32_t assoc = 1;
    /** Initial counter value on allocation (2 = weakly taken). */
    std::uint8_t initialCounter = 2;

    /** Approximate storage in bytes (2 addresses + 2 bits per entry). */
    std::uint64_t storageBytes() const
    {
        return static_cast<std::uint64_t>(entries) * (4 + 4) +
               (entries * 2 + 7) / 8;
    }
};

/** BTB statistics. */
struct BtbStats
{
    Counter lookups = 0;
    Counter hits = 0;
    Counter predictedTaken = 0;
    Counter correct = 0;           //!< direction and target both right
    Counter directionWrong = 0;
    Counter targetWrong = 0;       //!< direction right, target stale
    Counter missTaken = 0;         //!< miss on a taken CTI (fill stall)
    Counter allocations = 0;

    Counter mispredicts() const
    {
        return directionWrong + targetWrong + missTaken;
    }
};

/** The branch-target buffer. */
class BranchTargetBuffer
{
  public:
    explicit BranchTargetBuffer(const BtbConfig &config);

    /** Lookup result for one CTI fetch address. */
    struct Result
    {
        bool hit = false;
        bool predictTaken = false;
        Addr target = 0;
    };

    /** Probe the BTB at @p pc (counts a lookup). */
    Result lookup(Addr pc);

    /**
     * Resolve and train: @p taken is the actual direction, @p target
     * the actual next-fetch address for taken CTIs. Returns the
     * stall penalty in cycles for @p delay_cycles of branch delay.
     * Call exactly once per lookup.
     */
    std::uint32_t resolve(const Result &res, Addr pc, bool taken,
                          Addr target, std::uint32_t delay_cycles);

    const BtbStats &stats() const { return stats_; }
    const BtbConfig &config() const { return config_; }

    /** Invalidate all entries (keeps statistics). */
    void flush();

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint8_t counter = 0;
        std::uint64_t stamp = 0;
    };

    BtbConfig config_;
    std::vector<Entry> entries_;
    BtbStats stats_;
    std::uint64_t tick_ = 0;
    std::uint32_t sets_;

    Entry *find(Addr pc);
    Entry &victim(Addr pc);
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_BTB_HH
