#include "cache/three_c.hh"

#include "util/logging.hh"

namespace pipecache::cache {

ThreeCClassifier::ThreeCClassifier(std::uint64_t size_bytes,
                                   std::uint32_t block_bytes)
{
    PC_ASSERT(isPowerOfTwo(block_bytes), "bad shadow block size");
    blockShift_ = floorLog2(block_bytes);
    shadowCapacity_ = static_cast<std::size_t>(size_bytes / block_bytes);
    PC_ASSERT(shadowCapacity_ >= 1, "shadow with no capacity");
}

bool
ThreeCClassifier::shadowAccess(Addr block)
{
    auto it = shadowMap_.find(block);
    if (it != shadowMap_.end()) {
        // Move to MRU position.
        shadowLru_.splice(shadowLru_.begin(), shadowLru_, it->second);
        return true;
    }
    // Miss: insert at MRU, evict LRU if over capacity.
    shadowLru_.push_front(block);
    shadowMap_[block] = shadowLru_.begin();
    if (shadowLru_.size() > shadowCapacity_) {
        shadowMap_.erase(shadowLru_.back());
        shadowLru_.pop_back();
    }
    return false;
}

MissClass
ThreeCClassifier::classify(Addr addr, bool real_hit)
{
    ++stats_.accesses;
    const Addr block = addr >> blockShift_;

    const bool shadow_hit = shadowAccess(block);
    const bool first_touch = touched_.insert(block).second;

    if (real_hit)
        return MissClass::Hit;

    if (first_touch) {
        ++stats_.compulsory;
        return MissClass::Compulsory;
    }
    if (!shadow_hit) {
        ++stats_.capacity;
        return MissClass::Capacity;
    }
    ++stats_.conflict;
    return MissClass::Conflict;
}

ThreeCCache::ThreeCCache(const CacheConfig &config)
    : cache_(config), classifier_(config.sizeBytes, config.blockBytes)
{
}

MissClass
ThreeCCache::access(Addr addr, bool write)
{
    return classifier_.classify(addr, cache_.access(addr, write));
}

} // namespace pipecache::cache
