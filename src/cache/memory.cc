#include "cache/memory.hh"

#include "util/logging.hh"

namespace pipecache::cache {

std::uint32_t
RefillConfig::penalty(std::uint32_t block_bytes) const
{
    PC_ASSERT(wordsPerCycle >= 1, "refill rate must be >= 1 word/cycle");
    PC_ASSERT(block_bytes % bytesPerWord == 0, "block not word-aligned");
    const std::uint32_t words = block_bytes / bytesPerWord;
    // Round up: a partial beat still takes a cycle.
    return startupCycles + (words + wordsPerCycle - 1) / wordsPerCycle;
}

MissPenalty
MissPenalty::flat(std::uint32_t cycles)
{
    PC_ASSERT(cycles >= 1, "flat miss penalty must be >= 1 cycle");
    return MissPenalty(cycles);
}

MissPenalty
MissPenalty::fromRefill(const RefillConfig &refill,
                        std::uint32_t block_bytes)
{
    return MissPenalty(refill.penalty(block_bytes));
}

} // namespace pipecache::cache
