#include "cache/btb.hh"

#include "util/logging.hh"

namespace pipecache::cache {

BranchTargetBuffer::BranchTargetBuffer(const BtbConfig &config)
    : config_(config)
{
    PC_ASSERT(config_.entries >= 1 && config_.assoc >= 1,
              "bad BTB geometry");
    PC_ASSERT(config_.entries % config_.assoc == 0,
              "BTB entries not divisible by associativity");
    sets_ = config_.entries / config_.assoc;
    PC_ASSERT(isPowerOfTwo(sets_), "BTB set count not a power of two");
    PC_ASSERT(config_.initialCounter <= 3, "counter is 2 bits");
    entries_.resize(config_.entries);
}

BranchTargetBuffer::Entry *
BranchTargetBuffer::find(Addr pc)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(pc >> 2) & (sets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) *
                            config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    }
    return nullptr;
}

BranchTargetBuffer::Entry &
BranchTargetBuffer::victim(Addr pc)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(pc >> 2) & (sets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) *
                            config_.assoc];
    Entry *lru = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].stamp < lru->stamp)
            lru = &base[w];
    }
    return *lru;
}

BranchTargetBuffer::Result
BranchTargetBuffer::lookup(Addr pc)
{
    ++tick_;
    ++stats_.lookups;
    Result res;
    if (Entry *e = find(pc)) {
        e->stamp = tick_;
        ++stats_.hits;
        res.hit = true;
        res.predictTaken = e->counter >= 2;
        res.target = e->target;
    }
    if (res.hit && res.predictTaken)
        ++stats_.predictedTaken;
    return res;
}

std::uint32_t
BranchTargetBuffer::resolve(const Result &res, Addr pc, bool taken,
                            Addr target, std::uint32_t delay_cycles)
{
    std::uint32_t penalty = 0;

    if (res.hit) {
        // The entry may have been evicted between lookup and resolve
        // (deferred indirect-jump resolution across a context switch);
        // the prediction outcome stands, only the training is skipped.
        if (Entry *e = find(pc)) {
            // Train the 2-bit counter and refresh the target.
            if (taken) {
                if (e->counter < 3)
                    ++e->counter;
                e->target = target;
            } else if (e->counter > 0) {
                --e->counter;
            }
        }

        if (res.predictTaken != taken) {
            ++stats_.directionWrong;
            penalty = delay_cycles + 1;
        } else if (taken && res.target != target) {
            // Right direction, stale target (indirect jumps).
            ++stats_.targetWrong;
            penalty = delay_cycles + 1;
        } else {
            ++stats_.correct;
        }
        return penalty;
    }

    // Miss: the fetch unit assumed "not a branch", i.e. sequential.
    if (taken) {
        ++stats_.missTaken;
        penalty = delay_cycles + 1;
        // Allocate on taken CTIs only (Lee & Smith policy).
        Entry &e = victim(pc);
        e.valid = true;
        e.tag = pc;
        e.target = target;
        e.counter = config_.initialCounter;
        e.stamp = tick_;
        ++stats_.allocations;
    } else {
        // Sequential assumption was right; nothing to do. (Not-taken
        // CTIs are not allocated.)
        ++stats_.correct;
    }
    return penalty;
}

void
BranchTargetBuffer::flush()
{
    for (auto &e : entries_)
        e = Entry();
}

} // namespace pipecache::cache
