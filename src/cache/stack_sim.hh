/**
 * @file
 * Mattson LRU stack-distance simulator.
 *
 * Exploits the inclusion property of LRU with bit-selection indexing:
 * a reference hits in an A-way cache with 2^s sets iff its per-set
 * reuse depth d satisfies d < A, and d is non-increasing in s. One
 * replay of an access stream therefore yields exact hit/miss counts
 * for an entire power-of-two size/associativity ladder at once — the
 * paper's "one trace, many architectures" methodology taken to its
 * logical end (cf. Mattson et al., 1970).
 *
 * Scope: exact for LRU, write-allocate caches whose access stream
 * does not depend on cache contents (true of the CPI engine: caches
 * only contribute stall cycles, never change what is fetched).
 * Random replacement breaks inclusion and write-through/no-write-
 * allocate changes fill behavior; callers fall back to per-point
 * replay for those (core::FactoredEvaluator does this automatically).
 *
 * Beyond miss counts the simulator reconstructs the full CacheStats
 * a per-point `Cache` replay would report, bit for bit:
 *  - evictions from the end state (fills minus final occupancy);
 *  - dirty evictions via per-block dirty bitmasks resolved at the
 *    next miss of the same block (or at finish() for blocks that are
 *    evicted dirty and never return).
 */

#ifndef PIPECACHE_CACHE_STACK_SIM_HH
#define PIPECACHE_CACHE_STACK_SIM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/units.hh"

namespace pipecache::cache {

/** One cache geometry on the ladder: 2^log2Sets sets, assoc ways. */
struct StackGeometry
{
    std::uint32_t log2Sets = 0;
    std::uint32_t assoc = 1;

    std::uint64_t sets() const { return 1ULL << log2Sets; }

    friend bool operator==(const StackGeometry &,
                           const StackGeometry &) = default;
    friend auto operator<=>(const StackGeometry &,
                            const StackGeometry &) = default;
};

/** The one-pass multi-geometry simulator. */
class StackSimulator
{
  public:
    /**
     * @param blockBytes  Line size shared by every geometry.
     * @param geometries  The ladder (deduplicated and sorted inside).
     * @param numBenches  Streams are multi-benchmark; misses are
     *                    attributed to the accessing benchmark.
     */
    StackSimulator(std::uint32_t blockBytes,
                   std::vector<StackGeometry> geometries,
                   std::size_t numBenches);

    /** Replay one access of the shared stream. */
    void access(std::size_t bench, Addr addr, bool write);

    /** Resolve end-state eviction counts. Call once, after the
     *  stream; access() afterwards is a logic error. */
    void finish();

    /** Per-geometry counters (valid after finish()). */
    struct GeomCounts
    {
        std::vector<Counter> readMisses;  //!< per benchmark
        std::vector<Counter> writeMisses; //!< per benchmark
        Counter evictions = 0;
        Counter dirtyEvictions = 0;

        Counter readMissTotal() const;
        Counter writeMissTotal() const;
    };

    /** Counters of one geometry; panics if it was not registered. */
    const GeomCounts &counts(std::uint32_t log2Sets,
                             std::uint32_t assoc) const;

    /** Stream totals, attributed per benchmark. */
    const std::vector<Counter> &benchReads() const { return reads_; }
    const std::vector<Counter> &benchWrites() const { return writes_; }
    Counter accesses() const { return accesses_; }

    const std::vector<StackGeometry> &geometries() const
    {
        return geoms_;
    }
    std::uint32_t blockBytes() const { return blockBytes_; }
    std::size_t numBenches() const { return numBenches_; }
    bool finished() const { return finished_; }

  private:
    static constexpr std::int32_t kNull = -1;

    /**
     * All geometries sharing a set count form one level: one per-set
     * LRU list (intrusive, indexed by dense block id), walked at most
     * maxAssoc deep per access. Blocks are never unlinked — the list
     * is the recency *stack*, and position >= A means "not resident
     * in the A-way cache".
     */
    struct Level
    {
        std::uint32_t log2Sets = 0;
        std::uint32_t setMask = 0;
        std::uint32_t maxAssoc = 0;
        std::uint32_t allMask = 0;
        /** Geometries at this level (indices into geoms_). */
        std::vector<std::uint32_t> geomIdx;
        /** Per set: front of the recency list / resident-bound. */
        std::vector<std::int32_t> head;
        std::vector<std::uint32_t> len;
        /** Per dense block id: list links and the per-geometry dirty
         *  bitmask (bit k = line dirty in geomIdx[k]'s cache). */
        std::vector<std::int32_t> prev;
        std::vector<std::int32_t> next;
        std::vector<std::uint32_t> dirty;
    };

    std::uint32_t blockBytes_;
    std::uint32_t blockShift_;
    std::size_t numBenches_;
    std::vector<StackGeometry> geoms_;
    std::vector<GeomCounts> counts_;
    std::vector<Level> levels_;

    /** addr >> blockShift_ -> dense block id (one hash per access). */
    std::unordered_map<std::uint32_t, std::uint32_t> blockIndex_;
    std::uint32_t numBlocks_ = 0;

    std::vector<Counter> reads_;
    std::vector<Counter> writes_;
    Counter accesses_ = 0;
    bool finished_ = false;
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_STACK_SIM_HH
