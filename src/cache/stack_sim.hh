/**
 * @file
 * Mattson LRU stack-distance simulator.
 *
 * Exploits the inclusion property of LRU with bit-selection indexing:
 * a reference hits in an A-way cache with 2^s sets iff its per-set
 * reuse depth d satisfies d < A, and d is non-increasing in s. One
 * replay of an access stream therefore yields exact hit/miss counts
 * for an entire power-of-two size/associativity ladder at once — the
 * paper's "one trace, many architectures" methodology taken to its
 * logical end (cf. Mattson et al., 1970).
 *
 * Scope: exact for LRU, write-allocate caches whose access stream
 * does not depend on cache contents (true of the CPI engine: caches
 * only contribute stall cycles, never change what is fetched).
 * Random replacement breaks inclusion and write-through/no-write-
 * allocate changes fill behavior; callers fall back to per-point
 * replay for those (core::FactoredEvaluator does this automatically).
 *
 * Beyond miss counts the simulator reconstructs the full CacheStats
 * a per-point `Cache` replay would report, bit for bit:
 *  - evictions from the end state (fills minus final occupancy);
 *  - dirty evictions via per-block dirty bitmasks resolved at the
 *    next miss of the same block (or at finish() for blocks that are
 *    evicted dirty and never return).
 *
 * Two interchangeable engines compute the same counters:
 *
 *  - StackSimImpl::Vectorized (default): an open-addressing
 *    power-of-two block index (one linear-probe loop, no hash-node
 *    chasing), per-set recency *windows* — contiguous maxAssoc-entry
 *    rows scanned and rotated in place instead of walking an
 *    intrusive linked list — per-block dirty masks flattened into one
 *    row per block across levels, and a depth-indexed miss-mask
 *    table. Feed it in blocks via accessBatch() to keep these
 *    structures hot.
 *
 *  - StackSimImpl::ScalarReference: the pre-refactor walk
 *    (std::unordered_map block index, per-level intrusive lists),
 *    kept as an independently-coded reference the differential fuzz
 *    oracle runs against the vectorized engine.
 *
 * Results are bit-identical between the two engines and between
 * access() and accessBatch() in any batching: both process the
 * stream strictly in order.
 */

#ifndef PIPECACHE_CACHE_STACK_SIM_HH
#define PIPECACHE_CACHE_STACK_SIM_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/units.hh"

namespace pipecache::cache {

/** One cache geometry on the ladder: 2^log2Sets sets, assoc ways. */
struct StackGeometry
{
    std::uint32_t log2Sets = 0;
    std::uint32_t assoc = 1;

    std::uint64_t sets() const { return 1ULL << log2Sets; }

    friend bool operator==(const StackGeometry &,
                           const StackGeometry &) = default;
    friend auto operator<=>(const StackGeometry &,
                            const StackGeometry &) = default;
};

/** Which access engine a StackSimulator runs (see file comment). */
enum class StackSimImpl : std::uint8_t
{
    Vectorized,      //!< SoA windows + open addressing (default)
    ScalarReference, //!< pre-refactor walk, oracle reference
};

/** One element of a batched access stream. */
struct AccessRecord
{
    Addr addr = 0;
    std::uint16_t bench = 0;
    std::uint8_t store = 0;
};

/** The one-pass multi-geometry simulator. */
class StackSimulator
{
  public:
    /**
     * @param blockBytes  Line size shared by every geometry.
     * @param geometries  The ladder (deduplicated and sorted inside).
     * @param numBenches  Streams are multi-benchmark; misses are
     *                    attributed to the accessing benchmark.
     * @param impl        Access engine; ScalarReference exists for
     *                    differential testing.
     */
    StackSimulator(std::uint32_t blockBytes,
                   std::vector<StackGeometry> geometries,
                   std::size_t numBenches,
                   StackSimImpl impl = StackSimImpl::Vectorized);

    /** Replay one access of the shared stream. */
    void access(std::size_t bench, Addr addr, bool write);

    /**
     * Replay a block of accesses in order. Identical results to
     * per-access calls — batching only amortizes dispatch and keeps
     * the index/window structures hot.
     */
    void accessBatch(std::span<const AccessRecord> records);

    /** Resolve end-state eviction counts. Call once, after the
     *  stream; access() afterwards is a logic error. */
    void finish();

    /** Per-geometry counters (valid after finish()). */
    struct GeomCounts
    {
        std::vector<Counter> readMisses;  //!< per benchmark
        std::vector<Counter> writeMisses; //!< per benchmark
        Counter evictions = 0;
        Counter dirtyEvictions = 0;

        Counter readMissTotal() const;
        Counter writeMissTotal() const;
    };

    /** Counters of one geometry; panics if it was not registered. */
    const GeomCounts &counts(std::uint32_t log2Sets,
                             std::uint32_t assoc) const;

    /** Stream totals, attributed per benchmark. */
    const std::vector<Counter> &benchReads() const { return reads_; }
    const std::vector<Counter> &benchWrites() const { return writes_; }
    Counter accesses() const { return accesses_; }

    const std::vector<StackGeometry> &geometries() const
    {
        return geoms_;
    }
    std::uint32_t blockBytes() const { return blockBytes_; }
    std::size_t numBenches() const { return numBenches_; }
    bool finished() const { return finished_; }
    StackSimImpl impl() const { return impl_; }

  private:
    static constexpr std::int32_t kNull = -1;
    static constexpr std::uint32_t kNoBlock = ~0u;
    /** Block numbers are addr >> blockShift_ with blockShift_ >= 2,
     *  so all-ones can never be a real key. */
    static constexpr std::uint32_t kEmptyKey = ~0u;

    /**
     * All geometries sharing a set count form one level. The
     * vectorized engine keeps, per set, a *window*: the top maxAssoc
     * entries of the true LRU recency stack as one contiguous row
     * (scan for the reuse depth, rotate to the front in place).
     * Depth >= maxAssoc means "miss in every geometry here", so
     * nothing deeper ever needs to be represented. The reference
     * engine keeps the full intrusive recency list (blocks are never
     * unlinked; position >= A means "not resident in the A-way
     * cache").
     */
    struct Level
    {
        std::uint32_t log2Sets = 0;
        std::uint32_t setMask = 0;
        std::uint32_t maxAssoc = 0;
        std::uint32_t allMask = 0;
        /** Geometries at this level (indices into geoms_). */
        std::vector<std::uint32_t> geomIdx;
        /** missMaskByDepth[d] = geometries whose assoc <= d, i.e.
         *  the miss set of a reuse at depth d (d capped at
         *  maxAssoc). */
        std::vector<std::uint32_t> missMaskByDepth;
        /** Vectorized engine: reuse-depth histogram,
         *  [(d * numBenches + bench) * 2 + isWrite]. Misses per
         *  geometry fall out at finish() as the tail sum d >= assoc —
         *  the hot loop does one increment where per-geometry
         *  attribution would chase counts_ vectors. */
        std::vector<Counter> hist;
        /** Vectorized engine: dirty evictions per geometry of this
         *  level (index = bit position in the masks), folded into
         *  counts_ at finish(). */
        std::vector<Counter> dirtyEv;
        /** Per set: distinct blocks ever mapped here (never
         *  shrinks); resident count in an A-way cache is
         *  min(A, len). */
        std::vector<std::uint32_t> len;

        // --- vectorized engine: sets() rows of maxAssoc entries,
        //     kNoBlock-padded, exact recency order front-to-back.
        std::vector<std::uint32_t> window;

        // --- reference engine: intrusive per-set lists over dense
        //     block ids, plus that engine's own dirty masks.
        std::vector<std::int32_t> head;
        std::vector<std::int32_t> prev;
        std::vector<std::int32_t> next;
        std::vector<std::uint32_t> dirty;
    };

    std::uint32_t blockBytes_;
    std::uint32_t blockShift_;
    std::size_t numBenches_;
    StackSimImpl impl_;
    std::vector<StackGeometry> geoms_;
    std::vector<GeomCounts> counts_;
    std::vector<Level> levels_;

    // ------------------------------------- vectorized block index
    /** Open-addressing (key, dense id) pairs, power-of-two sized,
     *  linear probing, grown at 7/8 load. */
    struct IdxEntry
    {
        std::uint32_t key;
        std::uint32_t val;
    };
    std::vector<IdxEntry> index_;
    std::uint32_t indexMask_ = 0;
    std::size_t indexSize_ = 0;
    /** Capacity of the per-block arrays (amortized doubling). */
    std::uint32_t blockCap_ = 0;
    /** Per block: one row of levels_.size() dirty masks, so one
     *  access touches one cache line of dirty state, not one array
     *  per level. */
    std::vector<std::uint32_t> dirtyRows_;
    /** Per block: nonzero iff its dirty row may be nonzero. Clean
     *  blocks (never written since their last full miss cycle) skip
     *  the row entirely — on read-only streams the rows are never
     *  touched at all. */
    std::vector<std::uint8_t> dirtyFlag_;
    /** Last block accessed (vectorized): a repeat sits at depth 0 in
     *  every level — nothing to scan, rotate, or record. */
    std::uint32_t lastBlk_ = kNoBlock;
    std::uint32_t lastBi_ = 0;

    // ------------------------------------- reference block index
    /** addr >> blockShift_ -> dense block id (one hash per access). */
    std::unordered_map<std::uint32_t, std::uint32_t> blockIndex_;

    std::uint32_t numBlocks_ = 0;

    std::vector<Counter> reads_;
    std::vector<Counter> writes_;
    Counter accesses_ = 0;
    bool finished_ = false;

    void accessFast(std::size_t bench, Addr addr, bool write);
    void accessRef(std::size_t bench, Addr addr, bool write);
    std::uint32_t lookupOrInsert(std::uint32_t blk, bool &inserted);
    void growIndex();
    void growBlockArrays();
    void finishFast();
    void finishRef();
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_STACK_SIM_HH
