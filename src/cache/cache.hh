/**
 * @file
 * Generic blocking cache model.
 *
 * The paper's L1 caches are direct-mapped (the GaAs design point), but
 * the model is general set-associative with LRU or random replacement
 * so the closing question of the paper — whether pipelining revives
 * the size-versus-associativity tradeoff — can be explored
 * (bench_abl_assoc).
 *
 * Storage is structure-of-arrays: tags, dirty bits, and LRU stamps
 * live in separate contiguous lanes rather than an array of line
 * structs. The tag compare across the ways of a set is a branchless
 * scan over one dense lane (vectorizable for the padded power-of-two
 * way strides); the direct-mapped hit path — the common case in every
 * paper experiment — is one compare on a lane six times denser than
 * the old line structs, and never touches the stamps lane at all
 * (with one way there is no victim choice to order).
 */

#ifndef PIPECACHE_CACHE_CACHE_HH
#define PIPECACHE_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/units.hh"

namespace pipecache::cache {

/** Replacement policy. */
enum class Replacement : std::uint8_t
{
    LRU,
    Random,
};

/** Static configuration of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 4096;
    std::uint32_t blockBytes = 16;
    std::uint32_t assoc = 1; //!< 1 = direct-mapped
    Replacement repl = Replacement::LRU;
    /** Allocate a block on write misses (write-back caches). */
    bool writeAllocate = true;

    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) *
                            assoc);
    }

    /** Panics if sizes are inconsistent or not powers of two. */
    void validate() const;
};

/** Hit/miss and write statistics. */
struct CacheStats
{
    Counter reads = 0;
    Counter writes = 0;
    Counter readMisses = 0;
    Counter writeMisses = 0;
    Counter evictions = 0;
    Counter dirtyEvictions = 0;

    Counter accesses() const { return reads + writes; }
    Counter misses() const { return readMisses + writeMisses; }

    double missRate() const
    {
        return accesses() == 0
                   ? 0.0
                   : static_cast<double>(misses()) /
                         static_cast<double>(accesses());
    }
};

/** A blocking cache (no MSHRs — 1992 technology). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config, std::uint64_t seed = 0);

    /**
     * Access @p addr; returns true on hit. Misses allocate (subject to
     * writeAllocate) and update statistics.
     *
     * Defined inline below: the direct-mapped fast path folds into
     * the caller (and callers passing a constant @p write shed the
     * write-side bookkeeping entirely).
     */
    bool access(Addr addr, bool write);

    /** True if the block containing addr is resident (no side effects). */
    bool contains(Addr addr) const;

    /** Invalidate everything (keeps statistics). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats(); }

    const CacheConfig &config() const { return config_; }

  private:
    /**
     * Tags are `addr >> setShift_` with setShift_ >= 2, so the
     * all-ones value can never be a real tag; it doubles as the
     * "invalid line" marker, making validity a by-product of the same
     * lane the tag compare already scans.
     */
    static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);

    CacheConfig config_;
    CacheStats stats_;
    Rng rng_;
    std::uint64_t tick_ = 0;

    std::uint64_t setShift_;
    std::uint64_t setMask_;
    /** Ways per set padded up to a power of two (SIMD-friendly row
     *  stride); padding lanes hold kInvalidTag forever and are never
     *  considered for victims. */
    std::uint32_t wayStride_;

    /** SoA lanes, each sets() * wayStride_ long, row = one set. */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> stamps_;
    std::vector<std::uint8_t> dirty_;

    static constexpr std::uint32_t kNoWay = ~0u;

    /** Index of the way whose tag equals @p tag, or kNoWay. */
    std::uint32_t findWay(const Addr *lane, Addr tag) const;
    bool accessGeneral(Addr addr, bool write);
    bool accessDirectMiss(std::uint64_t set, Addr tag, bool write);
};

inline bool
Cache::access(Addr addr, bool write)
{
    stats_.reads += write ? 0 : 1;
    stats_.writes += write ? 1 : 0;

    // Direct-mapped allocate-on-miss accesses — the dominant shape in
    // every paper experiment — need no way scan, no stamps, and no
    // tick (with one way there is never a victim choice to order):
    // the hit path is one tag compare on a dense 4-byte-per-set lane
    // plus a dirty OR, and the strongly predicted hit branch keeps
    // all the miss bookkeeping out of line.
    if (wayStride_ == 1 && (config_.writeAllocate || !write)) {
        const Addr tag = addr >> setShift_;
        const std::uint64_t set = tag & setMask_;
        if (tags_[set] == tag) [[likely]] {
            dirty_[set] |= write ? 1 : 0;
            return true;
        }
        return accessDirectMiss(set, tag, write);
    }
    return accessGeneral(addr, write);
}

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_CACHE_HH
